//! Solver-matrix integration: every Krylov method against the FP16
//! multigrid on appropriate problems.

use fp16mg::krylov::{bicgstab, cg, gmres, richardson, SolveOptions};
use fp16mg::mg::{MatOp, Mg, MgConfig};
use fp16mg::problems::ProblemKind;
use fp16mg::sgdia::kernels::Par;

fn setup(kind: ProblemKind, n: usize) -> (fp16mg::problems::Problem, Mg<f32>) {
    let p = kind.build(n);
    let mg = Mg::<f32>::setup(&p.matrix, &MgConfig::d16()).expect("setup");
    (p, mg)
}

#[test]
fn bicgstab_solves_oil_with_fp16_multigrid() {
    let (p, mut mg) = setup(ProblemKind::Oil, 16);
    let op = MatOp::new(&p.matrix, Par::Seq);
    let b = p.rhs();
    let mut x = vec![0.0f64; p.matrix.rows()];
    let opts = SolveOptions { tol: 1e-9, max_iters: 300, ..Default::default() };
    let res = bicgstab(&op, &mut mg, &b, &mut x, &opts);
    assert!(res.converged(), "{:?} after {}", res.reason, res.iters);
    // BiCGStab counts one iteration per two preconditioner applications;
    // it should land in the same ballpark as FGMRES.
    let mut mg2 = Mg::<f32>::setup(&p.matrix, &MgConfig::d16()).unwrap();
    let mut x2 = vec![0.0f64; p.matrix.rows()];
    let rg = gmres(&op, &mut mg2, &b, &mut x2, &opts);
    assert!(rg.converged());
    assert!(res.iters <= rg.iters * 2 + 8, "bicgstab {} vs gmres {}", res.iters, rg.iters);
}

#[test]
fn all_four_solvers_agree_on_solution() {
    let (p, _) = setup(ProblemKind::Laplace27, 12);
    let op = MatOp::new(&p.matrix, Par::Seq);
    let b = p.rhs();
    let opts = SolveOptions { tol: 1e-10, max_iters: 300, ..Default::default() };
    let mut solutions: Vec<Vec<f64>> = Vec::new();
    for which in 0..4 {
        let mut mg = Mg::<f32>::setup(&p.matrix, &MgConfig::d16()).unwrap();
        let mut x = vec![0.0f64; p.matrix.rows()];
        let r = match which {
            0 => cg(&op, &mut mg, &b, &mut x, &opts),
            1 => gmres(&op, &mut mg, &b, &mut x, &opts),
            2 => bicgstab(&op, &mut mg, &b, &mut x, &opts),
            _ => richardson(&op, &mut mg, &b, &mut x, &opts),
        };
        assert!(r.converged(), "solver {which}: {r:?}");
        solutions.push(x);
    }
    let scale = solutions[0].iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    for s in &solutions[1..] {
        for (a, b) in solutions[0].iter().zip(s) {
            assert!((a - b).abs() <= 1e-7 * scale, "{a} vs {b}");
        }
    }
}

#[test]
fn smoother_menu_all_converge_on_laplace27() {
    use fp16mg::mg::SmootherKind;
    let p = ProblemKind::Laplace27.build(16);
    let op = MatOp::new(&p.matrix, Par::Seq);
    let b = p.rhs();
    let opts = SolveOptions { tol: 1e-9, max_iters: 200, ..Default::default() };
    for smoother in [
        SmootherKind::GsSymmetric,
        SmootherKind::SymGs,
        SmootherKind::Jacobi { weight: 0.85 },
        SmootherKind::Chebyshev { degree: 3 },
        SmootherKind::Ilu0,
    ] {
        let cfg = MgConfig { smoother, ..MgConfig::d16() };
        let mut mg = Mg::<f32>::setup(&p.matrix, &cfg).unwrap();
        let mut x = vec![0.0f64; p.matrix.rows()];
        // Richardson works for every smoother (ILU makes the cycle
        // nonsymmetric, which CG would not tolerate).
        let r = richardson(&op, &mut mg, &b, &mut x, &opts);
        assert!(r.converged(), "{smoother:?}: {r:?}");
        assert!(r.iters <= 60, "{smoother:?}: {} iters", r.iters);
    }
}
