//! Cross-crate integration tests reproducing the paper's ablation claims
//! end-to-end (the Fig. 6 structure) at laptop scale.

use fp16mg::krylov::{SolveOptions, StopReason};
use fp16mg::problems::ProblemKind;
use fp16mg::sgdia::kernels::Par;
use fp16mg_bench::{solve_e2e, Combo};

fn run(kind: ProblemKind, n: usize, combo: Combo) -> (StopReason, usize) {
    let opts =
        SolveOptions { tol: 1e-9, max_iters: 400, record_history: false, ..Default::default() };
    let r = solve_e2e(kind, n, combo, &opts, Par::Seq).expect("setup");
    (r.result.reason, r.result.iters)
}

#[test]
fn fig6a_all_combos_coincide_on_laplace27() {
    // In-range, isotropic: every combination converges in the same number
    // of iterations (Fig. 6a's completely overlapping curves).
    let iters: Vec<usize> = Combo::fig6()
        .into_iter()
        .map(|c| {
            let (reason, it) = run(ProblemKind::Laplace27, 16, c);
            assert_eq!(reason, StopReason::Converged, "{c:?}");
            it
        })
        .collect();
    let base = iters[0];
    for (c, &it) in Combo::fig6().iter().zip(&iters) {
        assert!(it.abs_diff(base) <= 1, "{}: {} iters vs Full64 {}", c.label(), it, base);
    }
}

#[test]
fn fig6b_none_breaks_down_out_of_range() {
    // laplace27*1e8: the no-scaling variant overflows to NaN immediately;
    // the other four coincide (Fig. 6b).
    let (reason, _) = run(ProblemKind::Laplace27E8, 16, Combo::D16None);
    assert_eq!(reason, StopReason::Breakdown);
    let (_, full) = run(ProblemKind::Laplace27E8, 16, Combo::Full64);
    for combo in [Combo::D32, Combo::D16ScaleSetup, Combo::D16SetupScale] {
        let (reason, it) = run(ProblemKind::Laplace27E8, 16, combo);
        assert_eq!(reason, StopReason::Converged, "{combo:?}");
        assert!(it.abs_diff(full) <= 1, "{combo:?}: {it} vs {full}");
    }
}

#[test]
fn fig6c_weather_setup_scale_beats_scale_setup() {
    let (r_ss, it_ss) = run(ProblemKind::Weather, 16, Combo::D16SetupScale);
    let (r_sts, it_sts) = run(ProblemKind::Weather, 16, Combo::D16ScaleSetup);
    assert_eq!(r_ss, StopReason::Converged);
    assert_eq!(r_sts, StopReason::Converged);
    // The paper's Fig. 6c: 11 vs 15 iterations — setup-then-scale strictly
    // faster.
    assert!(it_ss < it_sts, "setup-then-scale {it_ss} should beat scale-then-setup {it_sts}");
}

#[test]
fn fig6de_scale_setup_loses_on_rhd_problems() {
    // Far-out-of-range with wide value spans: scale-then-setup either
    // diverges outright (the paper's Fig. 6d/e at production scale) or
    // needs substantially more iterations; setup-then-scale always
    // converges.
    for kind in [ProblemKind::Rhd, ProblemKind::Rhd3T] {
        let (r_ss, it_ss) = run(kind, 16, Combo::D16SetupScale);
        assert_eq!(r_ss, StopReason::Converged, "{}", kind.name());
        let (r_sts, it_sts) = run(kind, 16, Combo::D16ScaleSetup);
        assert!(
            r_sts != StopReason::Converged || it_sts > it_ss + it_ss / 4,
            "{}: scale-then-setup ({r_sts:?}, {it_sts}) should lose to \
             setup-then-scale ({it_ss})",
            kind.name()
        );
    }
}

#[test]
fn storage_effect_is_small_with_p64() {
    // Isolating the paper's storage-precision claim: with the computation
    // precision held at FP64, switching storage FP64 -> FP16 costs only a
    // few extra iterations even on the hard rhd analog (paper: +18%).
    let opts =
        SolveOptions { tol: 1e-9, max_iters: 400, record_history: false, ..Default::default() };
    use fp16mg::krylov::cg;
    use fp16mg::mg::{MatOp, Mg, MgConfig};
    let p = ProblemKind::Rhd.build(16);
    let op = MatOp::new(&p.matrix, Par::Seq);
    let b = p.rhs();
    let mut it = Vec::new();
    for cfg in [MgConfig::d64(), MgConfig::d16()] {
        let mut mg = Mg::<f64>::setup(&p.matrix, &cfg).unwrap();
        let mut x = vec![0.0f64; p.matrix.rows()];
        let r = cg(&op, &mut mg, &b, &mut x, &opts);
        assert!(r.converged());
        it.push(r.iters);
    }
    assert!(it[1] as f64 <= it[0] as f64 * 1.35 + 2.0, "P64-D16 {} vs Full64 {}", it[1], it[0]);
}

#[test]
fn mix16_memory_is_half_and_quarter() {
    let opts =
        SolveOptions { tol: 1e-9, max_iters: 400, record_history: false, ..Default::default() };
    let full = solve_e2e(ProblemKind::Laplace27, 16, Combo::Full64, &opts, Par::Seq).unwrap();
    let d32 = solve_e2e(ProblemKind::Laplace27, 16, Combo::D32, &opts, Par::Seq).unwrap();
    let mix = solve_e2e(ProblemKind::Laplace27, 16, Combo::D16SetupScale, &opts, Par::Seq).unwrap();
    assert_eq!(full.matrix_bytes, 2 * d32.matrix_bytes);
    assert_eq!(full.matrix_bytes, 4 * mix.matrix_bytes);
}

#[test]
fn complexities_low_across_problem_suite() {
    // Guideline 3's premise (Fig. 3): every hierarchy in the suite has
    // C_G ≤ 1.2 (full coarsening bound 8/7) and modest C_O.
    let opts =
        SolveOptions { tol: 1e-9, max_iters: 1, record_history: false, ..Default::default() };
    for kind in ProblemKind::all() {
        let r = solve_e2e(kind, 12, Combo::D16SetupScale, &opts, Par::Seq).unwrap();
        let (cg_c, co_c) = r.complexities;
        assert!(cg_c < 1.2, "{}: C_G = {cg_c}", kind.name());
        assert!(co_c < 6.0, "{}: C_O = {co_c}", kind.name());
    }
}
