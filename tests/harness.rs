//! Smoke tests for the benchmark harness itself: the kernel suite and the
//! end-to-end runner must produce structurally sane measurements, since
//! EXPERIMENTS.md is generated from them.

use fp16mg::krylov::SolveOptions;
use fp16mg::problems::ProblemKind;
use fp16mg::sgdia::kernels::Par;
use fp16mg::stencil::Pattern;
use fp16mg_bench::kernelbench::{lower_matrix, max_speedup, test_matrix};
use fp16mg_bench::table::Table;
use fp16mg_bench::{kernel_suite, solve_e2e, Combo, KernelKind, Variant};

#[test]
fn kernel_suite_covers_fig7_matrix() {
    // Tiny sizes and budget: structure only, not timing quality.
    let rows = kernel_suite(&[8, 10], Par::Seq, 0.5);
    // 3 patterns × 2 kernels × 4 variants.
    assert_eq!(rows.len(), 24);
    for kernel in [KernelKind::Spmv, KernelKind::Sptrsv] {
        let expect = if kernel == KernelKind::Spmv {
            ["3d7", "3d19", "3d27"]
        } else {
            ["3d4", "3d10", "3d14"]
        };
        for pat in expect {
            let sub: Vec<_> =
                rows.iter().filter(|r| r.kernel == kernel && r.pattern == pat).collect();
            assert_eq!(sub.len(), 4, "{kernel:?}/{pat}");
            for r in &sub {
                assert!(r.seconds > 0.0 && r.seconds.is_finite());
                assert!(r.speedup > 0.0 && r.speedup.is_finite());
            }
            // The baseline's speedup is 1 by construction.
            let base = sub.iter().find(|r| r.variant == Variant::Fp32Baseline).unwrap();
            assert!((base.speedup - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn max_speedup_model_between_one_and_two() {
    for pat in [Pattern::p7(), Pattern::p19(), Pattern::p27()] {
        for kernel in [KernelKind::Spmv, KernelKind::Sptrsv] {
            let s = max_speedup(&pat, 32, kernel);
            assert!(s > 1.0 && s < 2.0, "{s}");
        }
    }
    // Denser patterns have higher ceilings.
    let s7 = max_speedup(&Pattern::p7(), 32, KernelKind::Spmv);
    let s27 = max_speedup(&Pattern::p27(), 32, KernelKind::Spmv);
    assert!(s27 > s7);
}

#[test]
fn test_matrices_are_diagonally_dominant() {
    let a = test_matrix(&Pattern::p27(), 6, 42);
    let diag = a.extract_diagonal();
    assert!(diag.iter().all(|&d| d > 0.0));
    let l = lower_matrix(&a);
    assert_eq!(l.pattern().name(), "3d14");
    // Lower matrix agrees with the full one on shared taps.
    for cell in 0..a.grid().cells() {
        for (t, tap) in l.pattern().taps().iter().enumerate() {
            let ft = a.pattern().tap_index(*tap).unwrap();
            assert_eq!(l.get(cell, t), a.get(cell, ft));
        }
    }
}

#[test]
fn e2e_runner_reports_consistent_breakdown() {
    let opts =
        SolveOptions { tol: 1e-8, max_iters: 200, record_history: true, ..Default::default() };
    let r = solve_e2e(ProblemKind::Laplace27, 12, Combo::D16SetupScale, &opts, Par::Seq).unwrap();
    assert!(r.result.converged());
    assert_eq!(r.problem, "laplace27");
    assert!(r.solve >= r.precond);
    assert_eq!(r.solve, r.precond + r.other);
    assert_eq!(r.total(), r.setup + r.solve);
    assert!(r.matrix_bytes > 0);
    assert!(!r.result.history.is_empty());
    // History starts at 1 (zero initial guess) and ends below tol.
    assert_eq!(r.result.history[0], 1.0);
    assert!(*r.result.history.last().unwrap() < 1e-8);
}

#[test]
fn combo_labels_match_paper_legend() {
    assert_eq!(Combo::Full64.label(), "Full64");
    assert_eq!(Combo::D32.label(), "K64P32D32");
    assert_eq!(Combo::D16None.label(), "K64P32D16-none");
    assert_eq!(Combo::D16ScaleSetup.label(), "K64P32D16-scale-setup");
    assert_eq!(Combo::D16SetupScale.label(), "K64P32D16-setup-scale");
    assert_eq!(Combo::fig6().len(), 5);
}

#[test]
fn table_renderer_aligns_columns() {
    let mut t = Table::new(&["name", "value"]);
    t.row(vec!["laplace27".into(), "3.70x".into()]);
    t.row(vec!["x".into(), "1.0x".into()]);
    let s = t.render();
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines[0].starts_with("name"));
    assert!(lines[1].chars().all(|c| c == '-'));
    // All rows have equal rendered width.
    assert_eq!(lines[2].len(), lines[3].len());
}
