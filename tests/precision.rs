//! Cross-crate precision-boundary tests: the K/P/D transitions of
//! Algorithms 1–3, exercised through the public API.

use fp16mg::fp::{Precision, F16};
use fp16mg::grid::Grid3;
use fp16mg::krylov::{cg, richardson, Preconditioner, SolveOptions};
use fp16mg::mg::{MatOp, Mg, MgConfig, StoragePolicy};
use fp16mg::problems::ProblemKind;
use fp16mg::sgdia::kernels::Par;
use fp16mg::sgdia::{Layout, SgDia};
use fp16mg::stencil::Pattern;

fn poisson(n: usize, scale: f64) -> SgDia<f64> {
    let grid = Grid3::cube(n);
    let pattern = Pattern::p7();
    let taps: Vec<_> = pattern.taps().to_vec();
    SgDia::from_fn(grid, pattern, Layout::Soa, |_, _, _, _, t| {
        if taps[t].is_diagonal() {
            6.05 * scale
        } else {
            -scale
        }
    })
}

#[test]
fn k32_iterative_precision_works() {
    // The paper's K is configurable; run the whole stack in f32 outer
    // precision (K32 P32 D16).
    let a = poisson(12, 1.0);
    let mut mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
    let op = MatOp::new(&a, Par::Seq);
    let b = vec![1.0f32; a.rows()];
    let mut x = vec![0.0f32; a.rows()];
    let opts = SolveOptions { tol: 1e-5, max_iters: 100, ..Default::default() };
    let r = cg(&op, &mut mg, &b, &mut x, &opts);
    assert!(r.converged(), "{r:?}");
}

#[test]
fn same_mg_serves_f32_and_f64_solvers() {
    // One hierarchy, two iterative precisions — the Preconditioner trait
    // is generic over K, so no rebuild is needed.
    let a = poisson(10, 1.0);
    let mut mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
    let r64 = vec![1.0f64; a.rows()];
    let mut z64 = vec![0.0f64; a.rows()];
    Preconditioner::<f64>::apply(&mut mg, &r64, &mut z64);
    let r32 = vec![1.0f32; a.rows()];
    let mut z32 = vec![0.0f32; a.rows()];
    Preconditioner::<f32>::apply(&mut mg, &r32, &mut z32);
    for (a64, a32) in z64.iter().zip(&z32) {
        assert!((a64 - *a32 as f64).abs() < 1e-5 * (1.0 + a64.abs()));
    }
}

#[test]
fn per_level_policy_mixes_all_four_precisions() {
    let a = poisson(32, 1.0);
    let cfg = MgConfig {
        storage: StoragePolicy::PerLevel(vec![
            Precision::F16,
            Precision::BF16,
            Precision::F32,
            Precision::F64,
        ]),
        ..MgConfig::d16()
    };
    let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
    let levels = &mg.info().levels;
    assert_eq!(levels[0].precision, Precision::F16);
    assert_eq!(levels[1].precision, Precision::BF16);
    assert_eq!(levels[2].precision, Precision::F32);
    let op = MatOp::new(&a, Par::Seq);
    let b = vec![1.0f64; a.rows()];
    let mut x = vec![0.0f64; a.rows()];
    let r = richardson(&op, &mut mg, &b, &mut x, &SolveOptions::default());
    assert!(r.converged());
}

#[test]
fn theorem41_no_overflow_for_any_problem() {
    // The Theorem 4.1 guarantee, checked on every generated problem: after
    // setup-then-scale, no stored FP16 value is infinite.
    for kind in ProblemKind::all() {
        let p = kind.build(10);
        let mg = Mg::<f32>::setup(&p.matrix, &MgConfig::d16()).expect(p.name);
        for (l, info) in mg.info().levels.iter().enumerate() {
            assert!(info.finite, "{}: level {l} has non-finite storage", p.name);
        }
    }
}

#[test]
fn scaled_preconditioner_equals_unscaled_in_exact_precision() {
    // With D64 storage (lossless truncation), forcing the scaling
    // machinery must not change the preconditioner's action: scaling is
    // algebraically transparent.
    let a = poisson(10, 1.0e8); // triggers need-to-scale for FP16, not F64
    let mut plain = Mg::<f64>::setup(&a, &MgConfig::d64()).unwrap();
    // FP16 storage with scaling; same problem, still converges identically
    // in iteration counts when solved loosely.
    let mut scaled = Mg::<f64>::setup(&a, &MgConfig::d16()).unwrap();
    let op = MatOp::new(&a, Par::Seq);
    let b = vec![1.0e8f64; a.rows()];
    let opts = SolveOptions { tol: 1e-8, max_iters: 60, ..Default::default() };
    let mut x1 = vec![0.0f64; a.rows()];
    let r1 = cg(&op, &mut plain, &b, &mut x1, &opts);
    let mut x2 = vec![0.0f64; a.rows()];
    let r2 = cg(&op, &mut scaled, &b, &mut x2, &opts);
    assert!(r1.converged() && r2.converged());
    assert!(r2.iters <= r1.iters + 2, "{} vs {}", r2.iters, r1.iters);
}

#[test]
fn fp16_constants_are_paper_values() {
    assert_eq!(F16::MAX_F64, 65504.0);
    assert_eq!(Precision::F16.finite_max(), 65504.0);
    // The overflow probe of the guidelines: 1e8 >> FP16_MAX.
    assert!(!F16::from_f64(1.0e8).is_finite());
}
