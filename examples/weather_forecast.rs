//! Numerical-weather-prediction scenario: the paper's `weather` problem.
//!
//! ```sh
//! cargo run --release --example weather_forecast
//! ```
//!
//! A GRAPES-style Helmholtz operator on a vertically stretched grid: 3d19
//! stencil, strongly anisotropic, with coefficient magnitudes *just past*
//! the FP16 range ("near" distance in Table 3). The example shows
//!
//! 1. the out-of-range diagnosis and the per-level scaling decisions the
//!    setup makes (Theorem 4.1 in action), and
//! 2. the `shift_levid` knob of §4.3: where to switch coarse levels back
//!    to FP32 to dodge underflow, trading memory for robustness.

use fp16mg::fp::{Precision, F16};
use fp16mg::krylov::{gmres, SolveOptions};
use fp16mg::mg::{MatOp, Mg, MgConfig, StoragePolicy};
use fp16mg::problems::{metrics, ProblemKind};
use fp16mg::sgdia::kernels::Par;

fn main() {
    let problem = ProblemKind::Weather.build(32);
    let (out, dist) = metrics::fp16_distance(&problem.matrix);
    let (absmax, _) = problem.matrix.abs_max();
    println!(
        "problem '{}': {} unknowns, |a|max = {:.3e} ({}x FP16_MAX), out-of-range: {out}, distance: {dist}",
        problem.name,
        problem.matrix.rows(),
        absmax,
        (absmax / F16::MAX_F64).ceil(),
    );
    let aniso = metrics::anisotropy(&problem.matrix);
    println!(
        "anisotropy: median 10^{:.2}, p90 10^{:.2} -> {}",
        aniso.median,
        aniso.p90,
        aniso.label()
    );

    let b = problem.rhs();
    let opts = SolveOptions { tol: 1e-9, max_iters: 400, restart: 30, ..Default::default() };
    let op = MatOp::new(&problem.matrix, Par::Seq);

    // Sweep the shift_levid knob.
    println!("\nshift_levid sweep (FP16 above the shift level, FP32 below):");
    println!("{:>10}  {:>6}  {:>14}  per-level storage", "shift", "#iter", "matrix bytes");
    for shift in [0usize, 1, 2, usize::MAX] {
        let config = MgConfig {
            storage: StoragePolicy::Fp16Until { shift_levid: shift, coarse: Precision::F32 },
            ..MgConfig::d16()
        };
        let mut mg = Mg::<f32>::setup(&problem.matrix, &config).expect("setup");
        let levels: Vec<String> = mg
            .info()
            .levels
            .iter()
            .map(|l| format!("{}{}", l.precision, if l.scaled { "*" } else { "" }))
            .collect();
        let bytes = mg.info().matrix_bytes;
        let mut x = vec![0.0f64; problem.matrix.rows()];
        let r = gmres(&op, &mut mg, &b, &mut x, &opts);
        assert!(r.converged(), "weather must converge at shift {shift}");
        println!(
            "{:>10}  {:>6}  {:>14}  {}",
            if shift == usize::MAX { "all-fp16".into() } else { shift.to_string() },
            r.iters,
            bytes,
            levels.join(" | ")
        );
    }
    println!("(* = level scaled per Theorem 4.1 before truncation; the coarsest");
    println!(" level is always the f64 direct solve)");
}
