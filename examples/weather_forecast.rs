//! Numerical-weather-prediction scenario: the paper's `weather` problem
//! advanced through forecast time steps.
//!
//! ```sh
//! cargo run --release --example weather_forecast
//! ```
//!
//! A GRAPES-style Helmholtz operator on a vertically stretched grid:
//! 3d19 stencil, strongly anisotropic, with coefficient magnitudes
//! *just past* the FP16 range ("near" distance in Table 3) — so every
//! hierarchy the forecast builds relies on the per-level scaling of
//! Theorem 4.1. The time dependence is the harshest of the presets:
//! the background state drifts smoothly, but every fifth step the
//! whole field jumps by ~24x (a regime change crossing several
//! binades) and back again. The step loop audits the drifted operator
//! against the cached hierarchy's baseline and keeps, rescales in
//! place, or rebuilds — the jump edges force rebuilds, the plateaus
//! between them are nearly free — and GMRES must converge to the
//! FP64-grade tolerance at every step.

use fp16mg::fp::{Precision, F16};
use fp16mg::krylov::{gmres, SolveOptions};
use fp16mg::mg::{GalerkinChain, MatOp, Mg, MgConfig};
use fp16mg::problems::{metrics, step_rhs, Evolution, ProblemKind};
use fp16mg::sgdia::audit::{audit, drift};
use fp16mg::sgdia::kernels::Par;

const KEEP_MAX: f64 = 0.25;
const RESCALE_MAX: f64 = 3.0;
const STEPS: u64 = 12;
const TOL: f64 = 1e-9;

fn main() {
    let evo = Evolution::new(ProblemKind::Weather, 20);
    let (out, dist) = metrics::fp16_distance(evo.base());
    let (absmax, _) = evo.base().abs_max();
    println!(
        "weather Helmholtz system: {} unknowns, |a|max = {:.3e} ({}x FP16_MAX, distance: \
         {dist}), out-of-range: {out}",
        evo.base().rows(),
        absmax,
        (absmax / F16::MAX_F64).ceil(),
    );
    println!("(drift preset: smooth background + ~24x field jump every 5 steps)");
    println!("\n{:>4}  {:>8}  {:>6}  {:>6}  {:>9}", "step", "decision", "drift", "#iter", "resid");

    let cfg = MgConfig::d16();
    let opts = SolveOptions { tol: TOL, max_iters: 400, restart: 30, ..Default::default() };
    let mut chain: Option<GalerkinChain> = None;
    let mut baseline = None;
    let mut x = vec![0.0f64; evo.base().rows()];
    let (mut keeps, mut rescales, mut rebuilds) = (0u32, 0u32, 0u32);
    let mut final_resid = f64::NAN;

    for step in 0..STEPS {
        let problem = evo.problem_at(step);
        let a = &problem.matrix;
        let now = audit(a, Precision::F16);
        let dmag = match (&chain, &baseline) {
            (Some(_), Some(base)) => {
                let d = drift(base, &now);
                if d.structural() {
                    f64::INFINITY
                } else {
                    d.magnitude()
                }
            }
            _ => f64::INFINITY,
        };
        let (label, mut mg) = if dmag <= KEEP_MAX {
            keeps += 1;
            (" keep", Mg::setup_from_chain(chain.as_ref().unwrap(), &cfg).expect("keep"))
        } else if dmag <= RESCALE_MAX {
            let ch = chain.as_mut().unwrap();
            let mg = Mg::<f32>::setup_rescaled(a, ch, &cfg).expect("rescale");
            ch.swap_finest(a, &cfg).expect("swap");
            baseline = Some(now);
            rescales += 1;
            ("scale", mg)
        } else {
            let ch = GalerkinChain::build(a, &cfg).expect("chain");
            let mg = Mg::setup_from_chain(&ch, &cfg).expect("setup");
            chain = Some(ch);
            baseline = Some(now);
            rebuilds += 1;
            ("build", mg)
        };

        let b = step_rhs(&problem, if step == 0 { None } else { Some(&x) });
        let op = MatOp::new(a, Par::Seq);
        x.fill(0.0);
        let r = gmres(&op, &mut mg, &b, &mut x, &opts);
        assert!(r.converged(), "step {step} did not converge: {:?}", r.reason);
        final_resid = r.final_rel_residual;
        let shown = if dmag.is_finite() { format!("{dmag:.3}") } else { "-".into() };
        println!("{:>4}  {:>8}  {:>6}  {:>6}  {:>9.2e}", step, label, shown, r.iters, final_resid);
    }

    assert!(final_resid <= TOL, "final residual {final_resid:.2e} above tolerance");
    println!(
        "\ndecisions: keep={keeps} rescale={rescales} rebuild={rebuilds}; the jump edges \
         forced rebuilds, every other step reused the hierarchy, and every step converged \
         to {TOL:.0e}"
    );
}
