//! Matrix interchange: save a generated problem, reload it, solve, and
//! export to Matrix Market.
//!
//! ```sh
//! cargo run --release --example matrix_io
//! ```
//!
//! Demonstrates the I/O story a downstream user needs: the paper's own
//! evaluation matrices ship as files, and `sgdia::io` round-trips both
//! the high-precision operator and its FP16-truncated form bit-for-bit.

use fp16mg::krylov::{cg, SolveOptions};
use fp16mg::mg::{MatOp, Mg, MgConfig};
use fp16mg::problems::ProblemKind;
use fp16mg::sgdia::kernels::Par;
use fp16mg::sgdia::{io, Csr};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("fp16mg_io_demo");
    std::fs::create_dir_all(&dir)?;

    // Generate and save the rhd problem + a right-hand side.
    let problem = ProblemKind::Rhd.build(16);
    let mpath = dir.join("rhd.sgdia");
    io::write_matrix(&problem.matrix, &mut std::fs::File::create(&mpath)?)?;
    let b = problem.rhs();
    io::write_vector(&b, &mut std::fs::File::create(dir.join("rhd.rhs"))?)?;
    println!(
        "saved {} ({} bytes for {} nonzeros)",
        mpath.display(),
        std::fs::metadata(&mpath)?.len(),
        problem.matrix.nnz()
    );

    // Reload and solve with the FP16 preconditioner.
    let a = io::read_matrix::<f64>(&mut std::fs::File::open(&mpath)?)?;
    let b = io::read_vector(&mut std::fs::File::open(dir.join("rhd.rhs"))?)?;
    assert_eq!(a.data(), problem.matrix.data(), "bit-exact reload");
    let mut mg = Mg::<f32>::setup(&a, &MgConfig::d16()).expect("setup");
    let mut x = vec![0.0f64; a.rows()];
    let result = cg(&MatOp::new(&a, Par::Seq), &mut mg, &b, &mut x, &SolveOptions::default());
    println!("reloaded solve: {:?} in {} iterations", result.reason, result.iters);
    assert!(result.converged());

    // Export the operator for other toolchains.
    let mtx = dir.join("rhd.mtx");
    io::write_matrix_market(&Csr::<f64>::from_sgdia(&a), &mut std::fs::File::create(&mtx)?)?;
    println!("exported MatrixMarket: {} ({} bytes)", mtx.display(), std::fs::metadata(&mtx)?.len());

    // The FP16-truncated matrix round-trips bit-for-bit too.
    let a16 = a.convert::<fp16mg::fp::F16>();
    let mut buf = Vec::new();
    io::write_matrix(&a16, &mut buf)?;
    let back = io::read_matrix::<fp16mg::fp::F16>(&mut buf.as_slice())?;
    assert!(back.data().iter().zip(a16.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
    println!(
        "FP16 copy: {} bytes vs {} bytes in f64 — exactly 4x smaller payload",
        buf.len(),
        std::fs::metadata(&mpath)?.len()
    );
    Ok(())
}
