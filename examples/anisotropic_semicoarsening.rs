//! Anisotropy and semicoarsening: why Table 3's "Aniso." column matters
//! and what the structured-MG remedy looks like.
//!
//! ```sh
//! cargo run --release --example anisotropic_semicoarsening
//! ```
//!
//! Builds a strongly z-anisotropic diffusion operator (like thin
//! reservoir layers or a stretched atmospheric grid), shows the
//! directional-strength detector picking the coarsening axes, and
//! compares full coarsening against PFMG-style semicoarsening under the
//! FP16 configuration.

use fp16mg::grid::Grid3;
use fp16mg::krylov::{cg, SolveOptions};
use fp16mg::mg::{directional_strength, Coarsening, MatOp, Mg, MgConfig};
use fp16mg::sgdia::kernels::Par;
use fp16mg::sgdia::{Layout, SgDia};
use fp16mg::stencil::Pattern;

fn main() {
    // z-coupling 100x stronger than x/y (e.g. dz << dx).
    let grid = Grid3::cube(24);
    let pattern = Pattern::p7();
    let taps: Vec<_> = pattern.taps().to_vec();
    let a = SgDia::<f64>::from_fn(grid, pattern, Layout::Soa, |_, i, j, k, t| {
        let tap = taps[t];
        if tap.is_diagonal() {
            let mut acc = 0.05;
            for tp in &taps {
                if !tp.is_diagonal() && grid.contains_offset(i, j, k, tp.dx, tp.dy, tp.dz) {
                    acc += if tp.dz != 0 { 100.0 } else { 1.0 };
                }
            }
            acc
        } else if tap.dz != 0 {
            -100.0
        } else {
            -1.0
        }
    });

    let s = directional_strength(&a);
    println!("directional coupling strengths: x {:.1}  y {:.1}  z {:.1}", s[0], s[1], s[2]);
    println!("(z dominates: point smoothers cannot damp xy-oscillatory errors,");
    println!(" so full coarsening converges slowly — semicoarsening collapses z first)\n");

    let b: Vec<f64> = (0..a.rows()).map(|i| ((i as f64 * 0.61).sin() + 1.5) * 50.0).collect();
    let op = MatOp::new(&a, Par::Seq);
    let opts = SolveOptions { tol: 1e-9, max_iters: 300, ..Default::default() };

    println!("{:<12} {:>6} {:>8} {:>8}  level grids", "coarsening", "#iter", "C_G", "C_O");
    for (label, coarsening) in
        [("full", Coarsening::Full), ("semi(0.5)", Coarsening::Semi { threshold: 0.5 })]
    {
        let cfg = MgConfig { coarsening, ..MgConfig::d16() };
        let mut mg = Mg::<f32>::setup(&a, &cfg).expect("setup");
        let dims: Vec<String> = mg
            .info()
            .levels
            .iter()
            .map(|l| format!("{}x{}x{}", l.dims.0, l.dims.1, l.dims.2))
            .collect();
        let (cg_c, co_c) = (mg.info().grid_complexity, mg.info().operator_complexity);
        let mut x = vec![0.0f64; a.rows()];
        let res = cg(&op, &mut mg, &b, &mut x, &opts);
        assert!(res.converged(), "{label}: {res:?}");
        println!(
            "{:<12} {:>6} {:>8.3} {:>8.3}  {}",
            label,
            res.iters,
            cg_c,
            co_c,
            dims.join(" -> ")
        );
    }
    println!("\n(semicoarsening trades higher grid complexity for far fewer");
    println!(" iterations on anisotropic operators — the PFMG design point;");
    println!(" on isotropic problems the detector selects all axes and the");
    println!(" two configurations coincide)");
}
