//! Quickstart: solve a Poisson problem with the FP16-accelerated
//! multigrid preconditioner.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 27-point Laplacian on a 32³ grid, sets up the multigrid with
//! FP16 matrix storage (`setup-then-scale`, the paper's Algorithm 1), and
//! solves with FP64 conjugate gradients — the paper's `K64 P32 D16`
//! headline configuration.

use fp16mg::fp::Precision;
use fp16mg::grid::Grid3;
use fp16mg::krylov::{cg, SolveOptions};
use fp16mg::mg::{MatOp, Mg, MgConfig};
use fp16mg::sgdia::kernels::Par;
use fp16mg::sgdia::{Layout, SgDia};
use fp16mg::stencil::Pattern;

fn main() {
    // 1. Assemble the finest-level matrix in f64 (here: a 27-point
    //    Laplacian; real applications hand over their own operator).
    let grid = Grid3::cube(32);
    let pattern = Pattern::p27();
    let taps: Vec<_> = pattern.taps().to_vec();
    let a = SgDia::<f64>::from_fn(grid, pattern, Layout::Soa, |_, _, _, _, t| {
        if taps[t].is_diagonal() {
            26.0
        } else {
            -1.0
        }
    });
    println!("matrix: {} unknowns, {} nonzeros", a.rows(), a.nnz());

    // 2. Set up the FP16 multigrid preconditioner (computation precision
    //    f32, storage precision FP16, scaling only where needed).
    let config = MgConfig::d16();
    let mut mg = Mg::<f32>::setup(&a, &config).expect("multigrid setup");
    println!(
        "hierarchy: {} levels, C_G = {:.3}, C_O = {:.3}",
        mg.num_levels(),
        mg.info().grid_complexity,
        mg.info().operator_complexity
    );
    for (l, info) in mg.info().levels.iter().enumerate() {
        println!(
            "  level {l}: {:4}x{:<4}x{:<4} {:>9} dof, stored as {}{}",
            info.dims.0,
            info.dims.1,
            info.dims.2,
            info.unknowns,
            info.precision,
            if info.scaled { " (scaled)" } else { "" },
        );
    }
    assert_eq!(mg.info().levels[0].precision, Precision::F16);

    // 3. Solve A x = b with FP64 CG; the preconditioner boundary handles
    //    all precision transitions (paper Algorithm 2).
    let b = vec![1.0f64; a.rows()];
    let mut x = vec![0.0f64; a.rows()];
    let op = MatOp::new(&a, Par::Seq);
    let opts = SolveOptions { tol: 1e-9, ..Default::default() };
    let result = cg(&op, &mut mg, &b, &mut x, &opts);

    println!(
        "CG: {:?} in {} iterations, final relative residual {:.3e}",
        result.reason, result.iters, result.final_rel_residual
    );
    assert!(result.converged());
}
