//! Radiation-hydrodynamics scenario: the paper's hardest FP16 cases,
//! `rhd` and `rhd-3T`.
//!
//! ```sh
//! cargo run --release --example radiation_hydro
//! ```
//!
//! These matrices span ~15 decades of magnitude — far outside FP16 both
//! ways — so they demonstrate the full Fig. 6 ablation in one binary:
//!
//! * no scaling        → overflow to ∞, NaN, solver breakdown (§3.4);
//! * scale-then-setup  → the single global scaling interferes with the
//!   Galerkin triple-product chain and loses (§4.3);
//! * setup-then-scale  → per-level scaling after the high-precision
//!   setup converges like the FP64 baseline (Algorithm 1).

use fp16mg::krylov::{cg, SolveOptions};
use fp16mg::mg::{MatOp, Mg, MgConfig, ScaleStrategy};
use fp16mg::problems::{metrics, ProblemKind};
use fp16mg::sgdia::kernels::Par;

fn run(kind: ProblemKind) {
    let problem = kind.build(20);
    let hist = metrics::range_histogram(&problem.matrix);
    println!(
        "\n=== {} === ({} unknowns; magnitudes span 1e{} … 1e{})",
        problem.name,
        problem.matrix.rows(),
        hist.first().unwrap().0,
        hist.last().unwrap().0 + 1,
    );
    let b = problem.rhs();
    let opts = SolveOptions { tol: 1e-9, max_iters: 300, ..Default::default() };
    let op = MatOp::new(&problem.matrix, Par::Seq);

    // FP64 baseline for reference.
    let mut mg = Mg::<f64>::setup(&problem.matrix, &MgConfig::d64()).expect("setup");
    let mut x = vec![0.0f64; problem.matrix.rows()];
    let base = cg(&op, &mut mg, &b, &mut x, &opts);
    println!("  Full64                  : {:?} in {} iters", base.reason, base.iters);

    for (label, strategy) in [
        ("K64P32D16 none           ", ScaleStrategy::None),
        ("K64P32D16 scale-then-setup", ScaleStrategy::ScaleThenSetup),
        ("K64P32D16 setup-then-scale", ScaleStrategy::SetupThenScale),
    ] {
        let config = MgConfig { scale: strategy, ..MgConfig::d16() };
        match Mg::<f32>::setup(&problem.matrix, &config) {
            Ok(mut mg) => {
                let finite = mg.info().levels.iter().all(|l| l.finite);
                let mut x = vec![0.0f64; problem.matrix.rows()];
                let r = cg(&op, &mut mg, &b, &mut x, &opts);
                println!(
                    "  {label}: {:?} in {} iters{}",
                    r.reason,
                    r.iters,
                    if finite { "" } else { "  [FP16 overflow in storage]" }
                );
            }
            Err(e) => println!("  {label}: setup failed ({e})"),
        }
    }
}

fn main() {
    run(ProblemKind::Rhd);
    run(ProblemKind::Rhd3T);
    println!("\n(the paper's Fig. 6(d)/(e): 'none' crashes with NaN, scale-then-setup");
    println!(" fails to converge, setup-then-scale tracks the FP64 baseline)");
}
