//! Radiation-hydrodynamics scenario: the paper's hardest FP16 case,
//! `rhd`, advanced through implicit time steps.
//!
//! ```sh
//! cargo run --release --example radiation_hydro
//! ```
//!
//! The single-temperature diffusion matrix spans ~15 decades of
//! magnitude — far outside FP16 both ways — so only the setup-then-scale
//! path (Algorithm 1) stores its levels in FP16 at all. A radiation
//! front makes the time dependence brutal: opacity drifts smoothly
//! between steps, but the front sweeping the grid multiplies the
//! coefficients behind it by orders of magnitude. Each step audits the
//! drifted operator against the cached hierarchy's baseline and takes
//! the cheapest sufficient action — keep, rescale-in-place, or rebuild.
//! Once the front is in flight the scaled-FP16 hierarchy is no longer
//! enough for CG (a breakdown, not just slow convergence — the drifted
//! range overwhelms the per-level scaling), so the loop carries the
//! engine's escalation rung: a failed step rebuilds the hierarchy in
//! FP64 and retries, exactly the `rebuild-f64` rung the `repro
//! simulate` retry ladder lands on for this problem. CG must then
//! converge to the FP64-grade tolerance at every step.

use fp16mg::fp::Precision;
use fp16mg::krylov::{cg, SolveOptions};
use fp16mg::mg::{GalerkinChain, MatOp, Mg, MgConfig};
use fp16mg::problems::{metrics, step_rhs, Evolution, ProblemKind};
use fp16mg::sgdia::audit::{audit, drift};
use fp16mg::sgdia::kernels::Par;

const KEEP_MAX: f64 = 0.25;
const RESCALE_MAX: f64 = 3.0;
const STEPS: u64 = 10;
const TOL: f64 = 1e-9;

fn main() {
    let evo = Evolution::new(ProblemKind::Rhd, 16);
    let hist = metrics::range_histogram(evo.base());
    println!(
        "rhd diffusion system: {} unknowns, magnitudes span 1e{} … 1e{}, {} implicit steps, \
         solver CG",
        evo.base().rows(),
        hist.first().unwrap().0,
        hist.last().unwrap().0 + 1,
        STEPS
    );
    println!("(front-propagation drift: the radiation front multiplies swept cells by ~6x)");
    println!("\n{:>4}  {:>8}  {:>6}  {:>6}  {:>9}", "step", "decision", "drift", "#iter", "resid");

    let cfg = MgConfig::d16(); // K64 P32 D16, setup-then-scale
    let opts = SolveOptions { tol: TOL, max_iters: 300, ..Default::default() };
    let mut chain: Option<GalerkinChain> = None;
    let mut baseline = None;
    let mut x = vec![0.0f64; evo.base().rows()];
    let (mut keeps, mut rescales, mut rebuilds) = (0u32, 0u32, 0u32);
    let mut escalations = 0u32;
    let mut final_resid = f64::NAN;

    for step in 0..STEPS {
        let problem = evo.problem_at(step);
        let a = &problem.matrix;
        let now = audit(a, Precision::F16);
        let dmag = match (&chain, &baseline) {
            (Some(_), Some(base)) => {
                let d = drift(base, &now);
                if d.structural() {
                    f64::INFINITY
                } else {
                    d.magnitude()
                }
            }
            _ => f64::INFINITY,
        };
        let (mut label, mut mg) = if dmag <= KEEP_MAX {
            keeps += 1;
            (" keep", Mg::setup_from_chain(chain.as_ref().unwrap(), &cfg).expect("keep"))
        } else if dmag <= RESCALE_MAX {
            let ch = chain.as_mut().unwrap();
            let mg = Mg::<f32>::setup_rescaled(a, ch, &cfg).expect("rescale");
            ch.swap_finest(a, &cfg).expect("swap");
            baseline = Some(now);
            rescales += 1;
            ("scale", mg)
        } else {
            let ch = GalerkinChain::build(a, &cfg).expect("chain");
            let mg = Mg::setup_from_chain(&ch, &cfg).expect("setup");
            chain = Some(ch);
            baseline = Some(now);
            rebuilds += 1;
            ("build", mg)
        };

        let b = step_rhs(&problem, if step == 0 { None } else { Some(&x) });
        let op = MatOp::new(a, Par::Seq);
        x.fill(0.0);
        let mut r = cg(&op, &mut mg, &b, &mut x, &opts);
        if !r.converged() {
            // FP16 storage was too lossy for this step's drifted range
            // even after rescaling: rebuild in FP64 and retry, as the
            // simulation engine's retry ladder does. The cached FP16
            // chain stays live for the following steps' audits.
            let f64cfg = MgConfig::d64();
            let ch = GalerkinChain::build(a, &f64cfg).expect("chain");
            let mut mg = Mg::<f64>::setup_from_chain(&ch, &f64cfg).expect("setup");
            label = "escal";
            escalations += 1;
            x.fill(0.0);
            r = cg(&op, &mut mg, &b, &mut x, &opts);
        }
        assert!(r.converged(), "step {step} did not converge: {:?}", r.reason);
        final_resid = r.final_rel_residual;
        let shown = if dmag.is_finite() { format!("{dmag:.3}") } else { "-".into() };
        println!("{:>4}  {:>8}  {:>6}  {:>6}  {:>9.2e}", step, label, shown, r.iters, final_resid);
    }

    assert!(final_resid <= TOL, "final residual {final_resid:.2e} above tolerance");
    println!(
        "\ndecisions: keep={keeps} rescale={rescales} rebuild={rebuilds} \
         escalated={escalations}; every step converged to {TOL:.0e} despite the ~15-decade \
         range"
    );
}
