//! Reservoir-simulation scenario: the paper's `oil` problem advanced
//! through implicit time steps.
//!
//! ```sh
//! cargo run --release --example reservoir_simulation
//! ```
//!
//! A layered log-normal permeability field discretized on 3d7 produces a
//! highly anisotropic, mildly nonsymmetric pressure system (SPE-style).
//! A real simulator re-solves it every time step while the coefficients
//! drift — mobility changes smoothly, a saturation front sweeps the
//! field, and well events jump the contrast. Rebuilding the multigrid
//! hierarchy every step would throw away the setup cost the FP16
//! warm-start path amortizes, so each step audits the drifted operator
//! against the baseline of the cached hierarchy and takes the cheapest
//! sufficient action: **keep** the hierarchy, **rescale** its finest
//! level in place (Galerkin-lag: the coarse tail stays), or **rebuild**
//! the chain. The example reports the per-step decisions and the total
//! setup time against a rebuild-every-step baseline.

use std::time::{Duration, Instant};

use fp16mg::fp::Precision;
use fp16mg::krylov::{gmres, SolveOptions};
use fp16mg::mg::{GalerkinChain, MatOp, Mg, MgConfig};
use fp16mg::problems::{step_rhs, Evolution, ProblemKind};
use fp16mg::sgdia::audit::{audit, drift};
use fp16mg::sgdia::kernels::Par;

/// Drift (in binades) below which the cached hierarchy is kept.
const KEEP_MAX: f64 = 0.25;
/// Drift up to which a finest-level rescale-in-place still serves.
const RESCALE_MAX: f64 = 3.0;
const STEPS: u64 = 12;
const TOL: f64 = 1e-9;

fn main() {
    let evo = Evolution::new(ProblemKind::Oil, 20);
    let cfg = MgConfig::d16();
    let rows = evo.base().rows();
    println!(
        "reservoir pressure system: {} unknowns, {} implicit steps, solver GMRES",
        rows, STEPS
    );
    println!(
        "\n{:>4}  {:>8}  {:>6}  {:>6}  {:>9}  {:>12}",
        "step", "decision", "drift", "#iter", "resid", "setup"
    );

    let opts = SolveOptions { tol: TOL, max_iters: 400, restart: 30, ..Default::default() };
    let mut chain: Option<GalerkinChain> = None;
    let mut baseline = None;
    let mut x = vec![0.0f64; rows];
    let (mut keeps, mut rescales, mut rebuilds) = (0u32, 0u32, 0u32);
    let mut reuse_setup = Duration::ZERO;
    let mut fresh_setup = Duration::ZERO;
    let mut final_resid = f64::NAN;

    for step in 0..STEPS {
        let problem = evo.problem_at(step);
        let a = &problem.matrix;

        // What a rebuild-every-step simulator would pay.
        let t = Instant::now();
        let _ = Mg::<f32>::setup(a, &cfg).expect("fresh setup");
        fresh_setup += t.elapsed();

        // Audit the drifted operator and reuse as much as it allows.
        let now = audit(a, Precision::F16);
        let dmag = match (&chain, &baseline) {
            (Some(_), Some(base)) => {
                let d = drift(base, &now);
                if d.structural() {
                    f64::INFINITY
                } else {
                    d.magnitude()
                }
            }
            _ => f64::INFINITY, // first step: nothing cached yet
        };
        let t = Instant::now();
        let (label, mut mg) = if dmag <= KEEP_MAX {
            keeps += 1;
            (" keep", Mg::setup_from_chain(chain.as_ref().unwrap(), &cfg).expect("keep"))
        } else if dmag <= RESCALE_MAX {
            let ch = chain.as_mut().unwrap();
            let mg = Mg::<f32>::setup_rescaled(a, ch, &cfg).expect("rescale");
            ch.swap_finest(a, &cfg).expect("swap");
            baseline = Some(now);
            rescales += 1;
            ("scale", mg)
        } else {
            let ch = GalerkinChain::build(a, &cfg).expect("chain");
            let mg = Mg::setup_from_chain(&ch, &cfg).expect("setup");
            chain = Some(ch);
            baseline = Some(now);
            rebuilds += 1;
            ("build", mg)
        };
        let step_setup = t.elapsed();
        reuse_setup += step_setup;

        // Backward-Euler-style step: the previous solution couples into
        // the right-hand side.
        let b = step_rhs(&problem, if step == 0 { None } else { Some(&x) });
        let op = MatOp::new(a, Par::Seq);
        x.fill(0.0);
        let r = gmres(&op, &mut mg, &b, &mut x, &opts);
        assert!(r.converged(), "step {step} did not converge: {:?}", r.reason);
        final_resid = r.final_rel_residual;
        let shown = if dmag.is_finite() { format!("{dmag:.3}") } else { "-".into() };
        println!(
            "{:>4}  {:>8}  {:>6}  {:>6}  {:>9.2e}  {:>10.1?}",
            step, label, shown, r.iters, r.final_rel_residual, step_setup
        );
    }

    assert!(final_resid <= TOL, "final residual {final_resid:.2e} above tolerance");
    println!(
        "\ndecisions: keep={keeps} rescale={rescales} rebuild={rebuilds}; every step converged \
         to {TOL:.0e}"
    );
    println!(
        "setup: reuse {:.1?} vs rebuild-every-step {:.1?} → amortized setup win {:.2}x",
        reuse_setup,
        fresh_setup,
        fresh_setup.as_secs_f64() / reuse_setup.as_secs_f64()
    );
}
