//! Reservoir-simulation scenario: the paper's `oil` problem.
//!
//! ```sh
//! cargo run --release --example reservoir_simulation
//! ```
//!
//! A layered log-normal permeability field discretized on 3d7 produces a
//! highly anisotropic, mildly nonsymmetric pressure system (SPE-style).
//! The example solves it with restarted flexible GMRES twice — the
//! all-FP64 baseline and the FP16-preconditioner configuration — and
//! reports the iteration counts and the memory/time effect, i.e. a small
//! Fig. 8 for one problem.

use std::time::Instant;

use fp16mg::krylov::{gmres, SolveOptions, TimedPrecond};
use fp16mg::mg::{MatOp, Mg, MgConfig};
use fp16mg::problems::ProblemKind;
use fp16mg::sgdia::kernels::Par;

fn main() {
    let problem = ProblemKind::Oil.build(32);
    println!(
        "problem '{}': {} unknowns, {} nonzeros, solver GMRES",
        problem.name,
        problem.matrix.rows(),
        problem.matrix.nnz()
    );
    let b = problem.rhs();
    let opts = SolveOptions { tol: 1e-9, max_iters: 400, restart: 30, ..Default::default() };
    let op = MatOp::new(&problem.matrix, Par::Seq);

    // --- Full64 baseline ---
    let t0 = Instant::now();
    let mg64 = Mg::<f64>::setup(&problem.matrix, &MgConfig::d64()).expect("setup");
    let setup64 = t0.elapsed();
    let bytes64 = mg64.info().matrix_bytes;
    let mut pre64 = TimedPrecond::new(mg64);
    let mut x = vec![0.0f64; problem.matrix.rows()];
    let t1 = Instant::now();
    let r64 = gmres(&op, &mut pre64, &b, &mut x, &opts);
    let solve64 = t1.elapsed();

    // --- K64 P32 D16 setup-then-scale ---
    let t0 = Instant::now();
    let mg16 = Mg::<f32>::setup(&problem.matrix, &MgConfig::d16()).expect("setup");
    let setup16 = t0.elapsed();
    let bytes16 = mg16.info().matrix_bytes;
    let mut pre16 = TimedPrecond::new(mg16);
    let mut x16 = vec![0.0f64; problem.matrix.rows()];
    let t1 = Instant::now();
    let r16 = gmres(&op, &mut pre16, &b, &mut x16, &opts);
    let solve16 = t1.elapsed();

    assert!(r64.converged() && r16.converged());
    println!("\n             {:>12}  {:>12}", "Full64", "K64P32D16");
    println!("iterations   {:>12}  {:>12}", r64.iters, r16.iters);
    println!("matrix bytes {:>12}  {:>12}", bytes64, bytes16);
    println!("setup        {:>10.1?}  {:>10.1?}", setup64, setup16);
    println!("MG precond   {:>10.1?}  {:>10.1?}", pre64.elapsed(), pre16.elapsed());
    println!("solve        {:>10.1?}  {:>10.1?}", solve64, solve16);
    println!(
        "\npreconditioner speedup {:.2}x, end-to-end speedup {:.2}x, memory {:.2}x smaller",
        pre64.elapsed().as_secs_f64() / pre16.elapsed().as_secs_f64(),
        (setup64 + solve64).as_secs_f64() / (setup16 + solve16).as_secs_f64(),
        bytes64 as f64 / bytes16 as f64
    );
    // The solutions agree to the solver tolerance.
    let maxdiff = x.iter().zip(&x16).map(|(&a, &b)| (a - b).abs()).fold(0.0f64, f64::max);
    let scale = x.iter().map(|&v| v.abs()).fold(0.0f64, f64::max);
    println!("max solution difference: {:.2e} (relative {:.2e})", maxdiff, maxdiff / scale);
}
