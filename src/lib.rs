//! # fp16mg — FP16-accelerated structured multigrid preconditioner
//!
//! A from-scratch Rust reproduction of *"FP16 Acceleration in Structured
//! Multigrid Preconditioner for Real-World Applications"* (Zong, Yu,
//! Huang, Xue — ICPP 2024, DOI 10.1145/3673038.3673040).
//!
//! The headline idea: store a structured algebraic multigrid
//! preconditioner's matrices in IEEE-754 binary16 — halving the dominant
//! memory traffic of the bandwidth-bound solve — while keeping vectors in
//! FP32 and the outer Krylov iteration in FP64. Out-of-range matrices are
//! made safe by *setup-then-scale* symmetric diagonal scaling
//! (Theorem 4.1), and the FP16→FP32 conversion cost is hidden by an
//! AOS→SOA storage transform with SIMD bulk conversion.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`fp`] | `fp16mg-fp` | binary16/bfloat16 soft-float + F16C SIMD conversion |
//! | [`stencil`] | `fp16mg-stencil` | 3d7/3d15/3d19/3d27 patterns, triangular splits |
//! | [`grid`] | `fp16mg-grid` | structured grids, coarsening, wavefront schedules |
//! | [`sgdia`] | `fp16mg-sgdia` | SG-DIA matrices, mixed-precision kernels, scaling, CSR reference |
//! | [`mg`] | `fp16mg-core` | Galerkin setup, V-cycle, precision policies — the paper's contribution |
//! | [`krylov`] | `fp16mg-krylov` | CG / FGMRES / Richardson in the iterative precision |
//! | [`problems`] | `fp16mg-problems` | the eight evaluation problems + numerical metrics |
//!
//! ## Quickstart
//!
//! ```
//! use fp16mg::grid::Grid3;
//! use fp16mg::krylov::{cg, SolveOptions};
//! use fp16mg::mg::{MatOp, Mg, MgConfig};
//! use fp16mg::sgdia::{kernels::Par, Layout, SgDia};
//! use fp16mg::stencil::Pattern;
//!
//! // A 7-point Poisson matrix on a 16^3 grid.
//! let grid = Grid3::cube(16);
//! let pattern = Pattern::p7();
//! let taps: Vec<_> = pattern.taps().to_vec();
//! let a = SgDia::<f64>::from_fn(grid, pattern, Layout::Soa, |_, _, _, _, t| {
//!     if taps[t].is_diagonal() { 6.0 } else { -1.0 }
//! });
//!
//! // FP16-storage multigrid, FP64 CG around it.
//! let mut mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
//! let b = vec![1.0f64; a.rows()];
//! let mut x = vec![0.0f64; a.rows()];
//! let op = MatOp::new(&a, Par::Seq);
//! let result = cg(&op, &mut mg, &b, &mut x, &SolveOptions::default());
//! assert!(result.converged());
//! ```

#![warn(missing_docs)]
pub use fp16mg_core as mg;
pub use fp16mg_fp as fp;
pub use fp16mg_grid as grid;
pub use fp16mg_krylov as krylov;
pub use fp16mg_problems as problems;
pub use fp16mg_sgdia as sgdia;
pub use fp16mg_stencil as stencil;
