//! One-pass range-safety scans over stored matrices.
//!
//! The runtime guard layer never branches on finiteness inside the hot
//! kernels; instead it audits a whole matrix in a single bandwidth-bound
//! pass, classifying every stored entry into the IEEE categories per
//! stencil diagonal. The per-diagonal resolution matters for diagnosis: an
//! overflowed *center* tap poisons the smoother immediately, while an
//! overflowed off-diagonal tap may only show up as slow divergence.

use fp16mg_fp::{classify::count_classes, ClassCounts, Storage};

use crate::SgDia;

/// Classification result for one stored matrix.
#[derive(Clone, Debug, Default)]
pub struct MatrixScan {
    /// Per-stencil-diagonal (tap) histograms, in pattern order.
    pub per_tap: Vec<ClassCounts>,
    /// Sum over all taps.
    pub total: ClassCounts,
}

impl MatrixScan {
    /// True when no stored entry anywhere is ±∞ or NaN.
    pub fn all_finite(&self) -> bool {
        self.total.all_finite()
    }

    /// Indices of taps containing at least one non-finite entry.
    pub fn corrupt_taps(&self) -> Vec<usize> {
        self.per_tap.iter().enumerate().filter(|(_, c)| !c.all_finite()).map(|(t, _)| t).collect()
    }

    /// Fraction of stored entries that are subnormal — the underflow
    /// pressure gauge behind the `shift_levid` heuristic (§4.3).
    pub fn subnormal_fraction(&self) -> f64 {
        let total = self.total.total();
        if total == 0 {
            0.0
        } else {
            self.total.subnormal as f64 / total as f64
        }
    }
}

impl core::fmt::Display for MatrixScan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.total)?;
        let corrupt = self.corrupt_taps();
        if !corrupt.is_empty() {
            write!(f, " (non-finite taps: {corrupt:?})")?;
        }
        Ok(())
    }
}

/// Classifies every stored entry of `a`, one histogram per stencil
/// diagonal. For SOA layout each tap's values are contiguous
/// ([`SgDia::tap_slice`]) so the pass is a straight sweep; AOS data is
/// classified through a strided walk of the same single pass.
pub fn scan<S: Storage>(a: &SgDia<S>) -> MatrixScan {
    let taps = a.pattern().len();
    let cells = a.grid().cells();
    let mut per_tap = Vec::with_capacity(taps);
    match a.layout() {
        crate::Layout::Soa => {
            for t in 0..taps {
                per_tap.push(count_classes(a.tap_slice(t)));
            }
        }
        crate::Layout::Aos => {
            let mut counts = vec![ClassCounts::default(); taps];
            let data = a.data();
            for cell in 0..cells {
                let row = &data[cell * taps..(cell + 1) * taps];
                for (c, &v) in counts.iter_mut().zip(row) {
                    c.merge(&count_classes(&[v]));
                }
            }
            per_tap = counts;
        }
    }
    let mut total = ClassCounts::default();
    for c in &per_tap {
        total.merge(c);
    }
    MatrixScan { per_tap, total }
}
