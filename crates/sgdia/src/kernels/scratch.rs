//! Thread-local kernel scratch pool.
//!
//! The staged kernels need a handful of per-invocation buffers: the tap
//! metadata table, the per-line widened-coefficient scratch, the line
//! accumulator, and small tap-classification index lists. Allocating them
//! on every sweep breaks the memory-resilience contract's steady-state
//! clause (a V-cycle must be allocation-free after setup), so each worker
//! thread keeps one reusable copy of each buffer here and kernels *rent*
//! them for the duration of a call.
//!
//! Renting uses take-out/put-back (`mem::take` the buffer out of its
//! `RefCell` slot, run the kernel body with no borrow held, put it back
//! after): a re-entrant kernel call on the same thread simply finds an
//! empty slot and falls back to a fresh allocation instead of panicking
//! on a double borrow. The pools grow to the largest working set a thread
//! has seen (finest-level `taps × nx` line scratch) and are reclaimed
//! when the thread exits; under [`crate::par::Par::Seq`] — the mode the
//! zero-allocation gate measures — everything runs on the calling thread
//! and the pool is warm after the first application.
//!
//! The element-typed buffers are dispatched on `TypeId` exactly like
//! [`super::cast_slice`]: [`fp16mg_fp::Scalar`] is implemented for `f32`
//! and `f64` only, so two concrete pools cover every instantiation, with
//! a fresh-allocation fallback should another scalar ever appear.

use core::any::TypeId;
use core::cell::RefCell;
use core::mem;

use fp16mg_fp::Scalar;
use fp16mg_grid::Grid3;
use fp16mg_stencil::Pattern;

use super::{fill_tap_metas, TapMeta};

/// The computation-precision buffers a staged kernel may rent: line
/// scratch (`s1`), line accumulator (`s2`), and staged diagonal
/// reciprocals (`s3`, triangular solves only).
pub(crate) struct KernelBufs<P> {
    s1: Vec<P>,
    s2: Vec<P>,
    s3: Vec<P>,
}

impl<P> KernelBufs<P> {
    const fn new() -> Self {
        KernelBufs { s1: Vec::new(), s2: Vec::new(), s3: Vec::new() }
    }
}

impl<P> Default for KernelBufs<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// Clears and zero-fills a pooled vector to `n` elements; reallocates
/// only when `n` exceeds the largest length this slot has ever served.
fn zeroed<P: Scalar>(v: &mut Vec<P>, n: usize) -> &mut [P] {
    v.clear();
    v.resize(n, P::ZERO);
    v.as_mut_slice()
}

impl<P: Scalar> KernelBufs<P> {
    /// Rents two zeroed buffers (scratch + accumulator).
    pub(crate) fn zeroed2(&mut self, n1: usize, n2: usize) -> (&mut [P], &mut [P]) {
        (zeroed(&mut self.s1, n1), zeroed(&mut self.s2, n2))
    }

    /// Rents three zeroed buffers (scratch + accumulator + reciprocals).
    pub(crate) fn zeroed3(
        &mut self,
        n1: usize,
        n2: usize,
        n3: usize,
    ) -> (&mut [P], &mut [P], &mut [P]) {
        (zeroed(&mut self.s1, n1), zeroed(&mut self.s2, n2), zeroed(&mut self.s3, n3))
    }
}

/// Casts the pooled concrete-type buffers to the generic parameter when
/// they are the same type (same soundness argument as
/// [`super::cast_slice_mut`]: `TypeId` equality of `'static` types).
#[inline]
fn cast_bufs_mut<A: 'static, B: 'static>(b: &mut KernelBufs<A>) -> Option<&mut KernelBufs<B>> {
    if TypeId::of::<A>() == TypeId::of::<B>() {
        // SAFETY: A and B are the same type, so layout and validity match.
        Some(unsafe { &mut *(b as *mut KernelBufs<A> as *mut KernelBufs<B>) })
    } else {
        None
    }
}

/// A `(tap, stride)` entry of the triangular solves' index split.
type Idx2 = (usize, i64);
/// A `(tap, stride, cout, cin)` entry of the Gauss–Seidel index split.
type Idx4 = (usize, i64, usize, usize);

thread_local! {
    static BUFS_F32: RefCell<KernelBufs<f32>> = const { RefCell::new(KernelBufs::new()) };
    static BUFS_F64: RefCell<KernelBufs<f64>> = const { RefCell::new(KernelBufs::new()) };
    static METAS: RefCell<Vec<TapMeta>> = const { RefCell::new(Vec::new()) };
    static IDX2: RefCell<(Vec<Idx2>, Vec<Idx2>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    static IDX4: RefCell<(Vec<Idx4>, Vec<Idx4>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with this thread's pooled buffers for computation precision
/// `P` (fresh buffers for scalar types without a dedicated pool).
pub(crate) fn with_bufs<P: Scalar, R>(f: impl FnOnce(&mut KernelBufs<P>) -> R) -> R {
    let id = TypeId::of::<P>();
    if id == TypeId::of::<f32>() {
        BUFS_F32.with(|slot| {
            let mut b = mem::take(&mut *slot.borrow_mut());
            let r = f(cast_bufs_mut::<f32, P>(&mut b).expect("TypeId matched f32"));
            *slot.borrow_mut() = b;
            r
        })
    } else if id == TypeId::of::<f64>() {
        BUFS_F64.with(|slot| {
            let mut b = mem::take(&mut *slot.borrow_mut());
            let r = f(cast_bufs_mut::<f64, P>(&mut b).expect("TypeId matched f64"));
            *slot.borrow_mut() = b;
            r
        })
    } else {
        f(&mut KernelBufs::new())
    }
}

/// Resolves the tap metadata table into this thread's pooled vector and
/// runs `f` with it. The slice stays valid across nested [`with_bufs`] /
/// [`with_idx2`] / [`with_idx4`] rentals (separate slots) and across the
/// scoped-thread parallel regions (worker closures rent from their own
/// threads' pools).
pub(crate) fn with_tap_metas<R>(
    grid: &Grid3,
    pattern: &Pattern,
    f: impl FnOnce(&[TapMeta]) -> R,
) -> R {
    METAS.with(|slot| {
        let mut v = mem::take(&mut *slot.borrow_mut());
        fill_tap_metas(grid, pattern, &mut v);
        let r = f(&v);
        *slot.borrow_mut() = v;
        r
    })
}

/// Runs `f` with this thread's pooled pair of `(tap, stride)` index lists
/// (cleared), used by the triangular solves' bulk/recurrence split.
pub(crate) fn with_idx2<R>(
    f: impl FnOnce(&mut Vec<(usize, i64)>, &mut Vec<(usize, i64)>) -> R,
) -> R {
    IDX2.with(|slot| {
        let (mut a, mut b) = mem::take(&mut *slot.borrow_mut());
        a.clear();
        b.clear();
        let r = f(&mut a, &mut b);
        *slot.borrow_mut() = (a, b);
        r
    })
}

/// Runs `f` with this thread's pooled pair of `(tap, stride, cout, cin)`
/// index lists (cleared), used by the Gauss–Seidel bulk/recurrence split.
pub(crate) fn with_idx4<R>(
    f: impl FnOnce(&mut Vec<(usize, i64, usize, usize)>, &mut Vec<(usize, i64, usize, usize)>) -> R,
) -> R {
    IDX4.with(|slot| {
        let (mut a, mut b) = mem::take(&mut *slot.borrow_mut());
        a.clear();
        b.clear();
        let r = f(&mut a, &mut b);
        *slot.borrow_mut() = (a, b);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bufs_grow_once_and_reuse() {
        with_bufs::<f32, _>(|b| {
            let (s1, s2) = b.zeroed2(8, 4);
            s1.fill(1.0);
            s2.fill(2.0);
        });
        with_bufs::<f32, _>(|b| {
            let (s1, s2) = b.zeroed2(8, 4);
            assert!(s1.iter().all(|&v| v == 0.0), "rented buffers are zeroed");
            assert!(s2.iter().all(|&v| v == 0.0), "rented buffers are zeroed");
        });
    }

    #[test]
    fn nested_rentals_do_not_panic() {
        with_bufs::<f64, _>(|outer| {
            let (s1, _) = outer.zeroed2(4, 4);
            // A re-entrant rental on the same thread sees the empty taken
            // slot and allocates fresh instead of panicking.
            with_bufs::<f64, _>(|inner| {
                let (t1, _) = inner.zeroed2(2, 2);
                t1.fill(9.0);
            });
            assert!(s1.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn idx_pools_are_cleared() {
        with_idx2(|a, b| {
            a.push((1, -1));
            b.push((2, 1));
        });
        with_idx2(|a, b| {
            assert!(a.is_empty() && b.is_empty());
        });
    }
}
