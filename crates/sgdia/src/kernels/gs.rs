//! Gauss–Seidel sweeps over a full structured matrix.
//!
//! One forward sweep followed by one backward sweep is the SymGS smoother
//! the paper uses on every level (its specialized SpTRSV form is the HPCG
//! hotspot §5 cites: 78% of runtime). Sweeps update the solution in place:
//!
//! `x_i ← D_i⁻¹ (b_i − Σ_{j≠i} a_ij x_j)`
//!
//! with already-visited cells contributing fresh values. Matrix entries
//! are recovered from the storage precision on the fly; the diagonal block
//! inverse comes precomputed in the computation precision (see
//! [`BlockDiagInv`]).
//!
//! Scalar SOA matrices take the *staged* path: each x-line of
//! coefficients is bulk-converted (SIMD F16C for FP16, `memcpy` for
//! same-precision) into a small scratch buffer before the recurrence —
//! the §5.1 conversion-amortization scheme, which also turns the strided
//! SOA streams into sequential reads for every precision.

use fp16mg_fp::{Scalar, Storage};
use fp16mg_grid::Grid3;

use super::{
    widen_line, with_bufs, with_idx4, with_tap_metas, BlockDiagInv, TapMeta, MAX_COMPONENTS,
};
use crate::{Layout, SgDia};

/// One forward Gauss–Seidel sweep: cells in increasing row-major order.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gs_forward<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    dinv: &BlockDiagInv<P>,
    b: &[P],
    x: &mut [P],
) {
    sweep(a, dinv, b, x, false);
}

/// One backward Gauss–Seidel sweep: cells in decreasing row-major order
/// (the `Sᵀ` smoother application of Algorithm 3 line 17).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gs_backward<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    dinv: &BlockDiagInv<P>,
    b: &[P],
    x: &mut [P],
) {
    sweep(a, dinv, b, x, true);
}

fn sweep<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    dinv: &BlockDiagInv<P>,
    b: &[P],
    x: &mut [P],
    backward: bool,
) {
    let grid = a.grid();
    let cells = grid.cells();
    let r = grid.components;
    assert!(r <= MAX_COMPONENTS, "too many components per cell");
    assert_eq!(b.len(), cells * r, "b length");
    assert_eq!(x.len(), cells * r, "x length");
    assert_eq!(dinv.components(), r, "dinv components");
    assert_eq!(dinv.cells(), cells, "dinv cells");
    with_tap_metas(grid, a.pattern(), |metas| {
        if a.layout() == Layout::Soa {
            sweep_staged(grid, metas, a.data(), dinv, b, x, backward);
            return;
        }
        sweep_aos(a, metas, dinv, b, x, backward);
    });
}

/// Per-cell AOS sweep (the naive path: one convert per entry).
fn sweep_aos<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    metas: &[TapMeta],
    dinv: &BlockDiagInv<P>,
    b: &[P],
    x: &mut [P],
    backward: bool,
) {
    let cells = a.grid().cells();
    let r = a.grid().components;
    let mut acc = [P::ZERO; MAX_COMPONENTS];
    let mut xb = [P::ZERO; MAX_COMPONENTS];
    for step in 0..cells {
        let cell = if backward { cells - 1 - step } else { step };
        for c in 0..r {
            acc[c] = b[cell * r + c];
        }
        for (t, m) in metas.iter().enumerate() {
            if m.center {
                continue; // the diagonal block is applied via its inverse
            }
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            let av = P::from_f64(a.get(cell, t).load_f64());
            acc[m.cout] = (-av).mul_add(x[nb as usize * r + m.cin], acc[m.cout]);
        }
        dinv.solve(cell, &acc[..r], &mut xb[..r]);
        x[cell * r..cell * r + r].copy_from_slice(&xb[..r]);
    }
}

/// Staged SOA sweep (any component count): per x-line bulk conversion
/// into scratch, vectorizable bulk accumulation of every coupling that
/// does not participate in the sweep's dependency chain, then a short
/// scalar recurrence over the remaining within-line taps plus the
/// diagonal-block solve.
fn sweep_staged<S: Storage, P: Scalar>(
    grid: &Grid3,
    metas: &[TapMeta],
    data: &[S],
    dinv: &BlockDiagInv<P>,
    b: &[P],
    x: &mut [P],
    backward: bool,
) {
    let cells = grid.cells();
    let nx = grid.nx;
    let r = grid.components;
    let nlines = cells / nx;
    let taps = metas.len();
    with_bufs::<P, _>(|bufs| {
        let (scratch, acc) = bufs.zeroed2(taps * nx, nx * r);
        let mut blk_in = [P::ZERO; MAX_COMPONENTS];
        let mut blk_out = [P::ZERO; MAX_COMPONENTS];
        // Gauss–Seidel semantics: within a line, only taps pointing *against*
        // the sweep direction read values updated during this line — those
        // stay in the recurrence. Everything else reads either earlier lines
        // (already updated) or not-yet-touched values, so it can be
        // bulk-accumulated from the pre-sweep state of the line. The center
        // block is applied through its precomputed inverse.
        with_idx4(|bulk, rec| {
            for (t, m) in metas.iter().enumerate() {
                if m.center {
                    continue;
                }
                let item = (t, m.cell_stride, m.cout, m.cin);
                if m.in_line
                    && ((!backward && m.cell_stride < 0) || (backward && m.cell_stride > 0))
                {
                    rec.push(item);
                } else {
                    bulk.push(item);
                }
            }

            for lstep in 0..nlines {
                let line = if backward { nlines - 1 - lstep } else { lstep };
                let lbase = line * nx;
                for t in 0..taps {
                    widen_line(
                        &data[t * cells + lbase..t * cells + lbase + nx],
                        &mut scratch[t * nx..(t + 1) * nx],
                    );
                }
                acc[..nx * r].copy_from_slice(&b[lbase * r..(lbase + nx) * r]);
                for &(t, cstride, cout, cin) in bulk.iter() {
                    let xoff = lbase as i64 + cstride;
                    let lo = (-xoff).clamp(0, nx as i64) as usize;
                    let hi = (cells as i64 - xoff).clamp(lo as i64, nx as i64) as usize;
                    if r == 1 {
                        super::line_bulk_sub(
                            &mut acc[..nx],
                            &scratch[t * nx..(t + 1) * nx],
                            x,
                            xoff,
                            cells,
                        );
                    } else {
                        for i in lo..hi {
                            let xv = x[(xoff + i as i64) as usize * r + cin];
                            acc[i * r + cout] -= scratch[t * nx + i] * xv;
                        }
                    }
                }
                // Scalar recurrence + diagonal-block solve. For scalar radius-1
                // patterns there is exactly one within-line tap against the sweep
                // direction, so the recurrence reduces to
                // `x[i] = fma(d[i], x[i-1], c[i])` with `c = D⁻¹·acc` and
                // `d = -D⁻¹·a_w` precomputed vectorized — one fused-multiply-add
                // of latency on the dependency chain per cell.
                if r == 1 && rec.len() == 1 {
                    // r == 1 above guarantees the scalar representation exists.
                    let di = dinv.as_scalar().expect("scalar dinv when r == 1");
                    let (t, cstride, _, _) = rec[0];
                    // c[i] = D⁻¹·acc reuses acc; d[i] = −D⁻¹·a_w overwrites the
                    // tap's scratch row (its raw values are no longer needed).
                    {
                        let drow = &mut scratch[t * nx..(t + 1) * nx];
                        for i in 0..nx {
                            let dv = di[lbase + i];
                            acc[i] *= dv;
                            drow[i] = -(dv * drow[i]);
                        }
                    }
                    if backward {
                        for i in (0..nx).rev() {
                            let cell = lbase + i;
                            let nb = cell as i64 + cstride;
                            let prev = if nb < cells as i64 { x[nb as usize] } else { P::ZERO };
                            x[cell] = scratch[t * nx + i].mul_add(prev, acc[i]);
                        }
                    } else {
                        for i in 0..nx {
                            let cell = lbase + i;
                            let nb = cell as i64 + cstride;
                            let prev = if nb >= 0 { x[nb as usize] } else { P::ZERO };
                            x[cell] = scratch[t * nx + i].mul_add(prev, acc[i]);
                        }
                    }
                    continue;
                }
                for istep in 0..nx {
                    let i = if backward { nx - 1 - istep } else { istep };
                    let cell = lbase + i;
                    for c in 0..r {
                        blk_in[c] = acc[i * r + c];
                    }
                    for &(t, cstride, cout, cin) in rec.iter() {
                        let nb = cell as i64 + cstride;
                        if nb >= 0 && nb < cells as i64 {
                            blk_in[cout] -= scratch[t * nx + i] * x[nb as usize * r + cin];
                        }
                    }
                    dinv.solve(cell, &blk_in[..r], &mut blk_out[..r]);
                    x[cell * r..(cell + 1) * r].copy_from_slice(&blk_out[..r]);
                }
            }
        });
    });
}
