//! Inverted (block-)diagonal, the smoother's per-cell solve data.
//!
//! For scalar PDEs this is just `1 / a_ii`. For vector PDEs the zero-offset
//! `r × r` block is inverted per cell (block Jacobi / block Gauss–Seidel
//! convention, matching how SysPFMG-style system multigrids smooth).
//! Inverses are computed in `f64` during setup and truncated to the
//! computation precision `P` — per guideline 4 they are vector-like data
//! and never stored in FP16.

use fp16mg_fp::{Scalar, Storage};

use super::MAX_COMPONENTS;
use crate::SgDia;

/// Per-cell inverse of the diagonal block, stored row-major `r × r` per
/// cell (a single value per cell when `r == 1`).
#[derive(Clone, Debug)]
pub struct BlockDiagInv<P: Scalar> {
    r: usize,
    cells: usize,
    data: Vec<P>,
}

impl<P: Scalar> BlockDiagInv<P> {
    /// Extracts and inverts the diagonal blocks of `a` (read in `f64`).
    ///
    /// # Errors
    /// Returns the offending cell index if a diagonal block is singular
    /// or non-finite.
    pub fn from_matrix<S: Storage>(a: &SgDia<S>) -> Result<Self, usize> {
        let grid = a.grid();
        let r = grid.components;
        assert!(r <= MAX_COMPONENTS, "too many components per cell");
        let cells = grid.cells();
        let pattern = a.pattern();
        // Map (cout, cin) -> tap index for the zero-offset block.
        let mut block_taps = vec![None; r * r];
        for (t, tap) in pattern.taps().iter().enumerate() {
            if tap.is_center() {
                block_taps[tap.cout as usize * r + tap.cin as usize] = Some(t);
            }
        }
        let mut data = vec![P::ZERO; cells * r * r];
        let mut block = [0.0f64; MAX_COMPONENTS * MAX_COMPONENTS];
        for cell in 0..cells {
            for (slot, bt) in block_taps.iter().enumerate() {
                block[slot] = match bt {
                    Some(t) => a.get(cell, *t).load_f64(),
                    None => 0.0,
                };
            }
            let inv = invert_small(&mut block[..r * r], r).ok_or(cell)?;
            for (slot, v) in inv.iter().enumerate().take(r * r) {
                data[cell * r * r + slot] = P::from_f64(*v);
            }
        }
        Ok(BlockDiagInv { r, cells, data })
    }

    /// Builds from explicit `f64` inverse blocks (row-major per cell).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_inverse_blocks(r: usize, cells: usize, blocks: &[f64]) -> Self {
        assert_eq!(blocks.len(), cells * r * r, "block data length");
        BlockDiagInv { r, cells, data: blocks.iter().map(|&v| P::from_f64(v)).collect() }
    }

    /// Components per cell.
    #[inline]
    pub fn components(&self) -> usize {
        self.r
    }

    /// Number of cells.
    #[inline]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Applies the inverse of cell's diagonal block: `out = D⁻¹ rhs`.
    #[inline(always)]
    pub fn solve(&self, cell: usize, rhs: &[P], out: &mut [P]) {
        let r = self.r;
        let blk = &self.data[cell * r * r..(cell + 1) * r * r];
        if r == 1 {
            out[0] = blk[0] * rhs[0];
            return;
        }
        for i in 0..r {
            let mut acc = P::ZERO;
            for j in 0..r {
                acc = blk[i * r + j].mul_add(rhs[j], acc);
            }
            out[i] = acc;
        }
    }

    /// Scalar view (`r == 1`): the per-cell reciprocal diagonal.
    pub fn as_scalar(&self) -> Option<&[P]> {
        (self.r == 1).then_some(self.data.as_slice())
    }

    /// Raw inverse-block data.
    pub fn data(&self) -> &[P] {
        &self.data
    }
}

/// Inverts an `r × r` matrix in place via Gauss–Jordan with partial
/// pivoting; returns `None` if singular or non-finite. `r ≤ 8`.
fn invert_small(m: &mut [f64], r: usize) -> Option<[f64; MAX_COMPONENTS * MAX_COMPONENTS]> {
    let mut inv = [0.0f64; MAX_COMPONENTS * MAX_COMPONENTS];
    for i in 0..r {
        inv[i * r + i] = 1.0;
    }
    for col in 0..r {
        // Pivot.
        let mut piv = col;
        for row in col + 1..r {
            if m[row * r + col].abs() > m[piv * r + col].abs() {
                piv = row;
            }
        }
        let p = m[piv * r + col];
        if p == 0.0 || !p.is_finite() {
            return None;
        }
        if piv != col {
            for j in 0..r {
                m.swap(col * r + j, piv * r + j);
                inv.swap(col * r + j, piv * r + j);
            }
        }
        let d = 1.0 / m[col * r + col];
        for j in 0..r {
            m[col * r + j] *= d;
            inv[col * r + j] *= d;
        }
        for row in 0..r {
            if row == col {
                continue;
            }
            let f = m[row * r + col];
            if f == 0.0 {
                continue;
            }
            for j in 0..r {
                m[row * r + j] -= f * m[col * r + j];
                inv[row * r + j] -= f * inv[col * r + j];
            }
        }
    }
    if inv[..r * r].iter().all(|v| v.is_finite()) {
        Some(inv)
    } else {
        None
    }
}
