//! Mixed-precision structured kernels.
//!
//! Every kernel reads matrix entries in the storage precision `S` and
//! widens them to the computation precision `P` *in registers* — the
//! "recover on the fly" of §4.2: no FP32 copy of the matrix is ever
//! materialized, so the memory volume stays at `S::BYTES` per entry.
//!
//! Three implementation tiers reproduce the Fig. 7 ablation:
//!
//! * **generic** — scalar loop, one convert per entry. On AOS data this is
//!   the paper's *naive* mixed-precision kernel whose convert overhead
//!   eats the bandwidth win.
//! * **SIMD** — SOA data, 8-wide F16C conversion + FMA
//!   ([`spmv`]/[`residual`] dispatch to it automatically for
//!   `S = F16, P = f32`, scalar problems, SOA layout on capable CPUs);
//!   an AVX2 path covers the full-FP32 baseline so the comparison is
//!   apples-to-apples.
//! * **staged** — for the inherently sequential triangular solves
//!   ([`sptrsv`]), each x-line of coefficients is bulk-converted into a
//!   small stack scratch first, amortizing the convert exactly like the
//!   paper's SpTRSV treatment, then the recurrence runs in scalar f32.

mod diag;
mod gs;
mod scratch;
mod spmv;
mod sptrsv;

pub use diag::BlockDiagInv;
pub use gs::{gs_backward, gs_forward};
pub(crate) use scratch::{with_bufs, with_idx2, with_idx4, with_tap_metas};
pub use spmv::{residual, spmv, spmv_axpy};
pub use sptrsv::{sptrsv_backward, sptrsv_forward, sptrsv_forward_wavefront};

pub use crate::par::Par;
use fp16mg_grid::Grid3;
use fp16mg_stencil::Pattern;

/// Per-tap metadata resolved once per kernel invocation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TapMeta {
    /// Signed cell-index delta of the tap's spatial offset.
    pub cell_stride: i64,
    /// Output (row) component.
    pub cout: usize,
    /// Input (column) component.
    pub cin: usize,
    /// True for taps in the zero-offset (diagonal) block.
    pub center: bool,
    /// True for the exact scalar diagonal (center && cin == cout).
    pub diagonal: bool,
    /// True when the tap stays within an x-line (`dy == dz == 0`): these
    /// taps form the sequential dependency chain of line-based sweeps;
    /// all other taps can be bulk-accumulated.
    pub in_line: bool,
}

/// Resolves the pattern's taps into `out` (cleared first). Kernels call
/// this through [`scratch::with_tap_metas`], which supplies a pooled
/// per-thread vector so steady-state invocations allocate nothing.
pub(crate) fn fill_tap_metas(grid: &Grid3, pattern: &Pattern, out: &mut Vec<TapMeta>) {
    out.clear();
    out.extend(pattern.taps().iter().map(|t| TapMeta {
        cell_stride: grid.stride(t.dx, t.dy, t.dz),
        cout: t.cout as usize,
        cin: t.cin as usize,
        center: t.is_center(),
        diagonal: t.is_diagonal(),
        in_line: t.dy == 0 && t.dz == 0,
    }));
}

/// Casts a slice to a concrete element type when the generic parameter is
/// exactly that type (poor man's specialization for kernel dispatch).
#[inline]
pub(crate) fn cast_slice<A: 'static, B: 'static>(s: &[A]) -> Option<&[B]> {
    if core::any::TypeId::of::<A>() == core::any::TypeId::of::<B>() {
        // SAFETY: A and B are the same type, so layout and validity match.
        Some(unsafe { core::slice::from_raw_parts(s.as_ptr() as *const B, s.len()) })
    } else {
        None
    }
}

/// Mutable variant of [`cast_slice`].
#[inline]
pub(crate) fn cast_slice_mut<A: 'static, B: 'static>(s: &mut [A]) -> Option<&mut [B]> {
    if core::any::TypeId::of::<A>() == core::any::TypeId::of::<B>() {
        // SAFETY: A and B are the same type, so layout and validity match.
        Some(unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut B, s.len()) })
    } else {
        None
    }
}

/// Maximum supported components per cell in the fixed-size accumulators.
pub(crate) const MAX_COMPONENTS: usize = 8;

/// Interior cell range `[lo, hi)` in which every tap's neighbor cell index
/// stays inside `[0, cells)`. Outside it, per-entry bounds checks are
/// required; inside it, wrapped neighbors are possible at x/y faces but
/// their coefficients are stored as exact zeros, so unchecked reads are
/// numerically inert.
pub(crate) fn interior_range(cells: usize, metas: &[TapMeta]) -> (usize, usize) {
    let mut maxneg: i64 = 0;
    let mut maxpos: i64 = 0;
    for m in metas {
        maxneg = maxneg.max(-m.cell_stride);
        maxpos = maxpos.max(m.cell_stride);
    }
    let lo = (maxneg.max(0) as usize).min(cells);
    let hi = cells.saturating_sub(maxpos.max(0) as usize).max(lo);
    (lo, hi)
}

/// True when the AVX2+FMA+F16C SIMD paths are usable on this CPU.
#[inline]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
                && std::arch::is_x86_feature_detected!("f16c")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Widens one contiguous segment of stored values into the computation
/// precision, choosing the fastest available path: SIMD F16C for
/// `F16 → f32`, `memcpy` when the types coincide, per-element conversion
/// otherwise. This is the staging primitive of the optimized triangular
/// solves and smoother sweeps (§5.1's conversion amortization).
#[inline]
pub fn widen_line<S: fp16mg_fp::Storage, P: fp16mg_fp::Scalar>(src: &[S], dst: &mut [P]) {
    use fp16mg_fp::{simd, F16};
    assert_eq!(src.len(), dst.len(), "widen_line length mismatch");
    if let (Some(s16), Some(d32)) = (cast_slice::<S, F16>(src), cast_slice_mut::<P, f32>(dst)) {
        simd::widen_f16(s16, d32);
        return;
    }
    if let Some(same) = cast_slice::<S, P>(src) {
        dst.copy_from_slice(same);
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = P::from_f64(s.load_f64());
    }
}

/// `acc[i] -= coeff[i] * x[xbase + i]` over the valid sub-range of a line
/// (`0 <= xbase + i < cells`). No loop-carried dependence: the compiler
/// auto-vectorizes this, which is what makes the bulk-accumulation phase
/// of the line-based sweeps bandwidth-bound rather than latency-bound.
#[inline]
pub(crate) fn line_bulk_sub<P: fp16mg_fp::Scalar>(
    acc: &mut [P],
    coeff: &[P],
    x: &[P],
    xbase: i64,
    cells: usize,
) {
    let nx = acc.len() as i64;
    let lo = (-xbase).clamp(0, nx) as usize;
    let hi = (cells as i64 - xbase).clamp(lo as i64, nx) as usize;
    if lo >= hi {
        return;
    }
    let xs = &x[(xbase + lo as i64) as usize..][..hi - lo];
    for ((a, &c), &xv) in acc[lo..hi].iter_mut().zip(&coeff[lo..hi]).zip(xs) {
        *a -= c * xv;
    }
}
