//! Sparse matrix–vector product and residual kernels.

use fp16mg_fp::{Scalar, Storage, F16};

use super::{
    cast_slice, cast_slice_mut, interior_range, widen_line, with_bufs, with_tap_metas, Par,
    TapMeta, MAX_COMPONENTS,
};
use crate::{Layout, SgDia};

/// `y = A x`.
///
/// Dispatches to the SIMD SOA kernel when the matrix is scalar, SOA, and
/// the storage/compute pair is `(F16, f32)` or `(f32, f32)` on a capable
/// CPU; otherwise runs the generic scalar kernel (the "naive" variant).
///
/// # Panics
/// Panics on dimension mismatch or more than 8 components.
pub fn spmv<S: Storage, P: Scalar>(a: &SgDia<S>, x: &[P], y: &mut [P], par: Par) {
    apply(a, None, x, y, par, Mode::Overwrite);
}

/// `r = b - A x` (the residual of Algorithm 3 lines 7/9, unscaled form).
///
/// # Panics
/// Panics on dimension mismatch or more than 8 components.
pub fn residual<S: Storage, P: Scalar>(a: &SgDia<S>, b: &[P], x: &[P], r: &mut [P], par: Par) {
    apply(a, Some(b), x, r, par, Mode::ResidualFrom);
}

/// `y += A x`.
///
/// # Panics
/// Panics on dimension mismatch or more than 8 components.
pub fn spmv_axpy<S: Storage, P: Scalar>(a: &SgDia<S>, x: &[P], y: &mut [P], par: Par) {
    apply(a, None, x, y, par, Mode::Accumulate);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `y = A x` (overwrite).
    Overwrite,
    /// `y = b - A x` (overwrite with residual).
    ResidualFrom,
    /// `y += A x` (accumulate).
    Accumulate,
}

fn apply<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    b: Option<&[P]>,
    x: &[P],
    y: &mut [P],
    par: Par,
    mode: Mode,
) {
    let cells = a.grid().cells();
    let r = a.grid().components;
    assert!(r <= MAX_COMPONENTS, "too many components per cell");
    assert_eq!(x.len(), cells * r, "x length");
    assert_eq!(y.len(), cells * r, "y length");
    if let Some(b) = b {
        assert_eq!(b.len(), cells * r, "b length");
    }
    let nthreads = par.threads();
    let chunk_cells = if nthreads == 1 || cells < 4096 { cells } else { cells.div_ceil(nthreads) };

    // Each parallel task owns a disjoint &mut window of y covering
    // `chunk_cells` cells; x and b stay shared. The meta table is rented
    // from the calling thread's pool; worker closures only read it.
    with_tap_metas(a.grid(), a.pattern(), |metas| {
        crate::par::for_each_chunk_mut(y, chunk_cells * r, |p, ychunk| {
            let base = p * chunk_cells;
            let range = base..(base + ychunk.len() / r);
            run_range(a, b, x, ychunk, metas, range, base, mode);
        });
    });
}

/// Executes one cell range, dispatching to the SIMD path when possible.
/// `ychunk` covers exactly the cells of `range`; `base == range.start`.
#[allow(clippy::too_many_arguments)] // internal dispatch: full kernel context
fn run_range<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    b: Option<&[P]>,
    x: &[P],
    ychunk: &mut [P],
    metas: &[TapMeta],
    range: core::ops::Range<usize>,
    base: usize,
    mode: Mode,
) {
    #[cfg(target_arch = "x86_64")]
    if a.grid().components == 1
        && a.layout() == Layout::Soa
        && mode != Mode::Accumulate
        && super::simd_available()
    {
        if let (Some(x32), Some(y32)) = (cast_slice::<P, f32>(x), cast_slice_mut::<P, f32>(ychunk))
        {
            let b32 = b.and_then(cast_slice::<P, f32>);
            if let Some(d16) = cast_slice::<S, F16>(a.data()) {
                // SAFETY: CPU support checked by simd_available().
                unsafe { simd_f16_range(a.grid().cells(), metas, d16, b32, x32, y32, range, base) };
                return;
            }
            if let Some(d32) = cast_slice::<S, f32>(a.data()) {
                // SAFETY: CPU support checked by simd_available().
                unsafe { simd_f32_range(a.grid().cells(), metas, d32, b32, x32, y32, range, base) };
                return;
            }
        }
        // f64 computation on f64 storage (the Full64 baseline): same SIMD
        // structure, 4 lanes.
        if let (Some(x64), Some(y64)) = (cast_slice::<P, f64>(x), cast_slice_mut::<P, f64>(ychunk))
        {
            let b64 = b.and_then(cast_slice::<P, f64>);
            if let Some(d64) = cast_slice::<S, f64>(a.data()) {
                // SAFETY: CPU support checked by simd_available().
                unsafe { simd_f64_range(a.grid().cells(), metas, d64, b64, x64, y64, range, base) };
                return;
            }
        }
    }
    // The paper's *naive* mixed-precision kernel: AOS FP16 with one scalar
    // hardware convert per entry (Fig. 4 left). Without this path the
    // soft-float fallback would exaggerate the conversion overhead.
    #[cfg(target_arch = "x86_64")]
    if a.grid().components == 1
        && a.layout() == Layout::Aos
        && mode != Mode::Accumulate
        && super::simd_available()
    {
        if let (Some(x32), Some(y32)) = (cast_slice::<P, f32>(x), cast_slice_mut::<P, f32>(ychunk))
        {
            let b32 = b.and_then(cast_slice::<P, f32>);
            if let Some(d16) = cast_slice::<S, F16>(a.data()) {
                // SAFETY: CPU support checked by simd_available().
                unsafe {
                    naive_f16_aos_range(a.grid().cells(), metas, d16, b32, x32, y32, range, base)
                };
                return;
            }
        }
    }
    // Staged SOA fallback for every remaining storage/compute/component
    // combination: per-line bulk widening (§5.1 amortization) plus
    // branch-free tap loops. Covers BF16, mixed f32-storage/f64-compute,
    // and vector PDEs, whose per-entry soft-float conversion would
    // otherwise dominate.
    if a.layout() == Layout::Soa {
        staged_range(a, b, x, ychunk, metas, range, base, mode);
        return;
    }
    generic_range(a, b, x, ychunk, metas, range, base, mode);
}

/// Staged SOA kernel: processes each x-line intersecting the range by
/// bulk-widening the needed coefficient segments into a scratch buffer,
/// then accumulating tap by tap over index-valid sub-spans.
#[allow(clippy::too_many_arguments)]
fn staged_range<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    b: Option<&[P]>,
    x: &[P],
    ychunk: &mut [P],
    metas: &[TapMeta],
    range: core::ops::Range<usize>,
    base: usize,
    mode: Mode,
) {
    let grid = a.grid();
    let cells = grid.cells();
    let nx = grid.nx;
    let r = grid.components;
    let taps = metas.len();
    let data = a.data();
    with_bufs::<P, _>(|bufs| {
        let (scratch, acc) = bufs.zeroed2(taps * nx, nx * r);

        let mut c = range.start;
        while c < range.end {
            let line = c / nx;
            let i0 = c - line * nx;
            let i1 = (range.end - line * nx).min(nx);
            let lbase = line * nx;
            let span = i1 - i0;
            for t in 0..taps {
                widen_line(
                    &data[t * cells + lbase + i0..t * cells + lbase + i1],
                    &mut scratch[t * nx..t * nx + span],
                );
            }
            acc[..span * r].fill(P::ZERO);
            for (t, m) in metas.iter().enumerate() {
                // Valid i within [i0, i1): 0 <= lbase + i + cstride < cells.
                let xoff = lbase as i64 + m.cell_stride;
                let lo = ((-xoff).max(i0 as i64) as usize).max(i0);
                let hi = (((cells as i64 - xoff).min(i1 as i64)).max(lo as i64)) as usize;
                let (cout, cin) = (m.cout, m.cin);
                for i in lo..hi {
                    let xv = x[(xoff + i as i64) as usize * r + cin];
                    let av = scratch[t * nx + (i - i0)];
                    acc[(i - i0) * r + cout] = av.mul_add(xv, acc[(i - i0) * r + cout]);
                }
            }
            let out0 = (lbase + i0 - base) * r;
            match mode {
                Mode::Overwrite => {
                    ychunk[out0..out0 + span * r].copy_from_slice(&acc[..span * r]);
                }
                Mode::Accumulate => {
                    for (y, &v) in ychunk[out0..out0 + span * r].iter_mut().zip(&acc[..span * r]) {
                        *y += v;
                    }
                }
                Mode::ResidualFrom => {
                    // Callers pass Some(b) whenever mode == Residual (internal API).
                    let bb = b.expect("residual mode requires b");
                    let b0 = (lbase + i0) * r;
                    for (k, y) in ychunk[out0..out0 + span * r].iter_mut().enumerate() {
                        *y = bb[b0 + k] - acc[k];
                    }
                }
            }
            c = lbase + i1;
        }
    });
}

/// Naive AOS FP16 kernel: one `vcvtph2ps` scalar conversion per entry —
/// the "Scalar instruction for AOS" column of the paper's Fig. 4, whose
/// per-entry convert overhead is what the SOA transformation amortizes.
///
/// # Safety
/// Caller must guarantee F16C support; `ychunk` covers the cells of
/// `range` starting at `base`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn naive_f16_aos_range(
    cells: usize,
    metas: &[TapMeta],
    data: &[F16],
    b: Option<&[f32]>,
    x: &[f32],
    ychunk: &mut [f32],
    range: core::ops::Range<usize>,
    base: usize,
) {
    use core::arch::x86_64::*;
    let ntaps = metas.len();
    #[inline(always)]
    unsafe fn cvt1(h: u16) -> f32 {
        // ldr + fcvt: one scalar hardware conversion.
        _mm_cvtss_f32(_mm_cvtph_ps(_mm_cvtsi32_si128(h as i32)))
    }
    for cell in range {
        let row = &data[cell * ntaps..(cell + 1) * ntaps];
        let mut acc = 0.0f32;
        for (t, m) in metas.iter().enumerate() {
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            let av = cvt1(row[t].to_bits());
            acc = av.mul_add(x[nb as usize], acc);
        }
        ychunk[cell - base] = match b {
            Some(bb) => bb[cell] - acc,
            None => acc,
        };
    }
}

/// SIMD kernel over FP64 SOA data (4 lanes): keeps the Full64 baseline on
/// the same code quality as the mixed-precision kernels.
///
/// # Safety
/// Caller must guarantee AVX2+FMA support; `ychunk` covers the cells of
/// `range` starting at `base == range.start`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn simd_f64_range(
    cells: usize,
    metas: &[TapMeta],
    data: &[f64],
    b: Option<&[f64]>,
    x: &[f64],
    ychunk: &mut [f64],
    range: core::ops::Range<usize>,
    base: usize,
) {
    use core::arch::x86_64::*;
    let (ilo, ihi) = interior_range(cells, metas);
    let lo = range.start.max(ilo).min(range.end);
    let hi = range.end.min(ihi).max(lo);

    scalar_f64_edge(cells, metas, data, b, x, ychunk, range.start..lo, base);
    let dp = data.as_ptr();
    let xp = x.as_ptr();
    let yp = ychunk.as_mut_ptr();
    let mut c = lo;
    match b {
        Some(bb) => {
            let bp = bb.as_ptr();
            while c + 4 <= hi {
                let mut acc = _mm256_loadu_pd(bp.add(c));
                for (t, m) in metas.iter().enumerate() {
                    let av = _mm256_loadu_pd(dp.add(t * cells + c));
                    let xv = _mm256_loadu_pd(xp.offset(c as isize + m.cell_stride as isize));
                    acc = _mm256_fnmadd_pd(av, xv, acc);
                }
                _mm256_storeu_pd(yp.add(c - base), acc);
                c += 4;
            }
        }
        None => {
            while c + 4 <= hi {
                let mut acc = _mm256_setzero_pd();
                for (t, m) in metas.iter().enumerate() {
                    let av = _mm256_loadu_pd(dp.add(t * cells + c));
                    let xv = _mm256_loadu_pd(xp.offset(c as isize + m.cell_stride as isize));
                    acc = _mm256_fmadd_pd(av, xv, acc);
                }
                _mm256_storeu_pd(yp.add(c - base), acc);
                c += 4;
            }
        }
    }
    scalar_f64_edge(cells, metas, data, b, x, ychunk, c..range.end, base);
}

/// Scalar edge handler shared by the SIMD FP64 kernel.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn scalar_f64_edge(
    cells: usize,
    metas: &[TapMeta],
    data: &[f64],
    b: Option<&[f64]>,
    x: &[f64],
    ychunk: &mut [f64],
    range: core::ops::Range<usize>,
    base: usize,
) {
    for cell in range {
        let mut acc = 0.0f64;
        for (t, m) in metas.iter().enumerate() {
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            acc = data[t * cells + cell].mul_add(x[nb as usize], acc);
        }
        ychunk[cell - base] = match b {
            Some(bb) => bb[cell] - acc,
            None => acc,
        };
    }
}

/// Scalar reference kernel: any layout, any component count, per-entry
/// conversion and bounds checks. On AOS FP16 data this is the paper's
/// "naive" mixed-precision kernel.
#[allow(clippy::too_many_arguments)]
fn generic_range<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    b: Option<&[P]>,
    x: &[P],
    ychunk: &mut [P],
    metas: &[TapMeta],
    range: core::ops::Range<usize>,
    base: usize,
    mode: Mode,
) {
    let cells = a.grid().cells();
    let r = a.grid().components;
    let mut acc = [P::ZERO; MAX_COMPONENTS];
    for cell in range {
        acc[..r].fill(P::ZERO);
        for (t, m) in metas.iter().enumerate() {
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            let av = P::from_f64(a.get(cell, t).load_f64());
            acc[m.cout] = av.mul_add(x[nb as usize * r + m.cin], acc[m.cout]);
        }
        let out = (cell - base) * r;
        match mode {
            Mode::Overwrite => ychunk[out..out + r].copy_from_slice(&acc[..r]),
            Mode::Accumulate => {
                for c in 0..r {
                    ychunk[out + c] += acc[c];
                }
            }
            Mode::ResidualFrom => {
                // Callers pass Some(b) whenever mode == Residual (internal API).
                let b = b.expect("residual mode requires b");
                for c in 0..r {
                    ychunk[out + c] = b[cell * r + c] - acc[c];
                }
            }
        }
    }
}

/// SIMD kernel over FP16 SOA data: 8 cells per iteration, one `vcvtph2ps`
/// per tap per 8 cells (§5.1). `b = Some` computes the residual.
///
/// # Safety
/// Caller must guarantee AVX2+FMA+F16C support; `ychunk` must cover the
/// cells of `range` starting at `base == range.start`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
#[allow(clippy::too_many_arguments)]
unsafe fn simd_f16_range(
    cells: usize,
    metas: &[TapMeta],
    data: &[F16],
    b: Option<&[f32]>,
    x: &[f32],
    ychunk: &mut [f32],
    range: core::ops::Range<usize>,
    base: usize,
) {
    use core::arch::x86_64::*;
    let (ilo, ihi) = interior_range(cells, metas);
    let lo = range.start.max(ilo).min(range.end);
    let hi = range.end.min(ihi).max(lo);

    scalar_f16_edge(cells, metas, data, b, x, ychunk, range.start..lo, base);
    let dp = data.as_ptr() as *const u16;
    let xp = x.as_ptr();
    let yp = ychunk.as_mut_ptr();
    let mut c = lo;
    match b {
        Some(bb) => {
            let bp = bb.as_ptr();
            while c + 8 <= hi {
                let mut acc = _mm256_loadu_ps(bp.add(c));
                for (t, m) in metas.iter().enumerate() {
                    let h = _mm_loadu_si128(dp.add(t * cells + c) as *const __m128i);
                    let av = _mm256_cvtph_ps(h);
                    let xv = _mm256_loadu_ps(xp.offset(c as isize + m.cell_stride as isize));
                    acc = _mm256_fnmadd_ps(av, xv, acc);
                }
                _mm256_storeu_ps(yp.add(c - base), acc);
                c += 8;
            }
        }
        None => {
            while c + 8 <= hi {
                let mut acc = _mm256_setzero_ps();
                for (t, m) in metas.iter().enumerate() {
                    let h = _mm_loadu_si128(dp.add(t * cells + c) as *const __m128i);
                    let av = _mm256_cvtph_ps(h);
                    let xv = _mm256_loadu_ps(xp.offset(c as isize + m.cell_stride as isize));
                    acc = _mm256_fmadd_ps(av, xv, acc);
                }
                _mm256_storeu_ps(yp.add(c - base), acc);
                c += 8;
            }
        }
    }
    scalar_f16_edge(cells, metas, data, b, x, ychunk, c..range.end, base);
}

/// Scalar edge handler shared by the SIMD FP16 kernel.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn scalar_f16_edge(
    cells: usize,
    metas: &[TapMeta],
    data: &[F16],
    b: Option<&[f32]>,
    x: &[f32],
    ychunk: &mut [f32],
    range: core::ops::Range<usize>,
    base: usize,
) {
    for cell in range {
        let mut acc = 0.0f32;
        for (t, m) in metas.iter().enumerate() {
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            acc = data[t * cells + cell].to_f32().mul_add(x[nb as usize], acc);
        }
        ychunk[cell - base] = match b {
            Some(bb) => bb[cell] - acc,
            None => acc,
        };
    }
}

/// SIMD kernel over FP32 SOA data (the full-FP32 baseline of Fig. 7,
/// sharing structure with the FP16 kernel so only the conversion differs).
///
/// # Safety
/// Caller must guarantee AVX2+FMA support; `ychunk` must cover the cells
/// of `range` starting at `base == range.start`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn simd_f32_range(
    cells: usize,
    metas: &[TapMeta],
    data: &[f32],
    b: Option<&[f32]>,
    x: &[f32],
    ychunk: &mut [f32],
    range: core::ops::Range<usize>,
    base: usize,
) {
    use core::arch::x86_64::*;
    let (ilo, ihi) = interior_range(cells, metas);
    let lo = range.start.max(ilo).min(range.end);
    let hi = range.end.min(ihi).max(lo);

    scalar_f32_edge(cells, metas, data, b, x, ychunk, range.start..lo, base);
    let dp = data.as_ptr();
    let xp = x.as_ptr();
    let yp = ychunk.as_mut_ptr();
    let mut c = lo;
    match b {
        Some(bb) => {
            let bp = bb.as_ptr();
            while c + 8 <= hi {
                let mut acc = _mm256_loadu_ps(bp.add(c));
                for (t, m) in metas.iter().enumerate() {
                    let av = _mm256_loadu_ps(dp.add(t * cells + c));
                    let xv = _mm256_loadu_ps(xp.offset(c as isize + m.cell_stride as isize));
                    acc = _mm256_fnmadd_ps(av, xv, acc);
                }
                _mm256_storeu_ps(yp.add(c - base), acc);
                c += 8;
            }
        }
        None => {
            while c + 8 <= hi {
                let mut acc = _mm256_setzero_ps();
                for (t, m) in metas.iter().enumerate() {
                    let av = _mm256_loadu_ps(dp.add(t * cells + c));
                    let xv = _mm256_loadu_ps(xp.offset(c as isize + m.cell_stride as isize));
                    acc = _mm256_fmadd_ps(av, xv, acc);
                }
                _mm256_storeu_ps(yp.add(c - base), acc);
                c += 8;
            }
        }
    }
    scalar_f32_edge(cells, metas, data, b, x, ychunk, c..range.end, base);
}

/// Scalar edge handler shared by the SIMD FP32 kernel.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn scalar_f32_edge(
    cells: usize,
    metas: &[TapMeta],
    data: &[f32],
    b: Option<&[f32]>,
    x: &[f32],
    ychunk: &mut [f32],
    range: core::ops::Range<usize>,
    base: usize,
) {
    for cell in range {
        let mut acc = 0.0f32;
        for (t, m) in metas.iter().enumerate() {
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            acc = data[t * cells + cell].mul_add(x[nb as usize], acc);
        }
        ychunk[cell - base] = match b {
            Some(bb) => bb[cell] - acc,
            None => acc,
        };
    }
}
