//! Sparse triangular solves on triangular SG-DIA matrices.
//!
//! The matrix must carry a triangular pattern *including* the diagonal
//! block — e.g. the paper's 3d4/3d10/3d14 lower patterns
//! ([`fp16mg_stencil::Pattern::lower_with_diag`]) for the forward solve,
//! or their transposes for the backward solve.
//!
//! Implementations mirror Fig. 7:
//! * the **staged** solve on scalar SOA data, which bulk-converts each
//!   x-line of coefficients before running the recurrence (SIMD F16C for
//!   FP16 — the optimized kernel; `memcpy` staging keeps the FP32
//!   baseline on the same code quality);
//! * the **naive** AOS FP16 solve with one scalar hardware convert per
//!   entry (the variant whose conversion overhead degrades throughput);
//! * the **generic** per-entry solve for vector PDEs and odd layouts;
//! * the **wavefront** solve, which parallelizes across `i+j+k`
//!   hyperplanes (the "sophisticated parallel strategy" of §5.1).

use fp16mg_fp::{Scalar, Storage, F16};
use fp16mg_grid::{Grid3, Wavefronts};

use super::{
    cast_slice, cast_slice_mut, widen_line, with_bufs, with_idx2, with_tap_metas, Par, TapMeta,
    MAX_COMPONENTS,
};
use crate::{Layout, SgDia};

/// Solves `L x = b` with `L` lower triangular (taps with row-major sign
/// ≤ 0). Cells are visited in increasing order.
///
/// # Panics
/// Panics on dimension mismatch, an upper tap in the pattern, or a
/// singular diagonal.
pub fn sptrsv_forward<S: Storage, P: Scalar>(l: &SgDia<S>, b: &[P], x: &mut [P]) {
    assert!(
        l.pattern().taps().iter().all(|t| t.spatial_sign() <= 0),
        "sptrsv_forward requires a lower-triangular pattern"
    );
    solve(l, b, x, false);
}

/// Solves `U x = b` with `U` upper triangular (taps with row-major sign
/// ≥ 0). Cells are visited in decreasing order.
///
/// # Panics
/// Panics on dimension mismatch, a lower tap in the pattern, or a
/// singular diagonal.
pub fn sptrsv_backward<S: Storage, P: Scalar>(u: &SgDia<S>, b: &[P], x: &mut [P]) {
    assert!(
        u.pattern().taps().iter().all(|t| t.spatial_sign() >= 0),
        "sptrsv_backward requires an upper-triangular pattern"
    );
    solve(u, b, x, true);
}

fn solve<S: Storage, P: Scalar>(a: &SgDia<S>, b: &[P], x: &mut [P], backward: bool) {
    let grid = a.grid();
    let cells = grid.cells();
    let r = grid.components;
    assert!(r <= MAX_COMPONENTS, "too many components per cell");
    assert_eq!(b.len(), cells * r, "b length");
    assert_eq!(x.len(), cells * r, "x length");
    with_tap_metas(grid, a.pattern(), |metas| {
        if r == 1 {
            if a.layout() == Layout::Soa {
                solve_staged(grid, metas, a.data(), b, x, backward);
                return;
            }
            // Naive AOS FP16: scalar hardware convert per entry.
            #[cfg(target_arch = "x86_64")]
            if super::simd_available() {
                if let (Some(d16), Some(b32), Some(x32)) = (
                    cast_slice::<S, F16>(a.data()),
                    cast_slice::<P, f32>(b),
                    cast_slice_mut::<P, f32>(x),
                ) {
                    // SAFETY: CPU support checked by simd_available().
                    unsafe { solve_naive_f16_aos(cells, metas, d16, b32, x32, backward) };
                    return;
                }
            }
        }
        solve_generic(a, metas, b, x, backward);
    });
}

/// Generic per-entry triangular solve; block cells solved with a small
/// dense solve over the component couplings of the diagonal block.
fn solve_generic<S: Storage, P: Scalar>(
    a: &SgDia<S>,
    metas: &[TapMeta],
    b: &[P],
    x: &mut [P],
    backward: bool,
) {
    let cells = a.grid().cells();
    let r = a.grid().components;
    let mut acc = [P::ZERO; MAX_COMPONENTS];
    let mut diag = [[P::ZERO; MAX_COMPONENTS]; MAX_COMPONENTS];
    for step in 0..cells {
        let cell = if backward { cells - 1 - step } else { step };
        for c in 0..r {
            acc[c] = b[cell * r + c];
        }
        for row in diag.iter_mut().take(r) {
            row[..r].fill(P::ZERO);
        }
        for (t, m) in metas.iter().enumerate() {
            let av = P::from_f64(a.get(cell, t).load_f64());
            if m.center {
                diag[m.cout][m.cin] = av;
                continue;
            }
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            acc[m.cout] = (-av).mul_add(x[nb as usize * r + m.cin], acc[m.cout]);
        }
        solve_block(&diag, &mut acc, r);
        x[cell * r..cell * r + r].copy_from_slice(&acc[..r]);
    }
}

/// Solves the cell's dense `r × r` diagonal block in place by Gaussian
/// elimination without pivoting (diagonally dominant blocks in practice;
/// scalar case is a single divide). Zero pivots are debug-asserted only:
/// release builds produce non-finite output for the solve-level guard.
#[allow(clippy::needless_range_loop)] // index form mirrors the elimination
fn solve_block<P: Scalar>(
    diag: &[[P; MAX_COMPONENTS]; MAX_COMPONENTS],
    rhs: &mut [P; MAX_COMPONENTS],
    r: usize,
) {
    if r == 1 {
        // Zero diagonals are rejected with typed errors at setup
        // (BlockDiagInv / ilu0); in release the division yields ±∞/NaN,
        // which the hierarchy's finiteness guard detects and recovers
        // from — cheaper and more survivable than a hot-loop panic.
        debug_assert!(diag[0][0] != P::ZERO, "singular diagonal");
        rhs[0] = rhs[0] / diag[0][0];
        return;
    }
    let mut m = *diag;
    for col in 0..r {
        let p = m[col][col];
        debug_assert!(p != P::ZERO, "singular diagonal block");
        for row in col + 1..r {
            let f = m[row][col] / p;
            if f == P::ZERO {
                continue;
            }
            for j in col..r {
                let v = m[col][j];
                m[row][j] -= f * v;
            }
            let v = rhs[col];
            rhs[row] -= f * v;
        }
    }
    for col in (0..r).rev() {
        let mut v = rhs[col];
        for j in col + 1..r {
            v -= m[col][j] * rhs[j];
        }
        rhs[col] = v / m[col][col];
    }
}

/// Staged scalar SOA solve: per x-line bulk conversion, vectorized bulk
/// accumulation of the off-line couplings (whose sources are fully
/// solved lines), reciprocal staging of the diagonal, then a short scalar
/// recurrence over the within-line tap — the dependency chain shrinks to
/// one multiply-subtract plus one multiply per cell.
fn solve_staged<S: Storage, P: Scalar>(
    grid: &Grid3,
    metas: &[TapMeta],
    data: &[S],
    b: &[P],
    x: &mut [P],
    backward: bool,
) {
    let cells = grid.cells();
    let nx = grid.nx;
    let nlines = cells / nx;
    let taps = metas.len();
    with_bufs::<P, _>(|bufs| {
        let (scratch, acc, rinv) = bufs.zeroed3(taps * nx, nx, nx);
        let mut dtap = usize::MAX;
        for (t, m) in metas.iter().enumerate() {
            if m.diagonal {
                dtap = t;
            }
        }
        assert!(dtap != usize::MAX, "triangular pattern lacks a diagonal tap");
        with_idx2(|bulk, rec| {
            for (t, m) in metas.iter().enumerate() {
                if t == dtap {
                    continue;
                }
                if m.in_line {
                    rec.push((t, m.cell_stride));
                } else {
                    bulk.push((t, m.cell_stride));
                }
            }

            for lstep in 0..nlines {
                let line = if backward { nlines - 1 - lstep } else { lstep };
                let lbase = line * nx;
                for t in 0..taps {
                    widen_line(
                        &data[t * cells + lbase..t * cells + lbase + nx],
                        &mut scratch[t * nx..(t + 1) * nx],
                    );
                }
                acc.copy_from_slice(&b[lbase..lbase + nx]);
                for &(t, stride) in bulk.iter() {
                    super::line_bulk_sub(
                        &mut acc[..],
                        &scratch[t * nx..(t + 1) * nx],
                        x,
                        lbase as i64 + stride,
                        cells,
                    );
                }
                for (ri, &d) in rinv.iter_mut().zip(&scratch[dtap * nx..(dtap + 1) * nx]) {
                    debug_assert!(d != P::ZERO, "singular diagonal");
                    *ri = P::ONE / d;
                }
                // Single within-line tap (always true for radius-1 patterns):
                // fuse into `x[i] = fma(d[i], x[i±1], c[i])` — one fma of latency
                // per cell on the dependency chain.
                if rec.len() == 1 {
                    let (t, cstride) = rec[0];
                    for i in 0..nx {
                        acc[i] *= rinv[i];
                        let idx = t * nx + i;
                        scratch[idx] = -(scratch[idx] * rinv[i]);
                    }
                    if backward {
                        for i in (0..nx).rev() {
                            let cell = lbase + i;
                            let nb = cell as i64 + cstride;
                            let prev =
                                if nb < cells as i64 && nb >= 0 { x[nb as usize] } else { P::ZERO };
                            x[cell] = scratch[t * nx + i].mul_add(prev, acc[i]);
                        }
                    } else {
                        for i in 0..nx {
                            let cell = lbase + i;
                            let nb = cell as i64 + cstride;
                            let prev = if nb >= 0 { x[nb as usize] } else { P::ZERO };
                            x[cell] = scratch[t * nx + i].mul_add(prev, acc[i]);
                        }
                    }
                    continue;
                }
                if backward {
                    for i in (0..nx).rev() {
                        let cell = lbase + i;
                        let mut v = acc[i];
                        for &(t, stride) in rec.iter() {
                            let nb = cell as i64 + stride;
                            if nb < cells as i64 && nb >= 0 {
                                v -= scratch[t * nx + i] * x[nb as usize];
                            }
                        }
                        x[cell] = v * rinv[i];
                    }
                } else {
                    for i in 0..nx {
                        let cell = lbase + i;
                        let mut v = acc[i];
                        for &(t, stride) in rec.iter() {
                            let nb = cell as i64 + stride;
                            if nb >= 0 && nb < cells as i64 {
                                v -= scratch[t * nx + i] * x[nb as usize];
                            }
                        }
                        x[cell] = v * rinv[i];
                    }
                }
            }
        });
    });
}

/// Naive AOS FP16 solve: one scalar `vcvtph2ps` per entry (Fig. 4 left).
///
/// # Safety
/// Caller must guarantee F16C support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c,fma")]
unsafe fn solve_naive_f16_aos(
    cells: usize,
    metas: &[TapMeta],
    data: &[F16],
    b: &[f32],
    x: &mut [f32],
    backward: bool,
) {
    use core::arch::x86_64::*;
    #[inline(always)]
    unsafe fn cvt1(h: u16) -> f32 {
        _mm_cvtss_f32(_mm_cvtph_ps(_mm_cvtsi32_si128(h as i32)))
    }
    let ntaps = metas.len();
    for step in 0..cells {
        let cell = if backward { cells - 1 - step } else { step };
        let row = &data[cell * ntaps..(cell + 1) * ntaps];
        let mut acc = b[cell];
        let mut diag = 0.0f32;
        for (t, m) in metas.iter().enumerate() {
            let av = cvt1(row[t].to_bits());
            if m.diagonal {
                diag = av;
                continue;
            }
            let nb = cell as i64 + m.cell_stride;
            if nb < 0 || nb >= cells as i64 {
                continue;
            }
            acc = (-av).mul_add(x[nb as usize], acc);
        }
        // Non-finite on zero diagonal; caught by the solve-level guard.
        debug_assert!(diag != 0.0, "singular diagonal at cell {cell}");
        x[cell] = acc / diag;
    }
}

/// Raw pointer wrapper so hyperplane-disjoint writes can cross the worker
/// closure boundary.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Returns the pointer; a method call forces the closure to capture
    /// the whole wrapper (not the raw-pointer field), keeping Send/Sync.
    fn ptr(self) -> *mut T {
        self.0
    }
}
// SAFETY: used only for writes to disjoint indices within one plane.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Wavefront-parallel forward solve for scalar problems: cells on an
/// `i+j+k` hyperplane are independent and solved concurrently.
///
/// # Panics
/// Panics on dimension mismatch, non-scalar grids, patterns wider than
/// radius 1, or an upper tap.
pub fn sptrsv_forward_wavefront<S: Storage, P: Scalar>(
    l: &SgDia<S>,
    waves: &Wavefronts,
    b: &[P],
    x: &mut [P],
    par: Par,
) {
    let grid = l.grid();
    let cells = grid.cells();
    assert_eq!(grid.components, 1, "wavefront solve supports scalar problems");
    assert!(l.pattern().radius() <= 1, "wavefront schedule assumes radius-1 taps");
    assert!(
        l.pattern().taps().iter().all(|t| t.spatial_sign() <= 0),
        "sptrsv_forward_wavefront requires a lower-triangular pattern"
    );
    assert_eq!(b.len(), cells, "b length");
    assert_eq!(x.len(), cells, "x length");
    assert_eq!(waves.len(), cells, "wavefront schedule size");
    let xp = SendPtr(x.as_mut_ptr());
    let nthreads = par.threads();

    with_tap_metas(grid, l.pattern(), |metas| {
        for plane in waves.forward() {
            crate::par::for_each_in_plane(plane, nthreads, |&cu| {
                let cell = cu as usize;
                let mut acc = b[cell];
                let mut diag = P::ZERO;
                for (t, m) in metas.iter().enumerate() {
                    let av = P::from_f64(l.get(cell, t).load_f64());
                    if m.diagonal {
                        diag = av;
                        continue;
                    }
                    let nb = cell as i64 + m.cell_stride;
                    if nb < 0 || nb >= cells as i64 {
                        continue;
                    }
                    // SAFETY: nb lies on an earlier plane (dependency proven by
                    // the wavefront schedule), fully written before this plane
                    // started; concurrent reads are of completed values.
                    let xv = unsafe { *xp.ptr().add(nb as usize) };
                    acc = (-av).mul_add(xv, acc);
                }
                assert!(diag != P::ZERO, "singular diagonal at cell {cell}");
                // SAFETY: each cell index appears exactly once per plane, so
                // writes within a plane are disjoint.
                unsafe { *xp.ptr().add(cell) = acc / diag };
            });
        }
    });
}
