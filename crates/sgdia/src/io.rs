//! Matrix and vector serialization.
//!
//! The paper distributes its evaluation matrices as files (the Zenodo
//! archive of §6.1); a usable reproduction needs an interchange story:
//!
//! * a compact little-endian binary format for [`SgDia`] matrices and
//!   dense vectors, preserving the storage precision byte-for-byte (an
//!   FP16 matrix round-trips without widening), and
//! * Matrix Market (`.mtx`, coordinate real general) import/export via
//!   the CSR representation, for exchange with every other sparse
//!   toolchain.

use std::io::{self, Read, Write};

use fp16mg_fp::{Bf16, Precision, Storage, F16};
use fp16mg_grid::Grid3;
use fp16mg_stencil::{Pattern, Tap};

use crate::{Csr, Layout, SgDia};

const MATRIX_MAGIC: &[u8; 8] = b"FP16MGA1";
const VECTOR_MAGIC: &[u8; 8] = b"FP16MGV1";

/// Hard resource limits for untrusted file ingestion. Every count read
/// from a header is validated against these *before* any allocation is
/// sized from it, so a corrupt (or malicious) header yields a typed
/// [`DecodeError`] instead of an attempted huge allocation.
pub mod limits {
    /// Maximum stencil taps in a matrix header (the widest built-in
    /// pattern is 27 taps; vector couplings multiply that by component
    /// pairs — 256 leaves an order of magnitude of headroom).
    pub const MAX_TAPS: usize = 256;
    /// Maximum grid extent per axis.
    pub const MAX_EXTENT: usize = 65_536;
    /// Maximum components per grid point.
    pub const MAX_COMPONENTS: usize = 64;
    /// Maximum total stored matrix entries (`cells × taps`), ≈ 16 GiB of
    /// FP64 payload — far beyond any in-tree problem, but finite.
    pub const MAX_ENTRIES: usize = 1 << 31;
    /// Maximum dense-vector length.
    pub const MAX_VECTOR_LEN: usize = 1 << 28;
    /// Maximum Matrix Market stored entries (before symmetric mirroring).
    pub const MAX_NNZ: usize = 1 << 30;
}

/// Typed reasons a matrix/vector file is refused. Carried as the inner
/// error of the `InvalidData` [`io::Error`] the readers return, so
/// callers can downcast for the precise cause:
///
/// ```ignore
/// let cause = err.get_ref().and_then(|e| e.downcast_ref::<DecodeError>());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The header's precision tag does not match the requested storage.
    PrecisionMismatch,
    /// A zero dimension, component count, or tap count.
    Degenerate,
    /// A header count exceeds its [`limits`] bound: `(what, got, limit)`.
    LimitExceeded {
        /// Which count was refused (e.g. `"taps"`, `"extent"`).
        what: &'static str,
        /// The value the header declared.
        got: u64,
        /// The limit it exceeded.
        limit: u64,
    },
    /// `cells × taps` overflowed or exceeded [`limits::MAX_ENTRIES`].
    EntriesOverflow,
    /// A structural defect in the payload (duplicate taps, malformed
    /// records, bad indices, …).
    Malformed(&'static str),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an FP16MG file (bad magic)"),
            DecodeError::PrecisionMismatch => write!(f, "storage precision mismatch"),
            DecodeError::Degenerate => write!(f, "degenerate dimensions"),
            DecodeError::LimitExceeded { what, got, limit } => {
                write!(f, "header declares {got} {what}, limit is {limit}")
            }
            DecodeError::EntriesOverflow => {
                write!(f, "total stored entries overflow the ingestion limit")
            }
            DecodeError::Malformed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Checks a header count against its limit.
fn check_limit(what: &'static str, got: u64, limit: usize) -> Result<usize, DecodeError> {
    if got > limit as u64 {
        return Err(DecodeError::LimitExceeded { what, got, limit: limit as u64 });
    }
    Ok(got as usize)
}

fn precision_tag<S: Storage>() -> u8 {
    match S::NAME {
        "64" => 0,
        "32" => 1,
        "16" => 2,
        "b16" => 3,
        // Storage is implemented exactly by f64/f32/F16/Bf16 (fp crate);
        // a fifth implementor would be a compile-time addition here too.
        other => unreachable!("unknown storage {other}"),
    }
}

/// The storage precision recorded in a matrix header (without reading
/// the payload); pair with the right `read_matrix::<S>` call.
pub fn peek_precision(header_tag: u8) -> Option<Precision> {
    match header_tag {
        0 => Some(Precision::F64),
        1 => Some(Precision::F32),
        2 => Some(Precision::F16),
        3 => Some(Precision::BF16),
        _ => None,
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &'static str) -> io::Error {
    DecodeError::Malformed(msg).into()
}

/// Writes a structured matrix in the binary format (little-endian;
/// values serialized in the matrix's own storage precision and layout).
pub fn write_matrix<S: Storage>(a: &SgDia<S>, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MATRIX_MAGIC)?;
    let g = a.grid();
    write_u64(w, g.nx as u64)?;
    write_u64(w, g.ny as u64)?;
    write_u64(w, g.nz as u64)?;
    write_u64(w, g.components as u64)?;
    write_u64(w, a.pattern().len() as u64)?;
    w.write_all(&[precision_tag::<S>(), matches!(a.layout(), Layout::Soa) as u8])?;
    for t in a.pattern().taps() {
        w.write_all(&t.dx.to_le_bytes())?;
        w.write_all(&t.dy.to_le_bytes())?;
        w.write_all(&t.dz.to_le_bytes())?;
        w.write_all(&[t.cout, t.cin])?;
    }
    // Values, raw little-endian in storage precision.
    match S::BYTES {
        8 => {
            for v in a.data() {
                w.write_all(&v.load_f64().to_le_bytes())?;
            }
        }
        4 => {
            for v in a.data() {
                w.write_all(&v.load_f32().to_le_bytes())?;
            }
        }
        2 => {
            // F16 or BF16: write the raw bit pattern.
            for v in a.data() {
                let bits: u16 = match precision_tag::<S>() {
                    2 => F16::from_f32(v.load_f32()).to_bits(),
                    _ => Bf16::from_f32(v.load_f32()).to_bits(),
                };
                w.write_all(&bits.to_le_bytes())?;
            }
        }
        // Storage::BYTES is 8, 4, or 2 for the four sealed implementors.
        _ => unreachable!(),
    }
    Ok(())
}

/// Reads a matrix written by [`write_matrix`] with the same storage
/// precision `S`.
///
/// # Errors
/// `InvalidData` on magic, tag, limit, or structural mismatch; the inner
/// error is a [`DecodeError`] naming the precise cause. Header counts
/// are validated against [`limits`] before any allocation is sized from
/// them.
pub fn read_matrix<S: Storage>(r: &mut impl Read) -> io::Result<SgDia<S>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MATRIX_MAGIC {
        return Err(DecodeError::BadMagic.into());
    }
    let nx = check_limit("extent", read_u64(r)?, limits::MAX_EXTENT)?;
    let ny = check_limit("extent", read_u64(r)?, limits::MAX_EXTENT)?;
    let nz = check_limit("extent", read_u64(r)?, limits::MAX_EXTENT)?;
    let components = check_limit("components", read_u64(r)?, limits::MAX_COMPONENTS)?;
    let ntaps = check_limit("taps", read_u64(r)?, limits::MAX_TAPS)?;
    let mut flags = [0u8; 2];
    r.read_exact(&mut flags)?;
    if flags[0] != precision_tag::<S>() {
        return Err(DecodeError::PrecisionMismatch.into());
    }
    let layout = if flags[1] == 1 { Layout::Soa } else { Layout::Aos };
    if nx == 0 || ny == 0 || nz == 0 || components == 0 || ntaps == 0 {
        return Err(DecodeError::Degenerate.into());
    }
    // Bound the total payload before building the grid: the per-axis
    // limits alone still admit a multiplied size far past anything we
    // are willing to allocate for an unauthenticated file.
    nx.checked_mul(ny)
        .and_then(|c| c.checked_mul(nz))
        .and_then(|c| c.checked_mul(components))
        .and_then(|c| c.checked_mul(ntaps))
        .filter(|&c| c <= limits::MAX_ENTRIES)
        .ok_or(DecodeError::EntriesOverflow)?;
    let mut taps = Vec::with_capacity(ntaps);
    for _ in 0..ntaps {
        let mut b = [0u8; 14];
        r.read_exact(&mut b)?;
        let offset = |lo: usize| -> io::Result<i32> {
            let bytes: [u8; 4] = b
                .get(lo..lo + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| bad("malformed tap record in header"))?;
            Ok(i32::from_le_bytes(bytes))
        };
        taps.push(Tap::at_comp(offset(0)?, offset(4)?, offset(8)?, b[12], b[13]));
    }
    let pattern = Pattern::new(taps);
    if pattern.len() != ntaps {
        return Err(bad("duplicate taps in pattern"));
    }
    let grid = Grid3::with_components(nx, ny, nz, components);
    let mut a = SgDia::<S>::zeros(grid, pattern, layout);
    let n = a.stored_entries();
    match S::BYTES {
        8 => {
            let mut b = [0u8; 8];
            for i in 0..n {
                r.read_exact(&mut b)?;
                a.data_mut()[i] = S::store_f64(f64::from_le_bytes(b));
            }
        }
        4 => {
            let mut b = [0u8; 4];
            for i in 0..n {
                r.read_exact(&mut b)?;
                a.data_mut()[i] = S::store_f32(f32::from_le_bytes(b));
            }
        }
        2 => {
            let f16 = precision_tag::<S>() == 2;
            let mut b = [0u8; 2];
            for i in 0..n {
                r.read_exact(&mut b)?;
                let bits = u16::from_le_bytes(b);
                let v = if f16 {
                    F16::from_bits(bits).to_f32()
                } else {
                    Bf16::from_bits(bits).to_f32()
                };
                a.data_mut()[i] = S::store_f32(v);
            }
        }
        // Storage::BYTES is 8, 4, or 2 for the four sealed implementors.
        _ => unreachable!(),
    }
    Ok(a)
}

/// Writes a dense `f64` vector.
pub fn write_vector(v: &[f64], w: &mut impl Write) -> io::Result<()> {
    w.write_all(VECTOR_MAGIC)?;
    write_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a dense `f64` vector written by [`write_vector`].
///
/// # Errors
/// `InvalidData` on magic mismatch or a declared length beyond
/// [`limits::MAX_VECTOR_LEN`]; the inner error is a [`DecodeError`].
pub fn read_vector(r: &mut impl Read) -> io::Result<Vec<f64>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != VECTOR_MAGIC {
        return Err(DecodeError::BadMagic.into());
    }
    let n = check_limit("vector entries", read_u64(r)?, limits::MAX_VECTOR_LEN)?;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f64::from_le_bytes(b));
    }
    Ok(out)
}

/// Exports a CSR matrix as Matrix Market coordinate/real/general
/// (1-based indices).
pub fn write_matrix_market<S: Storage>(a: &Csr<S>, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% exported by fp16mg")?;
    writeln!(w, "{} {} {}", a.rows(), a.rows(), a.nnz())?;
    for row in 0..a.rows() {
        let lo = a.row_ptr()[row] as usize;
        let hi = a.row_ptr()[row + 1] as usize;
        for e in lo..hi {
            writeln!(w, "{} {} {:e}", row + 1, a.col_idx()[e] + 1, a.values()[e].load_f64())?;
        }
    }
    Ok(())
}

/// Imports a Matrix Market coordinate real (general or symmetric) file
/// as a CSR matrix in `f64`.
///
/// # Errors
/// `InvalidData` on malformed headers, indices out of range, or
/// non-square shapes.
pub fn read_matrix_market(r: &mut impl Read) -> io::Result<Csr<f64>> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty file"))?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket matrix coordinate real") {
        return Err(bad("unsupported MatrixMarket header"));
    }
    let symmetric = h.contains("symmetric");
    let mut size_line = None;
    for line in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| bad("missing size line"))?;
    let mut it = size_line.split_whitespace();
    let rows: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad rows"))?;
    let cols: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad cols"))?;
    let nnz: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad nnz"))?;
    if rows != cols {
        return Err(bad("matrix is not square"));
    }
    check_limit("MatrixMarket entries", nnz as u64, limits::MAX_NNZ)?;
    check_limit("MatrixMarket rows", rows as u64, u32::MAX as usize)?;
    let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(nnz * (1 + symmetric as usize));
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad row idx"))?;
        let j: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad col idx"))?;
        let v: f64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad value"))?;
        if i == 0 || j == 0 || i > rows || j > cols {
            return Err(bad("index out of range"));
        }
        triplets.push(((i - 1) as u32, (j - 1) as u32, v));
        if symmetric && i != j {
            triplets.push(((j - 1) as u32, (i - 1) as u32, v));
        }
    }
    triplets.sort_unstable_by_key(|&(i, j, _)| (i, j));
    let mut row_ptr = vec![0u32; rows + 1];
    let mut col_idx = Vec::with_capacity(triplets.len());
    let mut values = Vec::with_capacity(triplets.len());
    for &(i, j, v) in &triplets {
        row_ptr[i as usize + 1] += 1;
        col_idx.push(j);
        values.push(v);
    }
    for rix in 0..rows {
        row_ptr[rix + 1] += row_ptr[rix];
    }
    Ok(Csr::new(rows, row_ptr, col_idx, values))
}
