//! The SG-DIA matrix container.

use fp16mg_fp::Storage;
use fp16mg_grid::Grid3;
use fp16mg_stencil::Pattern;

/// In-memory layout of the SG-DIA value array (paper §5.1, Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Array-of-structures: the taps of one cell are contiguous
    /// (`data[cell * taps + tap]`). Fine for full-FP32 kernels, but a
    /// mixed-precision kernel pays one convert instruction per entry.
    Aos,
    /// Structure-of-arrays: the cells of one tap are contiguous
    /// (`data[tap * cells + cell]`). SIMD-friendly: one F16C convert per 8
    /// entries.
    Soa,
}

/// A structured-grid-diagonal sparse matrix.
///
/// Semantically this is a square matrix over the unknowns of `grid`
/// (`grid.unknowns()` rows). Row `(cell, cout)` has one potential nonzero
/// per pattern tap with that `cout`; taps whose spatial offset leaves the
/// grid store an explicit zero, so the value array always has exactly
/// `cells × taps` entries and kernels never branch on the pattern.
#[derive(Clone, Debug)]
pub struct SgDia<S: Storage> {
    grid: Grid3,
    pattern: Pattern,
    layout: Layout,
    data: Vec<S>,
}

impl<S: Storage> SgDia<S> {
    /// All-zero matrix.
    ///
    /// # Panics
    /// Panics if the pattern's component count disagrees with the grid's.
    pub fn zeros(grid: Grid3, pattern: Pattern, layout: Layout) -> Self {
        assert_eq!(
            grid.components,
            pattern.components(),
            "grid and pattern component counts disagree"
        );
        let data = vec![S::default(); grid.cells() * pattern.len()];
        SgDia { grid, pattern, layout, data }
    }

    /// Builds a matrix by evaluating `f(cell, i, j, k, tap_index)` in `f64`
    /// for every in-grid entry and truncating to the storage precision.
    /// Out-of-grid taps remain zero regardless of `f`.
    pub fn from_fn(
        grid: Grid3,
        pattern: Pattern,
        layout: Layout,
        mut f: impl FnMut(usize, usize, usize, usize, usize) -> f64,
    ) -> Self {
        let mut m = Self::zeros(grid, pattern, layout);
        let taps: Vec<_> = m.pattern.taps().to_vec();
        for (cell, i, j, k) in grid.iter_cells() {
            for (t, tap) in taps.iter().enumerate() {
                if grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    m.set(cell, t, S::store_f64(f(cell, i, j, k, t)));
                }
            }
        }
        m
    }

    /// The grid this matrix lives on.
    #[inline]
    pub fn grid(&self) -> &Grid3 {
        &self.grid
    }

    /// The stencil pattern (one tap per stored diagonal).
    #[inline]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The in-memory layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of matrix rows (= unknowns).
    #[inline]
    pub fn rows(&self) -> usize {
        self.grid.unknowns()
    }

    /// Flat index of `(cell, tap)` under the current layout.
    #[inline(always)]
    pub fn entry_index(&self, cell: usize, tap: usize) -> usize {
        match self.layout {
            Layout::Aos => cell * self.pattern.len() + tap,
            Layout::Soa => tap * self.grid.cells() + cell,
        }
    }

    /// Reads one entry.
    #[inline(always)]
    pub fn get(&self, cell: usize, tap: usize) -> S {
        self.data[self.entry_index(cell, tap)]
    }

    /// Writes one entry.
    #[inline(always)]
    pub fn set(&mut self, cell: usize, tap: usize, v: S) {
        let idx = self.entry_index(cell, tap);
        self.data[idx] = v;
    }

    /// The raw value array (layout-dependent order).
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable access to the raw value array.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// For SOA layout: the contiguous per-tap slice of values (one value
    /// per cell).
    ///
    /// # Panics
    /// Panics if the layout is AOS.
    #[inline]
    pub fn tap_slice(&self, tap: usize) -> &[S] {
        assert_eq!(self.layout, Layout::Soa, "tap_slice requires SOA layout");
        let n = self.grid.cells();
        &self.data[tap * n..(tap + 1) * n]
    }

    /// Number of stored entries (`cells × taps`), the kernel memory
    /// volume.
    #[inline]
    pub fn stored_entries(&self) -> usize {
        self.data.len()
    }

    /// Number of logically present nonzero positions: stored entries whose
    /// tap stays inside the grid (the paper's `#nnz`). Zero *values* inside
    /// the grid still count, matching how structured codes report nnz.
    pub fn nnz(&self) -> usize {
        let mut count = 0usize;
        for (_, i, j, k) in self.grid.iter_cells() {
            for tap in self.pattern.taps() {
                if self.grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Bytes of floating-point data the format stores.
    #[inline]
    pub fn value_bytes(&self) -> usize {
        self.stored_entries() * S::BYTES
    }

    /// Converts the value array to another storage precision (`f64`
    /// round-trip; RNE truncation, overflow → ±∞), keeping the layout.
    /// This is the *direct truncation* of Algorithm 1 line 11.
    pub fn convert<T: Storage>(&self) -> SgDia<T> {
        SgDia {
            grid: self.grid,
            pattern: self.pattern.clone(),
            layout: self.layout,
            data: self.data.iter().map(|&v| T::store_f64(v.load_f64())).collect(),
        }
    }

    /// Re-lays the value array out in the requested layout.
    pub fn to_layout(&self, layout: Layout) -> SgDia<S> {
        if layout == self.layout {
            return self.clone();
        }
        let cells = self.grid.cells();
        let taps = self.pattern.len();
        let mut data = vec![S::default(); self.data.len()];
        for cell in 0..cells {
            for t in 0..taps {
                let dst = match layout {
                    Layout::Aos => cell * taps + t,
                    Layout::Soa => t * cells + cell,
                };
                data[dst] = self.get(cell, t);
            }
        }
        SgDia { grid: self.grid, pattern: self.pattern.clone(), layout, data }
    }

    /// Largest absolute finite value stored, and whether any stored value
    /// is non-finite. Used by the `need to scale` test of Algorithm 1.
    pub fn abs_max(&self) -> (f64, bool) {
        let mut max = 0.0f64;
        let mut nonfinite = false;
        for &v in &self.data {
            let x = v.load_f64();
            if x.is_finite() {
                max = max.max(x.abs());
            } else {
                nonfinite = true;
            }
        }
        (max, nonfinite)
    }

    /// True if every stored value is finite (no overflow happened during
    /// truncation).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// The matrix diagonal (one value per unknown, `f64`), reading the
    /// scalar diagonal taps.
    pub fn extract_diagonal(&self) -> Vec<f64> {
        let diag_taps = self.pattern.diagonal_indices();
        let r = self.grid.components;
        let mut out = vec![0.0f64; self.rows()];
        for cell in 0..self.grid.cells() {
            for (c, &t) in diag_taps.iter().enumerate() {
                out[cell * r + c] = self.get(cell, t).load_f64();
            }
        }
        out
    }

    /// Transposes the matrix. The result has the transposed pattern; entry
    /// `Aᵀ(col_cell, tapᵀ) = A(row_cell, tap)`.
    pub fn transpose(&self) -> SgDia<S> {
        let tp = self.pattern.transpose();
        let mut out = SgDia::zeros(self.grid, tp, self.layout);
        let taps: Vec<_> = self.pattern.taps().to_vec();
        for (cell, i, j, k) in self.grid.iter_cells() {
            for (t, tap) in taps.iter().enumerate() {
                if !self.grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    continue;
                }
                let nb = (cell as i64 + self.grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
                let tt = out
                    .pattern
                    .tap_index(tap.transpose())
                    .expect("transposed tap missing from transposed pattern");
                out.set(nb, tt, self.get(cell, t));
            }
        }
        out
    }
}
