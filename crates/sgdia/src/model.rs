//! The Table 2 memory-volume model.
//!
//! Sparse solvers are bandwidth-bound, so the speedup of lowering the
//! storage precision is bounded by the reduction in bytes moved per
//! nonzero. SG-DIA stores only the value (8/4/2 bytes); CSR additionally
//! moves one column index per nonzero plus an amortized share
//! `δ = (m+1)/nnz` of the row pointer, which lower precision cannot
//! compress.

use fp16mg_fp::Precision;

/// Average row-pointer amortization the paper measured over 2216 square
/// SuiteSparse matrices.
pub const SUITESPARSE_DELTA: f64 = 0.15;

/// Matrix storage format for the byte model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Structured-grid diagonal: values only.
    SgDia,
    /// CSR with 32-bit indices.
    CsrInt32,
    /// CSR with 64-bit indices (required once unknowns exceed ~2^31).
    CsrInt64,
}

impl Format {
    /// Bytes moved per nonzero at the given value precision, with row
    /// pointer amortization `delta` for the CSR formats.
    pub fn bytes_per_nnz(self, value: Precision, delta: f64) -> f64 {
        let v = value.bytes() as f64;
        match self {
            Format::SgDia => v,
            Format::CsrInt32 => v + 4.0 + 4.0 * delta,
            Format::CsrInt64 => v + 8.0 + 8.0 * delta,
        }
    }

    /// Upper bound of the preconditioner speedup when moving the value
    /// precision `from → to` (Table 2).
    pub fn speedup_bound(self, from: Precision, to: Precision, delta: f64) -> f64 {
        self.bytes_per_nnz(from, delta) / self.bytes_per_nnz(to, delta)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Format::SgDia => "SG-DIA",
            Format::CsrInt32 => "CSR int32",
            Format::CsrInt64 => "CSR int64",
        }
    }
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// The format.
    pub format: Format,
    /// Bytes per nonzero at FP64/FP32/FP16.
    pub bytes: [f64; 3],
    /// Speedup bounds FP64/FP32, FP32/FP16, FP64/FP16.
    pub bounds: [f64; 3],
}

/// Computes Table 2 for a given row-pointer amortization.
pub fn table2(delta: f64) -> Vec<Table2Row> {
    use Precision::{F16, F32, F64};
    [Format::SgDia, Format::CsrInt32, Format::CsrInt64]
        .into_iter()
        .map(|f| Table2Row {
            format: f,
            bytes: [
                f.bytes_per_nnz(F64, delta),
                f.bytes_per_nnz(F32, delta),
                f.bytes_per_nnz(F16, delta),
            ],
            bounds: [
                f.speedup_bound(F64, F32, delta),
                f.speedup_bound(F32, F16, delta),
                f.speedup_bound(F64, F16, delta),
            ],
        })
        .collect()
}

/// Fraction of a linear system's memory footprint occupied by the matrix
/// (paper Eq. 2): `nnz / (nnz + 2m)` — the higher it is, the closer the
/// end-to-end gain gets to the matrix-only bound.
pub fn matrix_percent(nnz: usize, m: usize) -> f64 {
    nnz as f64 / (nnz as f64 + 2.0 * m as f64)
}

/// Maximum reachable SpMV speedup from storing the matrix at `to` instead
/// of `from` (the Fig. 7 "Max" series): ratio of total memory volumes,
/// counting the matrix values plus the `x` and `y` vectors at the
/// computation precision.
pub fn spmv_max_speedup(
    stored_entries: usize,
    unknowns: usize,
    from: Precision,
    to: Precision,
    compute: Precision,
) -> f64 {
    let vec_bytes = (2 * unknowns * compute.bytes()) as f64;
    let vol_from = (stored_entries * from.bytes()) as f64 + vec_bytes;
    let vol_to = (stored_entries * to.bytes()) as f64 + vec_bytes;
    vol_from / vol_to
}
