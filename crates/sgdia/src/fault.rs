//! Fault injection into stored matrix coefficients (feature `fault-inject`).
//!
//! The robustness harness needs to produce, on demand, exactly the
//! corruptions the FP16 storage path can suffer in the wild: overflow to
//! ±∞ during truncation, exponent-bit upsets, and underflow flushing to
//! the subnormal range. This module applies them to a stored matrix at
//! configurable rates, deterministically (seeded), and reports what it
//! did so tests can assert detection. The wide formats (f32/f64) are
//! supported too, so retry-ladder tests can corrupt an FP32-rebuilt
//! hierarchy and prove the FP64 last resort is reachable.
//!
//! Only compiled under the `fault-inject` feature: production builds carry
//! no corruption code.

use fp16mg_fp::{Bf16, Storage, F16};

use crate::SgDia;

/// What to corrupt and how often. Rates are per stored entry and applied
/// independently (an entry hit by multiple faults takes the last one in
/// field order: exponent flip, then ±∞, then subnormal flush, then random
/// bit flip).
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Probability of flipping one random exponent bit of an entry.
    pub exp_flip_rate: f64,
    /// Probability of forcing an entry to ±∞ (sign preserved).
    pub inf_rate: f64,
    /// Probability of flushing an entry to a subnormal of its sign.
    pub subnormal_flush_rate: f64,
    /// Probability of flipping one *uniformly random* bit of an entry —
    /// the silent-data-corruption model of the integrity sentinels. Unlike
    /// `exp_flip_rate` this can land anywhere: sign, exponent, mantissa.
    pub bit_flip_rate: f64,
    /// PRNG seed; equal seeds reproduce the same fault pattern.
    pub seed: u64,
}

impl FaultSpec {
    /// A spec that forces ±∞ at the given rate and nothing else.
    pub fn inf(rate: f64, seed: u64) -> Self {
        FaultSpec {
            exp_flip_rate: 0.0,
            inf_rate: rate,
            subnormal_flush_rate: 0.0,
            bit_flip_rate: 0.0,
            seed,
        }
    }

    /// A spec that flips exponent bits at the given rate and nothing else.
    pub fn exp_flip(rate: f64, seed: u64) -> Self {
        FaultSpec {
            exp_flip_rate: rate,
            inf_rate: 0.0,
            subnormal_flush_rate: 0.0,
            bit_flip_rate: 0.0,
            seed,
        }
    }

    /// A spec that flushes entries to subnormals at the given rate.
    pub fn subnormal_flush(rate: f64, seed: u64) -> Self {
        FaultSpec {
            exp_flip_rate: 0.0,
            inf_rate: 0.0,
            subnormal_flush_rate: rate,
            bit_flip_rate: 0.0,
            seed,
        }
    }

    /// A spec that flips uniformly random bits at the given rate and
    /// nothing else (the memory-corruption model of the ABFT sentinels).
    pub fn bit_flip(rate: f64, seed: u64) -> Self {
        FaultSpec {
            exp_flip_rate: 0.0,
            inf_rate: 0.0,
            subnormal_flush_rate: 0.0,
            bit_flip_rate: rate,
            seed,
        }
    }

    /// A spec that injects nothing: the carrier for plans that corrupt
    /// only through targeted upsets such as [`inject_bit_flip_tap`].
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            exp_flip_rate: 0.0,
            inf_rate: 0.0,
            subnormal_flush_rate: 0.0,
            bit_flip_rate: 0.0,
            seed,
        }
    }
}

/// Tally of the corruptions actually applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Entries whose exponent had one bit flipped.
    pub exp_flips: u64,
    /// Entries forced to ±∞.
    pub infs: u64,
    /// Entries flushed to a subnormal.
    pub subnormal_flushes: u64,
    /// Entries with one uniformly random bit flipped.
    pub bit_flips: u64,
}

impl FaultReport {
    /// Total corrupted entries.
    pub fn total(&self) -> u64 {
        self.exp_flips + self.infs + self.subnormal_flushes + self.bit_flips
    }
}

// SplitMix64, embedded so the fault path adds no dependency edges.
#[inline]
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[inline]
fn chance(state: &mut u64, p: f64) -> bool {
    p > 0.0 && ((next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
}

/// Bit-level corruption of one 16-bit value. `exp_mask` selects the
/// format's exponent field; `sub_bits` is a representative subnormal.
#[inline]
fn corrupt_bits16(
    bits: u16,
    exp_mask: u16,
    sub_bits: u16,
    spec: &FaultSpec,
    state: &mut u64,
    report: &mut FaultReport,
) -> u16 {
    let mut out = bits;
    if chance(state, spec.exp_flip_rate) {
        let exp_bits: u32 = exp_mask.count_ones();
        let shift = exp_mask.trailing_zeros() + (next_u64(state) % exp_bits as u64) as u32;
        out ^= 1 << shift;
        report.exp_flips += 1;
    }
    if chance(state, spec.inf_rate) {
        out = (out & 0x8000) | exp_mask; // ±∞: sign kept, exponent all ones, mantissa 0
        report.infs += 1;
    }
    if chance(state, spec.subnormal_flush_rate) {
        out = (out & 0x8000) | sub_bits;
        report.subnormal_flushes += 1;
    }
    if chance(state, spec.bit_flip_rate) {
        out ^= 1 << (next_u64(state) % 16);
        report.bit_flips += 1;
    }
    out
}

/// Bit-level corruption of one wide (f32/f64) value, mirroring
/// [`corrupt_bits16`]; parameterized by the format's sign/exponent
/// geometry. The subnormal flush lands on the smallest positive
/// subnormal of the format (sign preserved).
macro_rules! corrupt_bits_wide {
    ($name:ident, $ty:ty, $sign:expr, $exp_mask:expr, $exp_shift:expr, $exp_bits:expr) => {
        #[inline]
        fn $name(bits: $ty, spec: &FaultSpec, state: &mut u64, report: &mut FaultReport) -> $ty {
            let mut out = bits;
            if chance(state, spec.exp_flip_rate) {
                let shift = $exp_shift + (next_u64(state) % $exp_bits) as u32;
                out ^= 1 << shift;
                report.exp_flips += 1;
            }
            if chance(state, spec.inf_rate) {
                out = (out & $sign) | $exp_mask;
                report.infs += 1;
            }
            if chance(state, spec.subnormal_flush_rate) {
                out = (out & $sign) | 1;
                report.subnormal_flushes += 1;
            }
            if chance(state, spec.bit_flip_rate) {
                let width = <$ty>::BITS as u64;
                out ^= 1 << (next_u64(state) % width);
                report.bit_flips += 1;
            }
            out
        }
    };
}

corrupt_bits_wide!(corrupt_bits32, u32, 0x8000_0000, 0x7f80_0000, 23, 8);
corrupt_bits_wide!(corrupt_bits64, u64, 1 << 63, 0x7ff0_0000_0000_0000, 52, 11);

/// Injects faults into every stored entry of `a` per `spec`. All four
/// storage formats are supported; unrecognized storage types are left
/// untouched and report zero.
pub fn inject<S: Storage + 'static>(a: &mut SgDia<S>, spec: &FaultSpec) -> FaultReport {
    let mut report = FaultReport::default();
    let mut state = spec.seed;
    let data = a.data_mut();
    if let Some(d16) = crate::kernels::cast_slice_mut::<S, F16>(data) {
        for v in d16 {
            // Skip structural zeros so corruption lands on real coefficients.
            if v.to_bits() & 0x7fff == 0 {
                continue;
            }
            *v = F16::from_bits(corrupt_bits16(
                v.to_bits(),
                0x7c00,
                F16::MIN_POSITIVE_SUBNORMAL.to_bits(),
                spec,
                &mut state,
                &mut report,
            ));
        }
        return report;
    }
    if let Some(db16) = crate::kernels::cast_slice_mut::<S, Bf16>(data) {
        for v in db16 {
            if v.to_bits() & 0x7fff == 0 {
                continue;
            }
            *v = Bf16::from_bits(corrupt_bits16(
                v.to_bits(),
                0x7f80,
                0x0001,
                spec,
                &mut state,
                &mut report,
            ));
        }
        return report;
    }
    if let Some(d32) = crate::kernels::cast_slice_mut::<S, f32>(data) {
        for v in d32 {
            if v.to_bits() & 0x7fff_ffff == 0 {
                continue;
            }
            *v = f32::from_bits(corrupt_bits32(v.to_bits(), spec, &mut state, &mut report));
        }
        return report;
    }
    if let Some(d64) = crate::kernels::cast_slice_mut::<S, f64>(data) {
        for v in d64 {
            if v.to_bits() & !(1u64 << 63) == 0 {
                continue;
            }
            *v = f64::from_bits(corrupt_bits64(v.to_bits(), spec, &mut state, &mut report));
        }
        return report;
    }
    report
}

/// Forces exactly one entry — `(cell, tap)` — to ±∞ (sign preserved;
/// zero entries become +∞). Returns `false` for unrecognized storage.
pub fn inject_inf_at<S: Storage + 'static>(a: &mut SgDia<S>, cell: usize, tap: usize) -> bool {
    let idx = a.entry_index(cell, tap);
    let data = a.data_mut();
    if let Some(d16) = crate::kernels::cast_slice_mut::<S, F16>(data) {
        d16[idx] = F16::from_bits((d16[idx].to_bits() & 0x8000) | 0x7c00);
        return true;
    }
    if let Some(db16) = crate::kernels::cast_slice_mut::<S, Bf16>(data) {
        db16[idx] = Bf16::from_bits((db16[idx].to_bits() & 0x8000) | 0x7f80);
        return true;
    }
    if let Some(d32) = crate::kernels::cast_slice_mut::<S, f32>(data) {
        d32[idx] = f32::from_bits((d32[idx].to_bits() & 0x8000_0000) | 0x7f80_0000);
        return true;
    }
    if let Some(d64) = crate::kernels::cast_slice_mut::<S, f64>(data) {
        d64[idx] = f64::from_bits((d64[idx].to_bits() & (1 << 63)) | 0x7ff0_0000_0000_0000);
        return true;
    }
    false
}

/// Flips exactly one bit of the entry at `(cell, tap)` — the single-event
/// upset the integrity sentinels exist to catch. `bit` is taken modulo the
/// storage width, so a test can sweep `0..64` against any format. Returns
/// `false` for unrecognized storage.
pub fn inject_bit_flip_at<S: Storage + 'static>(
    a: &mut SgDia<S>,
    cell: usize,
    tap: usize,
    bit: u32,
) -> bool {
    let idx = a.entry_index(cell, tap);
    let data = a.data_mut();
    if let Some(d16) = crate::kernels::cast_slice_mut::<S, F16>(data) {
        d16[idx] = F16::from_bits(d16[idx].to_bits() ^ (1 << (bit % 16)));
        return true;
    }
    if let Some(db16) = crate::kernels::cast_slice_mut::<S, Bf16>(data) {
        db16[idx] = Bf16::from_bits(db16[idx].to_bits() ^ (1 << (bit % 16)));
        return true;
    }
    if let Some(d32) = crate::kernels::cast_slice_mut::<S, f32>(data) {
        d32[idx] = f32::from_bits(d32[idx].to_bits() ^ (1 << (bit % 32)));
        return true;
    }
    if let Some(d64) = crate::kernels::cast_slice_mut::<S, f64>(data) {
        d64[idx] = f64::from_bits(d64[idx].to_bits() ^ (1 << (bit % 64)));
        return true;
    }
    false
}

/// Flips one bit of the first *nonzero* entry of coefficient plane `tap`
/// (cell-major order), so a targeted upset is guaranteed to land on a
/// real coupling rather than an out-of-grid explicit zero. Returns the
/// corrupted cell, or `None` when the tap is out of range, the plane is
/// all zeros, or the storage type is unrecognized.
pub fn inject_bit_flip_tap<S: Storage + 'static>(
    a: &mut SgDia<S>,
    tap: usize,
    bit: u32,
) -> Option<usize> {
    if tap >= a.pattern().len() {
        return None;
    }
    let cells = a.grid().cells();
    let cell = (0..cells).find(|&c| a.get(c, tap).load_f64() != 0.0)?;
    inject_bit_flip_at(a, cell, tap, bit).then_some(cell)
}

/// Flips one bit of `v[i]` in the computation format (`f32`/`f64`) — the
/// work-vector counterpart of [`inject_bit_flip_at`], so chaos tests can
/// also upset the Krylov iterates themselves.
pub fn flip_vector_bit<K: fp16mg_fp::Scalar>(v: &mut [K], i: usize, bit: u32) {
    let x = v[i].to_f64();
    v[i] = if K::BYTES == 4 {
        K::from_f32(f32::from_bits((x as f32).to_bits() ^ (1 << (bit % 32))))
    } else {
        K::from_f64(f64::from_bits(x.to_bits() ^ (1 << (bit % 64))))
    };
}
