//! Pre-solve precision audit of the FP16/BF16 truncation pipeline.
//!
//! `scale_symmetric` (Theorem 4.1) guarantees that no scaled entry
//! *overflows* the storage range, but says nothing about the other end:
//! small off-diagonal couplings can land below the format's normal range
//! and silently flush to subnormals or to zero — the failure mode the
//! paper's `shift_levid` guard (§4.3) exists to dodge, and the one the
//! GPU half-precision GMG literature blames for most FP16 breakdowns.
//! Until now the first symptom was a downstream Krylov stall.
//!
//! This module makes every truncation observable and policy-governed:
//!
//! * [`RangeAudit`] — a one-pass report over a high-precision level
//!   matrix describing exactly what truncation to a target precision
//!   would do: overflow headroom, underflow-to-zero / subnormal-flush /
//!   saturation counts, and the relative truncation loss (max and mean,
//!   convertible to ulps of the target format).
//! * [`TruncationPolicy`] — what the store path does with entries that
//!   leave the representable range: refuse ([`TruncationPolicy::Reject`],
//!   with a typed [`TruncationError`]), clamp to the largest finite value
//!   ([`TruncationPolicy::Saturate`]), or additionally flush subnormal
//!   results to exact zeros ([`TruncationPolicy::FlushToZero`] — trading
//!   a little coupling information for kernels that never touch the slow
//!   subnormal path).
//! * [`truncate_with_policy`] — the policy-aware `f64 → D` matrix store,
//!   replacing the silent IEEE conversion on the production paths.
//!
//! The audit runs on the *high-precision source* (before any bits are
//! lost), so its counts are exact predictions, not post-hoc forensics;
//! `core` runs it on every scaled level during Galerkin setup and the
//! runtime's retry ladder consumes it to skip doomed retries.

use fp16mg_fp::{Bf16, NumClass, Precision, Storage, F16};

use crate::SgDia;

/// Out-of-range treatment on the storage truncation path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TruncationPolicy {
    /// Refuse to store a matrix containing any entry that cannot be
    /// represented finitely: saturating (or non-finite) entries are a
    /// typed [`TruncationError`] instead of a silent ±∞. The strictest
    /// policy — Theorem 4.1 promises it never fires after scaling, and
    /// the property harness holds it to that.
    Reject,
    /// Clamp saturating entries to the format's largest finite magnitude
    /// (sign preserved), like `vcvtps2ph` with the saturation bit. The
    /// default: a clamped coupling is an approximation error, a stored
    /// ±∞ is a guaranteed NaN three kernels later.
    #[default]
    Saturate,
    /// [`TruncationPolicy::Saturate`], plus flush entries whose stored
    /// value would be subnormal to exact ±0. Subnormal coefficients
    /// carry ≤ 10 significant bits and can run through slow hardware
    /// paths; dropping them entirely is the honest version of what the
    /// arithmetic would do to them anyway.
    FlushToZero,
}

impl TruncationPolicy {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            TruncationPolicy::Reject => "reject",
            TruncationPolicy::Saturate => "saturate",
            TruncationPolicy::FlushToZero => "flush-to-zero",
        }
    }
}

impl core::fmt::Display for TruncationPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A truncation the active [`TruncationPolicy`] refused to perform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TruncationError {
    /// An entry's magnitude exceeds the target format's finite range, so
    /// storing it would saturate (or overflow to ±∞).
    Saturation {
        /// Grid cell of the offending entry.
        cell: usize,
        /// Stencil tap of the offending entry.
        tap: usize,
        /// The high-precision source value.
        value: f64,
        /// The target format's largest finite magnitude.
        limit: f64,
    },
    /// The high-precision source itself contains ±∞/NaN — nothing any
    /// storage format can round faithfully.
    NonFiniteSource {
        /// Grid cell of the offending entry.
        cell: usize,
        /// Stencil tap of the offending entry.
        tap: usize,
        /// The non-finite source value.
        value: f64,
    },
}

impl core::fmt::Display for TruncationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TruncationError::Saturation { cell, tap, value, limit } => write!(
                f,
                "entry (cell {cell}, tap {tap}) = {value:e} exceeds the storage range ±{limit:e}"
            ),
            TruncationError::NonFiniteSource { cell, tap, value } => {
                write!(f, "source entry (cell {cell}, tap {tap}) is non-finite ({value})")
            }
        }
    }
}

impl std::error::Error for TruncationError {}

/// What truncating one high-precision level to a target precision would
/// do to its entries — the per-level row of the precision audit.
#[derive(Clone, Debug)]
pub struct RangeAudit {
    /// The storage precision audited against.
    pub precision: Precision,
    /// Stored entries examined (structural zeros included).
    pub entries: u64,
    /// Entries that are exactly zero in the source (structural padding
    /// and genuine zeros; they truncate losslessly).
    pub source_zeros: u64,
    /// Non-finite entries already present in the source.
    pub source_non_finite: u64,
    /// Largest source magnitude.
    pub abs_max: f64,
    /// Smallest nonzero source magnitude.
    pub abs_min_nonzero: f64,
    /// Overflow headroom `abs_max / MAX_FINITE` of the target format:
    /// above 1.0 the level saturates; Theorem 4.1 keeps scaled levels
    /// strictly below 1.0.
    pub headroom: f64,
    /// Nonzero source entries that would flush to exactly ±0.
    pub underflow_zero: u64,
    /// Nonzero source entries that would land in the subnormal range.
    pub subnormal: u64,
    /// Entries whose magnitude saturates the format (rounds to ±∞ under
    /// plain IEEE truncation).
    pub saturate: u64,
    /// Largest relative truncation error over in-range nonzero entries
    /// (underflowed-to-zero and saturating entries are *counted* above,
    /// not folded into this figure, so it stays a rounding-loss gauge).
    pub max_rel_err: f64,
    /// Mean relative truncation error over the same entries.
    pub mean_rel_err: f64,
}

impl RangeAudit {
    /// Nonzero source entries (the denominator of the loss fractions).
    pub fn nonzero(&self) -> u64 {
        self.entries - self.source_zeros
    }

    /// Fraction of nonzero entries that underflow (to zero *or* to the
    /// subnormal range) — the gauge behind the `Auto` `shift_levid`
    /// heuristic: once it crosses the configured threshold, the level is
    /// better stored in the coarse precision.
    pub fn underflow_loss_fraction(&self) -> f64 {
        let nz = self.nonzero();
        if nz == 0 {
            0.0
        } else {
            (self.underflow_zero + self.subnormal) as f64 / nz as f64
        }
    }

    /// True when every entry stores finitely (no saturation, no
    /// non-finite sources) — the Theorem 4.1 no-overflow invariant.
    pub fn overflow_free(&self) -> bool {
        self.saturate == 0 && self.source_non_finite == 0
    }

    /// Max truncation error expressed in ulps of the target format
    /// (relative error divided by the format's unit roundoff; ≈ 0.5 ulp
    /// is the round-to-nearest expectation).
    pub fn max_ulp(&self) -> f64 {
        self.max_rel_err / self.precision.unit_roundoff()
    }

    /// Mean truncation error in ulps of the target format.
    pub fn mean_ulp(&self) -> f64 {
        self.mean_rel_err / self.precision.unit_roundoff()
    }
}

impl core::fmt::Display for RangeAudit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: headroom {:.2e}, uflow->0 {}, subnormal {}, saturate {}, \
             rel err max {:.2e} mean {:.2e}",
            self.precision.name(),
            self.headroom,
            self.underflow_zero,
            self.subnormal,
            self.saturate,
            self.max_rel_err,
            self.mean_rel_err
        )
    }
}

/// Audits what truncating `a` to `precision` would do, in one pass over
/// the high-precision data and without materializing the truncation.
pub fn audit(a: &SgDia<f64>, precision: Precision) -> RangeAudit {
    match precision {
        Precision::F64 => audit_as::<f64>(a, precision),
        Precision::F32 => audit_as::<f32>(a, precision),
        Precision::F16 => audit_as::<F16>(a, precision),
        Precision::BF16 => audit_as::<Bf16>(a, precision),
    }
}

fn audit_as<T: Storage>(a: &SgDia<f64>, precision: Precision) -> RangeAudit {
    let mut out = RangeAudit {
        precision,
        entries: 0,
        source_zeros: 0,
        source_non_finite: 0,
        abs_max: 0.0,
        abs_min_nonzero: f64::INFINITY,
        headroom: 0.0,
        underflow_zero: 0,
        subnormal: 0,
        saturate: 0,
        max_rel_err: 0.0,
        mean_rel_err: 0.0,
    };
    let mut err_sum = 0.0f64;
    let mut err_n = 0u64;
    for &v in a.data() {
        out.entries += 1;
        if v == 0.0 {
            out.source_zeros += 1;
            continue;
        }
        if !v.is_finite() {
            out.source_non_finite += 1;
            continue;
        }
        let mag = v.abs();
        out.abs_max = out.abs_max.max(mag);
        out.abs_min_nonzero = out.abs_min_nonzero.min(mag);
        let stored = T::store_f64(v);
        match stored.class() {
            NumClass::Zero => {
                out.underflow_zero += 1;
                continue;
            }
            NumClass::Subnormal => out.subnormal += 1,
            NumClass::Inf | NumClass::Nan => {
                out.saturate += 1;
                continue;
            }
            NumClass::Normal => {}
        }
        let rel = (stored.load_f64() - v).abs() / mag;
        out.max_rel_err = out.max_rel_err.max(rel);
        err_sum += rel;
        err_n += 1;
    }
    if out.abs_min_nonzero.is_infinite() {
        out.abs_min_nonzero = 0.0;
    }
    out.headroom = out.abs_max / T::MAX_FINITE;
    out.mean_rel_err = if err_n == 0 { 0.0 } else { err_sum / err_n as f64 };
    out
}

/// Truncates a high-precision matrix into storage format `T` under the
/// given [`TruncationPolicy`] — the policy-aware replacement for the
/// silent `SgDia::convert`.
///
/// # Errors
/// [`TruncationError`] under [`TruncationPolicy::Reject`] for the first
/// saturating or non-finite entry; the clamping policies never fail.
pub fn truncate_with_policy<T: Storage>(
    a: &SgDia<f64>,
    policy: TruncationPolicy,
) -> Result<SgDia<T>, TruncationError> {
    let taps = a.pattern().len();
    let cells = a.grid().cells();
    let mut out = SgDia::<T>::zeros(*a.grid(), a.pattern().clone(), a.layout());
    for cell in 0..cells {
        for tap in 0..taps {
            let v = a.get(cell, tap);
            let stored = store_policy::<T>(v, policy).map_err(|kind| match kind {
                StoreFail::Saturation => {
                    TruncationError::Saturation { cell, tap, value: v, limit: T::MAX_FINITE }
                }
                StoreFail::NonFinite => TruncationError::NonFiniteSource { cell, tap, value: v },
            })?;
            out.set(cell, tap, stored);
        }
    }
    Ok(out)
}

/// How far an operator's value range has moved relative to a baseline
/// audit of the *same geometry* — the invalidation predicate of a
/// hierarchy cache. Derived purely from two [`RangeAudit`]s, so
/// computing it costs one audit pass over the current operator and no
/// access to the cached one.
///
/// The shifts are in log2 units: a `range_shift` of 1.0 means the
/// largest magnitude doubled or halved. That is the natural unit for a
/// scale-and-truncate pipeline — per-level diagonal scaling absorbs a
/// bounded amount of range motion exactly (Theorem 4.1 re-derives the
/// scaling from the drifted operator), while a large shift means the
/// coarse Galerkin operators built from the old values no longer
/// approximate the new fine operator and the chain must be rebuilt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OperatorDrift {
    /// `|log2(abs_max_now / abs_max_then)|` — motion of the top of the
    /// value range (0 when both are zero).
    pub range_shift: f64,
    /// `|log2(abs_min_nonzero_now / abs_min_nonzero_then)|` — motion of
    /// the bottom of the range, the underflow-exposure gauge.
    pub floor_shift: f64,
    /// The current operator saturates (or carries non-finite entries)
    /// where the baseline did not — structurally unsafe to reuse
    /// regardless of shift magnitude.
    pub new_overflow: bool,
    /// The nonzero-entry count changed: a structural change (coupling
    /// appeared or vanished), not a rescaling.
    pub structure_changed: bool,
}

impl OperatorDrift {
    /// Largest of the two range shifts — the scalar the cache compares
    /// against its keep/rescale bounds.
    pub fn magnitude(&self) -> f64 {
        self.range_shift.max(self.floor_shift)
    }

    /// True when no rescaling can make reuse safe: new overflow or a
    /// structural change.
    pub fn structural(&self) -> bool {
        self.new_overflow || self.structure_changed
    }
}

impl core::fmt::Display for OperatorDrift {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "range shift {:.3} log2, floor shift {:.3} log2{}{}",
            self.range_shift,
            self.floor_shift,
            if self.new_overflow { ", NEW OVERFLOW" } else { "" },
            if self.structure_changed { ", STRUCTURE CHANGED" } else { "" },
        )
    }
}

/// Measures how far `current` has drifted from `baseline`. Both audits
/// must describe operators of the same geometry and target precision
/// for the comparison to mean anything; a mismatched `entries` count is
/// reported as `structure_changed` rather than guessed around.
pub fn drift(baseline: &RangeAudit, current: &RangeAudit) -> OperatorDrift {
    let shift = |then: f64, now: f64| -> f64 {
        if then == now {
            // Covers the both-zero and both-infinite degenerate cases.
            0.0
        } else if then <= 0.0 || now <= 0.0 || !then.is_finite() || !now.is_finite() {
            f64::INFINITY
        } else {
            (now / then).log2().abs()
        }
    };
    OperatorDrift {
        range_shift: shift(baseline.abs_max, current.abs_max),
        floor_shift: shift(baseline.abs_min_nonzero, current.abs_min_nonzero),
        new_overflow: !current.overflow_free() && baseline.overflow_free(),
        structure_changed: baseline.entries != current.entries
            || baseline.nonzero() != current.nonzero(),
    }
}

enum StoreFail {
    Saturation,
    NonFinite,
}

/// Stores one `f64` under a policy. `Err` only under `Reject`.
#[inline]
fn store_policy<T: Storage>(v: f64, policy: TruncationPolicy) -> Result<T, StoreFail> {
    let stored = T::store_f64(v);
    match stored.class() {
        NumClass::Normal | NumClass::Zero if v == 0.0 || v.is_finite() => Ok(stored),
        NumClass::Inf | NumClass::Nan => {
            if !v.is_finite() {
                // The source itself is corrupt: clamping would invent a
                // value, so every policy but plain IEEE refuses — Reject
                // with a typed error, the others pass the bits through
                // for the downstream finite-scan to catch.
                return match policy {
                    TruncationPolicy::Reject => Err(StoreFail::NonFinite),
                    _ => Ok(stored),
                };
            }
            match policy {
                TruncationPolicy::Reject => Err(StoreFail::Saturation),
                TruncationPolicy::Saturate | TruncationPolicy::FlushToZero => {
                    Ok(T::store_f64(T::MAX_FINITE.copysign(v)))
                }
            }
        }
        NumClass::Subnormal => match policy {
            TruncationPolicy::FlushToZero => Ok(T::store_f64(0.0)),
            _ => Ok(stored),
        },
        // Normal/Zero with a finite source fall through above; this arm
        // is unreachable but keeps the match exhaustive for the compiler.
        _ => Ok(stored),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;
    use fp16mg_grid::Grid3;
    use fp16mg_stencil::Pattern;

    fn probe(values: [f64; 7]) -> SgDia<f64> {
        let p = Pattern::p7();
        let taps: Vec<_> = p.taps().to_vec();
        let center = taps.iter().position(|t| t.is_diagonal()).unwrap();
        SgDia::from_fn(Grid3::cube(2), p, Layout::Soa, |_, _, _, _, t| {
            if t == center {
                values[0]
            } else {
                values[1 + (t + if t >= center { 0 } else { 1 }) % 6]
            }
        })
    }

    #[test]
    fn audit_counts_and_headroom() {
        // Center 1.0, off-diagonals pick a spread of f16 fates.
        let a = probe([1.0, 1.0e5, 1.0e-5, 1.0e-9, 0.5, -2.0, -1.0e6]);
        let audit = audit(&a, Precision::F16);
        assert!(audit.saturate > 0, "1e5/1e6 saturate f16");
        assert!(audit.subnormal > 0, "1e-5 is f16-subnormal");
        assert!(audit.underflow_zero > 0, "1e-9 flushes to zero in f16");
        assert!(audit.headroom > 1.0);
        assert!(!audit.overflow_free());
        assert!(audit.underflow_loss_fraction() > 0.0);
        // The same matrix audits clean in f32.
        let audit32 = super::audit(&a, Precision::F32);
        assert!(audit32.overflow_free());
        assert_eq!(audit32.underflow_zero + audit32.subnormal, 0);
        assert!(audit32.headroom < 1.0);
        assert!(audit32.max_rel_err <= Precision::F32.unit_roundoff());
    }

    #[test]
    fn policy_matrix_outcomes() {
        let a = probe([1.0, 1.0e5, 1.0e-5, 1.0e-9, 0.5, -2.0, -1.0e6]);
        // Reject refuses the saturating entry with a typed error.
        let err = truncate_with_policy::<F16>(&a, TruncationPolicy::Reject).unwrap_err();
        assert!(matches!(err, TruncationError::Saturation { .. }), "{err}");
        // Saturate clamps to ±MAX: finite everywhere.
        let sat = truncate_with_policy::<F16>(&a, TruncationPolicy::Saturate).unwrap();
        assert!(sat.all_finite());
        let (mx, nonfinite) = sat.abs_max();
        assert!(!nonfinite);
        assert!((mx - F16::MAX_F64).abs() < 1.0);
        // FlushToZero additionally leaves no subnormals behind.
        let ftz = truncate_with_policy::<F16>(&a, TruncationPolicy::FlushToZero).unwrap();
        assert!(ftz.all_finite());
        let scan = crate::scan::scan(&ftz);
        assert_eq!(scan.total.subnormal, 0);
        // The plain IEEE conversion (the old behavior) overflows.
        assert!(!a.convert::<F16>().all_finite());
    }

    #[test]
    fn reject_passes_clean_matrices_bit_for_bit() {
        let a = probe([6.0, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25]);
        let ok = truncate_with_policy::<F16>(&a, TruncationPolicy::Reject).unwrap();
        let plain = a.convert::<F16>();
        assert_eq!(ok.data().len(), plain.data().len());
        for (x, y) in ok.data().iter().zip(plain.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn reject_flags_non_finite_source() {
        let mut a = probe([6.0, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25]);
        a.set(0, 0, f64::NAN);
        let err = truncate_with_policy::<F16>(&a, TruncationPolicy::Reject).unwrap_err();
        assert!(matches!(err, TruncationError::NonFiniteSource { cell: 0, tap: 0, .. }));
    }

    #[test]
    fn drift_measures_log2_shifts() {
        let base = audit(&probe([6.0, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25]), Precision::F16);
        // Identical operator: zero drift, nothing structural.
        let d = drift(&base, &base);
        assert_eq!(d.magnitude(), 0.0);
        assert!(!d.structural());
        // A uniform 4x rescale moves both ends of the range by 2 log2.
        let scaled = audit(&probe([24.0, -4.0, -4.0, -2.0, -6.0, -8.0, -1.0]), Precision::F16);
        let d = drift(&base, &scaled);
        assert!((d.range_shift - 2.0).abs() < 1e-12, "{d}");
        assert!((d.floor_shift - 2.0).abs() < 1e-12, "{d}");
        assert_eq!(d.magnitude(), d.range_shift.max(d.floor_shift));
        assert!(!d.structural());
        // Drift is symmetric: shrinking is as far as growing.
        let back = drift(&scaled, &base);
        assert!((back.magnitude() - d.magnitude()).abs() < 1e-12);
    }

    #[test]
    fn drift_flags_structural_changes() {
        let base = audit(&probe([6.0, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25]), Precision::F16);
        // New saturation where the baseline was overflow-free.
        let hot = audit(&probe([6.0e5, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25]), Precision::F16);
        let d = drift(&base, &hot);
        assert!(d.new_overflow, "{d}");
        assert!(d.structural());
        // A vanished coupling changes the nonzero count.
        let sparse = audit(&probe([6.0, 0.0, -1.0, -0.5, -1.5, -2.0, -0.25]), Precision::F16);
        let d = drift(&base, &sparse);
        assert!(d.structure_changed, "{d}");
        assert!(d.structural());
        // A zeroed range end is unbounded drift, not a panic.
        let d = drift(&sparse, &base);
        assert!(d.magnitude().is_infinite() || d.structure_changed);
    }

    #[test]
    fn drift_degenerate_ranges() {
        // An all-zero operator audits to an empty value range (the
        // abs_min_nonzero sentinel collapses to 0, not +inf)...
        let zero = audit(&probe([0.0; 7]), Precision::F16);
        assert_eq!(zero.nonzero(), 0);
        assert_eq!(zero.abs_max, 0.0);
        assert_eq!(zero.abs_min_nonzero, 0.0);
        assert!(zero.overflow_free());
        assert_eq!(zero.underflow_loss_fraction(), 0.0);
        // ...and self-drift of the degenerate range is exactly zero,
        // never NaN from a 0/0 ratio.
        let d = drift(&zero, &zero);
        assert_eq!(d.magnitude(), 0.0);
        assert!(!d.structural());
        // Zero → live is unbounded drift AND a structural change, in
        // both directions.
        let live = audit(&probe([6.0, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25]), Precision::F16);
        for (a, b) in [(&zero, &live), (&live, &zero)] {
            let d = drift(a, b);
            assert!(d.range_shift.is_infinite(), "{d}");
            assert!(d.floor_shift.is_infinite(), "{d}");
            assert!(d.structure_changed, "{d}");
        }
    }

    #[test]
    fn drift_empty_audit() {
        // A zero-tap matrix audits to zero entries without panicking;
        // self-drift is clean, drift against a real operator is
        // structural (the entry counts disagree).
        let e = SgDia::<f64>::zeros(Grid3::cube(2), Pattern::new(vec![]), Layout::Soa);
        let empty = audit(&e, Precision::F16);
        assert_eq!(empty.entries, 0);
        assert_eq!(empty.abs_max, 0.0);
        assert_eq!(empty.abs_min_nonzero, 0.0);
        assert_eq!(empty.headroom, 0.0);
        let d = drift(&empty, &empty);
        assert_eq!(d.magnitude(), 0.0);
        assert!(!d.structural());
        let live = audit(&probe([6.0, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25]), Precision::F16);
        assert!(drift(&empty, &live).structure_changed);
        assert!(drift(&live, &empty).structure_changed);
    }

    #[test]
    fn drift_nan_current_is_structural_not_a_range_event() {
        let values = [6.0, -1.0, -1.0, -0.5, -1.5, -2.0, -0.25];
        let base = audit(&probe(values), Precision::F16);
        let mut sick = probe(values);
        // Poison the diagonal: always in-grid, so a nonzero entry goes
        // non-finite rather than a structural zero changing count.
        let center = sick.pattern().taps().iter().position(|t| t.is_diagonal()).unwrap();
        sick.set(0, center, f64::NAN);
        let cur = audit(&sick, Precision::F16);
        assert_eq!(cur.source_non_finite, 1);
        assert!(!cur.overflow_free());
        // The NaN is skipped before the min/max fold: the other cells
        // still carry the full value set, so the range ends are
        // untouched — only the overflow flag reports the corruption.
        let d = drift(&base, &cur);
        assert_eq!(d.range_shift, 0.0, "{d}");
        assert_eq!(d.floor_shift, 0.0, "{d}");
        assert!(d.new_overflow, "{d}");
        assert!(!d.structure_changed, "{d}");
        assert!(d.structural());
        // An already-sick baseline reports no NEW overflow when the
        // current operator is clean (recovery is not an invalidation).
        let back = drift(&cur, &base);
        assert!(!back.new_overflow, "{back}");
        assert!(!back.structural());
    }
}
