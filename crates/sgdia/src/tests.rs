//! Unit and property tests: every structured kernel is validated against
//! the CSR reference on the same operator, across layouts and storage
//! precisions.

use fp16mg_fp::{Bf16, Precision, F16};
use fp16mg_grid::{Grid3, Wavefronts};
use fp16mg_stencil::Pattern;
use fp16mg_testkit::{check, check_n};

use crate::kernels::{self, BlockDiagInv, Par};
use crate::model::{self, Format};
use crate::scaling::{self, GChoice};
use crate::{Csr, Layout, SgDia};

/// Deterministic pseudo-random stream in [lo, hi).
fn rng_stream(seed: u64, lo: f64, hi: f64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        lo + (hi - lo) * ((state >> 11) as f64 / (1u64 << 53) as f64)
    }
}

/// Random diagonally-dominant matrix: off-diagonal entries in [-1, 0),
/// diagonal = Σ|off-diag| + margin. An M-matrix, so scaling applies.
fn random_matrix(grid: Grid3, pattern: Pattern, layout: Layout, seed: u64) -> SgDia<f64> {
    let mut rng = rng_stream(seed, 0.1, 1.0);
    let taps: Vec<_> = pattern.taps().to_vec();
    // First pass: off-diagonals.
    let mut m = SgDia::<f64>::from_fn(grid, pattern, layout, |_, _, _, _, t| {
        if taps[t].is_diagonal() {
            0.0
        } else {
            -rng()
        }
    });
    // Second pass: diagonals dominate their row.
    let diag_idx: Vec<usize> = m.pattern().diagonal_indices();
    let r = grid.components;
    let mut rowsum = vec![0.0f64; grid.unknowns()];
    for cell in 0..grid.cells() {
        for (t, tap) in taps.iter().enumerate() {
            rowsum[cell * r + tap.cout as usize] += m.get(cell, t).abs();
        }
    }
    for cell in 0..grid.cells() {
        for (c, &t) in diag_idx.iter().enumerate() {
            m.set(cell, t, rowsum[cell * r + c] + 0.5);
        }
    }
    m
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rng_stream(seed, -1.0, 1.0);
    (0..n).map(|_| rng()).collect()
}

fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs() / (1.0 + x.abs().max(y.abs()))).fold(0.0, f64::max)
}

#[test]
fn nnz_counts_interior_and_boundary() {
    let a = SgDia::<f64>::zeros(Grid3::cube(4), Pattern::p7(), Layout::Aos);
    // 7-point on 4^3: 64*7 - 6 faces * 16 cells missing one tap each.
    assert_eq!(a.nnz(), 64 * 7 - 6 * 16);
    assert_eq!(a.stored_entries(), 64 * 7);
    // Vector problem multiplies by r^2.
    let av = SgDia::<f64>::zeros(
        Grid3::with_components(4, 4, 4, 2),
        Pattern::p7().with_components(2),
        Layout::Aos,
    );
    assert_eq!(av.nnz(), (64 * 7 - 6 * 16) * 4);
}

#[test]
fn layout_round_trip() {
    let g = Grid3::new(5, 4, 3);
    let a = random_matrix(g, Pattern::p19(), Layout::Aos, 7);
    let soa = a.to_layout(Layout::Soa);
    assert_eq!(soa.layout(), Layout::Soa);
    for cell in 0..g.cells() {
        for t in 0..a.pattern().len() {
            assert_eq!(a.get(cell, t), soa.get(cell, t));
        }
    }
    let back = soa.to_layout(Layout::Aos);
    assert_eq!(back.data(), a.data());
}

#[test]
fn spmv_matches_csr_f64() {
    for pat in [Pattern::p7(), Pattern::p15(), Pattern::p19(), Pattern::p27()] {
        let g = Grid3::new(6, 5, 4);
        let a = random_matrix(g, pat, Layout::Aos, 42);
        let csr = Csr::from_sgdia(&a);
        let x = random_vec(g.unknowns(), 1);
        let mut y1 = vec![0.0f64; g.unknowns()];
        let mut y2 = vec![0.0f64; g.unknowns()];
        kernels::spmv(&a, &x, &mut y1, Par::Seq);
        csr.spmv(&x, &mut y2);
        assert!(max_rel_err(&y1, &y2) < 1e-12, "pattern {}", a.pattern().name());
    }
}

#[test]
fn spmv_block_matches_csr() {
    let g = Grid3::with_components(4, 4, 3, 3);
    let a = random_matrix(g, Pattern::p7().with_components(3), Layout::Aos, 9);
    let csr = Csr::from_sgdia(&a);
    let x = random_vec(g.unknowns(), 2);
    let mut y1 = vec![0.0f64; g.unknowns()];
    let mut y2 = vec![0.0f64; g.unknowns()];
    kernels::spmv(&a, &x, &mut y1, Par::Seq);
    csr.spmv(&x, &mut y2);
    assert!(max_rel_err(&y1, &y2) < 1e-12);
}

#[test]
fn simd_spmv_matches_generic_f16() {
    // The SOA/f32 SIMD path and the AOS generic path must agree exactly on
    // the same F16 data (fma vs mul_add are both single-rounded).
    let g = Grid3::new(17, 9, 5); // odd sizes exercise edge handling
    let a64 = random_matrix(g, Pattern::p27(), Layout::Aos, 3);
    let a16_aos = a64.convert::<F16>();
    let a16_soa = a16_aos.to_layout(Layout::Soa);
    let x: Vec<f32> = random_vec(g.unknowns(), 4).iter().map(|&v| v as f32).collect();
    let mut y1 = vec![0.0f32; g.unknowns()];
    let mut y2 = vec![0.0f32; g.unknowns()];
    kernels::spmv(&a16_aos, &x, &mut y1, Par::Seq);
    kernels::spmv(&a16_soa, &x, &mut y2, Par::Seq);
    for (i, (&u, &v)) in y1.iter().zip(&y2).enumerate() {
        assert!((u - v).abs() <= 1e-6 * (1.0 + u.abs()), "cell {i}: {u} vs {v}");
    }
}

#[test]
fn simd_residual_matches_generic() {
    let g = Grid3::new(13, 7, 6);
    let a64 = random_matrix(g, Pattern::p19(), Layout::Aos, 8);
    let a16_aos = a64.convert::<F16>();
    let a16_soa = a16_aos.to_layout(Layout::Soa);
    let x: Vec<f32> = random_vec(g.unknowns(), 5).iter().map(|&v| v as f32).collect();
    let b: Vec<f32> = random_vec(g.unknowns(), 6).iter().map(|&v| v as f32).collect();
    let mut r1 = vec![0.0f32; g.unknowns()];
    let mut r2 = vec![0.0f32; g.unknowns()];
    kernels::residual(&a16_aos, &b, &x, &mut r1, Par::Seq);
    kernels::residual(&a16_soa, &b, &x, &mut r2, Par::Seq);
    for (&u, &v) in r1.iter().zip(&r2) {
        assert!((u - v).abs() <= 1e-5 * (1.0 + u.abs()));
    }
}

#[test]
fn spmv_f32_soa_simd_matches_aos() {
    let g = Grid3::new(11, 8, 3);
    let a64 = random_matrix(g, Pattern::p27(), Layout::Aos, 12);
    let a32_aos = a64.convert::<f32>();
    let a32_soa = a32_aos.to_layout(Layout::Soa);
    let x: Vec<f32> = random_vec(g.unknowns(), 7).iter().map(|&v| v as f32).collect();
    let mut y1 = vec![0.0f32; g.unknowns()];
    let mut y2 = vec![0.0f32; g.unknowns()];
    kernels::spmv(&a32_aos, &x, &mut y1, Par::Seq);
    kernels::spmv(&a32_soa, &x, &mut y2, Par::Seq);
    for (&u, &v) in y1.iter().zip(&y2) {
        assert!((u - v).abs() <= 1e-6 * (1.0 + u.abs()));
    }
}

#[test]
fn spmv_parallel_matches_seq() {
    let g = Grid3::cube(24);
    let a = random_matrix(g, Pattern::p7(), Layout::Soa, 21).convert::<F16>();
    let x: Vec<f32> = random_vec(g.unknowns(), 3).iter().map(|&v| v as f32).collect();
    let mut y1 = vec![0.0f32; g.unknowns()];
    let mut y2 = vec![0.0f32; g.unknowns()];
    kernels::spmv(&a, &x, &mut y1, Par::Seq);
    kernels::spmv(&a, &x, &mut y2, Par::Threads(0));
    assert_eq!(y1, y2);
}

#[test]
fn spmv_axpy_accumulates() {
    let g = Grid3::cube(5);
    let a = random_matrix(g, Pattern::p7(), Layout::Aos, 30);
    let x = random_vec(g.unknowns(), 31);
    let mut y = random_vec(g.unknowns(), 32);
    let y0 = y.clone();
    let mut ax = vec![0.0f64; g.unknowns()];
    kernels::spmv(&a, &x, &mut ax, Par::Seq);
    kernels::spmv_axpy(&a, &x, &mut y, Par::Seq);
    for i in 0..y.len() {
        assert!((y[i] - (y0[i] + ax[i])).abs() < 1e-12);
    }
}

#[test]
fn sptrsv_forward_solves_lower_system() {
    for pat in [Pattern::p7(), Pattern::p19(), Pattern::p27()] {
        let g = Grid3::new(7, 6, 5);
        let full = random_matrix(g, pat, Layout::Aos, 50);
        // Build L explicitly with the lower pattern.
        let lp = full.pattern().lower_with_diag();
        let mut l = SgDia::<f64>::zeros(g, lp.clone(), Layout::Aos);
        for cell in 0..g.cells() {
            for (t, tap) in lp.taps().iter().enumerate() {
                let ft = full.pattern().tap_index(*tap).unwrap();
                l.set(cell, t, full.get(cell, ft));
            }
        }
        let b = random_vec(g.unknowns(), 51);
        let mut x = vec![0.0f64; g.unknowns()];
        kernels::sptrsv_forward(&l, &b, &mut x);
        // Check L x = b by CSR lower solve comparison.
        let csr = Csr::from_sgdia(&l);
        let mut xref = vec![0.0f64; g.unknowns()];
        csr.solve_lower(&b, &mut xref);
        assert!(max_rel_err(&x, &xref) < 1e-12, "{}", lp.name());
        // And by multiplying back.
        let mut bx = vec![0.0f64; g.unknowns()];
        kernels::spmv(&l, &x, &mut bx, Par::Seq);
        assert!(max_rel_err(&bx, &b) < 1e-10);
    }
}

#[test]
fn sptrsv_backward_solves_upper_system() {
    let g = Grid3::new(6, 5, 4);
    let full = random_matrix(g, Pattern::p27(), Layout::Aos, 60);
    let up = full.pattern().lower_with_diag().transpose();
    let mut u = SgDia::<f64>::zeros(g, up.clone(), Layout::Aos);
    for cell in 0..g.cells() {
        for (t, tap) in up.taps().iter().enumerate() {
            let ft = full.pattern().tap_index(*tap).unwrap();
            u.set(cell, t, full.get(cell, ft));
        }
    }
    let b = random_vec(g.unknowns(), 61);
    let mut x = vec![0.0f64; g.unknowns()];
    kernels::sptrsv_backward(&u, &b, &mut x);
    let csr = Csr::from_sgdia(&u);
    let mut xref = vec![0.0f64; g.unknowns()];
    csr.solve_upper(&b, &mut xref);
    assert!(max_rel_err(&x, &xref) < 1e-12);
}

#[test]
fn sptrsv_staged_f16_matches_generic() {
    let g = Grid3::new(19, 6, 4);
    let full = random_matrix(g, Pattern::p27(), Layout::Aos, 70);
    let lp = full.pattern().lower_with_diag();
    let mut l = SgDia::<f64>::zeros(g, lp.clone(), Layout::Aos);
    for cell in 0..g.cells() {
        for (t, tap) in lp.taps().iter().enumerate() {
            let ft = full.pattern().tap_index(*tap).unwrap();
            l.set(cell, t, full.get(cell, ft));
        }
    }
    let l16_aos = l.convert::<F16>();
    let l16_soa = l16_aos.to_layout(Layout::Soa);
    let b: Vec<f32> = random_vec(g.unknowns(), 71).iter().map(|&v| v as f32).collect();
    let mut x1 = vec![0.0f32; g.unknowns()];
    let mut x2 = vec![0.0f32; g.unknowns()];
    kernels::sptrsv_forward(&l16_aos, &b, &mut x1); // generic path
    kernels::sptrsv_forward(&l16_soa, &b, &mut x2); // staged path
    for (&u, &v) in x1.iter().zip(&x2) {
        assert!((u - v).abs() <= 1e-5 * (1.0 + u.abs()), "{u} vs {v}");
    }
}

#[test]
fn sptrsv_wavefront_matches_sequential() {
    let g = Grid3::new(9, 7, 5);
    let full = random_matrix(g, Pattern::p7(), Layout::Aos, 80);
    let lp = full.pattern().lower_with_diag();
    let mut l = SgDia::<f64>::zeros(g, lp.clone(), Layout::Aos);
    for cell in 0..g.cells() {
        for (t, tap) in lp.taps().iter().enumerate() {
            let ft = full.pattern().tap_index(*tap).unwrap();
            l.set(cell, t, full.get(cell, ft));
        }
    }
    let waves = Wavefronts::build(&g);
    let b = random_vec(g.unknowns(), 81);
    let mut x1 = vec![0.0f64; g.unknowns()];
    let mut x2 = vec![0.0f64; g.unknowns()];
    kernels::sptrsv_forward(&l, &b, &mut x1);
    kernels::sptrsv_forward_wavefront(&l, &waves, &b, &mut x2, Par::Seq);
    assert!(max_rel_err(&x1, &x2) < 1e-13);
}

#[test]
fn block_diag_inv_inverts() {
    let g = Grid3::with_components(3, 3, 3, 3);
    let a = random_matrix(g, Pattern::p7().with_components(3), Layout::Aos, 90);
    let dinv = BlockDiagInv::<f64>::from_matrix(&a).unwrap();
    // D * D^-1 rhs == rhs for every cell.
    let rhs = [0.3f64, -0.7, 1.1];
    for cell in 0..g.cells() {
        let mut out = [0.0f64; 3];
        dinv.solve(cell, &rhs, &mut out);
        // Multiply by the diagonal block again.
        let mut back = [0.0f64; 3];
        for tap in a.pattern().taps() {
            if tap.is_center() {
                let t = a.pattern().tap_index(*tap).unwrap();
                back[tap.cout as usize] += a.get(cell, t) * out[tap.cin as usize];
            }
        }
        for c in 0..3 {
            assert!((back[c] - rhs[c]).abs() < 1e-10, "cell {cell} comp {c}");
        }
    }
}

#[test]
fn gs_sweeps_reduce_spd_error() {
    let g = Grid3::cube(8);
    let a = random_matrix(g, Pattern::p7(), Layout::Aos, 100);
    let dinv = BlockDiagInv::<f64>::from_matrix(&a).unwrap();
    let xtrue = random_vec(g.unknowns(), 101);
    let mut b = vec![0.0f64; g.unknowns()];
    kernels::spmv(&a, &xtrue, &mut b, Par::Seq);
    let mut x = vec![0.0f64; g.unknowns()];
    let mut prev = f64::INFINITY;
    for _ in 0..60 {
        kernels::gs_forward(&a, &dinv, &b, &mut x);
        kernels::gs_backward(&a, &dinv, &b, &mut x);
        let err: f64 = x.iter().zip(&xtrue).map(|(&u, &v)| (u - v) * (u - v)).sum();
        assert!(err < prev || err < 1e-20, "SymGS must be monotone on this SPD system");
        prev = err;
    }
    assert!(prev < 1e-6);
}

#[test]
fn gs_staged_f16_matches_generic() {
    let g = Grid3::new(15, 6, 4);
    let a64 = random_matrix(g, Pattern::p19(), Layout::Aos, 110);
    let a16_aos = a64.convert::<F16>();
    let a16_soa = a16_aos.to_layout(Layout::Soa);
    let dinv_aos = BlockDiagInv::<f32>::from_matrix(&a16_aos).unwrap();
    let dinv_soa = BlockDiagInv::<f32>::from_matrix(&a16_soa).unwrap();
    let b: Vec<f32> = random_vec(g.unknowns(), 111).iter().map(|&v| v as f32).collect();
    let mut x1 = vec![0.0f32; g.unknowns()];
    let mut x2 = vec![0.0f32; g.unknowns()];
    kernels::gs_forward(&a16_aos, &dinv_aos, &b, &mut x1);
    kernels::gs_forward(&a16_soa, &dinv_soa, &b, &mut x2);
    for (&u, &v) in x1.iter().zip(&x2) {
        assert!((u - v).abs() <= 1e-4 * (1.0 + u.abs()), "{u} vs {v}");
    }
    kernels::gs_backward(&a16_aos, &dinv_aos, &b, &mut x1);
    kernels::gs_backward(&a16_soa, &dinv_soa, &b, &mut x2);
    for (&u, &v) in x1.iter().zip(&x2) {
        assert!((u - v).abs() <= 1e-4 * (1.0 + u.abs()), "{u} vs {v}");
    }
}

#[test]
fn gs_block_solves_exactly_on_block_diagonal_matrix() {
    // With only center taps, one GS sweep is a direct solve.
    let g = Grid3::with_components(3, 3, 2, 2);
    let center = Pattern::new(
        (0..2u8)
            .flat_map(|o| (0..2u8).map(move |i| fp16mg_stencil::Tap::at_comp(0, 0, 0, o, i)))
            .collect(),
    );
    let a = random_matrix(g, center, Layout::Aos, 120);
    let dinv = BlockDiagInv::<f64>::from_matrix(&a).unwrap();
    let xtrue = random_vec(g.unknowns(), 121);
    let mut b = vec![0.0f64; g.unknowns()];
    kernels::spmv(&a, &xtrue, &mut b, Par::Seq);
    let mut x = vec![0.0f64; g.unknowns()];
    kernels::gs_forward(&a, &dinv, &b, &mut x);
    assert!(max_rel_err(&x, &xtrue) < 1e-12);
}

#[test]
fn transpose_matches_csr_transpose() {
    let g = Grid3::new(4, 5, 3);
    let a = random_matrix(g, Pattern::p19(), Layout::Aos, 130);
    let at = a.transpose();
    let x = random_vec(g.unknowns(), 131);
    // y1 = Aᵀ x via structured transpose.
    let mut y1 = vec![0.0f64; g.unknowns()];
    kernels::spmv(&at, &x, &mut y1, Par::Seq);
    // y2 = Aᵀ x via xᵀA on the CSR (column accumulation).
    let csr = Csr::from_sgdia(&a);
    let mut y2 = vec![0.0f64; g.unknowns()];
    for (row, &xr) in x.iter().enumerate().take(csr.rows()) {
        let lo = csr.row_ptr()[row] as usize;
        let hi = csr.row_ptr()[row + 1] as usize;
        for e in lo..hi {
            y2[csr.col_idx()[e] as usize] += csr.values()[e] * xr;
        }
    }
    assert!(max_rel_err(&y1, &y2) < 1e-12);
}

#[test]
fn convert_truncates_and_detects_overflow() {
    let g = Grid3::cube(3);
    let mut a = SgDia::<f64>::zeros(g, Pattern::p7(), Layout::Aos);
    let dt = a.pattern().diagonal_indices()[0];
    for cell in 0..g.cells() {
        a.set(cell, dt, 1.0e8);
    }
    let a16 = a.convert::<F16>();
    assert!(!a16.all_finite(), "1e8 must overflow FP16");
    let ab16 = a.convert::<Bf16>();
    assert!(ab16.all_finite(), "1e8 fits in BF16");
    let (mx, nonfinite) = a16.abs_max();
    assert!(nonfinite);
    assert_eq!(mx, 0.0);
}

#[test]
fn g_max_prevents_overflow() {
    // Matrix with huge entries: diagonal 1e8, off-diagonal -1e7.
    let g = Grid3::cube(4);
    let p = Pattern::p7();
    let taps: Vec<_> = p.taps().to_vec();
    let mut a = SgDia::<f64>::from_fn(g, p, Layout::Aos, |_, _, _, _, t| {
        if taps[t].is_diagonal() {
            1.0e8
        } else {
            -1.0e7
        }
    });
    assert!(!a.convert::<F16>().all_finite(), "unscaled must overflow");
    let gmax = scaling::g_max(&a, F16::MAX_F64).unwrap();
    // The minimum ratio over all entries includes the diagonal itself
    // (a_ii / a_ii = 1), so G_max = FP16_MAX exactly; off-diagonals scale
    // to G/10 and stay far from overflow.
    assert!((gmax - F16::MAX_F64).abs() / gmax < 1e-12);
    let sv = scaling::scale_symmetric::<f32>(&mut a, GChoice::Auto, F16::MAX_F64).unwrap();
    let a16 = a.convert::<F16>();
    assert!(a16.all_finite(), "Theorem 4.1: scaled truncation is overflow-free");
    // Scaled diagonal equals G.
    let dt = a16.pattern().diagonal_indices()[0];
    for cell in 0..g.cells() {
        assert!((a16.get(cell, dt).to_f64() - sv.g).abs() / sv.g < 1e-3);
    }
}

#[test]
fn scaling_recovers_original_operator() {
    let g = Grid3::cube(5);
    let a = random_matrix(g, Pattern::p27(), Layout::Aos, 140);
    let mut scaled = a.clone();
    let sv = scaling::scale_symmetric::<f64>(&mut scaled, GChoice::Auto, F16::MAX_F64).unwrap();
    // A x == S (Ã (S x)) with S = diag(s).
    let x = random_vec(g.unknowns(), 141);
    let mut sx = vec![0.0f64; g.unknowns()];
    scaling::rescale_into(&x, &sv.s, &mut sx);
    let mut y = vec![0.0f64; g.unknowns()];
    kernels::spmv(&scaled, &sx, &mut y, Par::Seq);
    scaling::rescale_in_place(&mut y, &sv.s);
    let mut yref = vec![0.0f64; g.unknowns()];
    kernels::spmv(&a, &x, &mut yref, Par::Seq);
    assert!(max_rel_err(&y, &yref) < 1e-10);
    // s and s_inv are reciprocal.
    for (&si, &ii) in sv.s.iter().zip(&sv.s_inv) {
        assert!((si * ii - 1.0).abs() < 1e-12);
    }
}

#[test]
fn g_max_rejects_nonpositive_diagonal() {
    let g = Grid3::cube(2);
    let a = SgDia::<f64>::zeros(g, Pattern::p7(), Layout::Aos);
    assert!(scaling::g_max(&a, F16::MAX_F64).is_err());
}

#[test]
fn table2_matches_paper() {
    let rows = model::table2(model::SUITESPARSE_DELTA);
    // SG-DIA: 8/4/2 bytes, bounds 2/2/4.
    assert_eq!(rows[0].bytes, [8.0, 4.0, 2.0]);
    assert_eq!(rows[0].bounds, [2.0, 2.0, 4.0]);
    // CSR int32: bounds < 1.5 / < 1.3 / < 2.
    assert!(rows[1].bounds[0] < 1.5 && rows[1].bounds[0] > 1.3);
    assert!(rows[1].bounds[1] < 1.31); // (8+4δ)/(6+4δ) = 1.303 at δ=0.15
    assert!(rows[1].bounds[2] < 2.0 && rows[1].bounds[2] > 1.7);
    // CSR int64: bounds < 1.3 / < 1.2 / < 1.6.
    assert!(rows[2].bounds[0] < 1.31); // (16+8δ)/(12+8δ) = 1.303 at δ=0.15
    assert!(rows[2].bounds[1] < 1.2);
    assert!(rows[2].bounds[2] < 1.6);
}

#[test]
fn matrix_percent_eq2() {
    // 3d27 stencil on a large grid: percent ≈ 27/(27+2) ≈ 0.93; the paper
    // quotes 0.90 for 3d27, 0.88 for 3d19, 0.78 for 3d7 counting boundary
    // effects at specific sizes — check the asymptotic ordering.
    let p27 = model::matrix_percent(27, 1);
    let p19 = model::matrix_percent(19, 1);
    let p7 = model::matrix_percent(7, 1);
    assert!(p27 > p19 && p19 > p7);
    assert!(p7 > 0.7 && p27 > 0.9);
}

#[test]
fn spmv_max_speedup_bounds() {
    // Large 3d27 matrix: matrix dominates, ratio approaches 2.
    let s = model::spmv_max_speedup(
        27_000_000,
        1_000_000,
        Precision::F32,
        Precision::F16,
        Precision::F32,
    );
    assert!(s > 1.8 && s < 2.0, "got {s}");
    // 3d7: more vector-bound, lower ceiling.
    let s7 = model::spmv_max_speedup(
        7_000_000,
        1_000_000,
        Precision::F32,
        Precision::F16,
        Precision::F32,
    );
    assert!(s7 < s && s7 > 1.4, "got {s7}");
}

#[test]
fn format_bytes_per_nnz() {
    assert_eq!(Format::SgDia.bytes_per_nnz(Precision::F16, 0.15), 2.0);
    assert_eq!(Format::CsrInt32.bytes_per_nnz(Precision::F64, 0.0), 12.0);
    assert_eq!(Format::CsrInt64.bytes_per_nnz(Precision::F16, 0.0), 10.0);
}

#[test]
fn prop_spmv_matches_csr() {
    check("prop_spmv_matches_csr", |rng| {
        let seed = rng.next_u64() % 1000;
        let g = Grid3::new(rng.usize_range(2, 7), rng.usize_range(2, 6), rng.usize_range(2, 5));
        let a = random_matrix(g, Pattern::p19(), Layout::Aos, seed);
        let csr = Csr::from_sgdia(&a);
        let x = random_vec(g.unknowns(), seed ^ 0xabc);
        let mut y1 = vec![0.0f64; g.unknowns()];
        let mut y2 = vec![0.0f64; g.unknowns()];
        kernels::spmv(&a, &x, &mut y1, Par::Seq);
        csr.spmv(&x, &mut y2);
        assert!(max_rel_err(&y1, &y2) < 1e-12);
    });
}

#[test]
fn prop_scaling_theorem() {
    // Any diagonally dominant M-matrix scaled per Theorem 4.1 truncates
    // to finite FP16, regardless of the original magnitude.
    check("prop_scaling_theorem", |rng| {
        let seed = rng.next_u64() % 1000;
        let scale_pow = rng.usize_range(0, 12) as i32;
        let g = Grid3::cube(4);
        let factor = 10f64.powi(scale_pow);
        let mut a = random_matrix(g, Pattern::p7(), Layout::Aos, seed);
        for v in a.data_mut() {
            *v *= factor;
        }
        let mut scaled = a.clone();
        let _ = scaling::scale_symmetric::<f32>(&mut scaled, GChoice::Auto, F16::MAX_F64).unwrap();
        assert!(scaled.convert::<F16>().all_finite());
    });
}

#[test]
fn prop_sptrsv_residual_small() {
    check("prop_sptrsv_residual_small", |rng| {
        let seed = rng.next_u64() % 1000;
        let g = Grid3::new(5, 4, 3);
        let full = random_matrix(g, Pattern::p7(), Layout::Aos, seed);
        let lp = full.pattern().lower_with_diag();
        let mut l = SgDia::<f64>::zeros(g, lp.clone(), Layout::Aos);
        for cell in 0..g.cells() {
            for (t, tap) in lp.taps().iter().enumerate() {
                let ft = full.pattern().tap_index(*tap).unwrap();
                l.set(cell, t, full.get(cell, ft));
            }
        }
        let b = random_vec(g.unknowns(), seed ^ 0x123);
        let mut x = vec![0.0f64; g.unknowns()];
        kernels::sptrsv_forward(&l, &b, &mut x);
        let mut r = vec![0.0f64; g.unknowns()];
        kernels::residual(&l, &b, &x, &mut r, Par::Seq);
        assert!(r.iter().all(|&v| v.abs() < 1e-9));
    });
}

#[test]
fn prop_layout_conversion_identity() {
    check("prop_layout_conversion_identity", |rng| {
        let seed = rng.next_u64() % 1000;
        let g = Grid3::new(4, 3, 5);
        let a = random_matrix(g, Pattern::p15(), Layout::Aos, seed);
        let b = a.to_layout(Layout::Soa).to_layout(Layout::Aos);
        assert_eq!(a.data(), b.data());
    });
}

#[test]
fn staged_soa_spmv_matches_csr_for_all_storage() {
    // The staged SOA fallback (used for BF16, mixed-precision pairs, and
    // vector PDEs) must agree with the CSR reference.
    let g = Grid3::new(9, 5, 4);
    let a64 = random_matrix(g, Pattern::p19(), Layout::Soa, 200);
    let x = random_vec(g.unknowns(), 201);
    let csr = Csr::from_sgdia(&a64);
    let mut yref = vec![0.0f64; g.unknowns()];
    csr.spmv(&x, &mut yref);

    // f64 storage, f32 compute (exercises staged, not the f64 SIMD path).
    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let mut y32 = vec![0.0f32; g.unknowns()];
    kernels::spmv(&a64, &x32, &mut y32, Par::Seq);
    for (&u, &v) in y32.iter().zip(&yref) {
        assert!((u as f64 - v).abs() < 1e-4 * (1.0 + v.abs()));
    }

    // BF16 storage.
    let ab = a64.convert::<Bf16>();
    let mut yb = vec![0.0f32; g.unknowns()];
    kernels::spmv(&ab, &x32, &mut yb, Par::Seq);
    let mut yb_ref = vec![0.0f32; g.unknowns()];
    let ab_aos = ab.to_layout(Layout::Aos);
    kernels::spmv(&ab_aos, &x32, &mut yb_ref, Par::Seq);
    for (&u, &v) in yb.iter().zip(&yb_ref) {
        assert!((u - v).abs() < 1e-4 * (1.0 + v.abs()), "{u} vs {v}");
    }
}

#[test]
fn staged_soa_spmv_matches_generic_for_vector_pde() {
    let g = Grid3::with_components(7, 5, 4, 3);
    let a64 = random_matrix(g, Pattern::p7().with_components(3), Layout::Soa, 210);
    let a16_soa = a64.convert::<F16>();
    let a16_aos = a16_soa.to_layout(Layout::Aos); // generic path
    let x: Vec<f32> = random_vec(g.unknowns(), 211).iter().map(|&v| v as f32).collect();
    let b: Vec<f32> = random_vec(g.unknowns(), 212).iter().map(|&v| v as f32).collect();
    let mut y1 = vec![0.0f32; g.unknowns()];
    let mut y2 = vec![0.0f32; g.unknowns()];
    kernels::spmv(&a16_soa, &x, &mut y1, Par::Seq);
    kernels::spmv(&a16_aos, &x, &mut y2, Par::Seq);
    for (&u, &v) in y1.iter().zip(&y2) {
        assert!((u - v).abs() < 1e-4 * (1.0 + v.abs()), "{u} vs {v}");
    }
    let mut r1 = vec![0.0f32; g.unknowns()];
    let mut r2 = vec![0.0f32; g.unknowns()];
    kernels::residual(&a16_soa, &b, &x, &mut r1, Par::Seq);
    kernels::residual(&a16_aos, &b, &x, &mut r2, Par::Seq);
    for (&u, &v) in r1.iter().zip(&r2) {
        assert!((u - v).abs() < 1e-4 * (1.0 + v.abs()));
    }
}

#[test]
fn staged_gs_matches_generic_for_vector_pde() {
    let g = Grid3::with_components(6, 5, 3, 2);
    let a64 = random_matrix(g, Pattern::p7().with_components(2), Layout::Soa, 220);
    let a16_soa = a64.convert::<F16>();
    let a16_aos = a16_soa.to_layout(Layout::Aos);
    let dinv_soa = BlockDiagInv::<f32>::from_matrix(&a16_soa).unwrap();
    let dinv_aos = BlockDiagInv::<f32>::from_matrix(&a16_aos).unwrap();
    let b: Vec<f32> = random_vec(g.unknowns(), 221).iter().map(|&v| v as f32).collect();
    let mut x1 = vec![0.0f32; g.unknowns()];
    let mut x2 = vec![0.0f32; g.unknowns()];
    kernels::gs_forward(&a16_soa, &dinv_soa, &b, &mut x1);
    kernels::gs_forward(&a16_aos, &dinv_aos, &b, &mut x2);
    for (&u, &v) in x1.iter().zip(&x2) {
        assert!((u - v).abs() < 1e-3 * (1.0 + v.abs()), "{u} vs {v}");
    }
    kernels::gs_backward(&a16_soa, &dinv_soa, &b, &mut x1);
    kernels::gs_backward(&a16_aos, &dinv_aos, &b, &mut x2);
    for (&u, &v) in x1.iter().zip(&x2) {
        assert!((u - v).abs() < 1e-3 * (1.0 + v.abs()), "{u} vs {v}");
    }
}

#[test]
fn staged_spmv_parallel_chunks_split_lines_correctly() {
    // Force the staged path (f64 storage, f32 compute) with rayon
    // chunking: chunk boundaries land mid-line and must not corrupt y.
    let g = Grid3::new(40, 16, 16); // 10240 cells > 4096 chunk threshold
    let a = random_matrix(g, Pattern::p7(), Layout::Soa, 230);
    let x: Vec<f32> = random_vec(g.unknowns(), 231).iter().map(|&v| v as f32).collect();
    let mut y1 = vec![0.0f32; g.unknowns()];
    let mut y2 = vec![0.0f32; g.unknowns()];
    kernels::spmv(&a, &x, &mut y1, Par::Seq);
    kernels::spmv(&a, &x, &mut y2, Par::Threads(0));
    assert_eq!(y1, y2);
}

#[test]
fn naive_aos_f16_spmv_matches_soa() {
    // The naive AOS hardware-convert path (Fig. 4 left) must agree with
    // the SIMD SOA path bit-for-bit up to reduction order.
    let g = Grid3::new(21, 7, 5);
    let a64 = random_matrix(g, Pattern::p27(), Layout::Soa, 240);
    let a16_soa = a64.convert::<F16>();
    let a16_aos = a16_soa.to_layout(Layout::Aos);
    let x: Vec<f32> = random_vec(g.unknowns(), 241).iter().map(|&v| v as f32).collect();
    let mut y1 = vec![0.0f32; g.unknowns()];
    let mut y2 = vec![0.0f32; g.unknowns()];
    kernels::spmv(&a16_soa, &x, &mut y1, Par::Seq);
    kernels::spmv(&a16_aos, &x, &mut y2, Par::Seq);
    for (&u, &v) in y1.iter().zip(&y2) {
        assert!((u - v).abs() < 1e-5 * (1.0 + v.abs()));
    }
}

#[test]
fn ilu0_factors_reproduce_matrix_on_pattern() {
    // For ILU(0), (L·U)_ij == a_ij exactly on the stencil pattern (the
    // dropped fill lives outside it).
    let g = Grid3::new(5, 4, 3);
    let a = random_matrix(g, Pattern::p7(), Layout::Soa, 300);
    let f = crate::ilu::ilu0(&a).unwrap();
    let lcsr = Csr::<f64>::from_sgdia(&f.l);
    let ucsr = Csr::<f64>::from_sgdia(&f.u);
    let n = a.rows();
    let mut lrow = vec![0.0f64; n];
    let mut ucol_cache: Vec<Vec<f64>> = Vec::new();
    // Dense U rows.
    for r in 0..n {
        let mut row = vec![0.0f64; n];
        ucsr.dense_row(r, &mut row);
        ucol_cache.push(row);
    }
    let acsr = Csr::<f64>::from_sgdia(&a);
    let mut arow = vec![0.0f64; n];
    for i in 0..n {
        lcsr.dense_row(i, &mut lrow);
        acsr.dense_row(i, &mut arow);
        for j in 0..n {
            if arow[j] == 0.0 && i != j {
                continue; // only check the pattern
            }
            let mut lu = 0.0;
            for (k, &lv) in lrow.iter().enumerate() {
                if lv != 0.0 {
                    lu += lv * ucol_cache[k][j];
                }
            }
            // Structural positions of A (even if the value is zero at the
            // boundary) must match; allow roundoff.
            let scale = arow[j].abs().max(1.0);
            assert!((lu - arow[j]).abs() < 1e-10 * scale, "({i},{j}): {lu} vs {}", arow[j]);
        }
    }
}

#[test]
fn ilu0_preconditioner_beats_jacobi_quality() {
    // One ILU(0) application reduces the error more than one Jacobi
    // application on a diffusion operator.
    let g = Grid3::cube(8);
    let a = random_matrix(g, Pattern::p7(), Layout::Soa, 310);
    let f = crate::ilu::ilu0(&a).unwrap();
    let xtrue = random_vec(g.unknowns(), 311);
    let mut b = vec![0.0f64; g.unknowns()];
    kernels::spmv(&a, &xtrue, &mut b, Par::Seq);
    // ILU apply: x = U^{-1} L^{-1} b.
    let mut y = vec![0.0f64; g.unknowns()];
    kernels::sptrsv_forward(&f.l, &b, &mut y);
    let mut x_ilu = vec![0.0f64; g.unknowns()];
    kernels::sptrsv_backward(&f.u, &y, &mut x_ilu);
    // Jacobi apply: x = D^{-1} b.
    let dinv = BlockDiagInv::<f64>::from_matrix(&a).unwrap();
    let mut x_jac = vec![0.0f64; g.unknowns()];
    for c in 0..g.unknowns() {
        dinv.solve(c, &b[c..c + 1], &mut x_jac[c..c + 1]);
    }
    let err = |x: &[f64]| -> f64 {
        x.iter().zip(&xtrue).map(|(&u, &v)| (u - v) * (u - v)).sum::<f64>().sqrt()
    };
    assert!(err(&x_ilu) < 0.5 * err(&x_jac), "ILU {} vs Jacobi {}", err(&x_ilu), err(&x_jac));
}

#[test]
fn ilu0_truncated_factors_still_solve() {
    // The paper's flow: factor in high precision, truncate L/U to FP16,
    // solve with the mixed-precision kernels.
    let g = Grid3::cube(6);
    let a = random_matrix(g, Pattern::p19(), Layout::Soa, 320);
    let f = crate::ilu::ilu0(&a).unwrap();
    let l16 = f.l.convert::<F16>();
    let u16 = f.u.convert::<F16>();
    let b: Vec<f32> = random_vec(g.unknowns(), 321).iter().map(|&v| v as f32).collect();
    let mut y = vec![0.0f32; g.unknowns()];
    kernels::sptrsv_forward(&l16, &b, &mut y);
    let mut x = vec![0.0f32; g.unknowns()];
    kernels::sptrsv_backward(&u16, &y, &mut x);
    // Compare against the f64 factors: FP16 truncation error only.
    let b64: Vec<f64> = b.iter().map(|&v| v as f64).collect();
    let mut y64 = vec![0.0f64; g.unknowns()];
    kernels::sptrsv_forward(&f.l, &b64, &mut y64);
    let mut x64 = vec![0.0f64; g.unknowns()];
    kernels::sptrsv_backward(&f.u, &y64, &mut x64);
    for (&u, &v) in x.iter().zip(&x64) {
        assert!((u as f64 - v).abs() < 2e-2 * (1.0 + v.abs()), "{u} vs {v}");
    }
}

#[test]
fn ilu0_rejects_vector_matrices() {
    let g = Grid3::with_components(3, 3, 3, 2);
    let a = random_matrix(g, Pattern::p7().with_components(2), Layout::Soa, 330);
    let res = std::panic::catch_unwind(|| crate::ilu::ilu0(&a));
    assert!(res.is_err(), "ilu0 must panic on vector matrices");
}

#[test]
fn io_matrix_round_trip_all_precisions() {
    let g = Grid3::new(5, 4, 3);
    let a64 = random_matrix(g, Pattern::p19(), Layout::Soa, 400);
    // f64 exact round trip.
    let mut buf = Vec::new();
    crate::io::write_matrix(&a64, &mut buf).unwrap();
    let back = crate::io::read_matrix::<f64>(&mut buf.as_slice()).unwrap();
    assert_eq!(back.data(), a64.data());
    assert_eq!(back.pattern(), a64.pattern());
    assert_eq!(back.grid(), a64.grid());
    assert_eq!(back.layout(), a64.layout());
    // FP16: bit-exact round trip of the truncated values.
    let a16 = a64.convert::<F16>().to_layout(Layout::Aos);
    let mut buf = Vec::new();
    crate::io::write_matrix(&a16, &mut buf).unwrap();
    let back = crate::io::read_matrix::<F16>(&mut buf.as_slice()).unwrap();
    for (x, y) in back.data().iter().zip(a16.data()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(back.layout(), Layout::Aos);
    // BF16.
    let ab = a64.convert::<Bf16>();
    let mut buf = Vec::new();
    crate::io::write_matrix(&ab, &mut buf).unwrap();
    let back = crate::io::read_matrix::<Bf16>(&mut buf.as_slice()).unwrap();
    for (x, y) in back.data().iter().zip(ab.data()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn io_rejects_wrong_precision_and_magic() {
    let g = Grid3::cube(3);
    let a = random_matrix(g, Pattern::p7(), Layout::Soa, 410);
    let mut buf = Vec::new();
    crate::io::write_matrix(&a, &mut buf).unwrap();
    assert!(crate::io::read_matrix::<f32>(&mut buf.as_slice()).is_err());
    let garbage = b"NOTMAGIC-and-more-bytes".to_vec();
    assert!(crate::io::read_matrix::<f64>(&mut garbage.as_slice()).is_err());
}

#[test]
fn io_vector_round_trip() {
    let v = random_vec(137, 420);
    let mut buf = Vec::new();
    crate::io::write_vector(&v, &mut buf).unwrap();
    let back = crate::io::read_vector(&mut buf.as_slice()).unwrap();
    assert_eq!(v, back);
}

#[test]
fn io_matrix_market_round_trip() {
    let g = Grid3::new(4, 3, 3);
    let a = random_matrix(g, Pattern::p7(), Layout::Soa, 430);
    let csr = Csr::<f64>::from_sgdia(&a);
    let mut buf = Vec::new();
    crate::io::write_matrix_market(&csr, &mut buf).unwrap();
    let back = crate::io::read_matrix_market(&mut buf.as_slice()).unwrap();
    assert_eq!(back.rows(), csr.rows());
    assert_eq!(back.nnz(), csr.nnz());
    // SpMV agreement (entry order may differ within rows after sort).
    let x = random_vec(csr.rows(), 431);
    let mut y1 = vec![0.0f64; csr.rows()];
    let mut y2 = vec![0.0f64; csr.rows()];
    csr.spmv(&x, &mut y1);
    back.spmv(&x, &mut y2);
    for (u, v) in y1.iter().zip(&y2) {
        assert!((u - v).abs() < 1e-10 * (1.0 + u.abs()));
    }
}

#[test]
fn io_matrix_market_symmetric_expansion() {
    let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 1.5\n";
    let m = crate::io::read_matrix_market(&mut text.as_bytes()).unwrap();
    assert_eq!(m.nnz(), 5); // off-diagonal mirrored
    let x = vec![1.0f64, 2.0, 3.0];
    let mut y = vec![0.0f64; 3];
    m.spmv(&x, &mut y);
    assert_eq!(y, vec![2.0 - 2.0, -1.0 + 4.0, 4.5]);
}

/// Extracts the typed decode cause from a reader's `io::Error`.
fn decode_cause(err: std::io::Error) -> crate::io::DecodeError {
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    err.get_ref()
        .and_then(|e| e.downcast_ref::<crate::io::DecodeError>())
        .expect("inner error must be a DecodeError")
        .clone()
}

/// A binary matrix header with arbitrary counts: magic, five u64 counts,
/// precision tag (f64) and layout flag.
fn matrix_header(nx: u64, ny: u64, nz: u64, components: u64, ntaps: u64) -> Vec<u8> {
    let mut buf = b"FP16MGA1".to_vec();
    for v in [nx, ny, nz, components, ntaps] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&[0u8, 1u8]);
    buf
}

#[test]
fn io_corrupt_tap_count_is_refused_before_allocation() {
    use crate::io::{limits, DecodeError};
    // A header declaring u64::MAX taps must yield a typed refusal, not
    // an attempted huge allocation.
    let hdr = matrix_header(4, 4, 4, 1, u64::MAX);
    let err = crate::io::read_matrix::<f64>(&mut hdr.as_slice()).unwrap_err();
    assert_eq!(
        decode_cause(err),
        DecodeError::LimitExceeded { what: "taps", got: u64::MAX, limit: limits::MAX_TAPS as u64 }
    );
}

#[test]
fn io_corrupt_extent_and_component_counts_are_refused() {
    use crate::io::{limits, DecodeError};
    let hdr = matrix_header(1 << 60, 4, 4, 1, 7);
    let err = crate::io::read_matrix::<f64>(&mut hdr.as_slice()).unwrap_err();
    assert_eq!(
        decode_cause(err),
        DecodeError::LimitExceeded {
            what: "extent",
            got: 1 << 60,
            limit: limits::MAX_EXTENT as u64
        }
    );
    let hdr = matrix_header(4, 4, 4, 1 << 20, 7);
    let err = crate::io::read_matrix::<f64>(&mut hdr.as_slice()).unwrap_err();
    assert!(matches!(decode_cause(err), DecodeError::LimitExceeded { what: "components", .. }));
}

#[test]
fn io_total_entry_product_is_bounded_even_when_each_count_is_legal() {
    use crate::io::{limits, DecodeError};
    // Every count individually at or under its limit, but the product
    // (2^62 entries) is far past MAX_ENTRIES: the multiplied size must
    // be checked before any payload allocation.
    let hdr = matrix_header(
        limits::MAX_EXTENT as u64,
        limits::MAX_EXTENT as u64,
        limits::MAX_EXTENT as u64,
        limits::MAX_COMPONENTS as u64,
        limits::MAX_TAPS as u64,
    );
    let err = crate::io::read_matrix::<f64>(&mut hdr.as_slice()).unwrap_err();
    assert_eq!(decode_cause(err), DecodeError::EntriesOverflow);
}

#[test]
fn io_vector_length_is_bounded() {
    use crate::io::{limits, DecodeError};
    let mut buf = b"FP16MGV1".to_vec();
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    let err = crate::io::read_vector(&mut buf.as_slice()).unwrap_err();
    assert_eq!(
        decode_cause(err),
        DecodeError::LimitExceeded {
            what: "vector entries",
            got: u64::MAX,
            limit: limits::MAX_VECTOR_LEN as u64
        }
    );
}

#[test]
fn io_matrix_market_entry_count_is_bounded() {
    use crate::io::{limits, DecodeError};
    // A tiny text file declaring 2^30 + 1 stored entries: refused from
    // the size line alone.
    let text = format!(
        "%%MatrixMarket matrix coordinate real general\n10 10 {}\n",
        limits::MAX_NNZ as u64 + 1
    );
    let err = crate::io::read_matrix_market(&mut text.as_bytes()).unwrap_err();
    assert!(matches!(
        decode_cause(err),
        DecodeError::LimitExceeded { what: "MatrixMarket entries", .. }
    ));
}

#[test]
fn degenerate_grid_shapes() {
    // Quasi-1D and quasi-2D grids must work through every kernel path.
    for g in [Grid3::new(32, 1, 1), Grid3::new(16, 16, 1), Grid3::new(1, 8, 8), Grid3::new(2, 2, 2)]
    {
        let a = random_matrix(g, Pattern::p7(), Layout::Soa, 500 + g.nx as u64);
        let csr = Csr::from_sgdia(&a);
        let x = random_vec(g.unknowns(), 501);
        let mut y1 = vec![0.0f64; g.unknowns()];
        let mut y2 = vec![0.0f64; g.unknowns()];
        kernels::spmv(&a, &x, &mut y1, Par::Seq);
        csr.spmv(&x, &mut y2);
        assert!(max_rel_err(&y1, &y2) < 1e-12, "{g:?}");

        // GS sweep consistency SOA (staged) vs AOS (generic).
        let a16 = a.convert::<F16>();
        let a16_aos = a16.to_layout(Layout::Aos);
        let dinv1 = BlockDiagInv::<f32>::from_matrix(&a16).unwrap();
        let dinv2 = BlockDiagInv::<f32>::from_matrix(&a16_aos).unwrap();
        let b: Vec<f32> = random_vec(g.unknowns(), 502).iter().map(|&v| v as f32).collect();
        let mut x1 = vec![0.0f32; g.unknowns()];
        let mut x2 = vec![0.0f32; g.unknowns()];
        kernels::gs_forward(&a16, &dinv1, &b, &mut x1);
        kernels::gs_forward(&a16_aos, &dinv2, &b, &mut x2);
        for (&u, &v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-4 * (1.0 + v.abs()), "{g:?}: {u} vs {v}");
        }
    }
}

#[test]
fn sptrsv_on_degenerate_shapes() {
    for g in [Grid3::new(24, 1, 1), Grid3::new(8, 8, 1), Grid3::new(1, 1, 16)] {
        let full = random_matrix(g, Pattern::p7(), Layout::Soa, 510 + g.nz as u64);
        let l = crate::tests::lower_of(&full);
        let b = random_vec(g.unknowns(), 511);
        let mut x = vec![0.0f64; g.unknowns()];
        kernels::sptrsv_forward(&l, &b, &mut x);
        let mut r = vec![0.0f64; g.unknowns()];
        kernels::residual(&l, &b, &x, &mut r, Par::Seq);
        assert!(r.iter().all(|&v| v.abs() < 1e-9), "{g:?}");
    }
}

/// Extracts the lower-with-diag triangular matrix (test helper).
pub(crate) fn lower_of(full: &SgDia<f64>) -> SgDia<f64> {
    let lp = full.pattern().lower_with_diag();
    let mut l = SgDia::<f64>::zeros(*full.grid(), lp.clone(), full.layout());
    for cell in 0..full.grid().cells() {
        for (t, tap) in lp.taps().iter().enumerate() {
            let ft = full.pattern().tap_index(*tap).unwrap();
            l.set(cell, t, full.get(cell, ft));
        }
    }
    l
}

#[test]
fn ilu0_on_degenerate_shapes() {
    for g in [Grid3::new(16, 1, 1), Grid3::new(6, 6, 1)] {
        let a = random_matrix(g, Pattern::p7(), Layout::Soa, 520);
        let f = crate::ilu::ilu0(&a).unwrap();
        // (LU)⁻¹ b must be a decent approximation: residual smaller than b.
        let b = random_vec(g.unknowns(), 521);
        let mut y = vec![0.0f64; g.unknowns()];
        kernels::sptrsv_forward(&f.l, &b, &mut y);
        let mut x = vec![0.0f64; g.unknowns()];
        kernels::sptrsv_backward(&f.u, &y, &mut x);
        let mut r = vec![0.0f64; g.unknowns()];
        kernels::residual(&a, &b, &x, &mut r, Par::Seq);
        let rn: f64 = r.iter().map(|&v| v * v).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|&v| v * v).sum::<f64>().sqrt();
        assert!(rn < 0.6 * bn, "{g:?}: {rn} vs {bn}");
    }
}

// --- Precision-audit property harness -----------------------------------
//
// The proptest-style fuzz suite over the FP16 scaling pipeline: 256 cases
// per property by default (override with PROPTEST_CASES), randomized
// SPD-ish stencil matrices spanning many decades of magnitude. These are
// the executable forms of Theorem 4.1 and of the audit/policy contracts.

#[test]
fn prop_theorem41_invariant_any_g() {
    use crate::audit::{self, TruncationPolicy};
    use fp16mg_fp::Precision;
    // For ANY admissible G (Fixed draws across the admissible range; the
    // safety clamp to G_max/2 caps larger requests and must RECORD the
    // clamp), the scaled matrix stores in FP16 with zero saturating
    // entries — the Theorem 4.1 no-overflow invariant, checked through
    // the audit, through the Reject policy, and through the plain
    // conversion.
    check_n("prop_theorem41_invariant_any_g", 256, |rng| {
        let seed = rng.next_u64() % 100_000;
        let pow = rng.usize_range(0, 14) as i32 - 2; // 10^-2 .. 10^11
        let g3 = Grid3::cube(4);
        let mut a = random_matrix(g3, Pattern::p7(), Layout::Aos, seed);
        let factor = 10f64.powi(pow);
        for v in a.data_mut() {
            *v *= factor;
        }
        let gmax = scaling::g_max(&a, F16::MAX_F64).unwrap();
        let requested = gmax * rng.f64_range(0.01, 0.6);
        let mut scaled = a.clone();
        let sv =
            scaling::scale_symmetric::<f64>(&mut scaled, GChoice::Fixed(requested), F16::MAX_F64)
                .unwrap();
        if requested > gmax / 2.0 {
            assert_eq!(sv.g_clamped_from, Some(requested), "clamp must be recorded");
            assert!((sv.g - gmax / 2.0).abs() <= gmax * 1e-12);
        } else {
            assert_eq!(sv.g_clamped_from, None);
            assert_eq!(sv.g, requested);
        }
        let lv = audit::audit(&scaled, Precision::F16);
        assert!(lv.overflow_free(), "Theorem 4.1 violated: {lv}");
        assert!(lv.headroom < 1.0, "headroom {} must stay below 1", lv.headroom);
        // Reject must pass a theorem-compliant matrix...
        assert!(audit::truncate_with_policy::<F16>(&scaled, TruncationPolicy::Reject).is_ok());
        // ...and the silent conversion agrees.
        assert!(scaled.convert::<F16>().all_finite());
    });
}

#[test]
fn prop_scale_truncate_recover_roundtrip() {
    use fp16mg_fp::Storage;
    // scale → truncate to FP16 → recover (s_row · ã · s_col) loses at
    // most ~one FP16 ulp relative to the FP64 source, for every entry
    // whose scaled value stays in the normal range.
    check_n("prop_scale_truncate_recover_roundtrip", 256, |rng| {
        let seed = rng.next_u64() % 100_000;
        let pow = rng.usize_range(0, 10) as i32;
        let g3 = Grid3::cube(4);
        let mut a = random_matrix(g3, Pattern::p7(), Layout::Aos, seed);
        let factor = 10f64.powi(pow);
        for v in a.data_mut() {
            *v *= factor;
        }
        let mut scaled = a.clone();
        let sv = scaling::scale_symmetric::<f64>(&mut scaled, GChoice::Auto, F16::MAX_F64).unwrap();
        let r = g3.components;
        let taps: Vec<_> = a.pattern().taps().to_vec();
        for (cell, i, j, k) in g3.iter_cells() {
            for (t, tap) in taps.iter().enumerate() {
                if !g3.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    continue;
                }
                let orig = a.get(cell, t);
                if orig == 0.0 {
                    continue;
                }
                let stored = F16::from_f64(scaled.get(cell, t)).to_f64();
                if stored.abs() < <F16 as Storage>::MIN_POSITIVE_NORMAL {
                    continue; // subnormal/underflowed: counted by the audit, not bounded here
                }
                let nb = (cell as i64 + g3.stride(tap.dx, tap.dy, tap.dz)) as usize;
                let row = cell * r + tap.cout as usize;
                let col = nb * r + tap.cin as usize;
                let recovered = sv.s[row] * stored * sv.s[col];
                let rel = (recovered - orig).abs() / orig.abs();
                assert!(
                    rel <= 1.0e-3,
                    "round-trip rel err {rel:e} at cell {cell} tap {t} (orig {orig:e})"
                );
            }
        }
    });
}

#[test]
fn prop_reject_never_passes_saturation() {
    use crate::audit::{self, TruncationError, TruncationPolicy};
    use fp16mg_fp::{Precision, Storage};
    // Plant one out-of-range entry at a random position: Reject MUST
    // refuse the matrix (if it ever lets a saturating entry through,
    // this property fails), Saturate must clamp it finitely, FlushToZero
    // must additionally leave no subnormals, and the audit must have
    // predicted the saturation.
    check_n("prop_reject_never_passes_saturation", 256, |rng| {
        let seed = rng.next_u64() % 100_000;
        let g3 = Grid3::cube(3);
        let mut a = random_matrix(g3, Pattern::p7(), Layout::Aos, seed);
        let cell = rng.usize_range(0, g3.cells());
        let tap = rng.usize_range(0, a.pattern().len());
        let magnitude = rng.f64_range(1.1, 1.0e4) * F16::MAX_F64;
        let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
        a.set(cell, tap, sign * magnitude);
        let lv = audit::audit(&a, Precision::F16);
        assert!(lv.saturate >= 1, "audit must predict the planted saturation");
        assert!(!lv.overflow_free());
        match audit::truncate_with_policy::<F16>(&a, TruncationPolicy::Reject) {
            Err(TruncationError::Saturation { value, limit, .. }) => {
                assert!(value.abs() > limit);
            }
            other => panic!("Reject let a saturating entry through: {other:?}"),
        }
        let sat = audit::truncate_with_policy::<F16>(&a, TruncationPolicy::Saturate).unwrap();
        assert!(sat.all_finite());
        assert!(
            (sat.get(cell, tap).to_f64() - sign * <F16 as Storage>::MAX_FINITE).abs() < 1.0,
            "saturating entry must clamp to ±MAX"
        );
        let ftz = audit::truncate_with_policy::<F16>(&a, TruncationPolicy::FlushToZero).unwrap();
        assert!(ftz.all_finite());
        assert_eq!(crate::scan::scan(&ftz).total.subnormal, 0);
    });
}

#[test]
fn prop_audit_counts_are_exact() {
    use crate::audit;
    use fp16mg_fp::{NumClass, Precision, Storage};
    // The audit's underflow/subnormal/saturate counts must equal what the
    // plain IEEE conversion actually produces, entry for entry — the
    // audit is a prediction, not an estimate.
    check_n("prop_audit_counts_are_exact", 256, |rng| {
        let g3 = Grid3::cube(3);
        let p = Pattern::p7();
        let n_entries = g3.cells() * p.len();
        let mut a = SgDia::<f64>::zeros(g3, p, Layout::Soa);
        let values: Vec<f64> = (0..n_entries)
            .map(|_| {
                if rng.chance(0.1) {
                    return 0.0;
                }
                let pow = rng.usize_range(0, 22) as i32 - 12; // 10^-12 .. 10^9
                let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
                sign * rng.f64_range(1.0, 10.0) * 10f64.powi(pow)
            })
            .collect();
        for cell in 0..g3.cells() {
            for tap in 0..a.pattern().len() {
                a.set(cell, tap, values[cell * 7 + tap]);
            }
        }
        let lv = audit::audit(&a, Precision::F16);
        let (mut zeros, mut sub, mut sat, mut src_zero) = (0u64, 0u64, 0u64, 0u64);
        for &v in a.data() {
            if v == 0.0 {
                src_zero += 1;
                continue;
            }
            match F16::from_f64(v).class() {
                NumClass::Zero => zeros += 1,
                NumClass::Subnormal => sub += 1,
                NumClass::Inf | NumClass::Nan => sat += 1,
                NumClass::Normal => {}
            }
        }
        assert_eq!(lv.entries, n_entries as u64);
        assert_eq!(lv.source_zeros, src_zero);
        assert_eq!(lv.underflow_zero, zeros);
        assert_eq!(lv.subnormal, sub);
        assert_eq!(lv.saturate, sat);
        assert_eq!(lv.headroom, lv.abs_max / <F16 as Storage>::MAX_FINITE);
        assert!(lv.mean_rel_err <= lv.max_rel_err);
        if lv.subnormal == 0 {
            // With every surviving entry normal, truncation loss is bounded
            // by one unit roundoff (Sterbenz-style rounding bound).
            assert!(lv.max_rel_err <= Precision::F16.unit_roundoff() * 1.0001);
            assert!(lv.max_ulp() <= 1.0001);
        } else {
            // Subnormal survivors suffer gradual-underflow loss: a source
            // just above half the smallest subnormal rounds up with
            // relative error approaching (but never reaching) 100%.
            assert!(lv.max_rel_err < 1.0, "rel err {} >= 1", lv.max_rel_err);
        }
    });
}

#[test]
fn prop_drift_symmetry_and_monotonicity() {
    use crate::audit;
    use fp16mg_fp::Precision;
    // drift() is a metric-like comparison of two audits: a uniform
    // 2^p rescale must read as exactly |p| log2 on both range ends,
    // the measure must be symmetric in its arguments, and scaling
    // further must never measure closer.
    check_n("prop_drift_symmetry_and_monotonicity", 256, |rng| {
        let seed = rng.next_u64() % 100_000;
        let g3 = Grid3::cube(3);
        let a = random_matrix(g3, Pattern::p7(), Layout::Aos, seed);
        let base = audit::audit(&a, Precision::F16);
        let p = rng.usize_range(0, 13) as i32 - 6; // 2^-6 .. 2^6
        let mut b = a.clone();
        for v in b.data_mut() {
            *v *= (p as f64).exp2(); // power-of-two multiply: exact in f64
        }
        let cur = audit::audit(&b, Precision::F16);
        let d = audit::drift(&base, &cur);
        assert!((d.range_shift - p.abs() as f64).abs() < 1e-9, "{d}");
        assert!((d.floor_shift - p.abs() as f64).abs() < 1e-9, "{d}");
        assert!(!d.structure_changed, "a pure rescale is never structural: {d}");
        // Symmetry: growing reads as far as shrinking.
        let back = audit::drift(&cur, &base);
        assert!((back.range_shift - d.range_shift).abs() < 1e-12);
        assert!((back.floor_shift - d.floor_shift).abs() < 1e-12);
        // Monotonicity: one more doubling never drifts less.
        let mut c = a.clone();
        for v in c.data_mut() {
            *v *= ((p.abs() + 1) as f64).exp2();
        }
        let further = audit::drift(&base, &audit::audit(&c, Precision::F16));
        assert!(
            further.magnitude() >= d.magnitude() - 1e-12,
            "{} < {}",
            further.magnitude(),
            d.magnitude()
        );
    });
}

// --- Rescale length-check satellites ------------------------------------

#[test]
#[should_panic(expected = "rescale length mismatch")]
fn rescale_in_place_rejects_short_scale_vector() {
    let mut dst = vec![1.0f64; 8];
    let s = vec![2.0f64; 7];
    scaling::rescale_in_place(&mut dst, &s);
}

#[test]
#[should_panic(expected = "rescale length mismatch")]
fn rescale_into_rejects_mismatched_lengths() {
    let src = vec![1.0f64; 8];
    let s = vec![2.0f64; 8];
    let mut dst = vec![0.0f64; 6];
    scaling::rescale_into(&src, &s, &mut dst);
}

#[test]
fn scaling_error_carries_index_and_value() {
    let g3 = Grid3::cube(2);
    let p = Pattern::p7();
    let taps: Vec<_> = p.taps().to_vec();
    let mut a =
        SgDia::<f64>::from_fn(
            g3,
            p,
            Layout::Aos,
            |_, _, _, _, t| {
                if taps[t].is_diagonal() {
                    4.0
                } else {
                    -0.5
                }
            },
        );
    let dt = a.pattern().diagonal_indices()[0];
    a.set(3, dt, -7.0);
    let err = scaling::g_max(&a, F16::MAX_F64).unwrap_err();
    assert_eq!(err, scaling::ScalingError::NonPositiveDiagonal { unknown: 3, value: -7.0 });
    assert_eq!(err.unknown(), 3);
    assert_eq!(err.value(), -7.0);
    a.set(3, dt, f64::INFINITY);
    let err = scaling::g_max(&a, F16::MAX_F64).unwrap_err();
    assert!(matches!(err, scaling::ScalingError::NonFiniteDiagonal { unknown: 3, .. }));
    // Display names the unknown so logs are actionable.
    assert!(err.to_string().contains("unknown 3"), "{err}");
}

// --- Integrity sentinels (ABFT) ------------------------------------------

mod sentinels {
    use super::*;
    use crate::sentinel;
    use fp16mg_fp::{Bf16, Storage, F16};

    fn source() -> SgDia<f64> {
        random_matrix(Grid3::cube(5), Pattern::p27(), Layout::Aos, 0x5e47)
    }

    fn stable_for<S: Storage>() {
        let a64 = source();
        let aos: SgDia<S> = a64.convert();
        let soa: SgDia<S> = a64.to_layout(Layout::Soa).convert();
        let s1 = sentinel::compute(&aos);
        let s2 = sentinel::compute(&aos);
        assert_eq!(s1, s2, "recomputation must be bit-exact");
        assert_eq!(
            s1,
            sentinel::compute(&soa),
            "sentinels are layout-independent: AOS and SOA stores agree"
        );
        assert!(sentinel::verify(&aos, &s1).is_empty(), "an intact plane never mismatches");
        assert_eq!(s1.taps.len(), aos.pattern().len());
        assert_eq!(s1.cells, aos.grid().cells());
    }

    #[test]
    fn sentinels_are_stable_across_all_storage_formats() {
        stable_for::<F16>();
        stable_for::<Bf16>();
        stable_for::<f32>();
        stable_for::<f64>();
    }

    #[cfg(feature = "fault-inject")]
    fn flip_sweep<S: Storage + 'static>(width: u32) {
        let a0: SgDia<S> = source().convert();
        let reference = sentinel::compute(&a0);
        let cells = a0.grid().cells();
        for bit in 0..width {
            let mut a = a0.clone();
            // Spread the upsets over planes and cells so the sweep also
            // exercises boundary (explicit-zero) entries and the sign bit
            // of zeros, which only the checksum witness can see.
            let tap = bit as usize % a.pattern().len();
            let cell = (bit as usize * 7919) % cells;
            assert!(crate::fault::inject_bit_flip_at(&mut a, cell, tap, bit));
            let mismatches = sentinel::verify(&a, &reference);
            assert_eq!(
                mismatches.len(),
                1,
                "bit {bit}: exactly the flipped plane must mismatch, got {mismatches:?}"
            );
            assert_eq!(mismatches[0].tap, tap, "bit {bit}: localized to the flipped plane");
            assert!(
                mismatches[0].checksum_differs,
                "bit {bit}: the bit-pattern checksum catches every flip"
            );
            // Flipping the same bit back restores bit-identity.
            assert!(crate::fault::inject_bit_flip_at(&mut a, cell, tap, bit));
            assert!(sentinel::verify(&a, &reference).is_empty(), "bit {bit}: flip-back clean");
        }
    }

    #[test]
    #[cfg(feature = "fault-inject")]
    fn every_single_bit_flip_position_is_detected() {
        flip_sweep::<F16>(16);
        flip_sweep::<Bf16>(16);
        flip_sweep::<f32>(32);
        flip_sweep::<f64>(64);
    }

    #[test]
    #[cfg(feature = "fault-inject")]
    fn targeted_tap_flip_lands_on_a_nonzero_coupling() {
        let mut a: SgDia<F16> = source().convert();
        let reference = sentinel::compute(&a);
        let cell = crate::fault::inject_bit_flip_tap(&mut a, 0, 14).expect("plane 0 has couplings");
        assert_ne!(a.get(cell, 0).load_f64(), source().get(cell, 0), "the coupling changed");
        let mismatches = sentinel::verify(&a, &reference);
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].tap, 0);
        // Out-of-range tap: refused, nothing corrupted.
        assert_eq!(crate::fault::inject_bit_flip_tap(&mut a, 99, 0), None);
    }
}
