//! SG-DIA structured sparse matrices and their mixed-precision kernels.
//!
//! The structured-grid-diagonal (SG-DIA) format (paper §3.2) stores one
//! value per (grid cell, stencil tap) pair and **no integer index arrays**:
//! the nonzero pattern is implied by the stencil. That is the property that
//! makes FP16 compression pay off — compressing the floating-point data
//! compresses the whole matrix, giving the 2×/4× memory-volume reductions
//! of Table 2, whereas CSR's index arrays put a <1.3–2× ceiling on
//! unstructured formats.
//!
//! Contents:
//!
//! * [`SgDia`] — the matrix container, generic over the storage scalar
//!   ([`fp16mg_fp::Storage`]: `f64`, `f32`, `F16`, `Bf16`) and over the
//!   in-memory [`Layout`] (AOS, one cell's taps contiguous, vs SOA, one
//!   tap's cells contiguous — the §5.1 transformation).
//! * [`kernels`] — SpMV, residual, and SpTRSV in three flavors per the
//!   Fig. 7 ablation: generic scalar (the *naive* mixed-precision kernel),
//!   SIMD SOA (the *optimized* kernel: F16C bulk conversion amortized over
//!   8 entries), and the full-FP32 baseline (same code path, no
//!   conversion).
//! * [`csr`] — a CSR reference implementation used to validate the
//!   structured kernels and to stand in for the "vendor library"
//!   (ARMPL/MKL) comparison point.
//! * [`model`] — the Table 2 bytes-per-nonzero model and speedup upper
//!   bounds.
//! * [`io`] — binary matrix/vector serialization (storage precision
//!   preserved bit-for-bit) and Matrix Market interchange.
//! * [`ilu`] — structured ILU(0) factorization, the paper's alternative
//!   smoother whose L̃/Ũ factors are truncated to the storage precision
//!   and applied with the mixed-precision triangular kernels.
//! * [`scaling`] — the symmetric diagonal scaling of Theorem 4.1:
//!   `G_max` computation, `Q^{-1/2} A Q^{-1/2}` application, and the
//!   recover-and-rescale vector helpers.

#![warn(missing_docs)]
pub mod audit;
pub mod csr;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod ilu;
pub mod io;
pub mod kernels;
pub mod matrix;
pub mod model;
pub mod par;
pub mod scaling;
pub mod scan;
pub mod sentinel;

pub use audit::{drift, OperatorDrift, RangeAudit, TruncationError, TruncationPolicy};
pub use csr::Csr;
pub use matrix::{Layout, SgDia};
pub use par::Par;
pub use sentinel::{MatrixSentinels, TapMismatch, TapSentinel};

#[cfg(test)]
mod tests;
