//! Integrity sentinels for SG-DIA coefficient planes (ABFT).
//!
//! The FP16 coefficient planes are the largest data structure the solve
//! keeps live (§3.2, Table 2) and therefore the largest exposure surface to
//! silent memory corruption. A single flipped bit in a stored tap poisons
//! every subsequent V-cycle, and by the time the SolveHealth monitor sees
//! the symptom (stagnation or breakdown) the cause is indistinguishable
//! from a genuine numerical failure.
//!
//! Algorithm-based fault tolerance makes the state checkable instead: at
//! setup every coefficient plane gets a [`TapSentinel`] — an FNV-1a
//! checksum of its raw bit patterns plus two FP64 analytical invariants
//! (sum and absolute sum of the stored values). Verification recomputes
//! the sentinels and compares:
//!
//! * the **checksum** catches *every* single-bit change, including flips
//!   inside NaN payloads or between ±0 that no float comparison can see;
//! * the **sums** are redundant witnesses that survive a corrupted
//!   checksum word itself and give a quick magnitude estimate of the
//!   damage.
//!
//! Both are computed in a deterministic sequential order, so recomputing
//! on an uncorrupted plane reproduces them *exactly* — verification is
//! bit-exact equality, with no tolerance to tune and no false positives.
//! A mismatch localizes corruption to a (tap, plane) pair; the hierarchy
//! layer above maps that to a level and repairs it in place.

use crate::matrix::SgDia;
use fp16mg_fp::{Fnv1a, Storage};

/// Integrity sentinel of one coefficient plane (all cells of one tap).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TapSentinel {
    /// FNV-1a digest of the plane's raw bit patterns, in cell order.
    pub checksum: u64,
    /// Sequential FP64 sum of the stored values (loaded exactly).
    pub sum: f64,
    /// Sequential FP64 sum of absolute values.
    pub abs_sum: f64,
}

/// Sentinels for every coefficient plane of one matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixSentinels {
    /// One sentinel per stencil tap, indexed by tap number.
    pub taps: Vec<TapSentinel>,
    /// Number of cells per plane when the sentinels were taken.
    pub cells: usize,
}

/// One detected plane mismatch: which tap, and which witnesses disagree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TapMismatch {
    /// Tap (plane) index within the stencil pattern.
    pub tap: usize,
    /// The bit-pattern checksum disagrees.
    pub checksum_differs: bool,
    /// The FP64 value-sum invariant disagrees.
    pub sum_differs: bool,
    /// The FP64 absolute-sum invariant disagrees.
    pub abs_sum_differs: bool,
}

impl MatrixSentinels {
    /// Bytes of sentinel metadata (reporting; negligible next to the
    /// matrix itself — 24 bytes per plane).
    pub fn metadata_bytes(&self) -> usize {
        self.taps.len() * core::mem::size_of::<TapSentinel>()
    }
}

/// Computes the per-plane sentinels of a matrix.
///
/// Iterates cell-major within each tap via [`SgDia::get`], so the result
/// is independent of the in-memory [`Layout`](crate::Layout): an AOS and
/// an SOA store of the same values have identical sentinels.
pub fn compute<S: Storage>(a: &SgDia<S>) -> MatrixSentinels {
    let cells = a.grid().cells();
    let ntaps = a.pattern().len();
    let mut taps = Vec::with_capacity(ntaps);
    for tap in 0..ntaps {
        let mut h = Fnv1a::new();
        let mut sum = 0.0f64;
        let mut abs_sum = 0.0f64;
        for cell in 0..cells {
            let v = a.get(cell, tap);
            h.write_value(v);
            let w = v.load_f64();
            sum += w;
            abs_sum += w.abs();
        }
        taps.push(TapSentinel { checksum: h.finish(), sum, abs_sum });
    }
    MatrixSentinels { taps, cells }
}

/// Recomputes the sentinels and returns every plane that disagrees.
///
/// Exact comparison throughout: the reference was produced by the same
/// deterministic sweep, so any difference is real. NaN sums (a flip that
/// manufactured a NaN) are treated as differing from everything,
/// including another NaN.
pub fn verify<S: Storage>(a: &SgDia<S>, reference: &MatrixSentinels) -> Vec<TapMismatch> {
    let current = compute(a);
    let mut mismatches = Vec::new();
    for (tap, (now, want)) in current.taps.iter().zip(reference.taps.iter()).enumerate() {
        let checksum_differs = now.checksum != want.checksum;
        let sum_differs = now.sum.to_bits() != want.sum.to_bits();
        let abs_sum_differs = now.abs_sum.to_bits() != want.abs_sum.to_bits();
        if checksum_differs || sum_differs || abs_sum_differs {
            mismatches.push(TapMismatch { tap, checksum_differs, sum_differs, abs_sum_differs });
        }
    }
    if current.taps.len() != reference.taps.len() {
        // A structural disagreement (should not happen for an in-place
        // store) marks every extra plane as corrupt.
        for tap in reference.taps.len().min(current.taps.len())
            ..current.taps.len().max(reference.taps.len())
        {
            mismatches.push(TapMismatch {
                tap,
                checksum_differs: true,
                sum_differs: true,
                abs_sum_differs: true,
            });
        }
    }
    mismatches
}
