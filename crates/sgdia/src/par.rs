//! Minimal scoped-thread data parallelism.
//!
//! The kernels only ever need two shapes of parallelism — disjoint `&mut`
//! chunks of an output vector, and a read-only sweep over a plane of
//! independent cells — so both are implemented directly on
//! `std::thread::scope` instead of pulling in a work-stealing runtime.
//! Threads are spawned per call; at the problem sizes where parallelism is
//! engaged (≥ thousands of cells per thread) the spawn cost is noise next
//! to the memory traffic.

/// Kernel execution policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Par {
    /// Single-threaded.
    #[default]
    Seq,
    /// Parallelize across `n` OS threads; `Threads(0)` means one thread
    /// per available hardware core.
    Threads(usize),
}

impl Par {
    /// Number of worker threads this policy resolves to (≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Par::Seq => 1,
            Par::Threads(0) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Par::Threads(n) => n,
        }
    }
}

/// Runs `f(chunk_index, chunk)` over successive `chunk_len`-element chunks
/// of `data`, one scoped thread per chunk (the caller sizes `chunk_len` to
/// the intended thread count). Sequential when a single chunk covers the
/// slice.
pub(crate) fn for_each_chunk_mut<T: Send, F>(data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    if chunk_len >= data.len() {
        f(0, data);
        return;
    }
    std::thread::scope(|scope| {
        for (p, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(p, chunk));
        }
    });
}

/// Runs `f(item)` over every item of `plane`, splitting the plane across
/// `nthreads` scoped threads. Items must be independent (caller's
/// invariant). Sequential for one thread or tiny planes.
pub(crate) fn for_each_in_plane<T: Sync, F>(plane: &[T], nthreads: usize, f: F)
where
    F: Fn(&T) + Sync,
{
    // Below this many items per thread, spawn overhead dominates any win.
    const MIN_ITEMS_PER_THREAD: usize = 256;
    let nthreads = nthreads.min(plane.len() / MIN_ITEMS_PER_THREAD.max(1)).max(1);
    if nthreads == 1 {
        for item in plane {
            f(item);
        }
        return;
    }
    let chunk = plane.len().div_ceil(nthreads);
    std::thread::scope(|scope| {
        for part in plane.chunks(chunk) {
            let f = &f;
            scope.spawn(move || {
                for item in part {
                    f(item);
                }
            });
        }
    });
}
