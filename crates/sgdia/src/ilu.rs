//! Structured ILU(0): incomplete LU factorization on the stencil pattern.
//!
//! The paper lists ILU alongside SymGS as a configurable smoother (§4.1/
//! §4.2): "data in smoothers, such as the factorized lower and upper
//! triangular matrices L̃, Ũ in ILU, are calculated in iterative precision
//! followed by truncation to storage precision". The factorization here
//! runs in `f64`; the caller truncates the factors to FP16 and applies
//! them with the mixed-precision [`sptrsv`](crate::kernels) kernels — the
//! second Fig. 7 kernel exercised inside the V-cycle.
//!
//! ILU(0) keeps exactly the original nonzero pattern: `L` is unit lower
//! triangular on the strict-lower taps (the unit diagonal is stored
//! explicitly so the triangular kernels need no special case), `U` holds
//! the diagonal and strict-upper taps. Scalar problems only — block ILU
//! for vector PDEs is out of scope (the Gauss–Seidel smoothers cover
//! them).

use fp16mg_stencil::Pattern;

use crate::SgDia;

/// The ILU(0) factors of a structured matrix.
pub struct Ilu0 {
    /// Unit lower-triangular factor (strict lower taps + explicit unit
    /// diagonal), pattern `lower_with_diag` of the source.
    pub l: SgDia<f64>,
    /// Upper-triangular factor (diagonal + strict upper taps).
    pub u: SgDia<f64>,
}

/// Computes the ILU(0) factorization of a scalar structured matrix.
///
/// Standard row-wise IKJ elimination restricted to the stencil pattern:
/// fill-in is dropped. Correction triples `off(L) + off(U) ∈ pattern` are
/// resolved once from offset arithmetic, so the per-cell work is a fixed
/// small loop.
///
/// # Errors
/// Returns the offending cell if a pivot (diagonal of `U`) becomes zero
/// or non-finite.
///
/// # Panics
/// Panics on vector (multi-component) matrices or patterns with radius
/// greater than 1.
pub fn ilu0(a: &SgDia<f64>) -> Result<Ilu0, usize> {
    let grid = *a.grid();
    assert_eq!(grid.components, 1, "ilu0 supports scalar problems");
    assert!(a.pattern().radius() <= 1, "ilu0 supports radius-1 stencils");
    let pat = a.pattern().clone();
    let (lp_strict, _, up_strict) = pat.split();
    let lp = pat.lower_with_diag();
    let up = {
        let mut taps = up_strict.taps().to_vec();
        taps.push(fp16mg_stencil::Tap::at(0, 0, 0));
        Pattern::new(taps)
    };

    let cells = grid.cells();
    let ntaps = pat.len();
    // Working factor values, indexed like the source pattern.
    let mut w: Vec<f64> = a.data().to_vec();
    let widx = |cell: usize, t: usize, layout| match layout {
        crate::Layout::Aos => cell * ntaps + t,
        crate::Layout::Soa => t * cells + cell,
    };
    let layout = a.layout();

    // Precompute, for each lower tap tl and each strict-upper tap tu of
    // the pattern, the target tap tt with off(tt) = off(tl) + off(tu)
    // (if the sum stays in the pattern — ILU(0) drops the rest).
    // split() partitions the source pattern, so every strict-lower/upper
    // tap is present in it by construction — these lookups cannot miss.
    let ltaps: Vec<usize> = lp_strict
        .taps()
        .iter()
        .map(|t| pat.tap_index(*t).expect("split() taps come from the source pattern"))
        .collect();
    let utaps: Vec<usize> = up_strict
        .taps()
        .iter()
        .map(|t| pat.tap_index(*t).expect("split() taps come from the source pattern"))
        .collect();
    let diag_tap = pat.diagonal_indices()[0];
    let taps = pat.taps();
    let mut triples: Vec<(usize, usize, usize)> = Vec::new(); // (tl, tu, tt)
    for &tl in &ltaps {
        for &tu in &utaps {
            let sum = fp16mg_stencil::Tap::at(
                taps[tl].dx + taps[tu].dx,
                taps[tl].dy + taps[tu].dy,
                taps[tl].dz + taps[tu].dz,
            );
            if let Some(tt) = pat.tap_index(sum) {
                triples.push((tl, tu, tt));
            }
        }
    }

    // IKJ elimination, cells in row-major order.
    for (cell, i, j, k) in grid.iter_cells() {
        for &tl in &ltaps {
            let tap = taps[tl];
            if !grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                continue;
            }
            let nb = (cell as i64 + grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
            let piv = w[widx(nb, diag_tap, layout)];
            if piv == 0.0 || !piv.is_finite() {
                return Err(nb);
            }
            let lval = w[widx(cell, tl, layout)] / piv;
            w[widx(cell, tl, layout)] = lval;
            if lval == 0.0 {
                continue;
            }
            // w[row] -= l_ij * u[j, :] restricted to the pattern.
            for &(tl2, tu, tt) in &triples {
                if tl2 != tl {
                    continue;
                }
                // The U entry lives at the neighbor row nb; its column is
                // nb + off(tu) = cell + off(tt). Validity of the target
                // column implies validity of the U entry read (zero-filled
                // out-of-grid entries contribute nothing anyway).
                let tt_tap = taps[tt];
                if !grid.contains_offset(i, j, k, tt_tap.dx, tt_tap.dy, tt_tap.dz) {
                    continue;
                }
                let uval = w[widx(nb, tu, layout)];
                let idx = widx(cell, tt, layout);
                w[idx] -= lval * uval;
            }
        }
        let piv = w[widx(cell, diag_tap, layout)];
        if piv == 0.0 || !piv.is_finite() {
            return Err(cell);
        }
    }

    // Scatter into the L and U containers.
    let mut l = SgDia::<f64>::zeros(grid, lp.clone(), layout);
    let mut u = SgDia::<f64>::zeros(grid, up.clone(), layout);
    let l_diag = lp.diagonal_indices()[0];
    for cell in 0..cells {
        l.set(cell, l_diag, 1.0);
        for (t, tap) in lp.taps().iter().enumerate() {
            if tap.is_diagonal() {
                continue;
            }
            let st = pat.tap_index(*tap).expect("lower tap in source");
            l.set(cell, t, w[widx(cell, st, layout)]);
        }
        for (t, tap) in up.taps().iter().enumerate() {
            let st = pat.tap_index(*tap).expect("upper tap in source");
            u.set(cell, t, w[widx(cell, st, layout)]);
        }
    }
    Ok(Ilu0 { l, u })
}
