//! Compressed-sparse-row reference matrix.
//!
//! Two jobs (both from the paper):
//!
//! 1. *Validation*: every structured kernel is tested against the CSR
//!    result on the same operator.
//! 2. *Comparison point*: CSR SpMV/SpTRSV stand in for the vendor-library
//!    kernels (ARMPL/MKL) of Fig. 7 and embody the Table 2 observation
//!    that per-element index arrays cap the achievable mixed-precision
//!    speedup.

use fp16mg_fp::{Scalar, Storage};
use fp16mg_grid::Grid3;

use crate::SgDia;

/// CSR matrix with `u32` column indices (the paper's "CSR int32" row in
/// Table 2; see [`crate::model`] for the int64 variant's byte model).
#[derive(Clone, Debug)]
pub struct Csr<S: Storage> {
    rows: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<S>,
}

impl<S: Storage> Csr<S> {
    /// Builds from explicit arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent.
    pub fn new(rows: usize, row_ptr: Vec<u32>, col_idx: Vec<u32>, values: Vec<S>) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col_idx/values length");
        assert_eq!(row_ptr[rows] as usize, values.len(), "row_ptr tail");
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr not monotone");
        }
        Csr { rows, row_ptr, col_idx, values }
    }

    /// Converts a structured matrix, dropping out-of-grid (zero-filled)
    /// entries and sorting columns within each row.
    pub fn from_sgdia(a: &SgDia<S>) -> Self {
        let grid = *a.grid();
        let r = grid.components;
        let rows = a.rows();
        let taps: Vec<_> = a.pattern().taps().to_vec();
        // Pass 1: count entries per row.
        let mut row_ptr = vec![0u32; rows + 1];
        for (cell, i, j, k) in grid.iter_cells() {
            for tap in &taps {
                if grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    row_ptr[cell * r + tap.cout as usize + 1] += 1;
                }
            }
        }
        for row in 0..rows {
            row_ptr[row + 1] += row_ptr[row];
        }
        // Pass 2: scatter (taps are sorted by key, so column indices come
        // out sorted within each row already).
        let nnz = row_ptr[rows] as usize;
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![S::default(); nnz];
        let mut cursor: Vec<u32> = row_ptr[..rows].to_vec();
        for (cell, i, j, k) in grid.iter_cells() {
            for (t, tap) in taps.iter().enumerate() {
                if !grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    continue;
                }
                let nb = (cell as i64 + grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
                let row = cell * r + tap.cout as usize;
                let e = cursor[row] as usize;
                col_idx[e] = (nb * r + tap.cin as usize) as u32;
                values[e] = a.get(cell, t);
                cursor[row] += 1;
            }
        }
        // Tap key order is (dz, dy, dx, cout, cin): within one row (fixed
        // cell, cout) the produced columns are already ascending.
        Csr { rows, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array.
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array.
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Total bytes the format stores (values + int32 indices + row
    /// pointer), the Table 2 memory-volume numerator.
    pub fn bytes(&self) -> usize {
        self.values.len() * S::BYTES + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }

    /// `y = A x` with on-the-fly widening of the stored values to `P`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv<P: Scalar>(&self, x: &[P], y: &mut [P]) {
        assert_eq!(x.len(), self.rows, "x length");
        assert_eq!(y.len(), self.rows, "y length");
        for (row, out) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let mut acc = P::ZERO;
            for (&col, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                let a = P::from_f64(v.load_f64());
                acc = a.mul_add(x[col as usize], acc);
            }
            *out = acc;
        }
    }

    /// Solves `L x = b` where `L` is the lower-triangular part of the
    /// matrix including the diagonal (entries with `col > row` are
    /// ignored). Forward substitution in natural row order.
    ///
    /// # Panics
    /// Panics on dimension mismatch or a zero/absent diagonal.
    pub fn solve_lower<P: Scalar>(&self, b: &[P], x: &mut [P]) {
        assert_eq!(b.len(), self.rows, "b length");
        assert_eq!(x.len(), self.rows, "x length");
        for row in 0..self.rows {
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let mut acc = b[row];
            let mut diag = P::ZERO;
            for (&col, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                let col = col as usize;
                let a = P::from_f64(v.load_f64());
                if col < row {
                    acc = (-a).mul_add(x[col], acc);
                } else if col == row {
                    diag = a;
                }
            }
            assert!(diag != P::ZERO, "zero diagonal in row {row}");
            x[row] = acc / diag;
        }
    }

    /// Solves `U x = b` where `U` is the upper-triangular part including
    /// the diagonal. Backward substitution.
    ///
    /// # Panics
    /// Panics on dimension mismatch or a zero/absent diagonal.
    pub fn solve_upper<P: Scalar>(&self, b: &[P], x: &mut [P]) {
        assert_eq!(b.len(), self.rows, "b length");
        assert_eq!(x.len(), self.rows, "x length");
        for row in (0..self.rows).rev() {
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let mut acc = b[row];
            let mut diag = P::ZERO;
            for (&col, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                let col = col as usize;
                let a = P::from_f64(v.load_f64());
                if col > row {
                    acc = (-a).mul_add(x[col], acc);
                } else if col == row {
                    diag = a;
                }
            }
            assert!(diag != P::ZERO, "zero diagonal in row {row}");
            x[row] = acc / diag;
        }
    }

    /// Dense `f64` copy of one row (for tests on small matrices).
    pub fn dense_row(&self, row: usize, out: &mut [f64]) {
        out.fill(0.0);
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        for e in lo..hi {
            out[self.col_idx[e] as usize] = self.values[e].load_f64();
        }
    }

    /// Grid-aware constructor helper: builds the CSR of a structured
    /// operator defined by a closure (used by tests to cross-check RAP).
    pub fn from_dense_fn(rows: usize, mut f: impl FnMut(usize, usize) -> f64) -> Csr<S> {
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..rows {
            for c in 0..rows {
                let v = f(r, c);
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(S::store_f64(v));
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr { rows, row_ptr, col_idx, values }
    }

    /// The grid of an SG-DIA source is not retained; this helper recomputes
    /// expected row count for a grid (tests).
    pub fn expected_rows(grid: &Grid3) -> usize {
        grid.unknowns()
    }
}
