//! Symmetric diagonal scaling (§4.1, Theorem 4.1).
//!
//! To truncate a matrix whose entries exceed `FP16_MAX = 65504` safely,
//! the paper scales it as `Ã = Q^{-1/2} A Q^{-1/2}` with
//! `Q = diag(A) / G`. The scaled entry is `G · a_ij / √(a_ii a_jj)`, so
//! any `G < G_max = S · min_ij |√(a_ii a_jj) / a_ij|` guarantees every
//! entry stays below `S = FP16_MAX` — Theorem 4.1. The scaled diagonal is
//! the constant `G`.
//!
//! At solve time the true operator is recovered on the fly:
//! `A x = S_q (Ã (S_q x))` with `S_q = diag(√q)`, which costs two
//! pointwise vector multiplies per matrix application — the
//! recover-and-rescale of §4.2. `Q` (equivalently `√q` and its
//! reciprocal) is stored in the preconditioner computation precision,
//! never FP16 (Algorithm 1 line 9).

use fp16mg_fp::{Scalar, Storage};

use crate::SgDia;

/// Why the symmetric scaling of Theorem 4.1 cannot be applied: the
/// theorem's M-matrix prerequisite (a strictly positive, finite diagonal)
/// does not hold. Carries the offending unknown *and* its value, so the
/// caller can report (and the operator can grep logs for) exactly which
/// coefficient broke the precondition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalingError {
    /// A diagonal entry is zero or negative.
    NonPositiveDiagonal {
        /// Flat unknown index (cell × components + component).
        unknown: usize,
        /// The offending diagonal value.
        value: f64,
    },
    /// A diagonal entry is ±∞ or NaN.
    NonFiniteDiagonal {
        /// Flat unknown index.
        unknown: usize,
        /// The offending diagonal value.
        value: f64,
    },
}

impl ScalingError {
    /// Flat index of the offending unknown, whichever the failure.
    pub fn unknown(self) -> usize {
        match self {
            ScalingError::NonPositiveDiagonal { unknown, .. }
            | ScalingError::NonFiniteDiagonal { unknown, .. } => unknown,
        }
    }

    /// The offending diagonal value.
    pub fn value(self) -> f64 {
        match self {
            ScalingError::NonPositiveDiagonal { value, .. }
            | ScalingError::NonFiniteDiagonal { value, .. } => value,
        }
    }
}

impl core::fmt::Display for ScalingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScalingError::NonPositiveDiagonal { unknown, value } => write!(
                f,
                "diagonal entry of unknown {unknown} is non-positive ({value:e}); \
                 Theorem 4.1 requires a positive diagonal"
            ),
            ScalingError::NonFiniteDiagonal { unknown, value } => write!(
                f,
                "diagonal entry of unknown {unknown} is non-finite ({value}); \
                 Theorem 4.1 requires a finite diagonal"
            ),
        }
    }
}

impl std::error::Error for ScalingError {}

/// The per-level scaling data produced by `setup-then-scale`.
#[derive(Clone, Debug)]
pub struct ScaleVectors<P: Scalar> {
    /// The chosen scaling constant `G` (the scaled matrix's diagonal).
    pub g: f64,
    /// When a user-fixed `G` had to be clamped to `G_max/2` for safety,
    /// the originally requested value (`None` when the request was honored
    /// or `G` was chosen automatically). Surfaced in `MgInfo` so the clamp
    /// is never silent.
    pub g_clamped_from: Option<f64>,
    /// `√q` per unknown (`q_i = a_ii / G`), the `Q^{1/2}` rescale factors.
    pub s: Vec<P>,
    /// `1/√q` per unknown, the `Q^{-1/2}` factors.
    pub s_inv: Vec<P>,
}

/// How `G` is picked.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GChoice {
    /// `G = min(1, G_max/2)`: for diagonally dominant matrices the scaled
    /// entries land in `[0, 1]`, the sweet spot of FP16 accuracy, while
    /// staying provably below `FP16_MAX`.
    Auto,
    /// A fixed user value (clamped to `G_max/2` for safety).
    Fixed(f64),
}

/// Computes `G_max` of Theorem 4.1 for a matrix with positive diagonal.
///
/// # Errors
/// [`ScalingError`] identifying the offending unknown and its value if a
/// diagonal entry is non-positive or non-finite (the M-matrix
/// prerequisite of the theorem).
pub fn g_max<S: Storage>(a: &SgDia<S>, fp16_max: f64) -> Result<f64, ScalingError> {
    let grid = a.grid();
    let r = grid.components;
    let diag = a.extract_diagonal();
    for (u, &d) in diag.iter().enumerate() {
        if !d.is_finite() {
            return Err(ScalingError::NonFiniteDiagonal { unknown: u, value: d });
        }
        if d <= 0.0 {
            return Err(ScalingError::NonPositiveDiagonal { unknown: u, value: d });
        }
    }
    let taps: Vec<_> = a.pattern().taps().to_vec();
    let mut min_ratio = f64::INFINITY;
    for (cell, i, j, k) in grid.iter_cells() {
        for (t, tap) in taps.iter().enumerate() {
            if !grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                continue;
            }
            let v = a.get(cell, t).load_f64();
            if v == 0.0 {
                continue;
            }
            let nb = (cell as i64 + grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
            let dii = diag[cell * r + tap.cout as usize];
            let djj = diag[nb * r + tap.cin as usize];
            let ratio = (dii.sqrt() * djj.sqrt()) / v.abs();
            min_ratio = min_ratio.min(ratio);
        }
    }
    Ok(fp16_max * min_ratio)
}

/// Applies `Ã = Q^{-1/2} A Q^{-1/2}` in place (in `f64`: scaling happens
/// after the high-precision setup and before truncation), returning the
/// rescale vectors in the computation precision `P`.
///
/// # Errors
/// As [`g_max`]: non-positive diagonals.
///
/// ```
/// use fp16mg_grid::Grid3;
/// use fp16mg_sgdia::{scaling, Layout, SgDia};
/// use fp16mg_sgdia::scaling::GChoice;
/// use fp16mg_stencil::Pattern;
/// use fp16mg_fp::F16;
///
/// // Coefficients ~1e8: direct FP16 truncation would overflow.
/// let pattern = Pattern::p7();
/// let taps: Vec<_> = pattern.taps().to_vec();
/// let mut a = SgDia::<f64>::from_fn(Grid3::cube(4), pattern, Layout::Soa,
///     |_, _, _, _, t| if taps[t].is_diagonal() { 6.0e8 } else { -1.0e8 });
/// assert!(!a.convert::<F16>().all_finite());
/// let sv = scaling::scale_symmetric::<f32>(&mut a, GChoice::Auto, F16::MAX_F64).unwrap();
/// assert!(a.convert::<F16>().all_finite()); // Theorem 4.1
/// assert!(sv.g > 0.0);
/// ```
///
/// # Panics
/// Panics if the resolved `G` is non-positive.
pub fn scale_symmetric<P: Scalar>(
    a: &mut SgDia<f64>,
    choice: GChoice,
    fp16_max: f64,
) -> Result<ScaleVectors<P>, ScalingError> {
    let gmax = g_max(a, fp16_max)?;
    let (g, g_clamped_from) = match choice {
        GChoice::Auto => ((gmax / 2.0).min(1.0), None),
        GChoice::Fixed(v) if v > gmax / 2.0 => (gmax / 2.0, Some(v)),
        GChoice::Fixed(v) => (v, None),
    };
    assert!(g > 0.0, "non-positive scaling constant G = {g}");
    let diag = a.extract_diagonal();
    let grid = *a.grid();
    let r = grid.components;
    // sinv_f64[u] = 1/√(q_u) = √(G / a_uu)
    let sinv: Vec<f64> = diag.iter().map(|&d| (g / d).sqrt()).collect();
    let taps: Vec<_> = a.pattern().taps().to_vec();
    for (cell, i, j, k) in grid.iter_cells() {
        for (t, tap) in taps.iter().enumerate() {
            if !grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                continue;
            }
            let nb = (cell as i64 + grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
            let row = cell * r + tap.cout as usize;
            let col = nb * r + tap.cin as usize;
            let v = a.get(cell, t) * sinv[row] * sinv[col];
            a.set(cell, t, v);
        }
    }
    Ok(ScaleVectors {
        g,
        g_clamped_from,
        s: sinv.iter().map(|&si| P::from_f64(1.0 / si)).collect(),
        s_inv: sinv.iter().map(|&si| P::from_f64(si)).collect(),
    })
}

/// `dst[u] *= s[u]` — the pointwise rescale pass of recover-and-rescale.
#[inline]
pub fn rescale_in_place<P: Scalar>(dst: &mut [P], s: &[P]) {
    assert_eq!(dst.len(), s.len(), "rescale length mismatch");
    for (d, &f) in dst.iter_mut().zip(s) {
        *d *= f;
    }
}

/// `dst[u] = src[u] * s[u]`.
#[inline]
pub fn rescale_into<P: Scalar>(src: &[P], s: &[P], dst: &mut [P]) {
    assert_eq!(src.len(), s.len(), "rescale length mismatch");
    assert_eq!(dst.len(), s.len(), "rescale length mismatch");
    for ((d, &x), &f) in dst.iter_mut().zip(src).zip(s) {
        *d = x * f;
    }
}
