//! FNV-1a bit-pattern checksums over storage formats.
//!
//! Integrity sentinels need a hash that is (a) cheap enough to recompute on
//! a V-cycle cadence, (b) deterministic across runs and platforms, and
//! (c) sensitive to *every* single-bit change in a stored coefficient
//! plane. FNV-1a over the raw bit patterns satisfies all three: XOR-then-
//! multiply mixes each input byte into the full 64-bit state, so any one
//! flipped bit in any stored value yields a different digest.
//!
//! Hashing bit patterns rather than loaded values matters: `-0.0` vs
//! `+0.0` and distinct NaN payloads are different storage states even
//! though they compare equal (or unordered) as floats, and a flip that
//! lands in such a value must still be detected.

use crate::Storage;

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over storage-format bit patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    #[inline]
    pub const fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Mixes one byte into the state.
    #[inline(always)]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Mixes a stored value: its bit pattern, little-endian, exactly
    /// `S::BYTES` bytes — so the digest of an F16 plane differs from the
    /// digest of the same values stored as F32.
    #[inline(always)]
    pub fn write_value<S: Storage>(&mut self, v: S) {
        let bits = v.store_bits();
        for i in 0..S::BYTES {
            self.write_u8((bits >> (8 * i)) as u8);
        }
    }

    /// Current digest.
    #[inline]
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot digest of a slice of stored values.
pub fn checksum_slice<S: Storage>(values: &[S]) -> u64 {
    let mut h = Fnv1a::new();
    for &v in values {
        h.write_value(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bf16, F16};

    #[test]
    fn matches_reference_fnv1a_bytes() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
        // Known vector: FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn digest_is_format_and_order_sensitive() {
        let f = [1.0f32, -2.5, 3.25];
        let d = [1.0f64, -2.5, 3.25];
        assert_ne!(checksum_slice(&f), checksum_slice(&d));
        let swapped = [(-2.5f32), 1.0, 3.25];
        assert_ne!(checksum_slice(&f), checksum_slice(&swapped));
    }

    #[test]
    fn every_bit_flip_changes_the_digest() {
        let base = F16::from_f32(6.0);
        let h0 = checksum_slice(&[base]);
        for bit in 0..16 {
            let flipped = F16::from_bits(base.to_bits() ^ (1 << bit));
            assert_ne!(checksum_slice(&[flipped]), h0, "bit {bit} went undetected");
        }
        let b = Bf16::from_f32(6.0);
        let hb = checksum_slice(&[b]);
        for bit in 0..16 {
            let flipped = Bf16::from_bits(b.to_bits() ^ (1 << bit));
            assert_ne!(checksum_slice(&[flipped]), hb, "bf16 bit {bit} went undetected");
        }
    }

    #[test]
    fn signed_zero_and_nan_payloads_are_distinct_states() {
        assert_ne!(checksum_slice(&[0.0f32]), checksum_slice(&[-0.0f32]));
        let quiet = f64::from_bits(0x7ff8_0000_0000_0000);
        let payload = f64::from_bits(0x7ff8_0000_0000_0001);
        assert_ne!(checksum_slice(&[quiet]), checksum_slice(&[payload]));
    }
}
