//! Floating-point value classification for range-safety scans.
//!
//! The FP16 storage story (Theorem 4.1 and the `shift_levid` underflow
//! guard) is about keeping every stored coefficient inside binary16's
//! representable range. These helpers classify stored values into the five
//! IEEE categories so a whole matrix can be audited in one pass — the
//! counts, not per-element branching in kernels, are the detection
//! mechanism of the runtime guard layer.

use crate::{Bf16, F16};

/// IEEE 754 category of one stored value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumClass {
    /// ±0.
    Zero,
    /// Subnormal (lost precision; a warning sign of underflow).
    Subnormal,
    /// Normal finite value.
    Normal,
    /// ±∞ (overflowed the storage range).
    Inf,
    /// Not-a-number.
    Nan,
}

/// Category histogram of a block of stored values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Count of ±0 entries (structural zeros included).
    pub zero: u64,
    /// Count of subnormal entries.
    pub subnormal: u64,
    /// Count of normal finite entries.
    pub normal: u64,
    /// Count of ±∞ entries.
    pub inf: u64,
    /// Count of NaN entries.
    pub nan: u64,
}

impl ClassCounts {
    /// Total number of classified entries.
    pub fn total(&self) -> u64 {
        self.zero + self.subnormal + self.normal + self.inf + self.nan
    }

    /// True when no entry is ±∞ or NaN.
    pub fn all_finite(&self) -> bool {
        self.inf == 0 && self.nan == 0
    }

    /// Number of non-finite entries.
    pub fn non_finite(&self) -> u64 {
        self.inf + self.nan
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        self.zero += other.zero;
        self.subnormal += other.subnormal;
        self.normal += other.normal;
        self.inf += other.inf;
        self.nan += other.nan;
    }

    #[inline]
    fn bump(&mut self, class: NumClass) {
        match class {
            NumClass::Zero => self.zero += 1,
            NumClass::Subnormal => self.subnormal += 1,
            NumClass::Normal => self.normal += 1,
            NumClass::Inf => self.inf += 1,
            NumClass::Nan => self.nan += 1,
        }
    }
}

impl core::fmt::Display for ClassCounts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "normal={} zero={} subnormal={} inf={} nan={}",
            self.normal, self.zero, self.subnormal, self.inf, self.nan
        )
    }
}

/// Classifies a 16-bit IEEE-style pattern given the exponent mask
/// (`0x7c00` for binary16, `0x7f80` for bfloat16).
#[inline(always)]
const fn class_bits16(bits: u16, exp_mask: u16) -> NumClass {
    let exp = bits & exp_mask;
    let man = bits & !(exp_mask | 0x8000);
    if exp == exp_mask {
        if man == 0 {
            NumClass::Inf
        } else {
            NumClass::Nan
        }
    } else if exp == 0 {
        if man == 0 {
            NumClass::Zero
        } else {
            NumClass::Subnormal
        }
    } else {
        NumClass::Normal
    }
}

/// Classifies a binary16 value from its bit pattern.
#[inline(always)]
pub const fn class_f16(v: F16) -> NumClass {
    class_bits16(v.to_bits(), 0x7c00)
}

/// Classifies a bfloat16 value from its bit pattern.
#[inline(always)]
pub const fn class_bf16(v: Bf16) -> NumClass {
    class_bits16(v.to_bits(), 0x7f80)
}

/// Classifies an `f32`.
#[inline(always)]
pub fn class_f32(v: f32) -> NumClass {
    match v.classify() {
        core::num::FpCategory::Zero => NumClass::Zero,
        core::num::FpCategory::Subnormal => NumClass::Subnormal,
        core::num::FpCategory::Normal => NumClass::Normal,
        core::num::FpCategory::Infinite => NumClass::Inf,
        core::num::FpCategory::Nan => NumClass::Nan,
    }
}

/// Classifies an `f64`.
#[inline(always)]
pub fn class_f64(v: f64) -> NumClass {
    match v.classify() {
        core::num::FpCategory::Zero => NumClass::Zero,
        core::num::FpCategory::Subnormal => NumClass::Subnormal,
        core::num::FpCategory::Normal => NumClass::Normal,
        core::num::FpCategory::Infinite => NumClass::Inf,
        core::num::FpCategory::Nan => NumClass::Nan,
    }
}

/// One-pass category histogram of a slice of stored values.
///
/// For the 16-bit formats the classification is pure integer arithmetic on
/// the bit patterns (two compares per entry, no float hardware), so the
/// pass runs at memory bandwidth; this is what makes whole-hierarchy scans
/// cheap enough to run inside the solve loop.
pub fn count_classes<S: crate::Storage>(vals: &[S]) -> ClassCounts {
    let mut counts = ClassCounts::default();
    for &v in vals {
        counts.bump(v.class());
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Storage;

    #[test]
    fn f16_classes() {
        assert_eq!(class_f16(F16::ZERO), NumClass::Zero);
        assert_eq!(class_f16(F16::from_bits(0x8000)), NumClass::Zero); // -0
        assert_eq!(class_f16(F16::MIN_POSITIVE_SUBNORMAL), NumClass::Subnormal);
        assert_eq!(class_f16(F16::ONE), NumClass::Normal);
        assert_eq!(class_f16(F16::MAX), NumClass::Normal);
        assert_eq!(class_f16(F16::INFINITY), NumClass::Inf);
        assert_eq!(class_f16(F16::NEG_INFINITY), NumClass::Inf);
        assert_eq!(class_f16(F16::NAN), NumClass::Nan);
    }

    #[test]
    fn bf16_classes() {
        assert_eq!(class_bf16(Bf16::ZERO), NumClass::Zero);
        assert_eq!(class_bf16(Bf16::ONE), NumClass::Normal);
        assert_eq!(class_bf16(Bf16::INFINITY), NumClass::Inf);
        assert_eq!(class_bf16(Bf16::NAN), NumClass::Nan);
        assert_eq!(class_bf16(Bf16::from_bits(0x0001)), NumClass::Subnormal);
    }

    #[test]
    fn wide_classes_match_std() {
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE / 2.0, f64::INFINITY, f64::NAN] {
            let c = class_f64(v);
            match v.classify() {
                core::num::FpCategory::Zero => assert_eq!(c, NumClass::Zero),
                core::num::FpCategory::Subnormal => assert_eq!(c, NumClass::Subnormal),
                core::num::FpCategory::Normal => assert_eq!(c, NumClass::Normal),
                core::num::FpCategory::Infinite => assert_eq!(c, NumClass::Inf),
                core::num::FpCategory::Nan => assert_eq!(c, NumClass::Nan),
            }
        }
    }

    #[test]
    fn count_matches_scalar_classification() {
        let vals: Vec<F16> =
            vec![F16::ZERO, F16::ONE, F16::NAN, F16::INFINITY, F16::MIN_POSITIVE_SUBNORMAL];
        let c = count_classes(&vals);
        assert_eq!(c, ClassCounts { zero: 1, normal: 1, nan: 1, inf: 1, subnormal: 1 });
        assert!(!c.all_finite());
        assert_eq!(c.total(), 5);
        assert_eq!(F16::NAN.class(), NumClass::Nan);
    }
}
