//! IEEE 754 `binary16` implemented as bit-exact soft-float conversions.
//!
//! Only conversions and comparisons are provided: the preconditioner never
//! computes *in* FP16. Matrix entries are stored as `F16`, widened to the
//! computation precision (`f32`) on the fly inside the kernels (§4.2,
//! "recover-and-rescale on the fly"), so arithmetic on `F16` itself is
//! intentionally absent from the public API.

/// IEEE 754-2008 binary16 value, stored as its raw bit pattern.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct F16(pub u16);

const EXP_MASK: u16 = 0x7c00;
const MAN_MASK: u16 = 0x03ff;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Largest finite value, 65504.0.
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value, 2^-14 ≈ 6.1035e-5.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24 ≈ 5.9605e-8.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7e00);
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);

    /// Largest finite value as `f64` (the `S` bound of Theorem 4.1).
    pub const MAX_F64: f64 = 65504.0;
    /// Smallest positive normal value as `f64`.
    pub const MIN_POSITIVE_F64: f64 = 6.103515625e-5;

    /// Constructs from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest-even; overflows to ±∞.
    #[inline]
    pub const fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x.to_bits()))
    }

    /// Converts from `f64` (via `f32`, matching the hardware convert path
    /// `vcvtsd2ss` + `vcvtps2ph`; double rounding differs from a direct
    /// f64→f16 conversion only on ties straddling both rounding boundaries,
    /// which cannot change whether a matrix entry overflows).
    #[inline]
    pub const fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Widens to `f32` exactly (every binary16 value is representable).
    #[inline]
    pub const fn to_f32(self) -> f32 {
        f32::from_bits(f16_bits_to_f32_bits(self.0))
    }

    /// Widens to `f64` exactly.
    #[inline]
    pub const fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True for ±∞.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 & !SIGN_MASK == EXP_MASK
    }

    /// True for any NaN payload.
    #[inline]
    pub const fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True for finite values (not ∞, not NaN).
    #[inline]
    pub const fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for subnormal (denormal) values.
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }
}

impl core::fmt::Debug for F16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl core::fmt::Display for F16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    #[inline]
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    #[inline]
    fn from(x: F16) -> Self {
        x.to_f64()
    }
}

/// Converts an `f32` bit pattern to a binary16 bit pattern.
///
/// Round-to-nearest-even; overflow produces ±∞; values below half of the
/// smallest subnormal flush to ±0; NaN payloads keep their top mantissa bits
/// (quieted if the truncation would otherwise produce ∞).
#[inline]
pub const fn f32_to_f16_bits(x: u32) -> u16 {
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp32 = ((x >> 23) & 0xff) as i32;
    let man32 = x & 0x007f_ffff;

    if exp32 == 0xff {
        // Inf or NaN. Preserve NaN-ness: set a mantissa bit if the source
        // mantissa was nonzero but its top 10 bits are all zero.
        if man32 == 0 {
            return sign | EXP_MASK;
        }
        let mut m = (man32 >> 13) as u16;
        if m == 0 {
            m = 1;
        }
        return sign | EXP_MASK | m;
    }
    if exp32 == 0 {
        // f32 subnormals are < 2^-126, far below half of the smallest f16
        // subnormal (2^-25): they all round to zero.
        return sign;
    }

    let exp16 = exp32 - 127 + 15;
    // 24-bit significand with the implicit leading one made explicit.
    let man = man32 | 0x0080_0000;

    if exp16 >= 0x1f {
        // Magnitude >= 2^16: overflow to infinity regardless of rounding.
        return sign | EXP_MASK;
    }
    if exp16 <= 0 {
        // Subnormal (or underflow-to-zero) result.
        let shift = 14 - exp16; // >= 14
        if shift >= 25 {
            // Even the implicit bit is beyond the rounding guard.
            return sign;
        }
        let shift = shift as u32;
        let m = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut h = m as u16;
        if rem > half || (rem == half && (h & 1) == 1) {
            // A carry out of the subnormal mantissa lands exactly on the
            // smallest normal encoding, which is correct.
            h += 1;
        }
        return sign | h;
    }

    // Normal result: keep 10 mantissa bits, round the 13 dropped bits.
    let mut h = ((exp16 as u32) << 10) | ((man >> 13) & MAN_MASK as u32);
    let rem = man & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (h & 1) == 1) {
        // Mantissa carry propagates into the exponent; carrying out of
        // exponent 30 yields 0x7c00 = infinity, which is the correct
        // rounding of values in [65520, 65536).
        h += 1;
    }
    sign | h as u16
}

/// Converts a binary16 bit pattern to an `f32` bit pattern (exact).
#[inline]
pub const fn f16_bits_to_f32_bits(h: u16) -> u32 {
    let sign = ((h & SIGN_MASK) as u32) << 16;
    let exp = ((h & EXP_MASK) >> 10) as u32;
    let man = (h & MAN_MASK) as u32;

    if exp == 0x1f {
        // Inf / NaN: widen the payload into the top mantissa bits.
        return sign | 0x7f80_0000 | (man << 13);
    }
    if exp == 0 {
        if man == 0 {
            return sign; // ±0
        }
        // Subnormal: normalize. value = man * 2^-24.
        let mut e: i32 = 0;
        let mut m = man;
        while m & 0x0400 == 0 {
            m <<= 1;
            e -= 1;
        }
        let m = m & MAN_MASK as u32;
        // value = (1 + m/1024) * 2^(-14 + e); f32 biased exponent 113 + e.
        return sign | (((113 + e) as u32) << 23) | (m << 13);
    }
    // Normal: rebias 15 -> 127.
    sign | ((exp + 112) << 23) | (man << 13)
}
