//! Unit tests for the half-precision formats.
//!
//! The strongest check here is exhaustiveness: binary16 has only 2^16 bit
//! patterns and `f32 -> f16` can be validated against the F16C hardware
//! converter on every interesting boundary, so the soft-float conversions
//! are tested bit-for-bit.

use crate::{simd, Bf16, Precision, Scalar, Storage, F16};

#[test]
fn f16_constants_round_trip() {
    assert_eq!(F16::MAX.to_f32(), 65504.0);
    assert_eq!(F16::ONE.to_f32(), 1.0);
    assert_eq!(F16::ZERO.to_f32(), 0.0);
    assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.1035156e-5);
    assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f64(), 2.0f64.powi(-24));
    assert!(F16::INFINITY.is_infinite());
    assert!(F16::NAN.is_nan());
    assert!(!F16::NAN.is_infinite());
    assert!(F16::MAX.is_finite());
    assert!(!F16::INFINITY.is_finite());
}

#[test]
fn f16_every_value_round_trips_through_f32() {
    // Every binary16 value is exactly representable in f32, so
    // f16 -> f32 -> f16 must be the identity on all 65536 patterns.
    for bits in 0..=u16::MAX {
        let h = F16::from_bits(bits);
        let f = h.to_f32();
        let back = F16::from_f32(f);
        if h.is_nan() {
            assert!(back.is_nan(), "NaN pattern {bits:#06x} lost NaN-ness");
        } else {
            assert_eq!(back.to_bits(), bits, "pattern {bits:#06x} failed round trip (f32={f})");
        }
    }
}

#[test]
fn f16_overflow_saturates_to_infinity() {
    assert!(F16::from_f32(65536.0).is_infinite());
    assert!(F16::from_f32(1.0e8).is_infinite());
    assert!(F16::from_f32(-1.0e8).to_bits() == F16::NEG_INFINITY.to_bits());
    // 65520 is the first value that rounds up to infinity.
    assert!(F16::from_f32(65520.0).is_infinite());
    // Just below the rounding boundary stays at MAX.
    assert_eq!(F16::from_f32(65519.996).to_bits(), F16::MAX.to_bits());
    assert_eq!(F16::from_f32(65504.0).to_bits(), F16::MAX.to_bits());
}

#[test]
fn f16_rounds_to_nearest_even() {
    // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties go to even
    // (mantissa 0 -> stays at 1).
    let tie = 1.0f32 + 2.0f32.powi(-11);
    assert_eq!(F16::from_f32(tie).to_bits(), F16::ONE.to_bits());
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to even picks
    // the larger (mantissa 2).
    let tie2 = 1.0f32 + 3.0 * 2.0f32.powi(-11);
    assert_eq!(F16::from_f32(tie2).to_bits(), 0x3c02);
    // Anything past the tie rounds up.
    assert_eq!(F16::from_f32(tie + 1e-7).to_bits(), 0x3c01);
}

#[test]
fn f16_subnormals() {
    let min_sub = 2.0f64.powi(-24);
    assert_eq!(F16::from_f64(min_sub).to_bits(), 0x0001);
    assert!(F16::from_bits(0x0001).is_subnormal());
    // Half of the smallest subnormal ties to even -> zero.
    assert_eq!(F16::from_f64(min_sub / 2.0).to_bits(), 0x0000);
    // Slightly more than half rounds up to the smallest subnormal.
    assert_eq!(F16::from_f64(min_sub * 0.5000001).to_bits(), 0x0001);
    // 1.5 * smallest ties to even -> 2 * smallest.
    assert_eq!(F16::from_f64(min_sub * 1.5).to_bits(), 0x0002);
    // Largest subnormal.
    let largest_sub = 1023.0 * min_sub;
    assert_eq!(F16::from_f64(largest_sub).to_bits(), 0x03ff);
    // f32 subnormals flush to (signed) zero.
    assert_eq!(F16::from_f32(f32::from_bits(1)).to_bits(), 0x0000);
    assert_eq!(F16::from_f32(-f32::from_bits(1)).to_bits(), 0x8000);
}

#[test]
fn f16_negative_and_signed_zero() {
    assert_eq!(F16::from_f32(-1.0).to_bits(), 0xbc00);
    assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    assert_eq!(F16::from_f32(-0.0).to_f32().to_bits(), (-0.0f32).to_bits());
    assert_eq!(F16::from_f32(-2.5).to_f32(), -2.5);
    assert_eq!(F16::from_f32(-2.5).abs().to_f32(), 2.5);
}

#[test]
fn f16_matches_hardware_f16c_on_all_half_values() {
    if !simd::f16c_available() {
        eprintln!("skipping: F16C not available");
        return;
    }
    // Widen every pattern with hardware and compare with the soft-float.
    let src: Vec<F16> = (0..=u16::MAX).map(F16::from_bits).collect();
    let mut hw = vec![0.0f32; src.len()];
    simd::widen_f16(&src, &mut hw);
    for (i, (&h, &w)) in src.iter().zip(&hw).enumerate() {
        let soft = h.to_f32();
        if h.is_nan() {
            // Hardware quiets signaling NaNs; payloads may differ, but both
            // sides must agree the value is NaN.
            assert!(soft.is_nan() && w.is_nan(), "pattern {i:#06x}: NaN disagreement");
        } else {
            assert_eq!(
                soft.to_bits(),
                w.to_bits(),
                "pattern {i:#06x}: soft {soft} != hardware {w}"
            );
        }
    }
    // And narrow the widened values back: must reproduce the input bits.
    let mut back = vec![F16::ZERO; src.len()];
    simd::narrow_f32(&hw, &mut back);
    for (i, (&a, &b)) in src.iter().zip(&back).enumerate() {
        if a.is_nan() {
            assert!(b.is_nan());
        } else {
            assert_eq!(a.to_bits(), b.to_bits(), "pattern {i:#06x}");
        }
    }
}

#[test]
fn f16_narrow_matches_hardware_on_random_f32() {
    if !simd::f16c_available() {
        eprintln!("skipping: F16C not available");
        return;
    }
    // Deterministic LCG over f32 bit patterns, covering normals, subnormals,
    // overflow range and specials.
    let mut state = 0x12345678u32;
    let mut src = Vec::with_capacity(40000);
    for _ in 0..40000 {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        src.push(f32::from_bits(state));
    }
    // A few adversarial values.
    src.extend_from_slice(&[
        65519.0,
        65520.0,
        65536.0,
        -65520.0,
        6.0e-8,
        3.0e-8,
        2.9e-8,
        1.0e-40,
        f32::MAX,
        f32::MIN_POSITIVE,
    ]);
    let mut hw = vec![F16::ZERO; src.len()];
    simd::narrow_f32(&src, &mut hw);
    for (&x, &h) in src.iter().zip(&hw) {
        let soft = F16::from_f32(x);
        if soft.is_nan() {
            assert!(h.is_nan(), "x={x}: soft NaN but hw {h:?}");
        } else {
            assert_eq!(soft.to_bits(), h.to_bits(), "x={x} ({:#010x})", x.to_bits());
        }
    }
}

#[test]
fn simd_handles_unaligned_lengths() {
    for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 1000, 1001] {
        let src: Vec<F16> = (0..n).map(|i| F16::from_f32(i as f32 * 0.25 - 3.0)).collect();
        let mut wide = vec![0.0f32; n];
        simd::widen_f16(&src, &mut wide);
        for (i, &w) in wide.iter().enumerate() {
            assert_eq!(w, i as f32 * 0.25 - 3.0);
        }
        let mut back = vec![F16::ZERO; n];
        simd::narrow_f32(&wide, &mut back);
        for (a, b) in src.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn bf16_basics() {
    assert_eq!(Bf16::from_f32(1.0).to_bits(), Bf16::ONE.to_bits());
    assert_eq!(Bf16::ONE.to_f32(), 1.0);
    // BF16 has f32's range: 1e8 is representable (unlike in F16).
    assert!(Bf16::from_f32(1.0e8).is_finite());
    assert!((Bf16::from_f32(1.0e8).to_f32() - 1.0e8).abs() / 1.0e8 < 0.01);
    // ... but only ~2-3 decimal digits of accuracy.
    assert_eq!(Bf16::from_f32(256.5).to_f32(), 256.0);
    // f32::MAX lies past the halfway point between the largest finite bf16
    // and 2^128, so RNE correctly rounds it to infinity.
    assert!(!Bf16::from_f32(f32::MAX).is_finite());
    assert!(Bf16::from_f32(3.38e38).is_finite());
    assert!(Bf16::from_f32(f32::INFINITY).to_bits() == Bf16::INFINITY.to_bits());
    assert!(Bf16::from_f32(f32::NAN).is_nan());
}

#[test]
fn bf16_round_trips_all_patterns() {
    for bits in 0..=u16::MAX {
        let b = Bf16::from_bits(bits);
        let back = Bf16::from_f32(b.to_f32());
        if b.is_nan() {
            assert!(back.is_nan());
        } else {
            assert_eq!(back.to_bits(), bits, "pattern {bits:#06x}");
        }
    }
}

#[test]
fn bf16_rne_rounding() {
    // 1 + 2^-8 is halfway between 1 and the next bf16 (1 + 2^-7): tie to
    // even keeps 1.
    assert_eq!(Bf16::from_f32(1.0 + 2.0f32.powi(-8)).to_bits(), Bf16::ONE.to_bits());
    // Just above the tie rounds up.
    assert_eq!(Bf16::from_f32(1.0 + 2.0f32.powi(-8) + 1e-6).to_bits(), 0x3f81);
    // Rounding can carry into infinity from the largest finite values.
    assert!(Bf16::from_f32(3.3961776e38).to_bits() == Bf16::INFINITY.to_bits());
}

#[test]
fn storage_trait_dispatch() {
    fn round<S: Storage>(x: f64) -> f64 {
        S::store_f64(x).load_f64()
    }
    assert_eq!(round::<f64>(0.1), 0.1);
    assert_eq!(round::<f32>(0.5), 0.5);
    assert_eq!(round::<F16>(0.5), 0.5);
    assert_eq!(round::<Bf16>(0.5), 0.5);
    assert!(!F16::store_f64(1e9).is_finite());
    assert!(Bf16::store_f64(1e9).is_finite());
    assert_eq!(<F16 as Storage>::BYTES, 2);
    assert_eq!(<f32 as Storage>::BYTES, 4);
}

#[test]
fn scalar_trait_dispatch() {
    fn norm<S: Scalar>(v: &[S]) -> S {
        let mut acc = S::ZERO;
        for &x in v {
            acc = x.mul_add(x, acc);
        }
        acc.sqrt()
    }
    assert_eq!(norm(&[3.0f64, 4.0]), 5.0);
    assert_eq!(norm(&[3.0f32, 4.0]), 5.0);
}

#[test]
fn precision_enum_metadata() {
    assert_eq!(Precision::F16.bytes(), 2);
    assert_eq!(Precision::F32.bytes(), 4);
    assert_eq!(Precision::F64.bytes(), 8);
    assert_eq!(Precision::F16.finite_max(), 65504.0);
    assert!(Precision::BF16.finite_max() > 3.0e38);
    assert_eq!(Precision::F16.name(), "fp16");
    assert_eq!(format!("{}", Precision::BF16), "bf16");
}

#[test]
fn f16_monotone_on_finite_positives() {
    // Conversion must be monotone: widening consecutive bit patterns gives
    // a nondecreasing sequence of f32 values on the positive axis.
    let mut prev = f32::NEG_INFINITY;
    for bits in 0..0x7c00u16 {
        let v = F16::from_bits(bits).to_f32();
        assert!(v >= prev, "non-monotone at {bits:#06x}");
        prev = v;
    }
}

mod proptests {
    use super::super::{Bf16, F16};
    use fp16mg_testkit::check;

    #[test]
    fn prop_f16_round_trip_within_half_ulp() {
        check("prop_f16_round_trip_within_half_ulp", |rng| {
            // |x - fp16(x)| <= 2^-11 * |x| + smallest_subnormal/2 (RNE).
            let x = rng.f32_range(-65000.0, 65000.0);
            let h = F16::from_f32(x);
            let back = h.to_f32();
            let bound = x.abs() as f64 * 2.0f64.powi(-11) + 2.0f64.powi(-25);
            assert!((x as f64 - back as f64).abs() <= bound, "x={x} back={back}");
        });
    }

    #[test]
    fn prop_f16_conversion_monotone() {
        check("prop_f16_conversion_monotone", |rng| {
            let a = rng.f32_range(-70000.0, 70000.0);
            let b = rng.f32_range(-70000.0, 70000.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let (hl, hh) = (F16::from_f32(lo).to_f32(), F16::from_f32(hi).to_f32());
            assert!(hl <= hh, "{lo} -> {hl}, {hi} -> {hh}");
        });
    }

    #[test]
    fn prop_f16_sign_symmetry() {
        check("prop_f16_sign_symmetry", |rng| {
            let x = rng.f32_range(-1.0e9, 1.0e9);
            let p = F16::from_f32(x);
            let n = F16::from_f32(-x);
            assert_eq!(p.to_bits() ^ 0x8000, n.to_bits());
        });
    }

    #[test]
    fn prop_f16_overflow_iff_beyond_max() {
        check("prop_f16_overflow_iff_beyond_max", |rng| {
            let x = rng.f32_normal();
            let h = F16::from_f32(x);
            // 65520 = halfway point that rounds up to infinity.
            if x.abs() >= 65520.0 {
                assert!(!h.is_finite());
            } else if x.abs() <= 65504.0 {
                assert!(h.is_finite());
            }
        });
    }

    #[test]
    fn prop_bf16_error_bounded() {
        check("prop_bf16_error_bounded", |rng| {
            let x = rng.f32_normal();
            if x.abs() >= 3.3e38 {
                return;
            }
            let b = Bf16::from_f32(x);
            let back = b.to_f32();
            // 8 mantissa bits kept (incl. implicit): rel err <= 2^-8.
            assert!(((x as f64 - back as f64) / x as f64).abs() <= 2.0f64.powi(-8));
        });
    }

    #[test]
    fn prop_f16_idempotent() {
        check("prop_f16_idempotent", |rng| {
            // Converting an exactly representable value is the identity.
            let bits = rng.u16() % 0x7c00;
            let v = F16::from_bits(bits).to_f32();
            assert_eq!(F16::from_f32(v).to_bits(), bits);
        });
    }
}
