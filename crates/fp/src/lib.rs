//! Half-precision scalar types for the FP16 multigrid preconditioner.
//!
//! This crate implements the two 16-bit floating-point formats discussed in
//! the paper from scratch:
//!
//! * [`F16`] — IEEE 754-2008 `binary16` (1 sign, 5 exponent, 10 mantissa
//!   bits). This is the storage precision the paper advocates: higher
//!   accuracy than bfloat16 but a narrow range (`F16::MAX` = 65504), so
//!   out-of-range matrices must be scaled before truncation.
//! * [`Bf16`] — bfloat16 (1 sign, 8 exponent, 7 mantissa bits). Same range
//!   as `f32`, so no scaling is needed, but with only 7 mantissa bits its
//!   accuracy is worse; the paper's §8 reports it costs more solver
//!   iterations. We implement it to reproduce that comparison.
//!
//! All conversions round to nearest, ties to even, and overflow saturates to
//! ±∞ exactly as hardware `vcvtps2ph` does — the paper's "no-scaling"
//! ablation (`K64P32D16-none`) relies on genuine overflow producing `inf`
//! which then propagates to `NaN` through the solve.
//!
//! The [`simd`] module provides bulk slice conversion that uses the x86
//! F16C instructions (`vcvtph2ps` / `vcvtps2ph`) when available at runtime,
//! which is the instruction-level optimization of §5 of the paper: one
//! convert instruction per SIMD vector instead of one per scalar.

#![warn(missing_docs)]
pub mod bf16;
pub mod checksum;
pub mod classify;
pub mod f16;
pub mod simd;
pub mod traits;

pub use bf16::Bf16;
pub use checksum::{checksum_slice, Fnv1a};
pub use classify::{ClassCounts, NumClass};
pub use f16::F16;
pub use traits::{Precision, Scalar, Storage};

#[cfg(test)]
mod tests;
