//! Precision abstraction used across the workspace.
//!
//! The paper distinguishes three precisions (§4):
//!
//! * the *iterative precision* `K` of the outer Krylov solver,
//! * the *computation precision* `P` of the preconditioner's vectors, and
//! * the *storage precision* `D` of the preconditioner's matrices.
//!
//! `K` and `P` are computation formats, modeled by [`Scalar`] (implemented
//! for `f32` and `f64`). `D` is a storage-only format, modeled by
//! [`Storage`] (implemented for `f64`, `f32`, [`F16`](crate::F16) and
//! [`Bf16`](crate::Bf16)); values are widened to `P` on the fly before any
//! arithmetic.

use crate::{Bf16, F16};

/// A floating-point computation format (the paper's `K` and `P`).
pub trait Scalar:
    Copy
    + Clone
    + Default
    + PartialOrd
    + core::fmt::Debug
    + core::fmt::Display
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + core::ops::AddAssign
    + core::ops::SubAssign
    + core::ops::MulAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the format.
    const EPSILON: Self;
    /// Size of the format in bytes.
    const BYTES: usize;
    /// Short name used in reports ("64" or "32").
    const NAME: &'static str;

    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening (or identity) conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Lossy (or identity) conversion to `f32`.
    fn to_f32(self) -> f32;
    /// Conversion from `f32`.
    fn from_f32(x: f32) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// True if the value is finite (not ±∞, not NaN).
    fn is_finite(self) -> bool;
    /// True if the value is NaN.
    fn is_nan(self) -> bool;
    /// Larger of two values (NaN-propagating is not required).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $bytes:expr, $name:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = $bytes;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn to_f32(self) -> f32 {
                self as f32
            }
            #[inline(always)]
            fn from_f32(x: f32) -> Self {
                x as $t
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
        }
    };
}

impl_scalar!(f64, 8, "64");
impl_scalar!(f32, 4, "32");

/// A matrix storage format (the paper's `D`).
pub trait Storage: Copy + Clone + Default + core::fmt::Debug + Send + Sync + 'static {
    /// Size of the format in bytes per entry.
    const BYTES: usize;
    /// Short name used in reports ("64", "32", "16", "b16").
    const NAME: &'static str;
    /// Largest finite magnitude representable, or `None` if the range is
    /// that of `f32`/`f64` and overflow is not a practical concern.
    const FINITE_MAX: Option<f64>;
    /// Largest finite magnitude, as an `f64` (always the actual bound —
    /// unlike [`Storage::FINITE_MAX`], which is `None` for the wide
    /// formats). Used by the precision audit and the saturating
    /// truncation policies, where the exact range matters for every
    /// format.
    const MAX_FINITE: f64;
    /// Smallest positive *normal* magnitude: the underflow edge below
    /// which stored values lose mantissa bits (subnormal) or vanish.
    const MIN_POSITIVE_NORMAL: f64;

    /// Truncates from `f64` (round-to-nearest-even, overflow to ±∞).
    fn store_f64(x: f64) -> Self;
    /// Truncates from `f32`.
    fn store_f32(x: f32) -> Self;
    /// Recovers to `f32` (exact for the 16-bit formats).
    fn load_f32(self) -> f32;
    /// Recovers to `f64`.
    fn load_f64(self) -> f64;
    /// True if the value is finite.
    fn is_finite(self) -> bool;
    /// IEEE category of the value (integer bit tests for the 16-bit
    /// formats — no float hardware on the scan path).
    fn class(self) -> crate::NumClass;
    /// Raw bit pattern, zero-extended to 64 bits. Two values hash equal
    /// under the integrity checksum iff their stored bit patterns are
    /// equal — `-0.0` and `+0.0` differ, NaN payloads differ.
    fn store_bits(self) -> u64;
}

impl Storage for f64 {
    const BYTES: usize = 8;
    const NAME: &'static str = "64";
    const FINITE_MAX: Option<f64> = None;
    const MAX_FINITE: f64 = f64::MAX;
    const MIN_POSITIVE_NORMAL: f64 = f64::MIN_POSITIVE;

    #[inline(always)]
    fn store_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn store_f32(x: f32) -> Self {
        x as f64
    }
    #[inline(always)]
    fn load_f32(self) -> f32 {
        self as f32
    }
    #[inline(always)]
    fn load_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn class(self) -> crate::NumClass {
        crate::classify::class_f64(self)
    }
    #[inline(always)]
    fn store_bits(self) -> u64 {
        self.to_bits()
    }
}

impl Storage for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "32";
    const FINITE_MAX: Option<f64> = None;
    const MAX_FINITE: f64 = f32::MAX as f64;
    const MIN_POSITIVE_NORMAL: f64 = f32::MIN_POSITIVE as f64;

    #[inline(always)]
    fn store_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn store_f32(x: f32) -> Self {
        x
    }
    #[inline(always)]
    fn load_f32(self) -> f32 {
        self
    }
    #[inline(always)]
    fn load_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn class(self) -> crate::NumClass {
        crate::classify::class_f32(self)
    }
    #[inline(always)]
    fn store_bits(self) -> u64 {
        self.to_bits() as u64
    }
}

impl Storage for F16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "16";
    const FINITE_MAX: Option<f64> = Some(F16::MAX_F64);
    const MAX_FINITE: f64 = F16::MAX_F64;
    const MIN_POSITIVE_NORMAL: f64 = F16::MIN_POSITIVE_F64;

    #[inline(always)]
    fn store_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline(always)]
    fn store_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
    #[inline(always)]
    fn load_f32(self) -> f32 {
        self.to_f32()
    }
    #[inline(always)]
    fn load_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        F16::is_finite(self)
    }
    #[inline(always)]
    fn class(self) -> crate::NumClass {
        crate::classify::class_f16(self)
    }
    #[inline(always)]
    fn store_bits(self) -> u64 {
        self.to_bits() as u64
    }
}

impl Storage for Bf16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "b16";
    const FINITE_MAX: Option<f64> = Some(3.3895313892515355e38);
    const MAX_FINITE: f64 = 3.3895313892515355e38;
    const MIN_POSITIVE_NORMAL: f64 = 1.1754943508222875e-38;

    #[inline(always)]
    fn store_f64(x: f64) -> Self {
        Bf16::from_f64(x)
    }
    #[inline(always)]
    fn store_f32(x: f32) -> Self {
        Bf16::from_f32(x)
    }
    #[inline(always)]
    fn load_f32(self) -> f32 {
        self.to_f32()
    }
    #[inline(always)]
    fn load_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        Bf16::is_finite(self)
    }
    #[inline(always)]
    fn class(self) -> crate::NumClass {
        crate::classify::class_bf16(self)
    }
    #[inline(always)]
    fn store_bits(self) -> u64 {
        self.to_bits() as u64
    }
}

/// Runtime tag for a storage precision; used where the precision is chosen
/// per multigrid level (`shift_levid`, §4.3) and a generic parameter would
/// not work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE 754 binary64.
    F64,
    /// IEEE 754 binary32.
    F32,
    /// IEEE 754 binary16.
    F16,
    /// bfloat16.
    BF16,
}

impl Precision {
    /// Bytes per stored entry.
    pub const fn bytes(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
            Precision::F16 | Precision::BF16 => 2,
        }
    }

    /// Largest finite magnitude, used by the overflow check in Algorithm 1.
    pub const fn finite_max(self) -> f64 {
        match self {
            Precision::F64 => f64::MAX,
            Precision::F32 => f32::MAX as f64,
            Precision::F16 => F16::MAX_F64,
            Precision::BF16 => 3.3895313892515355e38,
        }
    }

    /// Smallest positive normal magnitude — the underflow edge of the
    /// format, below which entries degrade to subnormals or flush to
    /// zero (§4.3's coarse-level failure mode).
    pub const fn min_positive_normal(self) -> f64 {
        match self {
            Precision::F64 => f64::MIN_POSITIVE,
            Precision::F32 => f32::MIN_POSITIVE as f64,
            Precision::F16 => F16::MIN_POSITIVE_F64,
            Precision::BF16 => 1.1754943508222875e-38,
        }
    }

    /// Unit roundoff `u = 2^-(p)` (half an ulp at 1.0): the expected
    /// relative truncation error for in-range values. Used to convert the
    /// audit's relative-error figures into ulp counts.
    pub const fn unit_roundoff(self) -> f64 {
        match self {
            Precision::F64 => 1.1102230246251565e-16, // 2^-53
            Precision::F32 => 5.960464477539063e-8,   // 2^-24
            Precision::F16 => 4.8828125e-4,           // 2^-11
            Precision::BF16 => 3.90625e-3,            // 2^-8
        }
    }

    /// Short name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            Precision::F64 => "fp64",
            Precision::F32 => "fp32",
            Precision::F16 => "fp16",
            Precision::BF16 => "bf16",
        }
    }
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}
