//! bfloat16: truncated `f32` with round-to-nearest-even.
//!
//! Included to reproduce the paper's §8 discussion: BF16 shares the range of
//! `f32` (so the scaling machinery of Theorem 4.1 is never needed) but has
//! only 7 mantissa bits, which the paper observed costs noticeably more
//! solver iterations than FP16 (+59% vs +19% on the `rhd` problem).

/// bfloat16 value, stored as its raw bit pattern (top 16 bits of an `f32`).
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Largest finite value, ≈ 3.3895e38.
    pub const MAX: Bf16 = Bf16(0x7f7f);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7f80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7fc0);
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);

    /// Constructs from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    #[inline]
    pub const fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if (bits & 0x7fff_ffff) > 0x7f80_0000 {
            // NaN: truncate the payload but force it to stay a NaN.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // RNE: add 0x7fff plus the parity of the kept LSB; a mantissa carry
        // propagates into the exponent and, from the largest finite value,
        // into infinity — the correct saturation behavior.
        let lsb = (bits >> 16) & 1;
        Bf16((bits.wrapping_add(0x7fff + lsb) >> 16) as u16)
    }

    /// Converts from `f64` (via `f32`).
    #[inline]
    pub const fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Widens to `f32` exactly.
    #[inline]
    pub const fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Widens to `f64` exactly.
    #[inline]
    pub const fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True for any NaN payload.
    #[inline]
    pub const fn is_nan(self) -> bool {
        (self.0 & 0x7fff) > 0x7f80
    }

    /// True for finite values.
    #[inline]
    pub const fn is_finite(self) -> bool {
        (self.0 & 0x7f80) != 0x7f80
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> Self {
        Bf16(self.0 & 0x7fff)
    }
}

impl core::fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl core::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for Bf16 {
    #[inline]
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    #[inline]
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}
