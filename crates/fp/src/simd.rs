//! SIMD bulk precision conversion (§5 of the paper).
//!
//! A scalar mixed-precision kernel pays one `fcvt` per 2-byte entry; the
//! paper's fix is to lay matrix data out so that one SIMD convert
//! instruction widens a whole vector of entries. On x86 that instruction is
//! F16C's `vcvtph2ps` (8 × f16 → 8 × f32) with `vcvtps2ph` for the reverse.
//! This module provides slice-granularity converters with runtime feature
//! detection and a portable scalar fallback, so the rest of the workspace
//! never touches `core::arch` directly.

use crate::{Bf16, F16};

/// True when the F16C hardware convert path is compiled in and available at
/// runtime on this CPU.
#[inline]
pub fn f16c_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| std::arch::is_x86_feature_detected!("f16c"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Widens a slice of binary16 values to `f32`.
///
/// # Panics
/// Panics if `src` and `dst` lengths differ.
#[inline]
pub fn widen_f16(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_f16: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if f16c_available() {
        // SAFETY: F16C availability was just checked.
        unsafe { widen_f16_f16c(src, dst) };
        return;
    }
    widen_f16_scalar(src, dst);
}

/// Narrows a slice of `f32` values to binary16 (RNE, overflow → ±∞).
///
/// # Panics
/// Panics if `src` and `dst` lengths differ.
#[inline]
pub fn narrow_f32(src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "narrow_f32: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if f16c_available() {
        // SAFETY: F16C availability was just checked.
        unsafe { narrow_f32_f16c(src, dst) };
        return;
    }
    narrow_f32_scalar(src, dst);
}

/// Widens a slice of bfloat16 values to `f32` (a 16-bit shift; always
/// vectorizes well without dedicated instructions).
#[inline]
pub fn widen_bf16(src: &[Bf16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_bf16: length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Portable scalar widening path (also the tail handler of the SIMD path).
#[inline]
pub fn widen_f16_scalar(src: &[F16], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Portable scalar narrowing path.
#[inline]
pub fn narrow_f32_scalar(src: &[f32], dst: &mut [F16]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = F16::from_f32(*s);
    }
}

/// Hardware widening using `vcvtph2ps`, 8 entries per instruction.
///
/// # Safety
/// The caller must ensure the CPU supports F16C.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
pub unsafe fn widen_f16_f16c(src: &[F16], dst: &mut [f32]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let chunks = n / 8;
    let sp = src.as_ptr() as *const u16;
    let dp = dst.as_mut_ptr();
    for c in 0..chunks {
        // SAFETY: c*8+8 <= n by construction; loads/stores are unaligned.
        let h = _mm_loadu_si128(sp.add(c * 8) as *const __m128i);
        let f = _mm256_cvtph_ps(h);
        _mm256_storeu_ps(dp.add(c * 8), f);
    }
    widen_f16_scalar(&src[chunks * 8..], &mut dst[chunks * 8..]);
}

/// Hardware narrowing using `vcvtps2ph` with round-to-nearest-even.
///
/// # Safety
/// The caller must ensure the CPU supports F16C.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
pub unsafe fn narrow_f32_f16c(src: &[f32], dst: &mut [F16]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let chunks = n / 8;
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr() as *mut u16;
    for c in 0..chunks {
        // SAFETY: c*8+8 <= n by construction; loads/stores are unaligned.
        let f = _mm256_loadu_ps(sp.add(c * 8));
        let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(f);
        _mm_storeu_si128(dp.add(c * 8) as *mut __m128i, h);
    }
    narrow_f32_scalar(&src[chunks * 8..], &mut dst[chunks * 8..]);
}
