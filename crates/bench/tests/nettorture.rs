//! Wire-fault torture matrix acceptance: the full crash-point sweep
//! over the framed protocol must pass — a connection killed at every
//! frame boundary never loses an acked request (checked the instant
//! each ack lands, against the storage backend's durable image), every
//! idempotent resubmission is deduplicated instead of re-executed (the
//! durable trail stays bit-identical to the fault-free reference), all
//! six fault classes fire with typed resolutions, and the harness's own
//! broken-ack-order self-check detects a server that acks before the
//! fsync. Everything runs in-process over real Unix sockets against the
//! deterministic storage backend.

use fp16mg_bench::nettorture::{run_net_matrix, NetTortureConfig};

#[test]
fn wire_fault_matrix_holds_every_durability_invariant() {
    // The CLI default is 8 requests; 6 keeps the test's case count
    // (still every frame boundary of its stream) inside tier-1 budget.
    let cfg = NetTortureConfig { requests: 6, ..NetTortureConfig::default() };
    let report = run_net_matrix(&cfg);
    assert_eq!(report.violations, Vec::<String>::new());
    let failed: Vec<String> = report
        .cases
        .iter()
        .filter(|c| !c.ok)
        .map(|c| format!("{}: {}", c.name, c.detail))
        .collect();
    assert_eq!(failed, Vec::<String>::new());
    assert!(report.passed(), "fired: {:?}", report.fired);
    assert!(report.duplicate_acks > 0, "dedup must be proven, not assumed");
    assert!(report.self_check_ok, "the harness must catch a broken ack order");
}
