//! Allocation-fault torture matrix acceptance: the full charge-point
//! sweep over the deterministic request stream must pass — every
//! injected allocation failure resolves as a typed outcome (degraded
//! serve or `SetupFailed`, never a panic), service resumes after each
//! fault clears, every fault class fires, every charge class observed
//! in the clean run is covered, and tracked bytes return to exactly
//! zero after every case. Everything runs in-process against the real
//! pool; no real byte budget is consumed beyond the small test grids.

use fp16mg_bench::memtorture::{run_matrix, MemTortureConfig};

#[test]
fn allocation_fault_matrix_holds_every_memory_invariant() {
    let cfg = MemTortureConfig::new();
    let report = run_matrix(&cfg);
    assert_eq!(report.violations, Vec::<String>::new());
    assert!(report.passed(), "fired: {:?}, classes: {:?}", report.fired, report.classes);
    assert!(
        report.cases as u64 > report.probe_ops,
        "every charged op index plus the burst sweep must get a case: \
         {} cases over {} ops",
        report.cases,
        report.probe_ops
    );
    assert!(report.probe_peak > 0, "the clean probe must track a working set");
    for class in ["alloc-fail", "alloc-burst", "budget-exceeded"] {
        assert!(
            report.fired.get(class).copied().unwrap_or(0) > 0,
            "fault class {class} never fired: {:?}",
            report.fired
        );
    }
    for class in ["setup", "workspace", "cache-insert", "rescale"] {
        assert!(report.classes.contains(class), "charge class {class} not covered");
    }
    assert!(report.mem_evictions > 0, "the tight-budget phase must force eviction");
    assert!(report.uncached > 0, "a refused cache-insert must degrade to an uncached serve");
}
