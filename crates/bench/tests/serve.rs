//! Concurrent-pool smoke test: a mixed batch of clean, fault-injected,
//! deadline-limited, non-converging, and panicking requests must complete
//! with one typed outcome each — the acceptance scenario of the resilient
//! runtime layer.

use fp16mg_bench::{serve, ServeConfig};
use fp16mg_krylov::SolveError;
use fp16mg_runtime::ServeError;

#[test]
fn mixed_batch_completes_with_typed_outcomes() {
    let cfg = ServeConfig {
        requests: 16,
        workers: 4,
        size: 8,
        tol: 1e-9,
        deadline_ms: 10.0,
        chaos: false,
    };
    let outcomes = serve(&cfg);
    assert_eq!(outcomes.len(), 16, "every request must produce an outcome");

    let count = |pred: &dyn Fn(&SolveError) -> bool| {
        outcomes
            .iter()
            .filter(|o| match &o.result {
                Err(ServeError::Session(e)) => pred(e),
                _ => false,
            })
            .count()
    };
    assert!(
        count(&|e| matches!(e, SolveError::WorkerPanicked { .. })) >= 1,
        "at least one injected panic, isolated to its request"
    );
    assert!(
        count(&|e| matches!(e, SolveError::DeadlineExceeded { .. })) >= 1,
        "at least one deadline-limited request"
    );
    assert!(
        count(&|e| matches!(e, SolveError::Unconverged { .. })) >= 1,
        "at least one non-converging request"
    );

    for out in &outcomes {
        assert_eq!(out.index, outcomes.iter().position(|o| o.name == out.name).unwrap());
        if out.name.starts_with("clean") {
            assert!(out.converged(), "clean request {} failed: {:?}", out.name, out.result);
            assert_eq!(out.report.attempts.len(), 1, "clean requests converge on rung 0");
        }
        if out.name.starts_with("fault") {
            assert!(
                out.converged(),
                "fault-injected request {} must converge via the ladder: {:?}",
                out.name,
                out.result
            );
            assert!(
                out.report.attempts.len() > 1,
                "fault-injected request {} must record its rung climb",
                out.name
            );
            assert!(!out.report.attempts[0].converged, "rung 0 saw the fault");
            assert!(out.report.attempts.last().unwrap().converged);
        }
    }
}

#[test]
fn chaos_batch_repairs_bit_flips_without_process_failures() {
    // The `--chaos` acceptance scenario: 16 concurrent requests, seeded
    // single-bit flips in mid-hierarchy FP16 planes, plus injected worker
    // panics. Zero process-level failures: every request yields a typed
    // outcome, every flip row is repaired by the repair-level rung
    // (localized to its level and tap), and no flip row ever needs a
    // rebuild rung.
    let cfg = ServeConfig {
        requests: 16,
        workers: 4,
        size: 12,
        tol: 1e-9,
        deadline_ms: 10.0,
        chaos: true,
    };
    let outcomes = serve(&cfg);
    assert_eq!(outcomes.len(), 16, "every request must produce an outcome");

    let mut flips = 0;
    for out in &outcomes {
        if out.name.starts_with("panic") {
            assert!(
                matches!(out.result, Err(ServeError::Session(SolveError::WorkerPanicked { .. }))),
                "panic rows stay isolated: {:?}",
                out.result
            );
            continue;
        }
        if out.name.starts_with("flip") {
            flips += 1;
            assert!(
                out.converged(),
                "{}: repair must rescue the solve: {:?}",
                out.name,
                out.result
            );
            assert!(!out.report.repairs.is_empty(), "{}: no repair recorded", out.name);
            for ev in &out.report.repairs {
                assert_eq!(ev.level, 1, "{}: repair localized to the flipped level", out.name);
                assert_eq!(ev.taps.len(), 1, "{}: exactly one plane flagged", out.name);
            }
            assert!(
                out.report.final_rung() <= Some(fp16mg_runtime::Rung::RepairLevel),
                "{}: a bit flip must never cost a rebuild: {}",
                out.name,
                out.report.summary()
            );
        }
    }
    assert!(flips >= 8, "the chaos cycle must be dominated by flip scenarios, got {flips}");
}

#[test]
fn overload_demo_meets_its_acceptance_criteria() {
    // The `repro serve --overload` scenario end-to-end, small: four waves
    // through one pool — oversubscription (shed + degrade + queue-full),
    // a poisoned class tripping its breaker, typed breaker-open refusals
    // during cooldown, half-open probe recovery, and normal service
    // after. `check_overload` encodes the acceptance criteria; a healthy
    // run reports zero violations.
    let cfg = fp16mg_bench::OverloadConfig { size: 6, tol: 1e-9, workers: 2 };
    let report = fp16mg_bench::serve_overload(&cfg);
    assert!(
        report.violations.is_empty(),
        "overload acceptance violations:\n{}",
        report.violations.join("\n")
    );

    // Spot-check the invariants the report is built on, independently of
    // check_overload.
    for out in report.outcomes() {
        match &out.result {
            Ok(_) => assert!(out.solution.is_some() || out.name.starts_with("poison")),
            Err(ServeError::Rejected(e)) => {
                assert!(!e.label().is_empty(), "every refusal is typed");
            }
            Err(ServeError::Session(e)) => {
                assert!(
                    !matches!(e, SolveError::WorkerPanicked { .. }),
                    "no worker may panic in the overload demo"
                );
            }
        }
    }
    let probe = report
        .outcomes()
        .find(|o| o.probe)
        .expect("the recovery wave must admit a half-open probe");
    assert!(probe.converged(), "the probe must converge and close the breaker");
}
