//! Time-stepping simulation engine acceptance: every step of a cold run
//! commits, the chaos schedule exercises every reuse decision and
//! recovery rung, an interrupted run resumes to a bit-identical trail,
//! and a snapshot from a different run configuration is refused. The
//! bench crate hosts these because the chaos paths need `fault-inject`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use fp16mg_bench::simulate::{sim_trail_path, SimConfig, SimDriver};
use fp16mg_problems::ProblemKind;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp16mg-simtest-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cold_run_commits_every_step() {
    let dir = scratch("cold");
    let mut cfg = SimConfig::new(ProblemKind::Oil, 6, 6, 1e-9);
    cfg.snapshot_dir = Some(dir.clone());
    let mut driver = SimDriver::new(cfg).unwrap();
    assert!(!driver.resumed());
    let report = driver.run().unwrap();
    assert_eq!(report.rows.len(), 6);
    for row in &report.rows {
        assert_eq!(row.outcome, "ok", "step {} failed: {}", row.step, row.outcome);
        assert!(row.resid <= 1e-9, "step {} residual {}", row.step, row.resid);
        assert!(!row.rollback);
    }
    let c = report.counters;
    assert_eq!(c.keep + c.rescale + c.rebuild, 6);
    assert_eq!(c.rollbacks, 0);
    assert!(report.fresh_setup_s > 0.0 && report.reuse_setup_s > 0.0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_exercises_every_decision_and_recovery_path() {
    let mut cfg = SimConfig::new(ProblemKind::Oil, 12, 6, 1e-9);
    cfg.chaos = true;
    let mut driver = SimDriver::new(cfg).unwrap();
    let report = driver.run().expect("every chaos fault must be recovered");
    assert_eq!(
        report.coverage_violations(),
        Vec::<String>::new(),
        "counters: {:?}",
        report.counters
    );
    assert!(report.rows.iter().any(|r| r.rollback), "rollback-and-rebuild never fired");
    assert!(report.rows.iter().all(|r| r.outcome == "ok"));
}

#[test]
fn interrupted_run_resumes_to_a_bit_identical_trail() {
    let kind = ProblemKind::Oil;
    let (steps, size, tol) = (8u64, 6usize, 1e-9f64);

    // Uninterrupted reference.
    let ref_dir = scratch("ref");
    let mut ref_cfg = SimConfig::new(kind, steps, size, tol);
    ref_cfg.snapshot_dir = Some(ref_dir.clone());
    SimDriver::new(ref_cfg).unwrap().run().unwrap();
    let ref_trail = fs::read_to_string(sim_trail_path(&ref_dir, kind)).unwrap();

    // Interrupted run: three committed steps, then the driver is
    // dropped mid-flight (the in-memory state is lost, as in a kill).
    let crash_dir = scratch("crash");
    let mut cfg = SimConfig::new(kind, steps, size, tol);
    cfg.snapshot_dir = Some(crash_dir.clone());
    let mut first = SimDriver::new(cfg.clone()).unwrap();
    for _ in 0..3 {
        first.step_once().unwrap();
    }
    drop(first);

    // The restart must resume from the snapshot, not start cold, and
    // the concatenated trail must equal the reference byte for byte —
    // same decisions, same rung trails, same residual bits.
    let mut second = SimDriver::new(cfg).unwrap();
    assert!(second.resumed());
    assert_eq!(second.next_step(), 3);
    let report = second.run().unwrap();
    assert!(report.resumed);
    assert_eq!(report.rows.len(), 5);
    let crash_trail = fs::read_to_string(sim_trail_path(&crash_dir, kind)).unwrap();
    assert_eq!(crash_trail, ref_trail);
    assert_eq!(report.final_resid.to_bits(), {
        let last = ref_trail.lines().last().unwrap();
        let hex = last.rsplit("resid=").next().unwrap();
        u64::from_str_radix(hex, 16).unwrap()
    });
    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn snapshot_from_a_different_run_is_refused() {
    let dir = scratch("mismatch");
    let mut cfg = SimConfig::new(ProblemKind::Oil, 6, 6, 1e-9);
    cfg.snapshot_dir = Some(dir.clone());
    let mut driver = SimDriver::new(cfg.clone()).unwrap();
    driver.step_once().unwrap();
    drop(driver);

    // Same directory, different grid size: the snapshot must be
    // rejected, not silently reinterpreted.
    let mut other = cfg.clone();
    other.size = 8;
    let err = SimDriver::new(other).err().expect("size mismatch must refuse to resume");
    assert!(err.contains("does not match"), "unexpected error: {err}");

    // Chaos flag is part of the run identity too.
    let mut chaotic = cfg;
    chaotic.chaos = true;
    let err = SimDriver::new(chaotic).err().expect("chaos mismatch must refuse to resume");
    assert!(err.contains("does not match"), "unexpected error: {err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_final_trail_record_is_truncated_and_logged_on_resume() {
    let kind = ProblemKind::Oil;
    let dir = scratch("torn");
    let mut cfg = SimConfig::new(kind, 5, 6, 1e-9);
    cfg.snapshot_dir = Some(dir.clone());
    let mut driver = SimDriver::new(cfg.clone()).unwrap();
    driver.step_once().unwrap();
    driver.step_once().unwrap();
    drop(driver);

    // Simulate a torn append: half of a record lands with no newline.
    let trail = sim_trail_path(&dir, kind);
    let intact = fs::read_to_string(&trail).unwrap();
    fs::OpenOptions::new()
        .append(true)
        .open(&trail)
        .unwrap()
        .write_all(b"step=2 decision=keep drift=00")
        .unwrap();

    // Resume: the torn tail is truncated and logged, not a failed
    // restore, and the run completes with a clean trail.
    let mut second = SimDriver::new(cfg).unwrap();
    assert!(
        second.recovery_events().iter().any(|e| e.contains("torn final record")),
        "truncation must be logged, got {:?}",
        second.recovery_events()
    );
    assert!(second.resumed());
    assert_eq!(second.next_step(), 2, "resume from the last durable step");
    assert_eq!(fs::read_to_string(&trail).unwrap(), intact, "torn bytes must be gone");
    second.run().unwrap();
    let final_trail = fs::read_to_string(&trail).unwrap();
    assert!(final_trail.ends_with('\n'));
    assert_eq!(final_trail.lines().count(), 5);
    fs::remove_dir_all(&dir).ok();
}
