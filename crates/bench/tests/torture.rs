//! Storage-fault torture matrix acceptance: the full crash-point sweep
//! over a short trajectory must pass — every acked step survives every
//! power-loss point, corrupt snapshot slots are quarantined with
//! fallback, the bounded ENOSPC retry absorbs a burst, every fault
//! class fires, and the harness proves it would catch a broken write
//! order. Everything runs on the in-memory fault backend: no real I/O.

use fp16mg_bench::torture::{run_matrix, TortureConfig};
use fp16mg_problems::ProblemKind;

#[test]
fn crash_point_matrix_holds_every_durability_invariant() {
    let cfg = TortureConfig { kind: ProblemKind::Oil, steps: 3, size: 6, tol: 1e-7 };
    let report = run_matrix(&cfg);
    assert_eq!(report.violations, Vec::<String>::new());
    assert!(report.breakage_detected, "phase G must detect the broken write order");
    assert!(report.passed(), "fired: {:?}", report.fired);
    assert!(report.cases > 50, "matrix unexpectedly small: {} cases", report.cases);
    assert!(report.restarts > 0, "no case ever simulated a restart");
    for class in [
        "crash@rename",
        "torn-write",
        "fsync-fail",
        "silent-fsync-loss",
        "enospc",
        "read-corruption",
    ] {
        assert!(
            report.fired.get(class).copied().unwrap_or(0) > 0,
            "fault class {class} never fired: {:?}",
            report.fired
        );
    }
}
