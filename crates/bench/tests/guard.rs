//! Fault-injection tests for the self-healing layer: a corrupted FP16
//! level must be detected within one V-cycle application, promoted to
//! FP32, and the outer solve must still converge to the clean run's
//! tolerance. The bench crate hosts these because it is the one crate
//! that enables the `fault-inject` feature.

use fp16mg_bench::{finest_narrow_level, solve_guarded, Combo};
use fp16mg_core::{Mg, PromotionReason};
use fp16mg_fp::Precision;
use fp16mg_krylov::SolveOptions;
use fp16mg_problems::ProblemKind;
use fp16mg_sgdia::fault::FaultSpec;
use fp16mg_sgdia::kernels::Par;

fn mix16(kind: ProblemKind, n: usize) -> (fp16mg_problems::Problem, Mg<f32>) {
    let p = kind.build(n);
    let mg = Mg::<f32>::setup(&p.matrix, &Combo::D16SetupScale.mg_config()).unwrap();
    (p, mg)
}

#[test]
fn injected_inf_is_detected_within_one_vcycle() {
    let (p, mut mg) = mix16(ProblemKind::Laplace27, 12);
    let lev = finest_narrow_level(&mg).expect("Mix16 stores the finest level in FP16");
    assert!(mg.scan_level(lev).unwrap().all_finite());

    // Corrupt an interior cell: boundary cells carry taps that point
    // outside the grid and are skipped by the kernels, so an Inf there
    // would be stored but never read.
    let g = *p.matrix.grid();
    let cell = ((g.nz / 2 * g.ny) + g.ny / 2) * g.nx + g.nx / 2;
    assert!(mg.stored_mut(lev).unwrap().inject_inf_at(cell, 0));
    let scan = mg.scan_level(lev).unwrap();
    assert_eq!(scan.total.non_finite(), 1, "exactly the injected entry");

    // One guarded V-cycle application: the Inf propagates into the
    // output, apply_pr notices, promotes, and re-applies.
    let rn = p.matrix.rows();
    let r: Vec<f32> = (0..rn).map(|i| ((i % 7) as f32) * 0.1 + 0.1).collect();
    let mut e = vec![0.0f32; rn];
    mg.apply_pr(&r, &mut e);

    assert!(e.iter().all(|v| v.is_finite()), "guarded output must be finite");
    assert_eq!(mg.promotions().len(), 1);
    let ev = &mg.promotions()[0];
    assert_eq!(ev.level, lev);
    assert_eq!(ev.from, Precision::F16);
    assert_eq!(ev.to, Precision::F32);
    assert_eq!(ev.reason, PromotionReason::NonFiniteOutput);
    assert_eq!(ev.corrupt_entries, 1);
    assert!(mg.scan_level(lev).unwrap().all_finite(), "rebuilt level is clean");
}

#[test]
fn promotion_restores_convergence_on_laplace27() {
    let opts = SolveOptions { tol: 1e-9, max_iters: 300, ..Default::default() };

    let (p, mut clean_mg) = mix16(ProblemKind::Laplace27, 14);
    let clean = solve_guarded(&p, &mut clean_mg, &opts, Par::Seq);
    assert!(clean.converged(), "{:?}", clean.result);
    assert!(clean.promotions.is_empty(), "clean run must not promote");

    let (p, mut mg) = mix16(ProblemKind::Laplace27, 14);
    let lev = finest_narrow_level(&mg).unwrap();
    let report = mg.stored_mut(lev).unwrap().inject_faults(&FaultSpec::inf(1e-3, 7));
    assert!(report.infs > 0, "injection rate too low for this matrix");

    let healed = solve_guarded(&p, &mut mg, &opts, Par::Seq);
    assert!(healed.converged(), "{:?}", healed.result);
    assert!(!healed.promotions.is_empty(), "the corrupt level must be promoted");
    assert!(healed.result.final_rel_residual <= opts.tol, "same tolerance as clean");
    // Healing costs at most a handful of extra iterations.
    assert!(
        healed.result.iters <= clean.result.iters + 5,
        "healed {} vs clean {}",
        healed.result.iters,
        clean.result.iters
    );
}

#[test]
fn full64_baseline_never_promotes() {
    let p = ProblemKind::Laplace27.build(12);
    let mut mg = Mg::<f64>::setup(&p.matrix, &Combo::Full64.mg_config()).unwrap();
    let out = solve_guarded(&p, &mut mg, &SolveOptions::default(), Par::Seq);
    assert!(out.converged());
    assert!(out.promotions.is_empty());
    assert_eq!(out.restarts, 0);
}

#[test]
fn exp_flip_faults_do_not_defeat_the_guarded_solve() {
    // Exponent flips keep values finite (just wildly wrong), so they
    // surface as stagnation/breakdown rather than NaN output. The guarded
    // driver must still terminate — ideally converged after promotion.
    let opts = SolveOptions { tol: 1e-9, max_iters: 300, ..Default::default() };
    let (p, mut mg) = mix16(ProblemKind::Laplace27, 12);
    let lev = finest_narrow_level(&mg).unwrap();
    let report = mg.stored_mut(lev).unwrap().inject_faults(&FaultSpec::exp_flip(5e-3, 11));
    assert!(report.exp_flips > 0);

    let out = solve_guarded(&p, &mut mg, &opts, Par::Seq);
    assert!(
        out.converged() || !out.result.precision_suspect() || !mg.can_promote(),
        "driver stopped while a promotion was still available: {:?}",
        out.result
    );
}
