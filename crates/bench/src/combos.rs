//! The precision/strategy combinations evaluated in the paper.

use fp16mg_core::{MgConfig, RecoveryPolicy, ScaleStrategy, StoragePolicy};
use fp16mg_fp::Precision;

/// One column of the Fig. 6 legend (plus the extensions of §4.3 and §8).
///
/// Notation: `K` = iterative precision, `P` = preconditioner computation
/// precision, `D` = preconditioner storage precision. `K` is always FP64
/// here (Table 3's iterative precision for every problem).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combo {
    /// `K64 P64 D64` — the baseline everything-double workflow.
    Full64,
    /// `K64 P32 D32` — the common FP32-preconditioner practice.
    D32,
    /// `K64 P32 D16` with **no** out-of-range treatment: overflows to
    /// NaN on every out-of-range problem (Fig. 6's yellow curve).
    D16None,
    /// `K64 P32 D16` with the inferior *scale-then-setup* of §4.3.
    D16ScaleSetup,
    /// `K64 P32 D16` with the paper's *setup-then-scale* (Algorithm 1).
    D16SetupScale,
    /// `K64 P32 D-bf16` — bfloat16 storage (§8 comparison).
    Bf16,
    /// `K64 P32` with FP16 on levels `< shift` and FP32 below
    /// (the `shift_levid` underflow guard of §4.3).
    D16Shift(usize),
}

impl Combo {
    /// The five Fig. 6 curves in plot order.
    pub fn fig6() -> [Combo; 5] {
        [Combo::Full64, Combo::D32, Combo::D16None, Combo::D16ScaleSetup, Combo::D16SetupScale]
    }

    /// Paper legend label.
    pub fn label(self) -> String {
        match self {
            Combo::Full64 => "Full64".into(),
            Combo::D32 => "K64P32D32".into(),
            Combo::D16None => "K64P32D16-none".into(),
            Combo::D16ScaleSetup => "K64P32D16-scale-setup".into(),
            Combo::D16SetupScale => "K64P32D16-setup-scale".into(),
            Combo::Bf16 => "K64P32Dbf16".into(),
            Combo::D16Shift(l) => format!("K64P32D16-shift{l}"),
        }
    }

    /// True when the preconditioner computation precision is FP64
    /// (only `Full64`).
    pub fn p64(self) -> bool {
        matches!(self, Combo::Full64)
    }

    /// The multigrid configuration (everything except the computation
    /// precision, which is a type parameter chosen via [`Combo::p64`]).
    pub fn mg_config(self) -> MgConfig {
        match self {
            Combo::Full64 => MgConfig::d64(),
            Combo::D32 => MgConfig::d32(),
            // The "no treatment" ablation arm also switches runtime
            // recovery off: Fig. 6's yellow curve exists to show the NaN
            // failure, which self-healing would otherwise mask.
            Combo::D16None => MgConfig {
                scale: ScaleStrategy::None,
                recovery: RecoveryPolicy::disabled(),
                ..MgConfig::d16()
            },
            Combo::D16ScaleSetup => {
                MgConfig { scale: ScaleStrategy::ScaleThenSetup, ..MgConfig::d16() }
            }
            Combo::D16SetupScale => MgConfig::d16(),
            Combo::Bf16 => MgConfig::dbf16(),
            Combo::D16Shift(l) => MgConfig {
                storage: StoragePolicy::Fp16Until { shift_levid: l, coarse: Precision::F32 },
                ..MgConfig::d16()
            },
        }
    }
}
