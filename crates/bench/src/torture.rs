//! Crash-point recovery matrix over the simulation durability stack.
//!
//! The torture harness runs the time-stepping driver entirely on a
//! [`FaultStorage`] backend and enumerates fault schedules against the
//! exact operation sequence a clean run performs:
//!
//! - **Phase A** — power loss at *every* I/O operation index.
//! - **Phase B** — a torn write (half the buffer lands, then the power
//!   goes out) at every write index.
//! - **Phase C** — a failed fsync (dirty pages dropped) at every fsync
//!   index.
//! - **Phase D** — a *lying* fsync (reports success, persists nothing)
//!   at every fsync index, followed by power loss a few operations
//!   later — the window where the snapshot can claim a step the trail
//!   never durably recorded.
//! - **Phase E** — a bounded ENOSPC burst at every write index; the
//!   retry in the durable-append path must absorb it with no restart.
//! - **Phase F** — power loss mid-run, then bit corruption on every
//!   recovery read: the corrupt snapshot slots must be quarantined and
//!   recovery must fall back (previous generation or a logged cold
//!   start).
//! - **Phase G** — self-check: the same crash sweep as phase A with
//!   [`SimConfig::break_write_order`] set. The harness must *detect*
//!   the resulting acked-step loss; if the broken order sails through,
//!   the matrix itself is broken and the run fails.
//!
//! Two invariant tiers are checked:
//!
//! - **Instant** (at each power loss): the durable trail contains a
//!   bit-identical line for every step that was acknowledged. Skipped
//!   in phase D — no software ordering survives an fsync that lies —
//!   where the end-state invariant is the contract instead.
//! - **End state** (after restarts drive the run to completion): every
//!   step is covered by a trail line bit-identical to the clean-run
//!   reference, no alien lines, no torn tail, and the newest decodable
//!   snapshot generation is the final step.
//!
//! The run exits zero only if every invariant held *and* every fault
//! class actually fired (torn write, fsync failure, silent fsync loss,
//! ENOSPC, crash at rename, read corruption) — an empty matrix cannot
//! pass by default.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fp16mg_problems::ProblemKind;
use fp16mg_runtime::{Fault, FaultStorage, OpKind, SimSnapshot, SnapshotStore};

use crate::simulate::{sim_snapshot_path, sim_trail_path, SimConfig, SimDriver};

/// Virtual durability directory inside the in-memory fault backend.
const TORTURE_DIR: &str = "/torture";

/// Restart budget per case: a single scheduled fault needs at most two
/// process lives; anything past this is a recovery livelock.
const MAX_LIVES: u64 = 8;

/// How many operation indices after the first power loss get a
/// corrupt-read fault in phase F — wide enough to cover every recovery
/// read (trail plus both snapshot slots).
const CORRUPT_WINDOW: u64 = 10;

/// Fault classes that must have fired for the matrix to count as
/// exercised.
const REQUIRED_FIRED: &[&str] = &[
    "crash",
    "crash@rename",
    "torn-write",
    "fsync-fail",
    "silent-fsync-loss",
    "enospc",
    "read-corruption",
];

/// Shape of the torture run.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Problem family stepped through time.
    pub kind: ProblemKind,
    /// Steps per case (each case replays the same short trajectory).
    pub steps: u64,
    /// Grid extent.
    pub size: usize,
    /// Per-step convergence tolerance.
    pub tol: f64,
}

impl TortureConfig {
    /// The default matrix: a short oil-reservoir trajectory, small
    /// enough that the full sweep stays fast, long enough that every
    /// step boundary (first create, steady appends, A/B slot flips)
    /// appears in the operation sequence.
    pub fn new() -> Self {
        TortureConfig { kind: ProblemKind::Oil, steps: 4, size: 6, tol: 1e-7 }
    }
}

impl Default for TortureConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything the matrix observed, for the CLI and for tests.
#[derive(Clone, Debug, Default)]
pub struct TortureReport {
    /// Fault cases executed.
    pub cases: usize,
    /// Process restarts summed over all cases.
    pub restarts: u64,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<String>,
    /// Aggregate fault-class fire counts over all cases.
    pub fired: BTreeMap<String, u64>,
    /// Whether phase G's deliberately broken write order was detected
    /// as an acked-step loss (it must be).
    pub breakage_detected: bool,
}

impl TortureReport {
    /// True when every invariant held, the self-check detected the
    /// broken write order, and every required fault class fired.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.breakage_detected
            && REQUIRED_FIRED.iter().all(|k| self.fired.get(*k).copied().unwrap_or(0) > 0)
    }
}

/// One fault case: a schedule plus how to judge the outcome.
struct CaseSpec {
    label: String,
    schedule: Vec<(u64, Fault)>,
    /// Check the instant invariant at every power loss.
    check_instant: bool,
    /// Run the driver with the deliberately broken write order.
    break_order: bool,
    /// After the first power loss, corrupt every read in the recovery
    /// window.
    corrupt_recovery: bool,
}

impl CaseSpec {
    fn new(label: String, schedule: Vec<(u64, Fault)>) -> Self {
        CaseSpec {
            label,
            schedule,
            check_instant: true,
            break_order: false,
            corrupt_recovery: false,
        }
    }
}

/// What one case produced.
#[derive(Default)]
struct CaseOutcome {
    violations: Vec<String>,
    /// Acked-step losses observed at a power loss (the instant
    /// invariant). A violation everywhere except phase G, where they
    /// are the expected detection signal.
    instant_losses: Vec<String>,
    events: Vec<String>,
    restarts: u64,
    completed: bool,
    fired: BTreeMap<String, u64>,
}

fn sim_cfg(c: &TortureConfig, fault: &FaultStorage, break_order: bool) -> SimConfig {
    let mut cfg = SimConfig::new(c.kind, c.steps, c.size, c.tol);
    cfg.snapshot_dir = Some(PathBuf::from(TORTURE_DIR));
    cfg.storage = Arc::new(fault.clone());
    cfg.measure_fresh = false;
    cfg.break_write_order = break_order;
    cfg
}

/// Step index of a trail line (`step=N ...`), if it parses.
fn step_index(line: &str) -> Option<u64> {
    line.strip_prefix("step=")?.split_whitespace().next()?.parse().ok()
}

/// The complete (newline-terminated) lines of a trail image; a torn
/// tail fragment is excluded.
fn complete_lines(bytes: &[u8]) -> Vec<String> {
    let end = bytes.iter().rposition(|&b| b == b'\n').map(|i| i + 1).unwrap_or(0);
    String::from_utf8_lossy(&bytes[..end]).lines().map(str::to_string).collect()
}

/// Steps whose durable trail line is bit-identical to the reference.
fn durable_steps(bytes: &[u8], ref_line: &BTreeMap<u64, String>) -> BTreeSet<u64> {
    complete_lines(bytes)
        .into_iter()
        .filter_map(|line| {
            let s = step_index(&line)?;
            (ref_line.get(&s) == Some(&line)).then_some(s)
        })
        .collect()
}

/// Instant invariant: immediately after a power loss, the durable trail
/// must hold a bit-identical line for every acknowledged step.
fn check_instant(
    fault: &FaultStorage,
    trail: &Path,
    acked: &[u64],
    ref_line: &BTreeMap<u64, String>,
    label: &str,
    losses: &mut Vec<String>,
) {
    let bytes = fault.peek(trail).unwrap_or_default();
    let present = durable_steps(&bytes, ref_line);
    for &s in acked {
        if !present.contains(&s) {
            losses.push(format!("{label}: acked step {s} has no durable trail line at power loss"));
        }
    }
}

/// End-state invariant: after the case drives the run to completion,
/// the trail must cover every step with bit-identical lines (duplicates
/// from replays allowed), hold nothing else, end cleanly, and the
/// newest decodable snapshot generation must be the final step.
fn check_end_state(
    cfg: &TortureConfig,
    fault: &FaultStorage,
    ref_line: &BTreeMap<u64, String>,
    label: &str,
    violations: &mut Vec<String>,
) {
    let dir = Path::new(TORTURE_DIR);
    let trail = sim_trail_path(dir, cfg.kind);
    let Some(bytes) = fault.peek(&trail) else {
        violations.push(format!("{label}: no trail file after completion"));
        return;
    };
    if bytes.last() != Some(&b'\n') {
        violations.push(format!("{label}: trail ends in a torn record after completion"));
    }
    let mut seen = BTreeSet::new();
    for line in complete_lines(&bytes) {
        match step_index(&line) {
            Some(s) if ref_line.get(&s) == Some(&line) => {
                seen.insert(s);
            }
            Some(s) => violations.push(format!(
                "{label}: trail line for step {s} is not bit-identical to the reference"
            )),
            None => violations.push(format!("{label}: alien trail line after completion: {line}")),
        }
    }
    for s in 0..cfg.steps {
        if !seen.contains(&s) {
            violations.push(format!("{label}: step {s} has no trail line after completion"));
        }
    }
    let store = SnapshotStore::new(sim_snapshot_path(dir, cfg.kind));
    let newest = [store.legacy().to_path_buf(), store.slot_for(0), store.slot_for(1)]
        .iter()
        .filter_map(|p| fault.peek(p))
        .filter_map(|bytes| {
            SimSnapshot::decode(&String::from_utf8_lossy(&bytes)).ok().map(|s| s.step)
        })
        .max();
    if newest != Some(cfg.steps - 1) {
        violations.push(format!(
            "{label}: newest decodable snapshot is {newest:?}, expected step {}",
            cfg.steps - 1
        ));
    }
}

/// Runs one fault case to completion (or to the restart budget),
/// restarting across simulated power losses, and judges the invariants.
fn run_case(cfg: &TortureConfig, ref_line: &BTreeMap<u64, String>, spec: &CaseSpec) -> CaseOutcome {
    let fault = FaultStorage::new();
    for &(index, f) in &spec.schedule {
        fault.schedule(index, f);
    }
    let trail = sim_trail_path(Path::new(TORTURE_DIR), cfg.kind);
    let mut out = CaseOutcome::default();
    let mut acked: Vec<u64> = Vec::new();
    let mut corrupted = false;
    let mut lives = 0u64;
    loop {
        lives += 1;
        if lives > MAX_LIVES {
            out.violations.push(format!(
                "{}: run did not complete within {MAX_LIVES} process lives",
                spec.label
            ));
            break;
        }
        let mut interrupted_by = None;
        match SimDriver::new(sim_cfg(cfg, &fault, spec.break_order)) {
            Ok(mut driver) => {
                out.events.extend(driver.recovery_events().iter().cloned());
                while !driver.done() {
                    match driver.step_once() {
                        Ok(row) => acked.push(row.step),
                        Err(e) => {
                            interrupted_by = Some(e);
                            break;
                        }
                    }
                }
                if interrupted_by.is_none() {
                    out.completed = true;
                    break;
                }
            }
            Err(e) => {
                if !fault.crashed() {
                    out.violations
                        .push(format!("{}: recovery failed without a crash: {e}", spec.label));
                    break;
                }
                interrupted_by = Some(e);
            }
        }
        drop(interrupted_by);
        out.restarts += 1;
        if fault.crashed() {
            fault.power_loss();
            if spec.check_instant {
                check_instant(
                    &fault,
                    &trail,
                    &acked,
                    ref_line,
                    &spec.label,
                    &mut out.instant_losses,
                );
            }
            if spec.corrupt_recovery && !corrupted {
                corrupted = true;
                let n = fault.op_count();
                for k in 1..=CORRUPT_WINDOW {
                    fault.schedule(n + k, Fault::CorruptRead { bit: 9 + k });
                }
            }
        }
    }
    if out.completed {
        check_end_state(cfg, &fault, ref_line, &spec.label, &mut out.violations);
    }
    out.fired = fault.fired();
    out
}

/// The clean-run reference: trail lines by step and the full operation
/// log whose indices the fault schedules target.
fn probe(cfg: &TortureConfig) -> Result<(BTreeMap<u64, String>, Vec<OpKind>), String> {
    let fault = FaultStorage::new();
    let mut driver = SimDriver::new(sim_cfg(cfg, &fault, false))?;
    while !driver.done() {
        driver.step_once()?;
    }
    let trail = sim_trail_path(Path::new(TORTURE_DIR), cfg.kind);
    let bytes = fault.peek(&trail).ok_or("probe run produced no trail")?;
    let mut ref_line = BTreeMap::new();
    for line in complete_lines(&bytes) {
        let s = step_index(&line).ok_or_else(|| format!("unparseable probe line: {line}"))?;
        if ref_line.insert(s, line).is_some() {
            return Err(format!("probe run wrote step {s} twice"));
        }
    }
    for s in 0..cfg.steps {
        if !ref_line.contains_key(&s) {
            return Err(format!("probe run never recorded step {s}"));
        }
    }
    let ops = fault.op_log().into_iter().map(|o| o.kind).collect();
    Ok((ref_line, ops))
}

/// Executes the full matrix and aggregates the verdict.
pub fn run_matrix(cfg: &TortureConfig) -> TortureReport {
    let mut report = TortureReport::default();
    let (ref_line, ops) = match probe(cfg) {
        Ok(p) => p,
        Err(e) => {
            report.violations.push(format!("probe: clean run failed: {e}"));
            return report;
        }
    };
    let total = ops.len() as u64;
    let indices_of = |kind: OpKind| -> Vec<u64> {
        ops.iter().enumerate().filter(|&(_, k)| *k == kind).map(|(i, _)| i as u64).collect()
    };
    let writes = indices_of(OpKind::Write);
    let fsyncs = indices_of(OpKind::Fsync);
    let renames = indices_of(OpKind::Rename);

    let mut specs: Vec<CaseSpec> = Vec::new();
    // Phase A: power loss at every operation index.
    for i in 0..total {
        specs.push(CaseSpec::new(format!("A:crash@{i}"), vec![(i, Fault::Crash)]));
    }
    // Phase B: torn write at every write index.
    for &i in &writes {
        specs.push(CaseSpec::new(format!("B:torn@{i}"), vec![(i, Fault::TornWrite)]));
    }
    // Phase C: failed fsync at every fsync index.
    for &i in &fsyncs {
        specs.push(CaseSpec::new(format!("C:fsync-fail@{i}"), vec![(i, Fault::FsyncFail)]));
    }
    // Phase D: lying fsync, then power loss shortly after. The +6
    // offset reaches past a full snapshot publish, so a loss on the
    // trail fsync can coexist with a durably published snapshot — the
    // exact window the trail-aware recovery pick exists for. The
    // instant invariant is off: no write ordering survives an fsync
    // that lies; the end-state invariant is the contract here.
    for &i in &fsyncs {
        for off in [3u64, 6u64] {
            let mut spec = CaseSpec::new(
                format!("D:silent-loss@{i}+crash@{}", i + off),
                vec![(i, Fault::SilentFsyncLoss), (i + off, Fault::Crash)],
            );
            spec.check_instant = false;
            specs.push(spec);
        }
    }
    // Phase E: bounded ENOSPC burst at every write index; the retry in
    // the durable-append/publish path must absorb it without a restart.
    for &i in &writes {
        specs.push(CaseSpec::new(format!("E:enospc@{i}"), vec![(i, Fault::NoSpace { count: 2 })]));
    }
    // Phase F: crash mid-run, then corrupt every recovery read — the
    // quarantine-and-fall-back path must engage.
    let phase_f_from = specs.len();
    for &i in [renames.get(1), renames.last()].into_iter().flatten() {
        let mut spec =
            CaseSpec::new(format!("F:crash@{i}+corrupt-recovery"), vec![(i, Fault::Crash)]);
        spec.corrupt_recovery = true;
        specs.push(spec);
    }
    // Phase G: the phase-A sweep against a deliberately broken write
    // order (trail appended without fsync before the ack). The harness
    // passes only if it catches the resulting acked-step loss.
    let phase_g_from = specs.len();
    for i in 0..total {
        let mut spec = CaseSpec::new(format!("G:broken-order:crash@{i}"), vec![(i, Fault::Crash)]);
        spec.break_order = true;
        specs.push(spec);
    }

    let mut quarantine_seen = false;
    for (idx, spec) in specs.iter().enumerate() {
        let out = run_case(cfg, &ref_line, spec);
        report.cases += 1;
        report.restarts += out.restarts;
        report.violations.extend(out.violations);
        if spec.break_order {
            if !out.instant_losses.is_empty() {
                report.breakage_detected = true;
            }
        } else {
            report.violations.extend(out.instant_losses);
        }
        if spec.label.starts_with("E:") && out.restarts > 0 {
            report.violations.push(format!(
                "{}: ENOSPC burst forced {} restart(s); the bounded retry should absorb it",
                spec.label, out.restarts
            ));
        }
        if (phase_f_from..phase_g_from).contains(&idx)
            && out.events.iter().any(|e| e.contains("quarantined"))
        {
            quarantine_seen = true;
        }
        for (k, n) in out.fired {
            *report.fired.entry(k).or_insert(0) += n;
        }
    }
    if phase_f_from < phase_g_from && !quarantine_seen {
        report.violations.push(
            "phase F never quarantined a corrupt snapshot slot; the fall-back path went \
             unexercised"
                .to_string(),
        );
    }
    if !report.breakage_detected {
        report.violations.push(
            "phase G: the broken write order was never detected as an acked-step loss — the \
             matrix cannot be trusted"
                .to_string(),
        );
    }
    for &k in REQUIRED_FIRED {
        if report.fired.get(k).copied().unwrap_or(0) == 0 {
            report.violations.push(format!("fault class '{k}' never fired"));
        }
    }
    report
}

/// CLI entry: runs the matrix, prints the verdict, returns the exit
/// code.
pub fn run_torture_cli(cfg: &TortureConfig) -> i32 {
    println!(
        "torture: {} steps={} size={} tol={:e}",
        cfg.kind.name(),
        cfg.steps,
        cfg.size,
        cfg.tol
    );
    let report = run_matrix(cfg);
    println!("torture: {} cases, {} simulated restarts", report.cases, report.restarts);
    for (k, n) in &report.fired {
        println!("torture: fired {k} x{n}");
    }
    println!(
        "torture: broken-write-order self-check: {}",
        if report.breakage_detected { "detected" } else { "NOT DETECTED" }
    );
    if report.passed() {
        println!("torture: PASS — every crash point recovered and every fault class fired");
        0
    } else {
        for v in &report.violations {
            eprintln!("torture: VIOLATION: {v}");
        }
        eprintln!("torture: FAIL ({} violation(s))", report.violations.len());
        1
    }
}
