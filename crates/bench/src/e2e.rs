//! Timed end-to-end solves with the Fig. 8/9 breakdown.

use std::time::{Duration, Instant};

use fp16mg_core::{MatOp, Mg};
use fp16mg_fp::Scalar;
use fp16mg_krylov::{cg, gmres, SolveOptions, SolveResult, TimedPrecond};
use fp16mg_problems::{Problem, ProblemKind, SolverKind};
use fp16mg_sgdia::kernels::Par;

use crate::Combo;

/// Outcome of one `(problem, combo)` end-to-end run.
#[derive(Clone, Debug)]
pub struct E2eResult {
    /// Paper problem name.
    pub problem: &'static str,
    /// Configuration.
    pub combo: Combo,
    /// Setup-phase wall time (Galerkin chain + scaling + truncation +
    /// smoother setup; the blue bars of Fig. 8).
    pub setup: Duration,
    /// Time inside the MG preconditioner during the solve (orange bars).
    pub precond: Duration,
    /// Everything else in the solve: SpMVs, orthogonalization, vector
    /// updates of the Krylov method (gray bars).
    pub other: Duration,
    /// Solve-phase wall time (`precond + other`).
    pub solve: Duration,
    /// Solver outcome, including the residual history for Fig. 6.
    pub result: SolveResult,
    /// Matrix value bytes across smoothed levels (memory footprint).
    pub matrix_bytes: usize,
    /// Bytes of the preallocated V-cycle workspace arena (carved once at
    /// setup, so this is also the solve-phase peak; together with
    /// `matrix_bytes` it is the hierarchy's steady-state resident set).
    pub workspace_bytes: usize,
    /// Grid and operator complexities of the hierarchy.
    pub complexities: (f64, f64),
}

impl E2eResult {
    /// Total end-to-end time (setup + solve).
    pub fn total(&self) -> Duration {
        self.setup + self.solve
    }
}

/// Builds the problem, sets the hierarchy up, runs the designated solver,
/// and reports the breakdown. Returns `Err` with the setup error message
/// if the hierarchy could not be built.
pub fn solve_e2e(
    kind: ProblemKind,
    n: usize,
    combo: Combo,
    opts: &SolveOptions,
    par: Par,
) -> Result<E2eResult, String> {
    let problem = kind.build(n);
    if combo.p64() {
        run::<f64>(&problem, combo, opts, par)
    } else {
        run::<f32>(&problem, combo, opts, par)
    }
}

fn run<Pr: Scalar>(
    problem: &Problem,
    combo: Combo,
    opts: &SolveOptions,
    par: Par,
) -> Result<E2eResult, String> {
    let mut cfg = combo.mg_config();
    cfg.par = par;

    let t0 = Instant::now();
    let mg = Mg::<Pr>::setup(&problem.matrix, &cfg).map_err(|e| e.to_string())?;
    let setup = t0.elapsed();
    let matrix_bytes = mg.info().matrix_bytes;
    let workspace_bytes = mg.workspace_bytes();
    let complexities = (mg.info().grid_complexity, mg.info().operator_complexity);

    let mut timed = TimedPrecond::new(mg);
    let op = MatOp::new(&problem.matrix, par);
    let b = problem.rhs();
    let mut x = vec![0.0f64; problem.matrix.rows()];

    let t1 = Instant::now();
    let result = match problem.solver {
        SolverKind::Cg => cg(&op, &mut timed, &b, &mut x, opts),
        SolverKind::Gmres => gmres(&op, &mut timed, &b, &mut x, opts),
    };
    let solve = t1.elapsed();
    let precond = timed.elapsed().min(solve);

    Ok(E2eResult {
        problem: problem.name,
        combo,
        setup,
        precond,
        other: solve - precond,
        solve,
        result,
        matrix_bytes,
        workspace_bytes,
        complexities,
    })
}
