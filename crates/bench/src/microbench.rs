//! Minimal timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so the benches run on this small
//! criterion-style driver instead of an external harness: warm-up, then
//! timed batches until a time budget is spent, reporting the median
//! per-iteration time plus optional throughput. No statistics beyond the
//! median/min/max spread — the benches exist to show the *relative*
//! ordering of kernel variants (Fig. 7/8), which survives noise that
//! would bother a regression tracker.

use std::time::{Duration, Instant};

/// Per-iteration throughput denomination.
#[derive(Clone, Copy, Debug)]
enum Throughput {
    None,
    Bytes(u64),
    Elements(u64),
}

/// A named group of benchmark cases sharing a throughput denomination.
pub struct Group {
    name: String,
    throughput: Throughput,
    warmup: Duration,
    budget: Duration,
    min_samples: usize,
}

impl Group {
    /// New group with the default budget (300 ms warm-up, 2 s measure).
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            throughput: Throughput::None,
            warmup: Duration::from_millis(300),
            budget: Duration::from_secs(2),
            min_samples: 10,
        }
    }

    /// Report GB/s computed from this many bytes per iteration.
    pub fn throughput_bytes(mut self, bytes: u64) -> Self {
        self.throughput = Throughput::Bytes(bytes);
        self
    }

    /// Report Melem/s computed from this many elements per iteration.
    pub fn throughput_elements(mut self, elems: u64) -> Self {
        self.throughput = Throughput::Elements(elems);
        self
    }

    /// Shrink or grow the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Runs one case: warm-up, then timed samples until the budget is
    /// spent (at least `min_samples`), printing one summary line.
    pub fn bench<F: FnMut()>(&self, label: impl AsRef<str>, mut f: F) {
        // Warm-up: run until the warm-up window has elapsed at least once.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warmup {
            f();
            warm_iters += 1;
        }
        // Pick a batch size targeting ~10 ms per sample so Instant
        // overhead stays negligible for nanosecond-scale bodies.
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.budget || samples.len() < self.min_samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
            if samples.len() >= 10_000 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let rate = match self.throughput {
            Throughput::None => String::new(),
            Throughput::Bytes(n) => {
                format!("  {:>8.2} GB/s", n as f64 / median / 1e9)
            }
            Throughput::Elements(n) => {
                format!("  {:>8.1} Melem/s", n as f64 / median / 1e6)
            }
        };
        println!(
            "{:<28} {:<20} {:>12}/iter  [{} .. {}]{}",
            self.name,
            label.as_ref(),
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            rate
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}
