//! The networked daemon front-end: an externally-driven [`Daemon`]
//! behind the framed wire protocol of `fp16mg_runtime::net`.
//!
//! This is ROADMAP item 2 ("streaming admission instead of fixed
//! batches") delivered: instead of the daemon generating its own
//! request stream in fixed batches, external clients submit one request
//! at a time over a Unix or TCP socket, each gated individually by the
//! [`AdmissionQueue`] (refusals are typed `Busy` wire responses, never
//! buffering) and applied under the same durability order the batch
//! daemon established: **solve → append trail (fsynced) → checkpoint →
//! ack**. An ack on the wire therefore means the decision is durable; a
//! connection killed at any frame boundary loses nothing that was
//! acked.
//!
//! The request *content* stays a pure function of the sequence number
//! (`daemon::request_for`), and the wire carries idempotency keys (the
//! claimed sequence number), which makes exactly-once provable: every
//! applied seq has exactly one trail line, and a resubmission of an
//! applied key is answered from the in-memory decision record (loaded
//! from the durable trail at startup) with `duplicate = true`.
//!
//! **Restart reconciliation.** On startup the server truncates a torn
//! final trail record (same policy as the simulation recovery), refuses
//! to start on a gapped trail, and — when the trail runs ahead of the
//! snapshot (a kill between trail append and checkpoint) — replays the
//! covered window through the pool *without appending*, verifying each
//! replayed decision is bit-identical to its durable line. Divergence
//! is a refusal to serve, not a silent fork.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fp16mg_runtime::net::{
    codes, read_frame, write_frame, Acceptor, Conn, DoneReply, Endpoint, Frame, Listener,
    SubmitRequest, WireError,
};
use fp16mg_runtime::{
    AdmissionConfig, AdmissionQueue, Daemon, DaemonConfig, Priority, RealStorage, Storage,
};

use crate::daemon::{
    append_trail, par_for, pool_cfg, request_for, trail_line, SNAPSHOT_FILE, TRAIL_FILE,
};

/// Configuration of one serving run ([`serve_net`]).
pub struct NetServeConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Directory (in the storage namespace) holding snapshot + trail.
    pub state_dir: PathBuf,
    /// Problem base extent of the stream.
    pub size: usize,
    /// Convergence tolerance of the stream.
    pub tol: f64,
    /// Pool workers.
    pub workers: usize,
    /// Kernel-parallelism threads for the solve phase (`--threads`).
    pub threads: usize,
    /// Byte budget for the pool's memory governor.
    pub mem_budget: Option<u64>,
    /// Per-connection read/write deadline (the slowloris bound).
    pub conn_deadline: Duration,
    /// Accept-loop backlog; connections beyond it get a typed `Busy`.
    pub backlog: usize,
    /// Admission-queue shape for per-request backpressure.
    pub admission: AdmissionConfig,
    /// **Torture self-check only**: acknowledge *before* the trail
    /// append, and append without fsync — deliberately breaking the
    /// durability order so the harness can prove it detects the
    /// violation. Never set outside `nettorture`.
    pub break_ack_order: bool,
    /// Suppress stdout (for in-process harness servers).
    pub quiet: bool,
}

impl NetServeConfig {
    /// The default shape for an endpoint + state dir: small problems,
    /// one worker, generous deadlines.
    pub fn new(endpoint: Endpoint, state_dir: PathBuf) -> Self {
        NetServeConfig {
            endpoint,
            state_dir,
            size: 8,
            tol: 1e-7,
            workers: 1,
            threads: 1,
            mem_budget: None,
            conn_deadline: Duration::from_secs(5),
            backlog: 16,
            admission: AdmissionConfig::default(),
            break_ack_order: false,
            quiet: false,
        }
    }
}

/// Counters of one serving run, for reports and assertions.
#[derive(Clone, Debug, Default)]
pub struct NetCounters {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused with a typed `Busy` at the accept backlog.
    pub busy_connections: u64,
    /// Requests refused with a typed `Busy` by the admission queue.
    pub busy_requests: u64,
    /// Requests executed (excludes duplicates).
    pub served: u64,
    /// Acks answered from the durable decision record.
    pub duplicate_acks: u64,
    /// Typed wire errors observed per label (`deadline` counts the
    /// slowloris defense closing a stalled connection).
    pub wire_errors: std::collections::BTreeMap<String, u64>,
    /// Sequence numbers replayed (without re-appending) during restart
    /// reconciliation.
    pub reconciled: u64,
}

/// What one serving run did and whether it upheld its contract.
#[derive(Clone, Debug, Default)]
pub struct NetServeReport {
    /// Stream position after the run.
    pub seq: u64,
    /// `true` once the graceful drain (trail fsync + final snapshot)
    /// completed.
    pub drained: bool,
    /// `true` when the daemon resumed from a snapshot.
    pub restored: bool,
    /// Counters of the run.
    pub counters: NetCounters,
    /// Contract violations (fatal; the CLI maps any to a nonzero exit).
    pub violations: Vec<String>,
}

/// One remembered decision, reconstructable from a trail line and
/// sufficient to answer a duplicate submission without re-executing.
#[derive(Clone, Debug)]
struct Decision {
    line: String,
    outcome: String,
    profile: String,
    breaker: String,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!(" {key}=");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest.split_whitespace().next().unwrap_or(rest))
}

fn parse_decision(line: &str) -> Option<(u64, Decision)> {
    let seq: u64 = line.strip_prefix("seq=")?.split_whitespace().next()?.parse().ok()?;
    Some((
        seq,
        Decision {
            line: line.to_string(),
            outcome: field(line, "outcome")?.to_string(),
            profile: field(line, "profile")?.to_string(),
            breaker: field(line, "breaker")?.to_string(),
        },
    ))
}

/// Reads the durable trail through the storage choke point, truncating
/// a torn final record (bytes after the last newline) — the same
/// recovery policy the simulation trail uses. Returns the complete
/// lines.
fn recover_net_trail(
    storage: &dyn Storage,
    path: &std::path::Path,
    report: &mut NetServeReport,
) -> Result<Vec<String>, String> {
    if !storage.exists(path) {
        return Ok(Vec::new());
    }
    let bytes = storage.read(path).map_err(|e| format!("trail read: {e}"))?;
    let keep = match bytes.iter().rposition(|&b| b == b'\n') {
        Some(last) => last + 1,
        None => 0,
    };
    if keep < bytes.len() {
        // A torn final record is expected after a kill mid-append:
        // truncated and counted, never fatal.
        storage.truncate(path, keep as u64).map_err(|e| format!("torn trail truncate: {e}"))?;
        *report.counters.wire_errors.entry("torn-trail-truncated".into()).or_insert(0) += 1;
    }
    let text = String::from_utf8_lossy(&bytes[..keep]).to_string();
    Ok(text.lines().map(|l| l.to_string()).collect())
}

/// Maps a wire priority byte onto the admission [`Priority`].
fn priority_of(byte: u8) -> Priority {
    match byte {
        0 => Priority::Interactive,
        1 => Priority::Batch,
        _ => Priority::BestEffort,
    }
}

/// Runs the networked daemon until a client requests a graceful drain.
/// Blocking; harnesses run it on a thread and join for the report.
pub fn serve_net(cfg: &NetServeConfig, storage: Arc<dyn Storage>) -> NetServeReport {
    let mut report = NetServeReport::default();
    let say = |quiet: bool, msg: &str| {
        if !quiet {
            println!("{msg}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
    };

    // Bind before the (potentially slow) daemon restore so early client
    // connects queue in the OS backlog instead of being refused.
    let listener = match Listener::bind(&cfg.endpoint) {
        Ok(l) => l,
        Err(e) => {
            report.violations.push(format!("bind {}: {e}", cfg.endpoint));
            return report;
        }
    };
    let mut acceptor = match Acceptor::spawn(listener, cfg.backlog, cfg.conn_deadline) {
        Ok(a) => a,
        Err(e) => {
            report.violations.push(format!("acceptor: {e}"));
            return report;
        }
    };

    if let Err(e) = storage.create_dir_all(&cfg.state_dir) {
        report.violations.push(format!("state dir: {e}"));
        return report;
    }
    let trail = cfg.state_dir.join(TRAIL_FILE);
    let daemon = Daemon::start(DaemonConfig {
        pool: pool_cfg(cfg.workers, cfg.mem_budget),
        snapshot_path: Some(cfg.state_dir.join(SNAPSHOT_FILE)),
        checkpoint_each_batch: false,
        storage: Arc::clone(&storage),
    });
    let mut daemon = match daemon {
        Ok(d) => d,
        Err(e) => {
            report.violations.push(format!("snapshot unusable: {e}"));
            return report;
        }
    };
    report.restored = daemon.restored();
    say(
        cfg.quiet,
        &if daemon.restored() {
            format!("netdaemon: resumed seq={}", daemon.seq())
        } else {
            "netdaemon: cold start".to_string()
        },
    );

    // --- Restart reconciliation -----------------------------------------
    let mut decisions: std::collections::BTreeMap<u64, Decision> =
        std::collections::BTreeMap::new();
    match recover_net_trail(storage.as_ref(), &trail, &mut report) {
        Ok(lines) => {
            for line in &lines {
                match parse_decision(line) {
                    Some((seq, d)) => {
                        decisions.insert(seq, d);
                    }
                    None => {
                        report.violations.push(format!("unparseable trail line: {line}"));
                        return report;
                    }
                }
            }
        }
        Err(e) => {
            report.violations.push(e);
            return report;
        }
    }
    let covered = decisions.len() as u64;
    if decisions.keys().copied().ne(0..covered) {
        report.violations.push("trail has gaps or duplicate seqs; refusing to serve".into());
        return report;
    }
    if daemon.seq() > covered {
        // A snapshot claiming more progress than the durable trail means
        // an ack could reference a decision that no longer exists — the
        // lying-fsync shape. Refuse rather than serve unanswerable
        // duplicates.
        report.violations.push(format!(
            "snapshot seq={} ahead of durable trail coverage {covered}; refusing to serve",
            daemon.seq()
        ));
        return report;
    }
    let par = par_for(cfg.threads);
    while daemon.seq() < covered {
        // The trail ran ahead of the snapshot (kill between append and
        // checkpoint): re-derive those decisions through the pool so its
        // state advances identically, but do NOT append — the durable
        // line already exists, and exactly-once means never writing a
        // second one. Bit-divergence here would mean the replayed stream
        // is not the one that was acked: refuse to serve.
        let seq = daemon.seq();
        let req = request_for(seq, cfg.size, cfg.tol, par);
        let outcomes = match daemon.submit(vec![req]) {
            Ok(o) => o,
            Err(e) => {
                report.violations.push(format!("reconcile replay seq={seq}: {e}"));
                return report;
            }
        };
        let replayed = trail_line(seq, &outcomes[0], daemon.pool());
        let durable = format!("{}\n", decisions[&seq].line);
        if replayed != durable {
            report.violations.push(format!(
                "reconciliation divergence at seq={seq}: durable `{}` vs replayed `{}`",
                durable.trim_end(),
                replayed.trim_end()
            ));
            return report;
        }
        report.counters.reconciled += 1;
    }
    if report.counters.reconciled > 0 {
        if let Err(e) = daemon.checkpoint() {
            report.violations.push(format!("post-reconcile checkpoint: {e}"));
            return report;
        }
        say(
            cfg.quiet,
            &format!("netdaemon: reconciled {} trailed seq(s)", report.counters.reconciled),
        );
    }

    let mut admission = AdmissionQueue::new(cfg.admission.clone());
    say(cfg.quiet, &format!("netdaemon: listening on {} seq={}", cfg.endpoint, daemon.seq()));

    // --- Serve loop ------------------------------------------------------
    let mut drain_conn: Option<Conn> = None;
    'serve: loop {
        let Some(mut conn) = acceptor.next(Duration::from_millis(200)) else {
            if acceptor.finished() {
                report.violations.push("accept loop died without a drain request".into());
                break 'serve;
            }
            continue;
        };
        report.counters.accepted += 1;
        loop {
            let frame = match read_frame(&mut conn) {
                Ok(f) => f,
                Err(WireError::Closed) => break,
                Err(e) => {
                    *report.counters.wire_errors.entry(e.label().into()).or_insert(0) += 1;
                    // Decode failures get a typed answer before the
                    // (now unsynchronized) stream is closed; deadline
                    // trips and transport failures just close.
                    if !matches!(
                        e,
                        WireError::Deadline
                            | WireError::ConnectionLost(_)
                            | WireError::Truncated { .. }
                    ) {
                        let _ = write_frame(
                            &mut conn,
                            &Frame::Error { code: e.code(), detail: e.to_string() },
                        );
                    }
                    conn.shutdown();
                    break;
                }
            };
            match frame {
                Frame::Ping => {
                    if write_frame(&mut conn, &Frame::Pong).is_err() {
                        break;
                    }
                }
                Frame::Submit(sr) => {
                    let reply = handle_submit(
                        cfg,
                        &sr,
                        &mut daemon,
                        &mut admission,
                        &mut decisions,
                        storage.as_ref(),
                        &trail,
                        &mut report,
                    );
                    let Some(reply) = reply else {
                        // Fatal durability failure: already recorded as
                        // a violation; stop serving entirely.
                        conn.shutdown();
                        break 'serve;
                    };
                    if write_frame(&mut conn, &reply).is_err() {
                        // The client lost its ack; the decision (if any)
                        // is durable and the retry will deduplicate.
                        break;
                    }
                }
                Frame::Shutdown => {
                    // Graceful drain happens after the loop, with the
                    // requesting connection carried out so the ack can
                    // be sent only once the final snapshot is durable.
                    drain_conn = Some(conn);
                    break 'serve;
                }
                other => {
                    let _ = write_frame(
                        &mut conn,
                        &Frame::Error {
                            code: codes::UNEXPECTED,
                            detail: format!("unexpected frame kind {}", other.kind()),
                        },
                    );
                    conn.shutdown();
                    break;
                }
            }
        }
    }

    // --- Graceful drain --------------------------------------------------
    // Stop accepting, finish in-flight work (the serve loop is
    // single-threaded, so reaching here means nothing is in flight),
    // then trail-fsync + final snapshot rotation via `drain`, and only
    // then acknowledge on the wire and close.
    acceptor.stop();
    report.counters.busy_connections = acceptor.busy();
    if let Some(mut conn) = drain_conn {
        let seq = daemon.seq();
        match daemon.drain() {
            Ok(dr) => {
                report.seq = dr.seq;
                report.drained = true;
                let _ = write_frame(&mut conn, &Frame::ShutdownOk { seq });
            }
            Err(e) => {
                report.violations.push(format!("drain: {e}"));
                let _ = write_frame(
                    &mut conn,
                    &Frame::Error { code: codes::INTERNAL, detail: e.to_string() },
                );
            }
        }
        conn.shutdown();
    } else {
        report.seq = daemon.seq();
    }
    report
}

/// Serves one submission: dedup below the cursor, typed refusal above
/// it, and the full durability pipeline at it. Returns `None` only on a
/// fatal durability failure (violation already recorded).
#[allow(clippy::too_many_arguments)]
fn handle_submit(
    cfg: &NetServeConfig,
    sr: &SubmitRequest,
    daemon: &mut Daemon,
    admission: &mut AdmissionQueue,
    decisions: &mut std::collections::BTreeMap<u64, Decision>,
    storage: &dyn Storage,
    trail: &std::path::Path,
    report: &mut NetServeReport,
) -> Option<Frame> {
    if sr.size as usize != cfg.size || sr.tol != cfg.tol {
        return Some(Frame::Error {
            code: codes::STREAM_MISMATCH,
            detail: format!("stream is size={} tol={}", cfg.size, cfg.tol),
        });
    }
    let seq = daemon.seq();
    if sr.key < seq {
        // Already applied: answer from the decision record, never
        // re-execute. This is the at-least-once dedup on the wire.
        let d = &decisions[&sr.key];
        report.counters.duplicate_acks += 1;
        return Some(Frame::Done(DoneReply {
            key: sr.key,
            duplicate: true,
            outcome: d.outcome.clone(),
            profile: d.profile.clone(),
            breaker: d.breaker.clone(),
        }));
    }
    if sr.key > seq {
        return Some(Frame::Error { code: codes::OUT_OF_ORDER, detail: format!("want {seq}") });
    }

    // Streaming admission: each request reserves individually; refusal
    // is typed backpressure on the wire, not a buffered queue.
    let priority = priority_of(sr.priority);
    if let Err(e) = admission.try_reserve(priority) {
        report.counters.busy_requests += 1;
        return Some(Frame::Busy {
            reason: e.label().to_string(),
            retry_ms: 25 * (1 + admission.depth() as u32),
        });
    }
    let req = request_for(seq, cfg.size, cfg.tol, par_for(cfg.threads));
    let result = run_pipeline(cfg, seq, req, daemon, decisions, storage, trail, report);
    admission.release(priority);
    result
}

/// The durability pipeline for one admitted request:
/// solve → trail append (fsynced) → checkpoint → ack.
#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    cfg: &NetServeConfig,
    seq: u64,
    req: fp16mg_runtime::SolveRequest,
    daemon: &mut Daemon,
    decisions: &mut std::collections::BTreeMap<u64, Decision>,
    storage: &dyn Storage,
    trail: &std::path::Path,
    report: &mut NetServeReport,
) -> Option<Frame> {
    let outcomes = match daemon.submit(vec![req]) {
        Ok(o) => o,
        Err(e) => {
            report.violations.push(format!("submit seq={seq}: {e}"));
            return None;
        }
    };
    let line = trail_line(seq, &outcomes[0], daemon.pool());
    let (_, decision) = parse_decision(line.trim_end()).expect("trail_line emits parseable lines");
    let done = Frame::Done(DoneReply {
        key: seq,
        duplicate: false,
        outcome: decision.outcome.clone(),
        profile: decision.profile.clone(),
        breaker: decision.breaker.clone(),
    });

    if cfg.break_ack_order {
        // Self-check mode: the ack escapes before anything is durable
        // (unsynced append, no checkpoint). The torture harness must
        // catch the acked-but-not-durable window this opens.
        match storage.append(trail) {
            Ok(mut f) => {
                let _ = f.write_all(line.as_bytes());
            }
            Err(e) => report.violations.push(format!("broken-order append: {e}")),
        }
        decisions.insert(seq, decision);
        report.counters.served += 1;
        return Some(done);
    }

    if let Err(e) = append_trail(storage, trail, &line) {
        report.violations.push(format!("trail append seq={seq}: {e}"));
        return None;
    }
    if let Err(e) = daemon.checkpoint() {
        report.violations.push(format!("checkpoint seq={seq}: {e}"));
        return None;
    }
    decisions.insert(seq, decision);
    report.counters.served += 1;
    Some(done)
}

/// Proves the typed-`Busy` backpressure path with a direct probe: a
/// capacity-1 admission queue must refuse the second reservation with a
/// typed error that maps onto a `Busy` frame. Returns the number of
/// typed refusals observed (1 when the path is alive). Used by
/// `bench-json` so the liveness of the shed path is part of the
/// trajectory without a wall-clock race.
pub fn busy_probe() -> u64 {
    let mut q = AdmissionQueue::new(AdmissionConfig { capacity: 1, ..AdmissionConfig::default() });
    if q.try_reserve(Priority::Batch).is_err() {
        return 0;
    }
    match q.try_reserve(Priority::Batch) {
        Err(e) => {
            let frame = Frame::Busy { reason: e.label().to_string(), retry_ms: 25 };
            u64::from(matches!(frame, Frame::Busy { .. }))
        }
        Ok(()) => 0,
    }
}

/// CLI configuration for the child-process networked daemon
/// (`repro serve --daemon --addr …`).
pub struct NetDaemonCliConfig {
    /// Listen endpoint.
    pub endpoint: Endpoint,
    /// State directory (snapshot + trail) on the real filesystem.
    pub state_dir: PathBuf,
    /// Problem base extent.
    pub size: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// Pool workers.
    pub workers: usize,
    /// Kernel-parallelism threads (`--threads`).
    pub threads: usize,
    /// Byte budget for the memory governor.
    pub mem_budget: Option<u64>,
}

/// Runs the networked daemon on [`RealStorage`] until drained. Returns
/// the process exit code.
pub fn run_net_daemon(cli: &NetDaemonCliConfig) -> i32 {
    let mut cfg = NetServeConfig::new(cli.endpoint.clone(), cli.state_dir.clone());
    cfg.size = cli.size;
    cfg.tol = cli.tol;
    cfg.workers = cli.workers;
    cfg.threads = cli.threads;
    cfg.mem_budget = cli.mem_budget;
    let storage: Arc<dyn Storage> = Arc::new(RealStorage);
    let report = serve_net(&cfg, storage);
    println!(
        "netdaemon: drained={} seq={} served={} dup-acks={} busy={} conns={}",
        report.drained,
        report.seq,
        report.counters.served,
        report.counters.duplicate_acks,
        report.counters.busy_requests,
        report.counters.accepted,
    );
    for v in &report.violations {
        eprintln!("netdaemon violation: {v}");
    }
    if report.violations.is_empty() && report.drained {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_probe_fires_typed_backpressure() {
        assert_eq!(busy_probe(), 1);
    }

    #[test]
    fn decision_lines_parse_roundtrip() {
        let line = "seq=4 req=req-00004 class=default prio=batch profile=full \
                    outcome=ok breaker=closed cache=hit";
        let (seq, d) = parse_decision(line).expect("parse");
        assert_eq!(seq, 4);
        assert_eq!(d.outcome, "ok");
        assert_eq!(d.profile, "full");
        assert_eq!(d.breaker, "closed");
        assert_eq!(d.line, line);
    }
}
