//! Plain-text table rendering for the repro reports.

/// A fixed-width text table: header row plus data rows, columns padded to
/// content width, printed with a separator rule under the header.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders to a string (also what `Display` prints).
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    s.push_str("  ");
                }
                let pad = width[c] - cell.chars().count();
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == '+' || ch == '.');
                if numeric {
                    s.push_str(&" ".repeat(pad));
                    s.push_str(cell);
                } else {
                    s.push_str(cell);
                    s.push_str(&" ".repeat(pad));
                }
            }
            s
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Geometric mean.
pub fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}
