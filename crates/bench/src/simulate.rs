//! Drift-resilient time-stepping simulation engine (`repro simulate`).
//!
//! A time-dependent application re-solves a slowly changing operator
//! every implicit step; rebuilding the Galerkin chain each step throws
//! away the very setup cost the paper's warm-start path amortizes. The
//! [`SimDriver`] advances an [`Evolution`] trajectory through `steps`
//! implicit solves and decides, per step, how much of the cached
//! hierarchy survives:
//!
//! 1. a cheap finest-level [`audit`](fp16mg_sgdia::audit::audit) of the
//!    drifted operator is compared against the baseline audit via
//!    [`drift`], and
//! 2. the resulting [`OperatorDrift`] is mapped to an explicit
//!    [`ReuseDecision`]: **keep** the cached hierarchy untouched,
//!    **rescale** its finest level in place
//!    ([`Mg::setup_rescaled`] + [`GalerkinChain::swap_finest`]), or
//!    **rebuild** the chain from scratch;
//! 3. the hierarchy's integrity sentinels are verified (and corrupted
//!    levels repaired) before the solve, and the solve itself runs
//!    through the retry ladder; a step whose ladder is exhausted gets
//!    one *rollback-and-rebuild* recovery: the state rewinds to the
//!    last committed solution, the chain is rebuilt at the current
//!    step, and the solve re-runs once.
//!
//! Every committed step appends one deterministic line to a trail log
//! and checkpoints the full simulation cursor through
//! [`SimSnapshot`], in that order, so a run killed at any instant
//! resumes from the snapshot and reproduces the remaining trail
//! bit-identically ([`run_sim_soak`] proves it with a real SIGKILL).
//! `--chaos` drives a deterministic fault schedule — bit flips into the
//! stored levels, forced drift spikes, and a poisoned solution vector —
//! that exercises every decision path and recovery rung.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fp16mg_core::{GalerkinChain, IntegrityPolicy, Mg, MgConfig, RepairTrigger};
use fp16mg_fp::Precision;
use fp16mg_problems::{step_rhs, Evolution, Problem, ProblemKind};
use fp16mg_runtime::{
    append_durable, run_session_with, RealStorage, RetryPolicy, SimCounters, SimSnapshot,
    SnapshotStore, SolveRequest, Storage,
};
use fp16mg_sgdia::audit::{audit, drift, OperatorDrift, RangeAudit};
use fp16mg_sgdia::SgDia;

use crate::guard::finest_narrow_level;
use crate::table::{fmt_secs, Table};

/// Drift magnitude (in binades) below which the cached hierarchy is
/// kept untouched.
pub const KEEP_MAX_DRIFT: f64 = 0.25;
/// Drift magnitude up to which a finest-level rescale-in-place still
/// serves; beyond it the Galerkin chain is rebuilt.
pub const RESCALE_MAX_DRIFT: f64 = 3.0;

/// Step whose chaos spike lands in the rescale band (×4 ≈ 2 binades).
/// The spike steps deliberately avoid the smooth-drift minima (steps 3
/// and 9, the extrema of the presets' sine term), where the natural
/// keep decisions live — chaos must add faults, not erase a decision
/// path from the schedule.
const CHAOS_SPIKE_RESCALE_STEP: u64 = 4;
const CHAOS_SPIKE_RESCALE_FACTOR: f64 = 4.0;
/// Step whose chaos spike forces a rebuild (×64 = 6 binades).
const CHAOS_SPIKE_REBUILD_STEP: u64 = 7;
const CHAOS_SPIKE_REBUILD_FACTOR: f64 = 64.0;
/// Chaos flips one bit in a 16-bit stored level on steps ≡ 2 (mod 5).
const CHAOS_FLIP_PERIOD: u64 = 5;
/// Chaos poisons the carried solution after this step commits, so the
/// *next* step's implicit right-hand side is non-finite and its ladder
/// exhausts — proving the rollback-and-rebuild rung.
const CHAOS_POISON_STEP: u64 = 5;

/// How a step's operator drift maps onto the cached hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReuseDecision {
    /// Drift within [`KEEP_MAX_DRIFT`]: reuse the chain as-is.
    Keep,
    /// Drift within [`RESCALE_MAX_DRIFT`]: re-derive the finest-level
    /// scaling against the drifted operator and swap it into the chain
    /// (Galerkin-lag: the coarse tail stays).
    Rescale,
    /// Structural drift or large magnitude: rebuild the chain.
    Rebuild,
}

impl ReuseDecision {
    /// The policy: structural drift always rebuilds; otherwise the
    /// magnitude picks the cheapest sufficient response.
    pub fn decide(d: &OperatorDrift) -> Self {
        if d.structural() {
            return ReuseDecision::Rebuild;
        }
        let m = d.magnitude();
        if m <= KEEP_MAX_DRIFT {
            ReuseDecision::Keep
        } else if m <= RESCALE_MAX_DRIFT {
            ReuseDecision::Rescale
        } else {
            ReuseDecision::Rebuild
        }
    }

    /// Stable trail label.
    pub fn label(self) -> &'static str {
        match self {
            ReuseDecision::Keep => "keep",
            ReuseDecision::Rescale => "rescale",
            ReuseDecision::Rebuild => "rebuild",
        }
    }
}

/// Configuration for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Problem family evolved through time.
    pub kind: ProblemKind,
    /// Implicit steps to advance.
    pub steps: u64,
    /// Grid extent.
    pub size: usize,
    /// Convergence tolerance per step.
    pub tol: f64,
    /// Deterministic fault schedule on/off.
    pub chaos: bool,
    /// Where the snapshot and trail live; `None` disables durability.
    pub snapshot_dir: Option<PathBuf>,
    /// Where `BENCH_sim_<name>.json` is written; `None` disables it.
    pub json_dir: Option<PathBuf>,
    /// Sleep after each committed step (widens the soak kill window).
    pub pace_ms: u64,
    /// Print `done step=N` acknowledgements (child mode for the soak
    /// harness).
    pub ack: bool,
    /// Storage backend every durable byte flows through. The default is
    /// the real filesystem; the torture harness swaps in a
    /// fault-injecting backend.
    pub storage: Arc<dyn Storage>,
    /// Time the fresh-setup-every-step baseline (the amortization
    /// evidence). The torture harness turns it off: it re-runs many
    /// crash cases and only cares about durability, not timings.
    pub measure_fresh: bool,
    /// **Testing only.** Deliberately break the durability order by
    /// appending the trail line *without* fsync before acknowledging.
    /// Exists so the torture matrix can prove it detects an acked-step
    /// loss when the write order is wrong.
    pub break_write_order: bool,
}

impl SimConfig {
    /// A quiet in-process run with no durability.
    pub fn new(kind: ProblemKind, steps: u64, size: usize, tol: f64) -> Self {
        SimConfig {
            kind,
            steps,
            size,
            tol,
            chaos: false,
            snapshot_dir: None,
            json_dir: None,
            pace_ms: 0,
            ack: false,
            storage: Arc::new(RealStorage),
            measure_fresh: true,
            break_write_order: false,
        }
    }
}

/// One committed (or failed) step.
#[derive(Clone, Debug)]
pub struct StepRow {
    /// Step index.
    pub step: u64,
    /// Reuse decision taken.
    pub decision: ReuseDecision,
    /// Drift magnitude vs. the baseline audit (0.0 on the initial
    /// build).
    pub drift: f64,
    /// Whether the drift was structural.
    pub structural: bool,
    /// Sentinel repairs performed before the solve.
    pub repairs: u64,
    /// Whether the rollback-and-rebuild rung fired.
    pub rollback: bool,
    /// Ladder rung trail (`RetryReport::summary`).
    pub rungs: String,
    /// `"ok"` or the terminal error label.
    pub outcome: String,
    /// Outer iterations over all ladder attempts.
    pub iters: usize,
    /// Final relative residual.
    pub resid: f64,
    /// Setup seconds actually spent this step (reuse path).
    pub reuse_setup_s: f64,
    /// Setup seconds a fresh-every-step baseline would have spent.
    pub fresh_setup_s: f64,
    /// Bytes of the preallocated V-cycle workspace arena of the
    /// hierarchy that served this step (the larger of the two when the
    /// rollback rung rebuilt mid-step). Carved once at setup, so this
    /// is the step's solve-phase peak. Not part of the trail line: the
    /// trail is the bit-exact resume contract and byte counts may
    /// legitimately change across code versions.
    pub ws_bytes: usize,
}

impl StepRow {
    fn trail_line(&self) -> String {
        format!(
            "step={} decision={} drift={:016x} structural={} repairs={} rollback={} rungs={} \
             outcome={} iters={} resid={:016x}",
            self.step,
            self.decision.label(),
            self.drift.to_bits(),
            self.structural as u8,
            self.repairs,
            self.rollback as u8,
            sanitize_token(&self.rungs),
            sanitize_token(&self.outcome),
            self.iters,
            self.resid.to_bits(),
        )
    }
}

/// Summary of a completed run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Problem simulated.
    pub kind: ProblemKind,
    /// Rows for the steps executed *in this process* (a resumed run
    /// only re-executes the remaining steps).
    pub rows: Vec<StepRow>,
    /// Decision and recovery tallies over the whole trajectory,
    /// including steps committed before a resume.
    pub counters: SimCounters,
    /// Whether this run resumed from a snapshot.
    pub resumed: bool,
    /// Total setup seconds spent by the reuse policy (this process).
    pub reuse_setup_s: f64,
    /// Total setup seconds the fresh-every-step baseline spent.
    pub fresh_setup_s: f64,
    /// Final relative residual of the last committed step.
    pub final_resid: f64,
}

impl SimReport {
    /// Amortized setup win: fresh-every-step seconds over the seconds
    /// the reuse policy actually spent.
    pub fn setup_win(&self) -> f64 {
        if self.reuse_setup_s > 0.0 {
            self.fresh_setup_s / self.reuse_setup_s
        } else {
            f64::INFINITY
        }
    }

    /// Largest V-cycle workspace arena any step in this process carved
    /// (0 when the run resumed past its last step and executed none).
    pub fn peak_ws_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.ws_bytes).max().unwrap_or(0)
    }

    /// Chaos acceptance: every decision path and recovery rung must
    /// have fired at least once.
    pub fn coverage_violations(&self) -> Vec<String> {
        let c = &self.counters;
        let mut v = Vec::new();
        for (n, label) in [
            (c.keep, "keep decision"),
            (c.rescale, "rescale decision"),
            (c.rebuild, "rebuild decision"),
            (c.repairs, "sentinel repair"),
            (c.rollbacks, "rollback-and-rebuild recovery"),
        ] {
            if n == 0 {
                v.push(format!("chaos run never exercised the {label}"));
            }
        }
        v
    }
}

/// Replaces whitespace so a trail field stays one token.
fn sanitize_token(s: &str) -> String {
    let t: String = s.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect();
    if t.is_empty() {
        "-".into()
    } else {
        t
    }
}

/// File-name-safe problem label (mirrors the bench JSON naming).
fn sanitize_name(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect()
}

/// Snapshot path for one problem inside the durability directory.
pub fn sim_snapshot_path(dir: &Path, kind: ProblemKind) -> PathBuf {
    dir.join(format!("sim-{}.snapshot", sanitize_name(kind.name())))
}

/// Trail-log path for one problem inside the durability directory.
pub fn sim_trail_path(dir: &Path, kind: ProblemKind) -> PathBuf {
    dir.join(format!("sim-{}.trail.log", sanitize_name(kind.name())))
}

/// The chaos seed recorded in the snapshot: the schedule is pure in the
/// step index, so the flag itself is the whole seed. A snapshot taken
/// with chaos on refuses to resume a chaos-off run and vice versa.
fn chaos_seed(chaos: bool) -> u64 {
    chaos as u64
}

/// Chaos drift-spike factor for `step` (1.0 outside the schedule).
fn chaos_spike(chaos: bool, step: u64) -> f64 {
    if !chaos {
        1.0
    } else if step == CHAOS_SPIKE_RESCALE_STEP {
        CHAOS_SPIKE_RESCALE_FACTOR
    } else if step == CHAOS_SPIKE_REBUILD_STEP {
        CHAOS_SPIKE_REBUILD_FACTOR
    } else {
        1.0
    }
}

/// The operator the solver actually sees at `step`: the evolution's
/// drifted matrix, uniformly scaled by the chaos spike. Pure in `step`,
/// which is what lets a resumed run rebuild the chain, the baseline
/// audit, and the right-hand sides bit-identically from the snapshot
/// cursor alone.
fn effective_matrix(evo: &Evolution, chaos: bool, step: u64) -> SgDia<f64> {
    let mut a = evo.matrix_at(step);
    let f = chaos_spike(chaos, step);
    if f != 1.0 {
        for cell in 0..a.grid().cells() {
            for t in 0..a.pattern().len() {
                let v = a.get(cell, t);
                if v != 0.0 {
                    a.set(cell, t, v * f);
                }
            }
        }
    }
    a
}

/// Ladder policy for simulation steps: the drift policy upstream already
/// decided how to treat the hierarchy, so the redundant audit gate is
/// off, and backoff sleeps are zeroed — a failed chaos step should reach
/// the rollback rung immediately, not nap between rungs.
fn sim_policy() -> RetryPolicy {
    RetryPolicy {
        backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter: 0.0,
        audit_gate: false,
        ..RetryPolicy::default()
    }
}

/// Appends one trail line through the storage choke point: write +
/// fsync with the bounded ENOSPC retry, and a parent-directory fsync
/// when the append creates the file.
fn trail_append(storage: &dyn Storage, path: &Path, line: &str) -> Result<(), String> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    append_durable(storage, path, &bytes).map_err(|e| format!("trail append: {e}"))
}

/// **Testing only** ([`SimConfig::break_write_order`]): append with no
/// fsync, violating the trail-before-ack durability order on purpose so
/// the torture matrix can prove it notices.
fn trail_append_unsynced(storage: &dyn Storage, path: &Path, line: &str) -> Result<(), String> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    let mut f = storage.append(path).map_err(|e| format!("trail append: {e}"))?;
    f.write_all(&bytes).map_err(|e| format!("trail append: {e}"))
}

/// Scans the trail on resume. A torn (partial) final record — bytes
/// after the last newline — is truncated away and logged, not a failed
/// restore: the fsync-before-ack ordering means a torn tail can only
/// belong to a step that was never acknowledged. Returns the highest
/// step index holding a durable, parseable line — the upper bound any
/// resume candidate may claim.
fn recover_trail(
    storage: &dyn Storage,
    path: &Path,
    events: &mut Vec<String>,
) -> Result<Option<u64>, String> {
    if !storage.exists(path) {
        return Ok(None);
    }
    let bytes = storage.read(path).map_err(|e| format!("trail read: {e}"))?;
    let mut keep = bytes.len();
    if keep > 0 && bytes[keep - 1] != b'\n' {
        let cut = bytes.iter().rposition(|&b| b == b'\n').map(|i| i + 1).unwrap_or(0);
        events.push(format!(
            "trail: truncated torn final record ({} bytes) in {}",
            keep - cut,
            path.display()
        ));
        keep = cut;
        storage.truncate(path, keep as u64).map_err(|e| format!("trail truncate: {e}"))?;
    }
    let mut last = None;
    for line in String::from_utf8_lossy(&bytes[..keep]).lines() {
        match step_of(line) {
            Some(s) => last = Some(last.map_or(s, |l: u64| l.max(s))),
            None => events.push(format!("trail: unparseable line ignored: {line}")),
        }
    }
    Ok(last)
}

/// The time-stepping driver: owns the trajectory, the cached Galerkin
/// chain, the drift baseline, and the carried solution, and advances
/// one committed step at a time.
pub struct SimDriver {
    cfg: SimConfig,
    mg_cfg: MgConfig,
    evo: Evolution,
    chain: Option<GalerkinChain>,
    chain_step: u64,
    finest_step: u64,
    baseline: Option<RangeAudit>,
    /// Solution carried into the next step's right-hand side. Chaos may
    /// corrupt it *after* a commit; `good_x` never holds corruption.
    work_x: Vec<f64>,
    /// Last committed solution (what the snapshot holds) — the rewind
    /// target of the rollback-and-rebuild rung.
    good_x: Vec<f64>,
    next_step: u64,
    counters: SimCounters,
    last_resid: f64,
    rows: Vec<StepRow>,
    resumed: bool,
    reuse_setup_s: f64,
    fresh_setup_s: f64,
    recovery_events: Vec<String>,
}

impl SimDriver {
    /// Builds a driver, resuming from the newest snapshot generation in
    /// `cfg.snapshot_dir` that is *covered by the durable trail* (and
    /// matches the requested run), or starting cold.
    ///
    /// Recovery is fault-tolerant by construction: a torn final trail
    /// record is truncated (satisfying nothing was acked past it), a
    /// corrupt or torn snapshot slot is quarantined with fallback to
    /// the previous good generation, and a snapshot claiming a step
    /// the durable trail never recorded (a lying fsync) is ignored.
    /// Every such event is logged in [`SimDriver::recovery_events`].
    /// When no eligible generation remains, the run restarts cold —
    /// safe because the trajectory is a pure function of the step
    /// index, so replayed trail lines are bit-identical duplicates.
    pub fn new(cfg: SimConfig) -> Result<SimDriver, String> {
        let mut mg_cfg = MgConfig::d16();
        mg_cfg.integrity = IntegrityPolicy::armed(0);
        let evo = Evolution::new(cfg.kind, cfg.size);
        let cells = evo.base().grid().cells() * cfg.kind.components();
        let mut driver = SimDriver {
            mg_cfg,
            evo,
            chain: None,
            chain_step: 0,
            finest_step: 0,
            baseline: None,
            work_x: vec![0.0; cells],
            good_x: vec![0.0; cells],
            next_step: 0,
            counters: SimCounters::default(),
            last_resid: f64::NAN,
            rows: Vec::new(),
            resumed: false,
            reuse_setup_s: 0.0,
            fresh_setup_s: 0.0,
            recovery_events: Vec::new(),
            cfg,
        };
        if let Some(dir) = driver.cfg.snapshot_dir.clone() {
            let storage = Arc::clone(&driver.cfg.storage);
            storage
                .create_dir_all(&dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let mut events = Vec::new();
            let trail_last = recover_trail(
                storage.as_ref(),
                &sim_trail_path(&dir, driver.cfg.kind),
                &mut events,
            )?;
            let store = SnapshotStore::new(sim_snapshot_path(&dir, driver.cfg.kind));
            let recovery = store
                .recover(storage.as_ref(), &SimSnapshot::decode)
                .map_err(|e| format!("snapshot recovery: {e}"))?;
            for (path, err) in &recovery.quarantined {
                events.push(format!("snapshot: quarantined {} ({err})", path.display()));
            }
            let mut best: Option<SimSnapshot> = None;
            for (path, snap) in recovery.candidates {
                // The trail line for step N is fsynced before snapshot
                // N is published, so a snapshot past the durable trail
                // means an fsync lied; trusting it would resume past
                // steps whose evidence is gone.
                if trail_last.is_none_or(|last| snap.step > last) {
                    events.push(format!(
                        "snapshot: {} claims step {} beyond the durable trail ({}); ignored",
                        path.display(),
                        snap.step,
                        trail_last.map_or("empty".to_string(), |l| format!("last step {l}")),
                    ));
                    continue;
                }
                if best.as_ref().is_none_or(|b| snap.step > b.step) {
                    best = Some(snap);
                }
            }
            match best {
                Some(snap) => driver.restore(snap)?,
                None => {
                    if trail_last.is_some() || !events.is_empty() {
                        events.push(
                            "recovery: no eligible snapshot generation; cold start (replayed \
                             trail lines are bit-identical duplicates)"
                                .to_string(),
                        );
                    }
                }
            }
            driver.recovery_events = events;
        }
        Ok(driver)
    }

    /// What recovery observed while this driver was built: torn-trail
    /// truncation, quarantined snapshot slots, ignored generations,
    /// cold-start fallback. Empty on a clean cold start or clean
    /// resume.
    pub fn recovery_events(&self) -> &[String] {
        &self.recovery_events
    }

    /// Rebuilds in-memory state from a snapshot: the chain and baseline
    /// audit are *reconstructed* (operators are pure functions of the
    /// step index), not persisted.
    fn restore(&mut self, snap: SimSnapshot) -> Result<(), String> {
        let cfg = &self.cfg;
        if snap.problem != cfg.kind.name()
            || snap.size != cfg.size
            || snap.steps != cfg.steps
            || snap.tol.to_bits() != cfg.tol.to_bits()
            || snap.seed != chaos_seed(cfg.chaos)
        {
            return Err(format!(
                "snapshot records run '{}' size {} steps {} tol {:e} seed {}, which does not \
                 match the requested run '{}' size {} steps {} tol {:e} seed {}",
                snap.problem,
                snap.size,
                snap.steps,
                snap.tol,
                snap.seed,
                cfg.kind.name(),
                cfg.size,
                cfg.steps,
                cfg.tol,
                chaos_seed(cfg.chaos),
            ));
        }
        if snap.x.len() != self.work_x.len() {
            return Err(format!(
                "snapshot solution has {} entries, expected {}",
                snap.x.len(),
                self.work_x.len()
            ));
        }
        let chain_a = effective_matrix(&self.evo, cfg.chaos, snap.chain_step);
        let mut chain = GalerkinChain::build(&chain_a, &self.mg_cfg)
            .map_err(|e| format!("chain rebuild at step {}: {e}", snap.chain_step))?;
        if snap.finest_step != snap.chain_step {
            let finest = effective_matrix(&self.evo, cfg.chaos, snap.finest_step);
            chain
                .swap_finest(&finest, &self.mg_cfg)
                .map_err(|e| format!("finest swap at step {}: {e}", snap.finest_step))?;
        }
        let baseline =
            audit(&effective_matrix(&self.evo, cfg.chaos, snap.finest_step), Precision::F16);
        self.chain = Some(chain);
        self.chain_step = snap.chain_step;
        self.finest_step = snap.finest_step;
        self.baseline = Some(baseline);
        self.work_x = snap.x.clone();
        self.good_x = snap.x;
        self.next_step = snap.step + 1;
        self.counters = snap.counters;
        self.last_resid = snap.last_resid;
        self.resumed = true;
        // Replay the post-commit chaos transformation of the restored
        // step, so the resumed trajectory matches the uninterrupted one.
        self.post_commit_chaos(snap.step);
        Ok(())
    }

    fn post_commit_chaos(&mut self, committed: u64) {
        if self.cfg.chaos && committed == CHAOS_POISON_STEP {
            self.work_x[0] = f64::NAN;
        }
    }

    /// True once every requested step has committed.
    pub fn done(&self) -> bool {
        self.next_step >= self.cfg.steps
    }

    /// Whether this driver resumed from a snapshot.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// The next step to execute.
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// Builds the step's hierarchy per the reuse decision, escalating
    /// to a rebuild when a cheaper path fails. Returns the (possibly
    /// escalated) decision and the hierarchy (`None` only when even the
    /// rebuild failed — the ladder then builds its own).
    fn build_for_step(
        &mut self,
        step: u64,
        a: &SgDia<f64>,
        now_audit: &RangeAudit,
        mut decision: ReuseDecision,
    ) -> (ReuseDecision, Option<Mg<f32>>) {
        let mut mg = None;
        match decision {
            ReuseDecision::Keep => {
                let chain = self.chain.as_ref().expect("keep requires a cached chain");
                match Mg::setup_from_chain(chain, &self.mg_cfg) {
                    Ok(m) => mg = Some(m),
                    Err(_) => decision = ReuseDecision::Rebuild,
                }
            }
            ReuseDecision::Rescale => {
                let chain = self.chain.as_mut().expect("rescale requires a cached chain");
                match Mg::setup_rescaled(a, chain, &self.mg_cfg) {
                    Ok(m) => match chain.swap_finest(a, &self.mg_cfg) {
                        Ok(()) => {
                            self.finest_step = step;
                            self.baseline = Some(now_audit.clone());
                            mg = Some(m);
                        }
                        Err(_) => decision = ReuseDecision::Rebuild,
                    },
                    Err(_) => decision = ReuseDecision::Rebuild,
                }
            }
            ReuseDecision::Rebuild => {}
        }
        if decision == ReuseDecision::Rebuild && mg.is_none() {
            if let Ok(chain) = GalerkinChain::build(a, &self.mg_cfg) {
                if let Ok(m) = Mg::setup_from_chain(&chain, &self.mg_cfg) {
                    self.chain = Some(chain);
                    self.chain_step = step;
                    self.finest_step = step;
                    self.baseline = Some(now_audit.clone());
                    mg = Some(m);
                }
            }
        }
        (decision, mg)
    }

    /// Runs the solve request, returning `(rungs, outcome, iters,
    /// resid, solution)`.
    fn solve(
        &self,
        step: u64,
        a: SgDia<f64>,
        mg: Option<Mg<f32>>,
        prev: Option<&[f64]>,
    ) -> (String, String, usize, f64, Option<Vec<f64>>) {
        let kind = self.cfg.kind;
        let problem = Problem { name: kind.name(), kind, matrix: a, solver: kind.solver() };
        let rhs = step_rhs(&problem, prev);
        let mut req = SolveRequest::new(
            format!("sim-{}-step{}", kind.name(), step),
            problem,
            self.mg_cfg.clone(),
        );
        req.rhs = Some(rhs);
        req.opts.tol = self.cfg.tol;
        req.policy = sim_policy();
        req.budget.max_iters = Some(4000);
        let outcome = run_session_with(&req, mg);
        let rungs = outcome.report.summary();
        let (label, resid) = match &outcome.result {
            Ok(r) => ("ok".to_string(), r.final_rel_residual),
            Err(e) => (format!("{e}"), f64::NAN),
        };
        (rungs, label, outcome.iters, resid, outcome.solution)
    }

    /// Executes the next step: audit → drift → reuse decision →
    /// sentinel verify/repair → ladder solve (→ rollback-and-rebuild on
    /// exhaustion) → durable commit. Returns the committed row, or an
    /// error for an unrecovered step (after appending its trail line).
    pub fn step_once(&mut self) -> Result<&StepRow, String> {
        assert!(!self.done(), "all steps already committed");
        let step = self.next_step;
        let a = effective_matrix(&self.evo, self.cfg.chaos, step);

        // What a fresh-setup-every-step baseline would pay (timed and
        // discarded; the amortization evidence in the report).
        let fresh_setup_s = if self.cfg.measure_fresh {
            let t_fresh = Instant::now();
            let fresh = Mg::<f32>::setup(&a, &self.mg_cfg);
            let s = t_fresh.elapsed().as_secs_f64();
            drop(fresh);
            s
        } else {
            0.0
        };

        let now_audit = audit(&a, Precision::F16);
        let (want, drift_mag, structural) = match &self.baseline {
            None => (ReuseDecision::Rebuild, 0.0, false),
            Some(base) => {
                let d = drift(base, &now_audit);
                (ReuseDecision::decide(&d), d.magnitude(), d.structural())
            }
        };

        let t_reuse = Instant::now();
        let (decision, mut mg) = self.build_for_step(step, &a, &now_audit, want);
        let reuse_setup_s = t_reuse.elapsed().as_secs_f64();
        let mut ws_bytes = mg.as_ref().map_or(0, Mg::workspace_bytes);

        // ABFT: chaos corrupts a 16-bit stored level, then the
        // sentinels are verified (and any corruption repaired) before
        // the hierarchy serves the step.
        let mut repairs = 0u64;
        if let Some(m) = mg.as_mut() {
            if self.cfg.chaos && step % CHAOS_FLIP_PERIOD == 2 {
                if let Some(level) = finest_narrow_level(m) {
                    if let Some(stored) = m.stored_mut(level) {
                        stored.inject_bit_flip_tap(0, 9);
                    }
                }
            }
            repairs = m.verify_and_repair(RepairTrigger::Periodic).len() as u64;
        }

        let prev = if step == 0 { None } else { Some(self.work_x.clone()) };
        let (mut rungs, mut outcome, mut iters, mut resid, mut solution) =
            self.solve(step, a, mg, prev.as_deref());

        // Rollback-and-rebuild: the in-step ladder is exhausted, so
        // rewind the carried state to the last committed solution,
        // rebuild the chain at this step, and re-run once.
        let mut rollback = false;
        if solution.is_none() {
            rollback = true;
            self.counters.rollbacks += 1;
            self.work_x = self.good_x.clone();
            let a2 = effective_matrix(&self.evo, self.cfg.chaos, step);
            let audit2 = audit(&a2, Precision::F16);
            let (_, mg2) = self.build_for_step(step, &a2, &audit2, ReuseDecision::Rebuild);
            ws_bytes = ws_bytes.max(mg2.as_ref().map_or(0, Mg::workspace_bytes));
            let prev2 = if step == 0 { None } else { Some(self.work_x.clone()) };
            let (r2, o2, i2, rr2, s2) = self.solve(step, a2, mg2, prev2.as_deref());
            rungs = format!("{rungs}↺{r2}");
            outcome = o2;
            iters += i2;
            resid = rr2;
            solution = s2;
        }

        let row = StepRow {
            step,
            decision,
            drift: drift_mag,
            structural,
            repairs,
            rollback,
            rungs,
            outcome,
            iters,
            resid,
            reuse_setup_s,
            fresh_setup_s,
            ws_bytes,
        };
        self.reuse_setup_s += reuse_setup_s;
        self.fresh_setup_s += fresh_setup_s;

        let Some(x) = solution else {
            // Unrecovered: record the failed step in the trail, then
            // surface the error (the CLI exits nonzero).
            if let Some(dir) = &self.cfg.snapshot_dir {
                trail_append(
                    self.cfg.storage.as_ref(),
                    &sim_trail_path(dir, self.cfg.kind),
                    &row.trail_line(),
                )?;
            }
            let err = format!("step {} unrecovered after rollback: {}", step, row.outcome);
            self.rows.push(row);
            return Err(err);
        };

        match decision {
            ReuseDecision::Keep => self.counters.keep += 1,
            ReuseDecision::Rescale => self.counters.rescale += 1,
            ReuseDecision::Rebuild => self.counters.rebuild += 1,
        }
        self.counters.repairs += repairs;
        self.work_x = x;
        self.last_resid = resid;

        // Durability order: trail line (fsynced), then snapshot
        // (published into the A/B generation slot), then the ack. A
        // kill between any two leaves a resumable prefix; duplicate
        // trail lines after a resume are bit-identical by construction.
        if let Some(dir) = &self.cfg.snapshot_dir {
            let trail = sim_trail_path(dir, self.cfg.kind);
            if self.cfg.break_write_order {
                trail_append_unsynced(self.cfg.storage.as_ref(), &trail, &row.trail_line())?;
            } else {
                trail_append(self.cfg.storage.as_ref(), &trail, &row.trail_line())?;
            }
            let snap = SimSnapshot {
                problem: self.cfg.kind.name().to_string(),
                size: self.cfg.size,
                steps: self.cfg.steps,
                tol: self.cfg.tol,
                seed: chaos_seed(self.cfg.chaos),
                step,
                chain_step: self.chain_step,
                finest_step: self.finest_step,
                last_resid: self.last_resid,
                counters: self.counters,
                x: self.work_x.clone(),
            };
            // The publication generation is the step index: even steps
            // land in slot A, odd in slot B, so the slot being
            // overwritten always holds the older retained generation.
            SnapshotStore::new(sim_snapshot_path(dir, self.cfg.kind))
                .publish(self.cfg.storage.as_ref(), step, &snap.encode())
                .map_err(|e| format!("snapshot publish: {e}"))?;
        }
        self.good_x = self.work_x.clone();
        if self.cfg.ack {
            println!("done step={step}");
            std::io::stdout().flush().ok();
        }
        if self.cfg.pace_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.cfg.pace_ms));
        }
        self.post_commit_chaos(step);
        self.next_step += 1;
        self.rows.push(row);
        Ok(self.rows.last().expect("row just pushed"))
    }

    /// Advances to completion and summarizes.
    pub fn run(&mut self) -> Result<SimReport, String> {
        if self.cfg.ack {
            if self.resumed {
                println!("sim: resumed step={}", self.next_step);
            } else {
                println!("sim: cold start");
            }
            std::io::stdout().flush().ok();
        }
        while !self.done() {
            self.step_once()?;
        }
        Ok(self.report())
    }

    /// The report for whatever has run so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            kind: self.cfg.kind,
            rows: self.rows.clone(),
            counters: self.counters,
            resumed: self.resumed,
            reuse_setup_s: self.reuse_setup_s,
            fresh_setup_s: self.fresh_setup_s,
            final_resid: self.last_resid,
        }
    }
}

/// Renders the per-step cost/accuracy table.
pub fn render_sim_table(report: &SimReport) -> String {
    let mut t = Table::new(&[
        "step",
        "decision",
        "drift",
        "repairs",
        "rollback",
        "rungs",
        "iters",
        "resid",
        "setup(reuse)",
        "setup(fresh)",
        "ws-bytes",
    ]);
    for r in &report.rows {
        t.row(vec![
            r.step.to_string(),
            r.decision.label().to_string(),
            if r.structural { "structural".into() } else { format!("{:.3}", r.drift) },
            r.repairs.to_string(),
            if r.rollback { "yes".into() } else { "-".into() },
            r.rungs.clone(),
            r.iters.to_string(),
            format!("{:.2e}", r.resid),
            fmt_secs(r.reuse_setup_s),
            fmt_secs(r.fresh_setup_s),
            r.ws_bytes.to_string(),
        ]);
    }
    let c = report.counters;
    format!(
        "{}\ndecisions: keep={} rescale={} rebuild={} | repairs={} rollbacks={}\nsetup total: \
         reuse {} vs fresh-every-step {} → amortized setup win {:.2}x\npeak workspace: {} bytes \
         (preallocated per-level V-cycle arena; steady-state solve allocates nothing beyond \
         it)\n",
        t.render(),
        c.keep,
        c.rescale,
        c.rebuild,
        c.repairs,
        c.rollbacks,
        fmt_secs(report.reuse_setup_s),
        fmt_secs(report.fresh_setup_s),
        report.setup_win(),
        report.peak_ws_bytes(),
    )
}

/// Serializes the report as `BENCH_sim_<name>.json`.
pub fn sim_json(report: &SimReport, cfg: &SimConfig) -> String {
    use crate::benchjson::{esc, num};
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"fp16mg-sim-v1\",\n");
    s.push_str(&format!("  \"problem\": \"{}\",\n", esc(report.kind.name())));
    s.push_str(&format!("  \"size\": {},\n", cfg.size));
    s.push_str(&format!("  \"steps\": {},\n", cfg.steps));
    s.push_str(&format!("  \"tol\": {},\n", num(cfg.tol)));
    s.push_str(&format!("  \"chaos\": {},\n", cfg.chaos));
    s.push_str(&format!("  \"resumed\": {},\n", report.resumed));
    let c = report.counters;
    s.push_str(&format!(
        "  \"decisions\": {{ \"keep\": {}, \"rescale\": {}, \"rebuild\": {}, \"repairs\": {}, \
         \"rollbacks\": {} }},\n",
        c.keep, c.rescale, c.rebuild, c.repairs, c.rollbacks
    ));
    s.push_str(&format!("  \"reuse_setup_s\": {},\n", num(report.reuse_setup_s)));
    s.push_str(&format!("  \"fresh_setup_s\": {},\n", num(report.fresh_setup_s)));
    s.push_str(&format!("  \"amortized_setup_win\": {},\n", num(report.setup_win())));
    s.push_str(&format!("  \"peak_ws_bytes\": {},\n", report.peak_ws_bytes()));
    s.push_str(&format!("  \"final_resid\": {},\n", num(report.final_resid)));
    s.push_str("  \"steps_detail\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"step\": {}, \"decision\": \"{}\", \"drift\": {}, \"structural\": {}, \
             \"repairs\": {}, \"rollback\": {}, \"rungs\": \"{}\", \"outcome\": \"{}\", \
             \"iters\": {}, \"resid\": {}, \"reuse_setup_s\": {}, \"fresh_setup_s\": {}, \
             \"ws_bytes\": {} }}{}\n",
            r.step,
            esc(r.decision.label()),
            num(r.drift),
            r.structural,
            r.repairs,
            r.rollback,
            esc(&r.rungs),
            esc(&r.outcome),
            r.iters,
            num(r.resid),
            num(r.reuse_setup_s),
            num(r.fresh_setup_s),
            r.ws_bytes,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs one simulation from the CLI: table to stdout, optional JSON,
/// chaos coverage enforcement. Returns the process exit code.
pub fn run_sim_cli(cfg: SimConfig) -> i32 {
    let name = cfg.kind.name();
    if let Some(dir) = &cfg.snapshot_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("sim[{name}]: cannot create {}: {e}", dir.display());
            return 2;
        }
    }
    let mut driver = match SimDriver::new(cfg.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sim[{name}]: {e}");
            return 2;
        }
    };
    for event in driver.recovery_events() {
        eprintln!("sim[{name}]: recovery: {event}");
    }
    let report = match driver.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sim[{name}]: {e}");
            return 1;
        }
    };
    println!("\n=== simulate {} ({} steps, size {}) ===", name, cfg.steps, cfg.size);
    print!("{}", render_sim_table(&report));
    // A failed JSON emission after a successful run is a warning, not
    // an error: the run's results are already on stdout and in the
    // durable trail, and discarding them over a full disk would turn a
    // reporting hiccup into a spurious failure.
    if let Some(dir) = &cfg.json_dir {
        let path = dir.join(format!("BENCH_sim_{}.json", sanitize_name(name)));
        match fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))
            .and_then(|()| {
                fs::write(&path, sim_json(&report, &cfg))
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))
            }) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("sim[{name}]: warning: {e} (run results above are complete)"),
        }
    }
    if cfg.chaos {
        let violations = report.coverage_violations();
        if violations.is_empty() {
            println!("chaos coverage: all decision paths and recovery rungs fired");
        } else {
            for v in &violations {
                eprintln!("sim[{name}]: {v}");
            }
            return 1;
        }
    }
    0
}

// ---------------------------------------------------------------------------
// Soak: prove crash-safe resume with a real SIGKILL.
// ---------------------------------------------------------------------------

/// `repro simulate --soak` configuration.
#[derive(Clone, Debug)]
pub struct SimSoakConfig {
    /// Problem simulated (soak uses a single trajectory).
    pub kind: ProblemKind,
    /// Steps in the trajectory.
    pub steps: u64,
    /// Grid extent.
    pub size: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// Kill the child after this many committed-step acknowledgements.
    pub kill_after: usize,
    /// Scratch directory for the reference and crash runs.
    pub out: PathBuf,
}

fn child_command(soak: &SimSoakConfig, dir: &Path, pace_ms: u64) -> Result<Command, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("simulate")
        .arg("--problem")
        .arg(soak.kind.name())
        .arg("--steps")
        .arg(soak.steps.to_string())
        .arg("--size")
        .arg(soak.size.to_string())
        .arg("--tol")
        .arg(soak.tol.to_string())
        .arg("--snapshot-dir")
        .arg(dir)
        .arg("--pace-ms")
        .arg(pace_ms.to_string())
        .arg("--out")
        .arg(dir);
    Ok(cmd)
}

fn read_lines(path: &Path) -> Result<Vec<String>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(text.lines().map(str::to_string).collect())
}

fn step_of(line: &str) -> Option<u64> {
    line.strip_prefix("step=")?.split_whitespace().next()?.parse().ok()
}

/// Kill/resume soak: a reference run, a run SIGKILLed mid-flight, and a
/// restarted run must together produce a trail that is bit-identical to
/// the reference — same reuse decisions, same rung trails, same final
/// residual bits. Returns the process exit code.
pub fn run_sim_soak(soak: &SimSoakConfig) -> i32 {
    let mut violations: Vec<String> = Vec::new();
    let ref_dir = soak.out.join("ref");
    let crash_dir = soak.out.join("crash");
    for d in [&ref_dir, &crash_dir] {
        if let Err(e) = fs::remove_dir_all(d) {
            if e.kind() != std::io::ErrorKind::NotFound {
                eprintln!("sim soak: cannot clear {}: {e}", d.display());
                return 2;
            }
        }
        if let Err(e) = fs::create_dir_all(d) {
            eprintln!("sim soak: cannot create {}: {e}", d.display());
            return 2;
        }
    }

    // Phase 1: uninterrupted reference run.
    println!("sim soak: phase 1 — reference run ({} steps)", soak.steps);
    let out = match child_command(soak, &ref_dir, 0)
        .and_then(|mut c| c.output().map_err(|e| format!("spawn reference child: {e}")))
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sim soak: {e}");
            return 2;
        }
    };
    if !out.status.success() {
        eprintln!("sim soak: reference run failed: {}", String::from_utf8_lossy(&out.stderr));
        return 2;
    }
    let ref_trail = match read_lines(&sim_trail_path(&ref_dir, soak.kind)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sim soak: {e}");
            return 2;
        }
    };
    if ref_trail.len() != soak.steps as usize {
        violations.push(format!(
            "reference trail has {} lines, want {}",
            ref_trail.len(),
            soak.steps
        ));
    }
    for (i, line) in ref_trail.iter().enumerate() {
        if step_of(line) != Some(i as u64) {
            violations.push(format!("reference trail line {i} is not step {i}: {line}"));
        }
        if !line.contains("outcome=ok") {
            violations.push(format!("reference step {i} did not converge: {line}"));
        }
    }
    for want in ["decision=keep", "decision=rescale", "decision=rebuild"] {
        if !ref_trail.iter().any(|l| l.contains(want)) {
            violations.push(format!("reference trail never recorded {want}"));
        }
    }

    // Phase 2: crash run, SIGKILLed after `kill_after` committed steps.
    println!("sim soak: phase 2 — crash run (SIGKILL after {} steps)", soak.kill_after);
    let mut acks = 0usize;
    match child_command(soak, &crash_dir, 15)
        .map(|mut c| {
            c.stdout(Stdio::piped()).stderr(Stdio::null());
            c
        })
        .and_then(|mut c| c.spawn().map_err(|e| format!("spawn crash child: {e}")))
    {
        Ok(mut child) => {
            if let Some(stdout) = child.stdout.take() {
                for line in BufReader::new(stdout).lines() {
                    let Ok(line) = line else { break };
                    if line.starts_with("done step=") {
                        acks += 1;
                        if acks >= soak.kill_after {
                            break;
                        }
                    }
                }
            }
            let _ = child.kill();
            let _ = child.wait();
        }
        Err(e) => {
            eprintln!("sim soak: {e}");
            return 2;
        }
    }
    if acks < soak.kill_after {
        violations.push(format!(
            "crash child exited after {acks} committed steps, before the kill point \
             ({} wanted)",
            soak.kill_after
        ));
    }

    // Phase 3: restart in the same directory; must resume, not restart.
    println!("sim soak: phase 3 — restart and run to completion");
    let out = match child_command(soak, &crash_dir, 0)
        .and_then(|mut c| c.output().map_err(|e| format!("spawn restart child: {e}")))
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sim soak: {e}");
            return 2;
        }
    };
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        violations.push(format!("restart run failed: {}", String::from_utf8_lossy(&out.stderr)));
    }
    if !stdout.contains("sim: resumed step=") {
        violations.push("restart did not report a snapshot resume".to_string());
    }

    // Phase 4: the crash+restart trail must reproduce the reference
    // bit-identically.
    println!("sim soak: phase 4 — trail validation");
    match read_lines(&sim_trail_path(&crash_dir, soak.kind)) {
        Err(e) => violations.push(e),
        Ok(crash_trail) => {
            let mut seen: Vec<Vec<&String>> = vec![Vec::new(); soak.steps as usize];
            for line in &crash_trail {
                match step_of(line) {
                    Some(s) if (s as usize) < seen.len() => seen[s as usize].push(line),
                    _ => violations.push(format!("crash trail has an alien line: {line}")),
                }
            }
            for (step, lines) in seen.iter().enumerate() {
                if lines.is_empty() {
                    violations.push(format!("crash trail never committed step {step}"));
                    continue;
                }
                for line in lines {
                    if ref_trail.get(step) != Some(*line) {
                        violations.push(format!(
                            "step {step} diverged from the reference\n  ref:   {}\n  crash: {}",
                            ref_trail.get(step).map(String::as_str).unwrap_or("<missing>"),
                            line
                        ));
                    }
                }
            }
        }
    }

    if violations.is_empty() {
        println!(
            "sim soak: PASS — killed after {} steps, resumed, {}-step trail bit-identical \
             to the reference",
            soak.kill_after, soak.steps
        );
        0
    } else {
        for v in &violations {
            eprintln!("sim soak: VIOLATION: {v}");
        }
        1
    }
}
