//! `repro bench-json`: the machine-readable perf trajectory.
//!
//! Runs the tier-1 end-to-end solves (every paper problem, Full64 and
//! the headline Mix16 configuration) and writes one `BENCH_<problem>.json`
//! per problem with setup/solve timings and iteration counts, so the
//! performance trajectory across PRs can be diffed by tooling instead of
//! eyeballed from tables. The JSON is hand-rolled — the workspace has no
//! serialization dependency, and the schema is flat enough not to need
//! one.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use fp16mg_core::{GalerkinChain, Mg, MgConfig};
use fp16mg_krylov::SolveOptions;
use fp16mg_problems::ProblemKind;
use fp16mg_runtime::{CacheConfig, HierarchyCache};
use fp16mg_sgdia::kernels::Par;

use crate::{solve_e2e, Combo, E2eResult};

/// Knobs of the emitter, filled from the `repro` command line.
#[derive(Clone, Debug)]
pub struct BenchJsonConfig {
    /// Problem base extent.
    pub size: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// Directory the `BENCH_<problem>.json` files are written into.
    pub dir: PathBuf,
}

/// The combinations the emitter records: the FP64 baseline and the
/// paper's headline mixed-FP16 configuration.
const COMBOS: [Combo; 2] = [Combo::Full64, Combo::D16SetupScale];

pub(crate) fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A JSON float that always round-trips: finite values in shortest-exact
/// form, non-finite values as null (JSON has no Inf/NaN).
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn run_json(r: &E2eResult) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "    {{\n",
            "      \"combo\": \"{combo}\",\n",
            "      \"converged\": {converged},\n",
            "      \"iters\": {iters},\n",
            "      \"final_rel_residual\": {rel},\n",
            "      \"setup_s\": {setup},\n",
            "      \"precond_s\": {precond},\n",
            "      \"solve_s\": {solve},\n",
            "      \"total_s\": {total},\n",
            "      \"matrix_bytes\": {bytes},\n",
            "      \"workspace_bytes\": {ws},\n",
            "      \"grid_complexity\": {cg},\n",
            "      \"operator_complexity\": {co}\n",
            "    }}"
        ),
        combo = esc(&r.combo.label()),
        converged = r.result.converged(),
        iters = r.result.iters,
        rel = num(r.result.final_rel_residual),
        setup = num(r.setup.as_secs_f64()),
        precond = num(r.precond.as_secs_f64()),
        solve = num(r.solve.as_secs_f64()),
        total = num(r.total().as_secs_f64()),
        bytes = r.matrix_bytes,
        ws = r.workspace_bytes,
        cg = num(r.complexities.0),
        co = num(r.complexities.1),
    );
    s
}

/// Measures the hierarchy-cache split for one problem: a cold
/// `Mg::setup` (Galerkin chain + scale-and-truncate), the chain build
/// alone, and the warm `Mg::setup_from_chain` a cache hit actually pays.
/// Best of three, so the speedup the daemon claims for warm hits is a
/// measured number in the trajectory, not an assertion. `None` when the
/// headline config cannot set the problem up (already recorded as a run
/// error above).
fn cache_json(kind: ProblemKind, n: usize) -> Option<String> {
    let problem = kind.build(n);
    let config = MgConfig::d16();
    let best = |f: &mut dyn FnMut() -> bool| -> Option<f64> {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            if !f() {
                return None;
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        Some(best)
    };
    let cold = best(&mut || Mg::<f32>::setup(&problem.matrix, &config).is_ok())?;
    let chain_s = best(&mut || GalerkinChain::build(&problem.matrix, &config).is_ok())?;
    let chain = GalerkinChain::build(&problem.matrix, &config).ok()?;
    let warm = best(&mut || Mg::<f32>::setup_from_chain(&chain, &config).is_ok())?;
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "  \"cache\": {{\n",
            "    \"cold_setup_s\": {cold},\n",
            "    \"chain_build_s\": {chain},\n",
            "    \"warm_setup_s\": {warm},\n",
            "    \"warm_speedup\": {speedup}\n",
            "  }},\n"
        ),
        cold = num(cold),
        chain = num(chain_s),
        warm = num(warm),
        speedup = num(if warm > 0.0 { cold / warm } else { f64::NAN }),
    );
    Some(s)
}

/// Measures the memory-resilience numbers for one problem under the
/// headline config: the preallocated V-cycle workspace arena (carved
/// once at setup, so its size *is* the solve-phase peak), the bytes one
/// retained hierarchy chain charges against the cache governor, and a
/// proof that a byte-capped cache actually evicts (two classes pushed
/// through a cache sized for one chain must fire `mem_evictions`).
/// Putting these in the trajectory lets `bench-compare` gate memory
/// regressions the same way it gates convergence. `None` when the
/// headline config cannot set the problem up.
fn memory_json(kind: ProblemKind, n: usize) -> Option<String> {
    let problem = kind.build(n);
    let config = MgConfig::d16();
    let mg = Mg::<f32>::setup(&problem.matrix, &config).ok()?;
    let peak_ws = mg.workspace_bytes();
    drop(mg);
    let mut probe = HierarchyCache::new(CacheConfig::default());
    probe.acquire("bench", &problem.matrix, &config).ok()?;
    let cache_bytes = probe.cache_bytes();
    drop(probe);
    let mut capped = HierarchyCache::new(CacheConfig {
        byte_budget: Some(cache_bytes),
        ..CacheConfig::default()
    });
    capped.acquire("bench-a", &problem.matrix, &config).ok()?;
    capped.acquire("bench-b", &problem.matrix, &config).ok()?;
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "  \"memory\": {{\n",
            "    \"peak_ws_bytes\": {ws},\n",
            "    \"cache_bytes\": {cb},\n",
            "    \"mem_evictions\": {ev}\n",
            "  }},\n"
        ),
        ws = peak_ws,
        cb = cache_bytes,
        ev = capped.mem_evictions(),
    );
    Some(s)
}

/// Measures the serving layer's wire overhead and liveness once per
/// emitter run: an in-process networked daemon on the deterministic
/// storage backend serves a real Unix socket, the client measures
/// ping/pong round-trips (p50/p99 of the framed wire itself, no solve
/// attached), and the counters prove a connection was accepted, the
/// stream drained, and the admission queue still sheds with a typed
/// `Busy`. `None` when the probe cannot run (no Unix sockets — the gate
/// then skips the network checks instead of failing).
fn network_json(tol: f64) -> Option<String> {
    use fp16mg_runtime::net::{Client, ClientConfig, Endpoint, SubmitRequest};
    use fp16mg_runtime::{FaultStorage, Storage};
    use std::sync::Arc;

    let sock = std::env::temp_dir().join(format!("fp16mg-benchnet-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let endpoint = Endpoint::Unix(sock);
    let mut cfg = crate::netserve::NetServeConfig::new(endpoint.clone(), PathBuf::from("state"));
    cfg.size = 6;
    cfg.tol = tol.max(1e-8);
    cfg.quiet = true;
    let storage: Arc<dyn Storage> = Arc::new(FaultStorage::new());
    let server = std::thread::spawn(move || crate::netserve::serve_net(&cfg, storage));

    let mut client = Client::new(ClientConfig { endpoint, ..ClientConfig::default() });
    // One real request so the round-trips ride a warmed connection and
    // the served/drained counters are live.
    client.submit(SubmitRequest { key: 0, size: 6, tol: tol.max(1e-8), priority: 1 }).ok()?;
    let mut rtts = Vec::new();
    for _ in 0..64 {
        let t = Instant::now();
        client.ping().ok()?;
        rtts.push(t.elapsed().as_secs_f64());
    }
    client.shutdown().ok()?;
    let report = server.join().ok()?;
    if !report.violations.is_empty() || !report.drained {
        return None;
    }
    rtts.sort_by(f64::total_cmp);
    let pick = |q: f64| rtts[((rtts.len() as f64 * q).ceil() as usize).clamp(1, rtts.len()) - 1];
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "  \"network\": {{\n",
            "    \"wire_p50_s\": {p50},\n",
            "    \"wire_p99_s\": {p99},\n",
            "    \"net_connections\": {conns},\n",
            "    \"net_busy\": {busy}\n",
            "  }},\n"
        ),
        p50 = num(pick(0.50)),
        p99 = num(pick(0.99)),
        conns = report.counters.accepted,
        busy = crate::netserve::busy_probe(),
    );
    Some(s)
}

/// Renders the `BENCH_<problem>.json` document for one problem. Failed
/// setups are recorded as `{"combo", "error"}` entries instead of being
/// dropped, so a regression that breaks setup is visible in the file.
/// `net` is the shared network section measured once per emitter run
/// (empty when the probe could not run).
pub fn render_problem(kind: ProblemKind, n: usize, tol: f64, net: &str) -> String {
    let opts = SolveOptions { tol, max_iters: 500, record_history: false, ..Default::default() };
    let mut runs = Vec::new();
    for combo in COMBOS {
        match solve_e2e(kind, n, combo, &opts, Par::Seq) {
            Ok(r) => runs.push(run_json(&r)),
            Err(e) => runs.push(format!(
                "    {{\n      \"combo\": \"{}\",\n      \"error\": \"{}\"\n    }}",
                esc(&combo.label()),
                esc(&e)
            )),
        }
    }
    format!(
        "{{\n  \"problem\": \"{}\",\n  \"size\": {n},\n  \"tol\": {},\n{}{}{net}  \"runs\": [\n{}\n  ]\n}}\n",
        esc(kind.name()),
        num(tol),
        cache_json(kind, n).unwrap_or_default(),
        memory_json(kind, n).unwrap_or_default(),
        runs.join(",\n")
    )
}

/// The file name a problem's benchmark document is written under.
pub fn file_name(kind: ProblemKind) -> String {
    format!("BENCH_{}.json", kind.name())
}

/// Runs the tier-1 matrix and writes one JSON file per problem into
/// `cfg.dir`. Returns the written paths.
///
/// # Errors
/// Propagates the I/O error if a file cannot be written.
pub fn bench_json_emit(cfg: &BenchJsonConfig) -> std::io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    let net = network_json(cfg.tol).unwrap_or_default();
    for kind in ProblemKind::all() {
        let doc = render_problem(kind, cfg.size, cfg.tol, &net);
        let path = Path::new(&cfg.dir).join(file_name(kind));
        std::fs::write(&path, doc)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_wellformed_json_for_both_combos() {
        let net = network_json(1e-8).expect("the network probe must run on this platform");
        assert!(
            net.contains("\"wire_p50_s\"")
                && net.contains("\"wire_p99_s\"")
                && net.contains("\"net_connections\"")
                && net.contains("\"net_busy\": 1"),
            "the wire overhead and shed liveness must be part of the trajectory: {net}"
        );
        let doc = render_problem(ProblemKind::Laplace27, 8, 1e-8, &net);
        assert!(doc.contains("\"network\""));
        assert!(doc.contains(&format!("\"problem\": \"{}\"", ProblemKind::Laplace27.name())));
        assert_eq!(doc.matches("\"combo\"").count(), COMBOS.len());
        assert!(doc.contains("\"iters\"") && doc.contains("\"setup_s\""));
        assert!(
            doc.contains("\"cold_setup_s\"") && doc.contains("\"warm_speedup\""),
            "the cache split must be part of the trajectory"
        );
        assert!(
            doc.contains("\"peak_ws_bytes\"")
                && doc.contains("\"cache_bytes\"")
                && doc.contains("\"mem_evictions\"")
                && doc.contains("\"workspace_bytes\""),
            "the memory footprint must be part of the trajectory"
        );
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "balanced objects");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count(), "balanced arrays");
        assert!(!doc.contains("inf") && !doc.contains("NaN"), "JSON has no non-finite literals");
    }

    #[test]
    fn emit_writes_one_file_per_problem() {
        let dir = std::env::temp_dir().join("fp16mg-benchjson-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = BenchJsonConfig { size: 8, tol: 1e-8, dir: dir.clone() };
        let paths = bench_json_emit(&cfg).unwrap();
        assert_eq!(paths.len(), ProblemKind::all().len());
        for (kind, p) in ProblemKind::all().into_iter().zip(&paths) {
            assert_eq!(p.file_name().unwrap().to_str().unwrap(), file_name(kind));
            let body = std::fs::read_to_string(p).unwrap();
            assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
            std::fs::remove_file(p).unwrap();
        }
    }
}
