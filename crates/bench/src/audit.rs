//! The `repro audit` report: per-level precision-range audits of the
//! FP16 scaling pipeline.
//!
//! For each problem the report assembles the hierarchy under
//! `MgConfig::d16_auto()` (setup-then-scale, `shift_levid: Auto`) and
//! prints what storing every smoothed level at its resolved precision
//! did to the operator's range: overflow headroom against Theorem 4.1,
//! underflow/subnormal counts behind the `Auto` switch heuristic, the
//! saturation count the truncation policies act on, and the rounding
//! loss. A final section demonstrates the `Auto` resolution picking an
//! *interior* switch level on a two-component problem whose weak
//! inter-component couplings survive Galerkin coarsening verbatim while
//! RAP growth forces scaling on level 1.

use fp16mg_core::{Mg, MgConfig, MgInfo};
use fp16mg_grid::Grid3;
use fp16mg_problems::ProblemKind;
use fp16mg_sgdia::{Layout, SgDia};
use fp16mg_stencil::Pattern;

use crate::table::Table;

/// Prints the per-level range-audit table of one assembled hierarchy.
pub fn print_audit_table(info: &MgInfo) {
    let mut t = Table::new(&[
        "lvl",
        "dims",
        "prec",
        "scaled",
        "G",
        "headroom",
        "uflow->0",
        "subnormal",
        "saturate",
        "max rel err",
        "loss",
    ]);
    for (l, lv) in info.levels.iter().enumerate() {
        let dims = format!("{}x{}x{}", lv.dims.0, lv.dims.1, lv.dims.2);
        let g = match (lv.g, lv.g_clamped_from) {
            (Some(g), Some(req)) => format!("{g:.3e} (req {req:.1e})"),
            (Some(g), None) => format!("{g:.3e}"),
            (None, _) => "-".into(),
        };
        match &lv.audit {
            Some(a) => t.row(vec![
                l.to_string(),
                dims,
                format!("{:?}", lv.precision),
                if lv.scaled { "yes".into() } else { String::new() },
                g,
                format!("{:.2e}", a.headroom),
                a.underflow_zero.to_string(),
                a.subnormal.to_string(),
                a.saturate.to_string(),
                format!("{:.1e}", a.max_rel_err),
                format!("{:.2}%", a.underflow_loss_fraction() * 100.0),
            ]),
            None => t.row(vec![
                l.to_string(),
                dims,
                format!("{:?} (direct)", lv.precision),
                String::new(),
                g,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print!("{t}");
    if let Some(d) = &info.shift_decision {
        println!("{d}");
        let losses: Vec<String> = d
            .per_level
            .iter()
            .map(|a| format!("{:.2}%", a.underflow_loss_fraction() * 100.0))
            .collect();
        println!("  FP16 underflow loss per audited level: [{}]", losses.join(", "));
    }
}

/// Audits one problem kind at grid size `n` and prints its table.
fn audit_problem(kind: ProblemKind, n: usize) {
    let p = kind.build(n);
    println!("\n--- {} ({n}^3) under d16_auto ---", p.name);
    match Mg::<f32>::setup(&p.matrix, &MgConfig::d16_auto()) {
        Ok(mg) => print_audit_table(mg.info()),
        Err(e) => println!("setup failed: {e}"),
    }
}

/// A two-component coupled system whose FP16 audit degrades at an
/// *interior* level: the finest level fits FP16 unscaled, but Galerkin
/// RAP growth pushes level 1 past `FP16_MAX`, scaling normalizes its
/// diagonal to `G`, and the weak inter-component couplings (which the
/// componentwise trilinear transfers preserve at their original relative
/// size) land in the subnormal range — ~50% underflow loss exactly there.
pub fn weakly_coupled_demo(n: usize) -> SgDia<f64> {
    let grid = Grid3::with_components(n, n, n, 2);
    let pat = Pattern::p7().with_components(2);
    let taps: Vec<_> = pat.taps().to_vec();
    let s = 4.0e3;
    SgDia::from_fn(grid, pat, Layout::Soa, |_, _, _, _, t| {
        let tap = taps[t];
        if tap.is_diagonal() {
            6.05 * s
        } else if tap.dx == 0 && tap.dy == 0 && tap.dz == 0 {
            -1.0e-5 * s
        } else if tap.cin == tap.cout {
            -s
        } else {
            0.0
        }
    })
}

/// The full `repro audit` report body.
pub fn audit_report(size: usize) {
    let n = size.max(12);
    println!("Per-level FP16 range audits (setup-then-scale, shift_levid: Auto).");
    println!("headroom = abs_max / FP16_MAX (Theorem 4.1 keeps scaled levels < 1);");
    println!("loss = fraction of nonzeros underflowing to zero or subnormal in FP16.");
    for kind in [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Rhd3T] {
        audit_problem(kind, n);
    }

    println!("\n--- weakly-coupled 2-component system (32^3): interior auto shift ---");
    let a = weakly_coupled_demo(32);
    match Mg::<f32>::setup(&a, &MgConfig::d16_auto()) {
        Ok(mg) => {
            print_audit_table(mg.info());
            let chosen = mg.info().shift_decision.as_ref().map(|d| d.chosen);
            println!(
                "  => Auto resolved shift_levid = {} (nonzero: FP16 on the finest level only)",
                chosen.map(|c| c.to_string()).unwrap_or_else(|| "?".into())
            );
        }
        Err(e) => println!("setup failed: {e}"),
    }
}
