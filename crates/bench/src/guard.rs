//! The detect → promote → converge experiment behind `repro guard`.
//!
//! A guarded solve wraps the Krylov method in the self-healing loop: run,
//! and if the solver reports a *precision-attributable* failure (non-finite
//! breakdown or a stagnation plateau above the FP16 roundoff floor) while
//! the hierarchy still has promotion budget, promote the suspect
//! reduced-precision level to FP32 and resume from the current iterate.
//! Non-finite V-cycle outputs never even reach the solver: `Mg::apply_pr`
//! detects them internally, promotes, and re-applies.

use std::time::Instant;

use fp16mg_core::{MatOp, Mg, PromotionEvent};
use fp16mg_fp::{Precision, Scalar};
use fp16mg_krylov::{cg, gmres, SolveOptions, SolveResult};
use fp16mg_problems::{Problem, SolverKind};
use fp16mg_sgdia::kernels::Par;

/// Outcome of one guarded solve.
#[derive(Clone, Debug)]
pub struct GuardOutcome {
    /// Final solver outcome (after any restarts).
    pub result: SolveResult,
    /// Every storage-precision promotion the hierarchy performed, both
    /// those triggered inside `apply_pr` and those requested by the
    /// restart loop.
    pub promotions: Vec<PromotionEvent>,
    /// Outer restarts performed after promote-on-stagnation.
    pub restarts: usize,
    /// Wall time of the whole guarded solve.
    pub seconds: f64,
}

impl GuardOutcome {
    /// True when the solve finished at the requested tolerance.
    pub fn converged(&self) -> bool {
        self.result.converged()
    }
}

/// Runs the problem's designated Krylov solver with the self-healing
/// restart loop around it.
pub fn solve_guarded<Pr: Scalar>(
    problem: &Problem,
    mg: &mut Mg<Pr>,
    opts: &SolveOptions,
    par: Par,
) -> GuardOutcome {
    let op = MatOp::new(&problem.matrix, par);
    let b = problem.rhs();
    let mut x = vec![0.0f64; problem.matrix.rows()];
    let t0 = Instant::now();
    let mut restarts = 0usize;
    loop {
        let result = match problem.solver {
            SolverKind::Cg => cg(&op, mg, &b, &mut x, opts),
            SolverKind::Gmres => gmres(&op, mg, &b, &mut x, opts),
        };
        let done = result.converged() || !result.precision_suspect() || !mg.can_promote();
        if done || mg.promote_for_stagnation().is_none() {
            return GuardOutcome {
                result,
                promotions: mg.promotions().to_vec(),
                restarts,
                seconds: t0.elapsed().as_secs_f64(),
            };
        }
        // A breakdown can leave a poisoned iterate; restart clean then.
        if !x.iter().all(|v| v.is_finite()) {
            x.fill(0.0);
        }
        restarts += 1;
    }
}

/// Index of the finest level stored in a 16-bit format, if any.
pub fn finest_narrow_level<Pr: Scalar>(mg: &Mg<Pr>) -> Option<usize> {
    mg.info().levels.iter().position(|l| matches!(l.precision, Precision::F16 | Precision::BF16))
}
