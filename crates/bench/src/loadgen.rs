//! `repro loadgen`: the external client driver, and the kill/restart
//! network soak.
//!
//! **Loadgen** drives a running networked daemon through the production
//! [`Client`]: one ordered stream of idempotency-keyed submissions with
//! per-priority timeout classes and a jittered retry/backoff ladder.
//! Every ack is checked (right key, coherent duplicate flag), wire
//! round-trip latencies are recorded, and the run exits nonzero on any
//! violation.
//!
//! **The soak** (`repro loadgen --soak`) is the acceptance demo from
//! the issue: it spawns a networked daemon child over a Unix socket,
//! drives traffic at it, SIGKILLs the child mid-stream after a chosen
//! number of acks, restarts it immediately, and keeps submitting while
//! the client's backoff ladder rides out the gap. At the end it
//! requests a graceful drain and verifies from the outside: every
//! request acked exactly once at the client (zero lost), the durable
//! trail contains **exactly one line per sequence number** (zero
//! duplicate executions — the at-least-once resubmissions were
//! deduplicated, not re-run), and the drained child flushed trail +
//! snapshot before exiting cleanly.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use fp16mg_runtime::net::{Client, ClientConfig, Endpoint, SubmitRequest};

use crate::daemon::{read_trail, SNAPSHOT_FILE, TRAIL_FILE};

/// Loadgen configuration (`repro loadgen --addr …`).
pub struct LoadgenConfig {
    /// The daemon's endpoint.
    pub endpoint: Endpoint,
    /// Requests to submit (keys `0..requests`).
    pub requests: u64,
    /// Problem base extent the daemon was configured with.
    pub size: usize,
    /// Convergence tolerance the daemon was configured with.
    pub tol: f64,
    /// Client jitter seed.
    pub seed: u64,
    /// Request a graceful drain after the stream completes.
    pub shutdown: bool,
}

/// What the loadgen run observed.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests acknowledged.
    pub acked: u64,
    /// Acks served from the dedup record.
    pub duplicate_acks: u64,
    /// Resubmissions after lost connections/acks.
    pub resubmissions: u64,
    /// Typed `Busy` retries honored.
    pub busy_retries: u64,
    /// Reconnects performed by the retry ladder.
    pub reconnects: u64,
    /// Wire round-trip p50 in seconds.
    pub p50_s: f64,
    /// Wire round-trip p99 in seconds.
    pub p99_s: f64,
    /// Violations (any ⇒ nonzero exit).
    pub violations: Vec<String>,
}

/// The wire priority class of sequence number `seq`, mirroring the
/// server-side stream function: interactive at `seq % 8 == 5`,
/// batch otherwise.
pub fn priority_for(seq: u64) -> u8 {
    if seq % 8 == 5 {
        0
    } else {
        1
    }
}

/// Percentile of a sorted latency list (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Drives the stream through one client, recording latencies and
/// checking every ack. Pure client-side; the daemon must already be
/// listening (or come up within the retry ladder's patience).
pub fn drive_stream(client: &mut Client, cfg: &LoadgenConfig) -> LoadgenReport {
    let mut report = LoadgenReport::default();
    let mut latencies = Vec::with_capacity(cfg.requests as usize);
    for seq in 0..cfg.requests {
        let req = SubmitRequest {
            key: seq,
            size: cfg.size as u32,
            tol: cfg.tol,
            priority: priority_for(seq),
        };
        let t0 = Instant::now();
        match client.submit(req) {
            Ok(done) => {
                latencies.push(t0.elapsed().as_secs_f64());
                report.acked += 1;
                if done.key != seq {
                    report
                        .violations
                        .push(format!("ack for key {} while waiting on {seq}", done.key));
                }
                if done.outcome.is_empty() {
                    report.violations.push(format!("seq={seq}: empty outcome label in ack"));
                }
            }
            Err(e) => {
                report.violations.push(format!("seq={seq}: {e}"));
                break;
            }
        }
    }
    report.duplicate_acks = client.stats.duplicate_acks;
    report.resubmissions = client.stats.resubmissions;
    report.busy_retries = client.stats.busy_retries;
    report.reconnects = client.stats.reconnects;
    latencies.sort_by(|a, b| a.total_cmp(b));
    report.p50_s = percentile(&latencies, 50.0);
    report.p99_s = percentile(&latencies, 99.0);
    report
}

/// Runs loadgen against an already-listening daemon. Returns the
/// process exit code.
pub fn run_loadgen(cfg: &LoadgenConfig) -> i32 {
    let client_cfg = ClientConfig { endpoint: cfg.endpoint.clone(), ..ClientConfig::default() };
    let mut client = Client::new(client_cfg);
    let mut report = drive_stream(&mut client, cfg);
    if cfg.shutdown {
        match client.shutdown() {
            Ok(seq) => println!("loadgen: daemon drained at seq={seq}"),
            Err(e) => report.violations.push(format!("shutdown: {e}")),
        }
    }
    print_report(&report, cfg.requests);
    i32::from(!report.violations.is_empty())
}

fn print_report(report: &LoadgenReport, requests: u64) {
    println!(
        "loadgen: acked {}/{} (dup-acks={} resubmissions={} busy-retries={} reconnects={}) \
         p50={:.6}s p99={:.6}s",
        report.acked,
        requests,
        report.duplicate_acks,
        report.resubmissions,
        report.busy_retries,
        report.reconnects,
        report.p50_s,
        report.p99_s,
    );
    for v in &report.violations {
        eprintln!("loadgen violation: {v}");
    }
}

// ------------------------------------------------------------------ soak --

/// Soak configuration (`repro loadgen --soak`).
pub struct NetSoakConfig {
    /// Requests in the stream.
    pub requests: u64,
    /// Acks to observe before the SIGKILL.
    pub kill_after: u64,
    /// Problem base extent.
    pub size: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// Pool workers per child.
    pub workers: usize,
    /// Kernel-parallelism threads per child (`--threads`).
    pub threads: usize,
    /// Working directory (socket + state + child logs).
    pub out: PathBuf,
}

fn spawn_child(cfg: &NetSoakConfig, endpoint: &Endpoint) -> Result<Child, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg("--daemon")
        .arg("--addr")
        .arg(endpoint.to_string())
        .arg("--snapshot-dir")
        .arg(cfg.out.join("state"))
        .arg("--size")
        .arg(cfg.size.to_string())
        .arg("--tol")
        .arg(format!("{:e}", cfg.tol))
        .arg("--workers")
        .arg(cfg.workers.to_string());
    if cfg.threads > 1 {
        cmd.arg("--threads").arg(cfg.threads.to_string());
    }
    cmd.stdout(Stdio::inherit()).stderr(Stdio::inherit());
    cmd.spawn().map_err(|e| format!("spawn child: {e}"))
}

/// The kill/restart acceptance soak. Returns the process exit code.
pub fn run_net_soak(cfg: &NetSoakConfig) -> i32 {
    let mut violations: Vec<String> = Vec::new();
    if let Err(e) = std::fs::create_dir_all(&cfg.out) {
        eprintln!("netsoak: cannot create {}: {e}", cfg.out.display());
        return 1;
    }
    let endpoint = Endpoint::Unix(cfg.out.join("daemon.sock"));

    println!("=== phase 1: daemon up, traffic until {} acks ===", cfg.kill_after);
    let mut child = match spawn_child(cfg, &endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("netsoak: {e}");
            return 1;
        }
    };

    // The client: a bit more patience than the default ladder, since a
    // restart (snapshot restore + possible reconciliation re-solve) sits
    // inside one request's retry window.
    let client_cfg =
        ClientConfig { endpoint: endpoint.clone(), max_attempts: 24, ..ClientConfig::default() };
    let mut client = Client::new(client_cfg);
    let mut killed = false;
    let mut acked: u64 = 0;
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    for seq in 0..cfg.requests {
        let req = SubmitRequest {
            key: seq,
            size: cfg.size as u32,
            tol: cfg.tol,
            priority: priority_for(seq),
        };
        let t = Instant::now();
        match client.submit(req) {
            Ok(done) => {
                latencies.push(t.elapsed().as_secs_f64());
                acked += 1;
                if done.key != seq {
                    violations.push(format!("ack for key {} while waiting on {seq}", done.key));
                }
            }
            Err(e) => {
                violations.push(format!("seq={seq}: {e}"));
                break;
            }
        }
        if !killed && acked >= cfg.kill_after {
            killed = true;
            println!(
                "=== phase 2: SIGKILL after {acked} acks (t={:.2}s), immediate restart ===",
                t0.elapsed().as_secs_f64()
            );
            let _ = child.kill();
            let _ = child.wait();
            child = match spawn_child(cfg, &endpoint) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("netsoak: restart: {e}");
                    return 1;
                }
            };
            // The in-flight connection dies with the child; the client's
            // backoff ladder reconnects and resubmits idempotently.
        }
    }
    if !killed {
        violations.push(format!(
            "kill never landed: only {acked} acks for kill-after {}",
            cfg.kill_after
        ));
    }

    println!("=== phase 3: graceful drain ===");
    match client.shutdown() {
        Ok(seq) => {
            if seq != cfg.requests {
                violations.push(format!("drained at seq={seq}, expected {}", cfg.requests));
            }
        }
        Err(e) => violations.push(format!("shutdown: {e}")),
    }
    match child.wait() {
        Ok(status) if status.success() => {}
        Ok(status) => violations.push(format!("drained child exited {status}")),
        Err(e) => violations.push(format!("child wait: {e}")),
    }

    println!("=== phase 4: external verification ===");
    if acked != cfg.requests {
        violations.push(format!("lost acked requests: {acked}/{} acked", cfg.requests));
    }
    if client.stats.resubmissions == 0 {
        violations
            .push("the kill window produced no resubmission — the soak proved nothing".into());
    }
    // Exactly-once at the durable layer: one trail line per seq, no
    // gaps, no extras — resubmissions were deduplicated, not re-run.
    let state = cfg.out.join("state");
    match read_trail(&state.join(TRAIL_FILE)) {
        Ok(entries) => {
            let mut counts = std::collections::BTreeMap::<u64, u64>::new();
            for (seq, _) in &entries {
                *counts.entry(*seq).or_insert(0) += 1;
            }
            for seq in 0..cfg.requests {
                match counts.get(&seq) {
                    None => violations.push(format!("seq={seq}: acked but missing from trail")),
                    Some(1) => {}
                    Some(n) => violations.push(format!(
                        "seq={seq}: {n} trail lines — a resubmission was re-executed"
                    )),
                }
            }
            if counts.keys().next_back().is_some_and(|&max| max >= cfg.requests) {
                violations.push("trail contains seqs beyond the stream".into());
            }
        }
        Err(e) => violations.push(format!("trail verify: {e}")),
    }
    // Graceful drain flushed the snapshot: one of the A/B generations
    // must exist on disk.
    let snap_a = state.join(format!("{SNAPSHOT_FILE}.a"));
    let snap_b = state.join(format!("{SNAPSHOT_FILE}.b"));
    let snap_legacy = state.join(SNAPSHOT_FILE);
    if !(snap_a.exists() || snap_b.exists() || snap_legacy.exists()) {
        violations.push("drain left no snapshot on disk".into());
    }

    latencies.sort_by(|a, b| a.total_cmp(b));
    println!(
        "netsoak: acked {}/{} resubmissions={} dup-acks={} reconnects={} p50={:.6}s p99={:.6}s",
        acked,
        cfg.requests,
        client.stats.resubmissions,
        client.stats.duplicate_acks,
        client.stats.reconnects,
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
    if violations.is_empty() {
        println!("netsoak: zero lost acks, zero duplicate executions, graceful drain verified");
        0
    } else {
        for v in &violations {
            eprintln!("netsoak violation: {v}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn priorities_mirror_the_stream_function() {
        assert_eq!(priority_for(5), 0);
        assert_eq!(priority_for(13), 0);
        assert_eq!(priority_for(0), 1);
        assert_eq!(priority_for(6), 1);
    }
}
