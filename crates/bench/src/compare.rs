//! `repro bench-compare`: the CI regression gate over `BENCH_*.json`.
//!
//! The repository commits a baseline set of `BENCH_*.json` files
//! (`ci/bench-baseline/`); CI regenerates the same files on the
//! candidate commit and compares them here. The gate fails when a
//! combination stops converging, its iteration count regresses by more
//! than [`MAX_ITER_REGRESSION`], or the cold/warm setup split's warm
//! speedup collapses below [`MIN_SPEEDUP_FRACTION`] of the baseline.
//! Timing *magnitudes* are deliberately not gated — wall-clock noise
//! across CI machines would make that flaky — only convergence behavior
//! and the setup-reuse ratio, which are stable.
//!
//! The scanner is a line-oriented extractor over the emitter's own
//! stable output (`benchjson`), not a general JSON parser; keys are
//! matched as `"key": value` tokens, and the most recent `"combo"`
//! line scopes the per-run keys.

use std::fs;
use std::path::Path;

/// A run's iteration count may grow by at most this factor.
pub const MAX_ITER_REGRESSION: f64 = 1.25;
/// The warm-setup speedup may shrink to no less than this fraction of
/// the baseline.
pub const MIN_SPEEDUP_FRACTION: f64 = 0.75;
/// The V-cycle workspace arena and the per-chain cache charge may grow
/// by at most this factor over the baseline. Byte counts are exact (no
/// wall-clock noise), so the headroom only covers intentional layout
/// changes — silent footprint creep past it fails the gate.
pub const MAX_MEM_GROWTH: f64 = 1.5;

/// Per-combo facts extracted from one `BENCH_*.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct ComboFacts {
    /// Combo label (e.g. `"Full64"`).
    pub combo: String,
    /// Whether the solve converged.
    pub converged: bool,
    /// Outer iterations.
    pub iters: u64,
}

/// Everything the gate compares from one file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchFacts {
    /// Per-combo convergence facts, in file order.
    pub runs: Vec<ComboFacts>,
    /// Warm-over-cold setup speedup from the cache split, when present.
    pub warm_speedup: Option<f64>,
    /// Peak V-cycle workspace bytes from the memory section, when
    /// present (older baselines predate it — the gate then skips the
    /// memory checks instead of failing).
    pub peak_ws_bytes: Option<u64>,
    /// Bytes one retained hierarchy chain charges against the cache.
    pub cache_bytes: Option<u64>,
    /// Byte-pressure evictions fired by the capped-cache probe.
    pub mem_evictions: Option<u64>,
    /// Connections the network probe's daemon accepted, when present
    /// (baselines written before the serving layer carry no network
    /// section — the gate then skips the network checks).
    pub net_connections: Option<u64>,
    /// Typed `Busy` sheds the admission probe produced.
    pub net_busy: Option<u64>,
}

fn str_value(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let open = rest.find('"')? + 1;
    let close = open + rest[open..].find('"')?;
    Some(rest[open..close].to_string())
}

fn raw_value(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    let v = rest[..end].trim();
    if v.is_empty() {
        None
    } else {
        Some(v.to_string())
    }
}

/// Extracts the gated facts from one bench JSON document.
pub fn scan_bench_json(text: &str) -> BenchFacts {
    let mut facts = BenchFacts::default();
    for line in text.lines() {
        if let Some(combo) = str_value(line, "combo") {
            facts.runs.push(ComboFacts { combo, converged: false, iters: 0 });
        }
        if let Some(v) = raw_value(line, "converged") {
            if let Some(run) = facts.runs.last_mut() {
                run.converged = v == "true";
            }
        }
        if let Some(v) = raw_value(line, "iters") {
            if let (Some(run), Ok(n)) = (facts.runs.last_mut(), v.parse()) {
                run.iters = n;
            }
        }
        if let Some(v) = raw_value(line, "warm_speedup") {
            if let Ok(x) = v.parse::<f64>() {
                facts.warm_speedup = Some(x);
            }
        }
        for (key, slot) in [
            ("peak_ws_bytes", &mut facts.peak_ws_bytes),
            ("cache_bytes", &mut facts.cache_bytes),
            ("mem_evictions", &mut facts.mem_evictions),
            ("net_connections", &mut facts.net_connections),
            ("net_busy", &mut facts.net_busy),
        ] {
            if let Some(v) = raw_value(line, key) {
                if let Ok(x) = v.parse::<u64>() {
                    *slot = Some(x);
                }
            }
        }
    }
    facts
}

/// Compares one candidate document against its baseline.
pub fn compare_facts(name: &str, base: &BenchFacts, cur: &BenchFacts) -> Vec<String> {
    let mut v = Vec::new();
    for b in &base.runs {
        let Some(c) = cur.runs.iter().find(|c| c.combo == b.combo) else {
            v.push(format!("{name}: combo '{}' missing from the candidate run", b.combo));
            continue;
        };
        if b.converged && !c.converged {
            v.push(format!("{name}: combo '{}' no longer converges", b.combo));
            continue;
        }
        let ceiling = (b.iters as f64 * MAX_ITER_REGRESSION).ceil() as u64;
        if b.converged && c.iters > ceiling {
            v.push(format!(
                "{name}: combo '{}' iterations regressed {} → {} (ceiling {})",
                b.combo, b.iters, c.iters, ceiling
            ));
        }
    }
    if let (Some(b), Some(c)) = (base.warm_speedup, cur.warm_speedup) {
        let floor = b * MIN_SPEEDUP_FRACTION;
        if c < floor {
            v.push(format!(
                "{name}: warm setup speedup regressed {b:.2}x → {c:.2}x (floor {floor:.2}x)"
            ));
        }
    } else if base.warm_speedup.is_some() && cur.warm_speedup.is_none() {
        v.push(format!("{name}: cold/warm cache split missing from the candidate run"));
    }
    for (label, b, c) in [
        ("peak workspace bytes", base.peak_ws_bytes, cur.peak_ws_bytes),
        ("cache bytes per chain", base.cache_bytes, cur.cache_bytes),
    ] {
        match (b, c) {
            (Some(b), Some(c)) => {
                let ceiling = (b as f64 * MAX_MEM_GROWTH).ceil() as u64;
                if c > ceiling {
                    v.push(format!("{name}: {label} regressed {b} → {c} (ceiling {ceiling})"));
                }
            }
            (Some(_), None) => {
                v.push(format!("{name}: {label} missing from the candidate run"));
            }
            // Baselines written before the memory section existed carry
            // no byte counts; the candidate's are informational until
            // the baseline is regenerated.
            (None, _) => {}
        }
    }
    if let (Some(b), Some(c)) = (base.mem_evictions, cur.mem_evictions) {
        if b > 0 && c == 0 {
            v.push(format!("{name}: the capped-cache probe no longer evicts (baseline fired {b})"));
        }
    } else if base.mem_evictions.is_some() && cur.mem_evictions.is_none() {
        v.push(format!("{name}: memory section missing from the candidate run"));
    }
    // Network liveness: a baseline that served connections and shed with
    // a typed Busy must keep doing both. Baselines written before the
    // serving layer carry no network section, so the gate skips then.
    for (label, b, c) in [
        ("network probe connections", base.net_connections, cur.net_connections),
        ("typed-Busy shed probe", base.net_busy, cur.net_busy),
    ] {
        match (b, c) {
            (Some(b), Some(c)) => {
                if b > 0 && c == 0 {
                    v.push(format!("{name}: {label} went dead (baseline {b}, candidate 0)"));
                }
            }
            (Some(_), None) => {
                v.push(format!("{name}: network section missing from the candidate run"));
            }
            (None, _) => {}
        }
    }
    v
}

/// Compares every `BENCH_*.json` in `baseline` against its counterpart
/// in `current`, returning all violations.
pub fn compare_dirs(baseline: &Path, current: &Path) -> Result<Vec<String>, String> {
    let mut names: Vec<String> = Vec::new();
    let entries = fs::read_dir(baseline)
        .map_err(|e| format!("read baseline dir {}: {e}", baseline.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read baseline dir: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", baseline.display()));
    }
    let mut violations = Vec::new();
    for name in &names {
        let base_text = fs::read_to_string(baseline.join(name))
            .map_err(|e| format!("read {}: {e}", baseline.join(name).display()))?;
        let cur_path = current.join(name);
        let cur_text = match fs::read_to_string(&cur_path) {
            Ok(t) => t,
            Err(_) => {
                violations.push(format!("{name}: missing from the candidate run"));
                continue;
            }
        };
        violations.extend(compare_facts(
            name,
            &scan_bench_json(&base_text),
            &scan_bench_json(&cur_text),
        ));
    }
    Ok(violations)
}

/// CLI entry: prints the verdict and returns the process exit code.
pub fn run_compare(baseline: &Path, current: &Path) -> i32 {
    match compare_dirs(baseline, current) {
        Err(e) => {
            eprintln!("bench-compare: {e}");
            2
        }
        Ok(violations) if violations.is_empty() => {
            println!(
                "bench-compare: PASS — no convergence or setup-reuse regressions vs {}",
                baseline.display()
            );
            0
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("bench-compare: REGRESSION: {v}");
            }
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(iters1: u64, conv1: bool, iters2: u64, speedup: Option<f64>) -> String {
        let cache = speedup
            .map(|s| {
                format!(
                    "  \"setup_cache\": {{\n    \"cold_setup_s\": 1.0,\n    \"warm_setup_s\": \
                     0.2,\n    \"warm_speedup\": {s}\n  }},\n"
                )
            })
            .unwrap_or_default();
        format!(
            "{{\n  \"problem\": \"oil\",\n  \"size\": 12,\n{cache}  \"runs\": [\n    {{\n      \
             \"combo\": \"Full64\",\n      \"converged\": {conv1},\n      \"iters\": \
             {iters1}\n    }},\n    {{\n      \"combo\": \"K64 P32 D16 SetupScale\",\n      \
             \"converged\": true,\n      \"iters\": {iters2}\n    }}\n  ]\n}}\n"
        )
    }

    #[test]
    fn scanner_extracts_combos_and_speedup() {
        let f = scan_bench_json(&doc(40, true, 55, Some(4.5)));
        assert_eq!(f.runs.len(), 2);
        assert_eq!(f.runs[0].combo, "Full64");
        assert!(f.runs[0].converged);
        assert_eq!(f.runs[0].iters, 40);
        assert_eq!(f.runs[1].iters, 55);
        assert_eq!(f.warm_speedup, Some(4.5));
        assert_eq!(scan_bench_json(&doc(1, true, 1, None)).warm_speedup, None);
    }

    #[test]
    fn identical_documents_pass() {
        let b = scan_bench_json(&doc(40, true, 55, Some(4.5)));
        assert!(compare_facts("x", &b, &b).is_empty());
    }

    #[test]
    fn tolerated_jitter_passes_but_real_regressions_fail() {
        let base = scan_bench_json(&doc(40, true, 55, Some(4.0)));
        // +25% iters and -25% speedup sit exactly on the fences.
        let edge = scan_bench_json(&doc(50, true, 68, Some(3.0)));
        assert!(compare_facts("x", &base, &edge).is_empty());
        let slow = scan_bench_json(&doc(51, true, 55, Some(4.0)));
        assert_eq!(compare_facts("x", &base, &slow).len(), 1);
        let diverged = scan_bench_json(&doc(40, false, 55, Some(4.0)));
        assert_eq!(compare_facts("x", &base, &diverged).len(), 1);
        let cold = scan_bench_json(&doc(40, true, 55, Some(2.9)));
        assert_eq!(compare_facts("x", &base, &cold).len(), 1);
    }

    fn mem_doc(ws: u64, cb: u64, ev: u64) -> String {
        format!(
            "{{\n  \"problem\": \"oil\",\n  \"memory\": {{\n    \"peak_ws_bytes\": {ws},\n    \
             \"cache_bytes\": {cb},\n    \"mem_evictions\": {ev}\n  }},\n  \"runs\": [\n    {{\n   \
             \"combo\": \"Full64\",\n      \"converged\": true,\n      \"iters\": 10\n    \
             }}\n  ]\n}}\n"
        )
    }

    #[test]
    fn memory_growth_within_headroom_passes_but_creep_fails() {
        let base = scan_bench_json(&mem_doc(1000, 5000, 1));
        assert_eq!(base.peak_ws_bytes, Some(1000));
        assert_eq!(base.cache_bytes, Some(5000));
        assert_eq!(base.mem_evictions, Some(1));
        // Exactly on the 1.5x fence: allowed.
        let edge = scan_bench_json(&mem_doc(1500, 7500, 1));
        assert!(compare_facts("x", &base, &edge).is_empty());
        let bloated = scan_bench_json(&mem_doc(1501, 5000, 1));
        assert_eq!(compare_facts("x", &base, &bloated).len(), 1);
        let heavy_cache = scan_bench_json(&mem_doc(1000, 7501, 1));
        assert_eq!(compare_facts("x", &base, &heavy_cache).len(), 1);
        let no_evict = scan_bench_json(&mem_doc(1000, 5000, 0));
        assert_eq!(compare_facts("x", &base, &no_evict).len(), 1);
    }

    #[test]
    fn memoryless_baseline_skips_the_memory_gate() {
        // A baseline generated before the memory section existed must
        // not fail against a candidate that carries it (or one that
        // also lacks it).
        let old = scan_bench_json(&doc(40, true, 55, Some(4.0)));
        assert_eq!(old.peak_ws_bytes, None);
        let mut new = old.clone();
        new.peak_ws_bytes = Some(123);
        new.cache_bytes = Some(456);
        new.mem_evictions = Some(1);
        assert!(compare_facts("x", &old, &new).is_empty());
        assert!(compare_facts("x", &old, &old).is_empty());
        // But once the baseline has it, the candidate may not drop it.
        assert_eq!(compare_facts("x", &new, &old).len(), 3);
    }

    fn net_doc(conns: u64, busy: u64) -> String {
        format!(
            "{{\n  \"problem\": \"oil\",\n  \"network\": {{\n    \"wire_p50_s\": 0.0001,\n    \
             \"wire_p99_s\": 0.0005,\n    \"net_connections\": {conns},\n    \"net_busy\": {busy}\n \
             }},\n  \"runs\": [\n    {{\n      \"combo\": \"Full64\",\n      \"converged\": \
             true,\n      \"iters\": 10\n    }}\n  ]\n}}\n"
        )
    }

    #[test]
    fn network_liveness_gated_but_pre_network_baselines_skip() {
        let base = scan_bench_json(&net_doc(1, 1));
        assert_eq!(base.net_connections, Some(1));
        assert_eq!(base.net_busy, Some(1));
        assert!(compare_facts("x", &base, &base).is_empty());
        // Dead probes are violations.
        let dead_conns = scan_bench_json(&net_doc(0, 1));
        assert_eq!(compare_facts("x", &base, &dead_conns).len(), 1);
        let dead_shed = scan_bench_json(&net_doc(1, 0));
        assert_eq!(compare_facts("x", &base, &dead_shed).len(), 1);
        // A baseline written before the network section existed skips
        // cleanly against candidates with or without it.
        let old = scan_bench_json(&doc(40, true, 55, Some(4.0)));
        assert_eq!(old.net_connections, None);
        let mut new = old.clone();
        new.net_connections = Some(1);
        new.net_busy = Some(1);
        assert!(compare_facts("x", &old, &new).is_empty());
        assert!(compare_facts("x", &old, &old).is_empty());
        // But once the baseline has it, the candidate may not drop it.
        assert_eq!(compare_facts("x", &new, &old).len(), 2);
    }

    #[test]
    fn missing_combo_or_split_is_a_violation() {
        let base = scan_bench_json(&doc(40, true, 55, Some(4.0)));
        let mut cur = base.clone();
        cur.runs.remove(1);
        assert_eq!(compare_facts("x", &base, &cur).len(), 1);
        let mut nosplit = base.clone();
        nosplit.warm_speedup = None;
        assert_eq!(compare_facts("x", &base, &nosplit).len(), 1);
    }

    #[test]
    fn dir_compare_flags_missing_files() {
        let root = std::env::temp_dir().join(format!("fp16mg-cmp-{}", std::process::id()));
        let b = root.join("base");
        let c = root.join("cur");
        std::fs::create_dir_all(&b).unwrap();
        std::fs::create_dir_all(&c).unwrap();
        std::fs::write(b.join("BENCH_oil.json"), doc(40, true, 55, Some(4.0))).unwrap();
        let v = compare_dirs(&b, &c).unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));
        std::fs::write(c.join("BENCH_oil.json"), doc(40, true, 55, Some(4.0))).unwrap();
        assert!(compare_dirs(&b, &c).unwrap().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }
}
