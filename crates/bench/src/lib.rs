//! Shared experiment harness.
//!
//! Everything the `repro` binary and the criterion benches need to
//! regenerate the paper's tables and figures: the precision/strategy
//! combinations of the Fig. 6 ablation, timed end-to-end solves with the
//! Fig. 8/9 breakdown (setup / MG preconditioner / other), and the Fig. 7
//! kernel measurement matrix (baseline / naive / optimized / model-bound
//! / CSR stand-in for vendor libraries).

#![warn(missing_docs)]
pub mod combos;
pub mod e2e;
pub mod kernelbench;
pub mod table;

pub use combos::Combo;
pub use e2e::{solve_e2e, E2eResult};
pub use kernelbench::{kernel_suite, KernelKind, KernelRow, Variant};
