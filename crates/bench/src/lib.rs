//! Shared experiment harness.
//!
//! Everything the `repro` binary and the `benches/` targets need to
//! regenerate the paper's tables and figures: the precision/strategy
//! combinations of the Fig. 6 ablation, timed end-to-end solves with the
//! Fig. 8/9 breakdown (setup / MG preconditioner / other), the Fig. 7
//! kernel measurement matrix (baseline / naive / optimized / model-bound
//! / CSR stand-in for vendor libraries), the fault-injection guard
//! experiment demonstrating detect → promote → converge, and the
//! `repro serve` demo driving a batch of concurrent resilient solve
//! sessions through `fp16mg-runtime`.

#![warn(missing_docs)]
pub mod audit;
pub mod benchjson;
pub mod combos;
pub mod compare;
pub mod daemon;
pub mod e2e;
pub mod guard;
pub mod kernelbench;
pub mod loadgen;
pub mod memtorture;
pub mod microbench;
pub mod netserve;
pub mod nettorture;
pub mod serve;
pub mod simulate;
pub mod table;
pub mod torture;

pub use audit::{audit_report, print_audit_table};
pub use benchjson::{bench_json_emit, BenchJsonConfig};
pub use combos::Combo;
pub use compare::{compare_dirs, run_compare, scan_bench_json, BenchFacts};
pub use daemon::{run_daemon, run_soak, DaemonCliConfig, SoakConfig};
pub use e2e::{solve_e2e, E2eResult};
pub use guard::{finest_narrow_level, solve_guarded, GuardOutcome};
pub use kernelbench::{kernel_suite, KernelKind, KernelRow, Variant};
pub use loadgen::{run_loadgen, run_net_soak, LoadgenConfig, LoadgenReport, NetSoakConfig};
pub use memtorture::{run_memtorture_cli, MemTortureConfig, MemTortureReport};
pub use microbench::Group;
pub use netserve::{
    busy_probe, run_net_daemon, serve_net, NetCounters, NetDaemonCliConfig, NetServeConfig,
    NetServeReport,
};
pub use nettorture::{run_net_matrix, run_nettorture_cli, NetTortureConfig, NetTortureReport};
pub use serve::{serve, serve_overload, OverloadConfig, OverloadReport, ServeConfig};
pub use simulate::{
    run_sim_cli, run_sim_soak, ReuseDecision, SimConfig, SimDriver, SimReport, SimSoakConfig,
    StepRow,
};
pub use torture::{run_matrix, run_torture_cli, TortureConfig, TortureReport};
