//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--size N] [--tol T] [--threads N1,N2,...] [--budget-ms B]
//!                    [--requests N] [--workers N] [--chaos] [--overload] [--out DIR]
//! experiments: fig1 table2 fig3 fig5 fig6 fig7 fig8 fig10 table1 table3
//!              bf16 shift smooth guard audit serve chaos overload simulate
//!              torture bench-json bench-compare all
//! ```
//!
//! `serve` fires a batch of mixed clean/fault-injected/panicking solve
//! requests through the concurrent resilient runtime and prints one typed
//! outcome per request (`--requests`, `--workers`, `--budget-ms` set the
//! batch size, pool width, and the deadline-limited request's deadline).
//! With `--chaos` (or the `chaos` experiment, its alias) the batch mixes
//! seeded single-bit flips into mid-hierarchy FP16 coefficient planes:
//! the integrity sentinels must detect, localize, and repair them via
//! the `repair-level` rung, visible in the per-request `repairs` column.
//! With `--overload` (or the `overload` experiment, its alias) the demo
//! instead drives an oversubscribed mixed-priority batch through the
//! admission-controlled `ServePool`: bounded queueing, best-effort-first
//! load shedding, degraded-mode solves with their `DegradeEvent` trail,
//! and a per-class circuit breaker that opens on a poisoned problem
//! class and recovers via a half-open probe. The process exits nonzero
//! if any acceptance invariant is violated.
//!
//! `simulate` advances `--problem` (or the three time-dependent example
//! scenarios with `all`) through `--steps` implicit steps, reusing the
//! multigrid hierarchy across steps under an audit-driven
//! keep/rescale/rebuild policy, and prints the per-step cost/accuracy
//! table plus the amortized setup win over a fresh-setup-every-step
//! baseline (`BENCH_sim_<problem>.json` lands in `--out`). With
//! `--snapshot-dir` every committed step is checkpointed and a killed
//! run resumes bit-identically; `--soak` proves it with a real SIGKILL,
//! and `--chaos` runs the deterministic fault schedule that exercises
//! every reuse decision and recovery rung.
//!
//! `torture` runs the storage-fault crash-point matrix: the simulation
//! durability stack is replayed on a deterministic fault-injecting
//! in-memory storage backend, with power loss at every I/O operation
//! index plus torn-write, failed-fsync, lying-fsync, ENOSPC-burst, and
//! read-corruption schedules. It exits zero only if every acknowledged
//! step survived every crash point, corrupt snapshot slots were
//! quarantined with fallback, every fault class actually fired, and a
//! deliberately broken write order was detected by the harness itself.
//!
//! `bench-json` runs the tier-1 end-to-end matrix and writes machine-
//! readable `BENCH_<problem>.json` files into `--out` (default `.`);
//! `bench-compare --baseline DIR --current DIR` gates a candidate set
//! of those files against a committed baseline.
//!
//! `fig9` is the same harness as `fig8` (the paper's second architecture;
//! this reproduction runs on one ISA — see DESIGN.md substitutions).

use fp16mg_bench::table::{fmt_secs, geomean, Table};
use fp16mg_bench::{kernel_suite, solve_e2e, Combo, KernelKind, Variant};
use fp16mg_core::Mg;
use fp16mg_krylov::SolveOptions;
use fp16mg_problems::{metrics, ProblemKind, SolverKind};
use fp16mg_sgdia::kernels::Par;
use fp16mg_sgdia::model;

struct Args {
    cmd: String,
    size: usize,
    size_set: bool,
    tol: f64,
    threads: Vec<usize>,
    budget_ms: f64,
    smoother: Option<String>,
    requests: usize,
    requests_set: bool,
    workers: usize,
    chaos: bool,
    overload: bool,
    daemon: bool,
    soak: bool,
    snapshot_dir: String,
    kill_after: usize,
    pace_ms: u64,
    mem_budget: u64,
    steps: u64,
    problem: String,
    baseline: String,
    current: String,
    out: String,
    addr: String,
    shutdown: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: repro <experiment> [--size N] [--tol T] [--threads N1,N2,...] [--budget-ms B] [--smoother gs|jacobi|symgs|ilu0] [--requests N] [--workers N] [--chaos] [--overload] [--daemon] [--soak] [--snapshot-dir DIR] [--kill-after N] [--pace-ms MS] [--mem-budget BYTES] [--steps N] [--problem NAME|all] [--baseline DIR] [--current DIR] [--out DIR] [--addr unix:PATH|tcp:HOST:PORT] [--shutdown]");
    eprintln!("network: `serve --daemon --addr …` serves over the wire; `loadgen --addr …` drives it (`--shutdown` drains); `loadgen --soak` is the kill/restart acceptance; `nettorture` is the wire-fault matrix");
    std::process::exit(2)
}

fn arg_value<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(raw) = it.next() else { usage(&format!("{flag} needs a value")) };
    raw.parse().unwrap_or_else(|_| usage(&format!("{flag}: cannot parse '{raw}'")))
}

fn parse_args() -> Args {
    let mut args = Args {
        cmd: String::new(),
        size: 24,
        size_set: false,
        tol: 1e-9,
        threads: vec![],
        budget_ms: 30.0,
        smoother: None,
        requests: 16,
        requests_set: false,
        workers: 0,
        chaos: false,
        overload: false,
        daemon: false,
        soak: false,
        snapshot_dir: String::new(),
        kill_after: 0,
        pace_ms: 0,
        mem_budget: 0,
        steps: 12,
        problem: "all".into(),
        baseline: String::new(),
        current: String::new(),
        out: ".".into(),
        addr: String::new(),
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                args.size = arg_value(&mut it, "--size");
                args.size_set = true;
            }
            "--tol" => args.tol = arg_value(&mut it, "--tol"),
            "--budget-ms" => args.budget_ms = arg_value(&mut it, "--budget-ms"),
            "--requests" => {
                args.requests = arg_value(&mut it, "--requests");
                args.requests_set = true;
            }
            "--workers" => args.workers = arg_value(&mut it, "--workers"),
            "--chaos" => args.chaos = true,
            "--overload" => args.overload = true,
            "--daemon" => args.daemon = true,
            "--soak" => args.soak = true,
            "--snapshot-dir" => args.snapshot_dir = arg_value(&mut it, "--snapshot-dir"),
            "--kill-after" => args.kill_after = arg_value(&mut it, "--kill-after"),
            "--pace-ms" => args.pace_ms = arg_value(&mut it, "--pace-ms"),
            "--mem-budget" => args.mem_budget = arg_value(&mut it, "--mem-budget"),
            "--steps" => args.steps = arg_value(&mut it, "--steps"),
            "--problem" => args.problem = arg_value(&mut it, "--problem"),
            "--baseline" => args.baseline = arg_value(&mut it, "--baseline"),
            "--current" => args.current = arg_value(&mut it, "--current"),
            "--out" => args.out = arg_value(&mut it, "--out"),
            "--addr" => args.addr = arg_value(&mut it, "--addr"),
            "--shutdown" => args.shutdown = true,
            "--smoother" => {
                let Some(s) = it.next() else { usage("--smoother needs a value") };
                args.smoother = Some(s)
            }
            "--threads" => {
                let Some(list) = it.next() else { usage("--threads needs a value") };
                args.threads = list
                    .split(',')
                    .map(|s| {
                        s.parse().unwrap_or_else(|_| usage(&format!("--threads: bad count '{s}'")))
                    })
                    .collect()
            }
            other if args.cmd.is_empty() && !other.starts_with('-') => args.cmd = other.to_string(),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if args.size < 4 {
        usage("--size must be at least 4 (smallest grid the generators support)");
    }
    if args.steps == 0 {
        usage("--steps must be at least 1");
    }
    if !args.tol.is_finite() || args.tol <= 0.0 {
        usage("--tol must be a positive finite number");
    }
    if args.cmd.is_empty() {
        args.cmd = "all".into();
    }
    if args.threads.is_empty() {
        let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut t = 1;
        while t <= max {
            args.threads.push(t);
            t *= 2;
        }
    }
    args
}

fn main() {
    let args = parse_args();
    match args.cmd.as_str() {
        "fig1" => fig1(&args),
        "table2" => table2(),
        "fig3" => fig3(&args),
        "fig5" => fig5(&args),
        "fig6" => fig6(&args),
        "fig7" => fig7(&args),
        "fig8" | "fig9" => fig8(&args),
        "fig10" => fig10(&args),
        "table1" => table1(&args),
        "table3" => table3(&args),
        "bf16" => bf16(&args),
        "shift" => shift(&args),
        "smooth" => smooth(&args),
        "cycle" => cycle_ablation(&args),
        "semi" => semi_ablation(&args),
        "guard" => guard(&args),
        "audit" => audit_cmd(&args),
        "serve" if args.daemon && args.soak => soak_cmd(&args),
        "serve" if args.daemon && !args.addr.is_empty() => net_daemon_cmd(&args),
        "serve" if args.daemon => daemon_cmd(&args),
        "serve" if args.overload => overload_cmd(&args),
        "serve" => serve_cmd(&args, args.chaos),
        "chaos" => serve_cmd(&args, true),
        "overload" => overload_cmd(&args),
        "simulate" if args.soak => simulate_soak_cmd(&args),
        "simulate" => simulate_cmd(&args),
        "loadgen" if args.soak => net_soak_cmd(&args),
        "loadgen" => loadgen_cmd(&args),
        "nettorture" => nettorture_cmd(&args),
        "torture" => torture_cmd(&args),
        "memtorture" => memtorture_cmd(&args),
        "bench-json" => bench_json_cmd(&args),
        "bench-compare" => bench_compare_cmd(&args),
        "all" => {
            fig1(&args);
            table2();
            fig3(&args);
            fig5(&args);
            fig6(&args);
            fig7(&args);
            fig8(&args);
            fig10(&args);
            table1(&args);
            table3(&args);
            bf16(&args);
            shift(&args);
            smooth(&args);
            cycle_ablation(&args);
            semi_ablation(&args);
            guard(&args);
            audit_cmd(&args);
            serve_cmd(&args, false);
            serve_cmd(&args, true);
            overload_cmd(&args);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

/// Parses the --smoother override.
fn smoother_from(s: &Option<String>) -> Option<fp16mg_core::SmootherKind> {
    use fp16mg_core::SmootherKind;
    s.as_deref().map(|v| match v {
        "gs" => SmootherKind::GsSymmetric,
        "symgs" => SmootherKind::SymGs,
        "jacobi" => SmootherKind::Jacobi { weight: 0.85 },
        "ilu0" => SmootherKind::Ilu0,
        "chebyshev" | "cheb" => SmootherKind::Chebyshev { degree: 2 },
        other => panic!("unknown smoother '{other}' (gs|symgs|jacobi|ilu0|chebyshev)"),
    })
}

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

// ---------------------------------------------------------------- fig1 --

fn fig1(args: &Args) {
    header("Figure 1: nonzero-magnitude distributions of the six real-world analogs");
    let n = args.size.min(20);
    let problems: Vec<_> = ProblemKind::real_world().into_iter().map(|k| k.build(n)).collect();
    let hists: Vec<_> = problems.iter().map(|p| metrics::range_histogram(&p.matrix)).collect();
    let lo = hists.iter().filter_map(|h| h.first().map(|&(d, _)| d)).min();
    let hi = hists.iter().filter_map(|h| h.last().map(|&(d, _)| d)).max();
    let (Some(lo), Some(hi)) = (lo, hi) else {
        println!("(no data: every histogram is empty)");
        return;
    };

    let mut head = vec!["decade".to_string()];
    head.extend(problems.iter().map(|p| p.name.to_string()));
    let mut t = Table::new(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for d in lo..=hi {
        let mut row = vec![format!("1e{d:+03}")];
        for h in &hists {
            let pct = h.iter().find(|&&(dd, _)| dd == d).map(|&(_, p)| p).unwrap_or(0.0);
            row.push(if pct == 0.0 { String::new() } else { format!("{pct:5.1}%") });
        }
        if d == -5 {
            // FP16 smallest normal is 6.1e-5: mark the lower range edge.
            row[0].push_str(" <min16");
        }
        if d == 4 {
            row[0].push_str(" ~max16");
        }
        t.row(row);
    }
    print!("{t}");
    println!("(IEEE 754 FP16 normal range: 6.1e-05 … 6.5e+04)");
}

// -------------------------------------------------------------- table2 --

fn table2() {
    header("Table 2: estimated speedup upper bounds from matrix memory volume");
    let rows = model::table2(model::SUITESPARSE_DELTA);
    let mut t = Table::new(&[
        "format",
        "B/nnz fp64",
        "B/nnz fp32",
        "B/nnz fp16",
        "64/32",
        "32/16",
        "64/16",
    ]);
    for r in rows {
        t.row(vec![
            r.format.name().to_string(),
            format!("{:.2}", r.bytes[0]),
            format!("{:.2}", r.bytes[1]),
            format!("{:.2}", r.bytes[2]),
            format!("{:.2}x", r.bounds[0]),
            format!("{:.2}x", r.bounds[1]),
            format!("{:.2}x", r.bounds[2]),
        ]);
    }
    print!("{t}");
    println!("(CSR rows use the SuiteSparse average row-pointer amortization δ = 0.15)");
}

// ---------------------------------------------------------------- fig3 --

fn fig3(args: &Args) {
    header("Figure 3: grid/operator complexity statistics across the case suite");
    let sizes = [args.size / 2, (args.size * 3) / 4, args.size];
    let mut cg_vals = Vec::new();
    let mut co_vals = Vec::new();
    let mut t = Table::new(&["problem", "n", "levels", "C_G", "C_O"]);
    for kind in ProblemKind::all() {
        for &n in &sizes {
            let n = n.max(8);
            for max_levels in [3usize, 10] {
                let p = kind.build(n);
                let mut cfg = Combo::D16SetupScale.mg_config();
                cfg.max_levels = max_levels;
                let Ok(mg) = Mg::<f32>::setup(&p.matrix, &cfg) else { continue };
                let info = mg.info();
                cg_vals.push(info.grid_complexity);
                co_vals.push(info.operator_complexity);
                t.row(vec![
                    p.name.to_string(),
                    n.to_string(),
                    info.levels.len().to_string(),
                    format!("{:.3}", info.grid_complexity),
                    format!("{:.3}", info.operator_complexity),
                ]);
            }
        }
    }
    print!("{t}");
    let frac = |v: &[f64], thr: f64| {
        100.0 * v.iter().filter(|&&x| x < thr).count() as f64 / v.len() as f64
    };
    println!(
        "cumulative frequency: C_G < 1.15: {:.0}%   C_G < 1.20: {:.0}%",
        frac(&cg_vals, 1.15),
        frac(&cg_vals, 1.2)
    );
    println!(
        "                      C_O < 1.50: {:.0}%   C_O < 2.00: {:.0}%",
        frac(&co_vals, 1.5),
        frac(&co_vals, 2.0)
    );
    println!("(paper: 80% of MFEM cases have C_G < 1.2 and C_O < 1.5; full");
    println!(" coarsening keeps C_G ≤ 8/7 ≈ 1.14, so the finest level dominates)");
}

// ---------------------------------------------------------------- fig5 --

fn fig5(args: &Args) {
    header("Figure 5: multi-scale (anisotropy) measure statistics");
    let n = args.size.min(20);
    let mut t = Table::new(&["problem", "median", "p90", "max", "class"]);
    for kind in ProblemKind::all() {
        let p = kind.build(n);
        let a = metrics::anisotropy(&p.matrix);
        t.row(vec![
            p.name.to_string(),
            format!("{:.2}", a.median),
            format!("{:.2}", a.p90),
            format!("{:.2}", a.max),
            a.label().to_string(),
        ]);
    }
    print!("{t}");
    println!("(per-row log10(max|off-diag| / min|off-diag|); High ⇒ harder for FP16)");
}

// ---------------------------------------------------------------- fig6 --

fn fig6(args: &Args) {
    header("Figure 6: convergence ablation — relative residual per iteration");
    let problems = [
        ProblemKind::Laplace27,
        ProblemKind::Laplace27E8,
        ProblemKind::Weather,
        ProblemKind::Rhd,
        ProblemKind::Rhd3T,
    ];
    let n = args.size.min(20);
    let opts =
        SolveOptions { tol: 1e-10, max_iters: 200, record_history: true, ..Default::default() };
    for kind in problems {
        println!("\n--- {} (n = {n}) ---", kind.name());
        let runs: Vec<_> = Combo::fig6()
            .into_iter()
            .map(|c| (c, solve_e2e(kind, n, c, &opts, Par::Seq)))
            .collect();
        let mut head = vec!["iter".to_string()];
        head.extend(runs.iter().map(|(c, _)| c.label()));
        let mut t = Table::new(&head.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        let maxlen = runs
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok().map(|r| r.result.history.len()))
            .max()
            .unwrap_or(0);
        for i in 0..maxlen {
            let mut row = vec![i.to_string()];
            for (_, r) in &runs {
                row.push(match r {
                    Ok(r) => match r.result.history.get(i) {
                        Some(v) if v.is_finite() => format!("{v:9.2e}"),
                        Some(_) => "NaN".into(),
                        None => String::new(),
                    },
                    Err(_) => "setup-fail".into(),
                });
            }
            t.row(row);
        }
        print!("{t}");
        for (c, r) in &runs {
            match r {
                Ok(r) => println!(
                    "  {:24} -> {:?} in {} iters",
                    c.label(),
                    r.result.reason,
                    r.result.iters
                ),
                Err(e) => println!("  {:24} -> setup failed: {e}", c.label()),
            }
        }
    }
}

// ---------------------------------------------------------------- fig7 --

fn fig7(args: &Args) {
    header("Figure 7: kernel optimization ablation (speedups over MG-fp32/fp32)");
    // Kernel speedups are a memory-bandwidth story: the working set must
    // exceed the LLC (260 MB on the development host), so the kernel sweep
    // defaults to much larger grids than the solver experiments.
    let base = if args.size_set { args.size.max(16) } else { 104 };
    let sizes = [base, base + base / 8, base + base / 4];
    println!(
        "sizes: {sizes:?} (cubed), geometric mean; SIMD available: {}",
        fp16mg_sgdia::kernels::simd_available()
    );
    let rows = kernel_suite(&sizes, Par::Seq, args.budget_ms);
    for kernel in [KernelKind::Spmv, KernelKind::Sptrsv] {
        let kname = if kernel == KernelKind::Spmv { "SpMV" } else { "SpTRSV" };
        let mut t = Table::new(&["pattern", "variant", "time/apply", "speedup", "Max-fp16/fp32"]);
        for row in rows.iter().filter(|r| r.kernel == kernel) {
            let full_pat = match row.pattern.as_str() {
                "3d4" => "3d7",
                "3d10" => "3d19",
                "3d14" => "3d27",
                p => p,
            };
            let pattern = match fp16mg_stencil::Pattern::from_name(full_pat) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("fig7: {e}");
                    std::process::exit(2);
                }
            };
            let maxsp = fp16mg_bench::kernelbench::max_speedup(&pattern, sizes[1], kernel);
            t.row(vec![
                row.pattern.clone(),
                row.variant.label().to_string(),
                fmt_secs(row.seconds),
                format!("{:.2}x", row.speedup),
                if row.variant == Variant::F16Opt { format!("{maxsp:.2}x") } else { String::new() },
            ]);
        }
        println!("\n{kname}:");
        print!("{t}");
    }
    println!("(expect: opt ≈ Max > 1, naive ≤ 1 — conversion overhead vs SOA SIMD amortization)");
}

// ---------------------------------------------------------------- fig8 --

fn fig8(args: &Args) {
    header("Figure 8/9: end-to-end single-processor performance (Full64 vs Mix16)");
    if let Some(sm) = &args.smoother {
        println!("(smoother override: {sm})");
    }
    // Bandwidth-pressure regime: the finest-level matrix should stress the
    // LLC, so the default is production-ish.
    let size = if args.size_set { args.size } else { 88 };
    let opts =
        SolveOptions { tol: args.tol, max_iters: 500, record_history: false, ..Default::default() };
    let mut t = Table::new(&[
        "problem",
        "combo",
        "#iter",
        "setup",
        "MG precond",
        "other",
        "total",
        "norm.total",
        "PC speedup",
        "E2E speedup",
    ]);
    let mut pc_speedups = Vec::new();
    let mut e2e_speedups = Vec::new();
    for kind in ProblemKind::all() {
        let n = match kind.components() {
            1 => size,
            _ => (size * 2) / 3,
        }
        .max(8);
        let run = |combo: Combo| {
            let p = kind.build(n);
            let mut cfg = combo.mg_config();
            if let Some(sm) = smoother_from(&args.smoother) {
                cfg.smoother = sm;
            }
            run_with_config(&p, combo, cfg, &opts)
        };
        let full = match run(Combo::Full64) {
            Ok(r) => r,
            Err(e) => {
                println!("{}: Full64 setup failed: {e}", kind.name());
                continue;
            }
        };
        let mix = match run(Combo::D16SetupScale) {
            Ok(r) => r,
            Err(e) => {
                println!("{}: Mix16 setup failed: {e}", kind.name());
                continue;
            }
        };
        let norm = full.total().as_secs_f64();
        let pc = full.precond.as_secs_f64() / mix.precond.as_secs_f64().max(1e-12);
        let e2e = norm / mix.total().as_secs_f64().max(1e-12);
        pc_speedups.push(pc);
        e2e_speedups.push(e2e);
        for r in [&full, &mix] {
            t.row(vec![
                r.problem.to_string(),
                r.combo.label(),
                format!("{}{}", r.result.iters, if r.result.converged() { "" } else { "!" }),
                fmt_secs(r.setup.as_secs_f64()),
                fmt_secs(r.precond.as_secs_f64()),
                fmt_secs(r.other.as_secs_f64()),
                fmt_secs(r.total().as_secs_f64()),
                format!("{:.3}", r.total().as_secs_f64() / norm),
                if r.combo == Combo::D16SetupScale { format!("{pc:.2}x") } else { String::new() },
                if r.combo == Combo::D16SetupScale { format!("{e2e:.2}x") } else { String::new() },
            ]);
        }
    }
    print!("{t}");
    println!(
        "geometric mean: preconditioner speedup {:.2}x, end-to-end speedup {:.2}x",
        geomean(&pc_speedups),
        geomean(&e2e_speedups)
    );
    println!("(paper single-processor: PC ~2.7-2.8x, E2E ~1.9-2.0x at 128-core scale;");
    println!(" '!' marks a non-converged run)");
}

// --------------------------------------------------------------- fig10 --

fn fig10(args: &Args) {
    header("Figure 10: strong scalability (total solve time vs threads)");
    let opts =
        SolveOptions { tol: args.tol, max_iters: 500, record_history: false, ..Default::default() };
    let mut t = Table::new(&[
        "problem",
        "threads",
        "Full* time",
        "Mix16 time",
        "Mix16 speedup",
        "par.eff Full*",
        "par.eff Mix16",
    ]);
    for kind in ProblemKind::all() {
        let n = match kind.components() {
            1 => args.size,
            _ => (args.size * 2) / 3,
        }
        .max(8);
        let mut base_full = f64::NAN;
        let mut base_mix = f64::NAN;
        for &threads in &args.threads {
            let par = Par::Threads(threads);
            let (full, mix) = (
                solve_e2e(kind, n, Combo::Full64, &opts, par),
                solve_e2e(kind, n, Combo::D16SetupScale, &opts, par),
            );
            let (Ok(full), Ok(mix)) = (full, mix) else { continue };
            let tf = full.total().as_secs_f64();
            let tm = mix.total().as_secs_f64();
            if threads == args.threads[0] {
                base_full = tf * args.threads[0] as f64;
                base_mix = tm * args.threads[0] as f64;
            }
            t.row(vec![
                kind.name().to_string(),
                threads.to_string(),
                fmt_secs(tf),
                fmt_secs(tm),
                format!("{:.2}x", tf / tm),
                format!("{:.0}%", 100.0 * base_full / (tf * threads as f64)),
                format!("{:.0}%", 100.0 * base_mix / (tm * threads as f64)),
            ]);
        }
    }
    print!("{t}");
    println!(
        "(threads swept: {:?}; on a single-core host this degenerates to one row",
        args.threads
    );
    println!(" per problem — see EXPERIMENTS.md)");

    // The Fig. 10 *communication* analysis, modeled: halo-exchange volume
    // per V-cycle under an MPI-style box decomposition. Matrix compression
    // does not shrink halo traffic (vectors stay in the computation
    // precision, guideline 4), which is why FP16 acceleration makes the
    // communication share more dominant at scale.
    println!("\nModeled V-cycle halo-exchange volume (box decomposition, FP32 vectors):");
    let mut t = Table::new(&[
        "problem",
        "ranks",
        "rank grid",
        "finest halo B/cycle",
        "all-levels B/cycle",
        "halo/matrix traffic",
    ]);
    for kind in [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Weather] {
        let p = kind.build(args.size.max(32));
        let grid = *p.matrix.grid();
        for ranks in [8usize, 64, 512] {
            let d = fp16mg_grid::Decomposition::new(grid, ranks);
            let per_level = fp16mg_grid::decomp::vcycle_halo_bytes(&grid, ranks, 6, 4);
            let total: usize = per_level.iter().map(|&(_, b)| b).sum();
            // Matrix traffic per cycle at FP16 (~4 passes over the finest
            // matrix) for the dominance comparison.
            let matrix_traffic = 4 * p.matrix.stored_entries() * 2;
            t.row(vec![
                kind.name().to_string(),
                ranks.to_string(),
                format!("{:?}", d.procs()),
                per_level.first().map(|&(_, b)| b.to_string()).unwrap_or_default(),
                total.to_string(),
                format!("{:.3}", total as f64 / matrix_traffic as f64),
            ]);
        }
    }
    print!("{t}");
    println!("(halo/matrix rises with rank count: strong scaling shifts the budget");
    println!(" toward communication, bounding the FP16 speedup exactly as Fig. 10's");
    println!(" efficiency numbers show)");
}

// -------------------------------------------------------------- table1 --

fn table1(args: &Args) {
    header("Table 1: mixed-precision multigrid preconditioners (literature + ours)");
    let mut t =
        Table::new(&["ref", "type", "scale?", "P.C. precision", "P.C. speedup", "E2E speedup"]);
    for (r, ty, sc, prec, pcs, e2e) in [
        ("[9] Goddeke'11", "GMG", "N/N", "FP32", "~2.0x", "~1.7x"),
        ("[5] Emans'10", "AMG", "N/N", "FP32", "1.1~1.5x", "unclear"),
        ("[27] Richter'14", "AMG", "N/N", "FP32", "unclear", "1.19x"),
        ("[8] Glimberg'13", "GMG", "N/N", "FP32", "1.9x", "1.6x"),
        ("[35] Yamagishi'16", "GMG", "N/N", "FP32", "2.0x", "1.18x"),
        ("[33] Tsai'23", "AMG", "Yes", "FP16/FP32", "unclear", "1.05~1.35x"),
    ] {
        t.row(vec![r.into(), ty.into(), sc.into(), prec.into(), pcs.into(), e2e.into()]);
    }
    // Our row, measured.
    let opts =
        SolveOptions { tol: args.tol, max_iters: 500, record_history: false, ..Default::default() };
    let mut pcs = Vec::new();
    let mut e2es = Vec::new();
    for kind in ProblemKind::all() {
        let n = if kind.components() == 1 { args.size } else { (args.size * 2) / 3 }.max(8);
        if let (Ok(f), Ok(m)) = (
            solve_e2e(kind, n, Combo::Full64, &opts, Par::Seq),
            solve_e2e(kind, n, Combo::D16SetupScale, &opts, Par::Seq),
        ) {
            pcs.push(f.precond.as_secs_f64() / m.precond.as_secs_f64().max(1e-12));
            e2es.push(f.total().as_secs_f64() / m.total().as_secs_f64().max(1e-12));
        }
    }
    t.row(vec![
        "Ours (measured)".into(),
        "AMG".into(),
        "Yes".into(),
        "FP16/FP32".into(),
        format!("{:.2}x", geomean(&pcs)),
        format!("{:.2}x", geomean(&e2es)),
    ]);
    print!("{t}");
}

// -------------------------------------------------------------- table3 --

fn table3(args: &Args) {
    header("Table 3: problem characteristics");
    let n = args.size.min(20);
    let mut t = Table::new(&[
        "problem",
        "PDE",
        "pattern",
        "#dof",
        "#nnz",
        "real?",
        "out-of-fp16?",
        "dist",
        "aniso",
        "cond~",
        "precision",
        "solver",
        "C_G",
        "C_O",
    ]);
    for kind in ProblemKind::all() {
        let p = kind.build(n);
        let (out, dist) = metrics::fp16_distance(&p.matrix);
        let aniso = metrics::anisotropy(&p.matrix);
        let cond = metrics::condition_estimate(&p.matrix, 80);
        let mg = Mg::<f32>::setup(&p.matrix, &Combo::D16SetupScale.mg_config());
        let (cg_c, co_c) = mg
            .as_ref()
            .map(|m| (m.info().grid_complexity, m.info().operator_complexity))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(vec![
            p.name.to_string(),
            if kind.components() == 1 {
                "scalar".into()
            } else {
                format!("vector{}", kind.components())
            },
            kind.pattern_name().to_string(),
            p.matrix.rows().to_string(),
            p.matrix.nnz().to_string(),
            (!matches!(
                kind,
                ProblemKind::Laplace27 | ProblemKind::Laplace27E8 | ProblemKind::Solid3D
            ))
            .to_string(),
            if out { "Yes".into() } else { "No".to_string() },
            dist.to_string(),
            aniso.label().to_string(),
            format!("{cond:.1e}"),
            "K64/P32/D16".into(),
            match p.solver {
                SolverKind::Cg => "CG".to_string(),
                SolverKind::Gmres => "GMRES".to_string(),
            },
            format!("{cg_c:.2}"),
            format!("{co_c:.2}"),
        ]);
    }
    print!("{t}");
    println!("(#dof/#nnz are for --size {n}; the paper's originals are 2M-637M dof)");
}

// ---------------------------------------------------------------- bf16 --

fn bf16(args: &Args) {
    header("Section 8: FP16 vs BF16 storage (#iter comparison)");
    let opts =
        SolveOptions { tol: args.tol, max_iters: 500, record_history: false, ..Default::default() };
    let n = args.size.min(20);
    let mut t = Table::new(&["problem", "Full64", "D16 (+%)", "BF16 (+%)"]);
    for kind in ProblemKind::all() {
        let full = solve_e2e(kind, n, Combo::Full64, &opts, Par::Seq);
        let d16 = solve_e2e(kind, n, Combo::D16SetupScale, &opts, Par::Seq);
        let b16 = solve_e2e(kind, n, Combo::Bf16, &opts, Par::Seq);
        let fmt = |r: &Result<fp16mg_bench::E2eResult, String>, base: Option<usize>| match r {
            Ok(r) if r.result.converged() => match base {
                Some(b) if b > 0 => format!(
                    "{} (+{:.0}%)",
                    r.result.iters,
                    100.0 * (r.result.iters as f64 - b as f64) / b as f64
                ),
                _ => r.result.iters.to_string(),
            },
            Ok(r) => format!("{:?}", r.result.reason),
            Err(_) => "setup-fail".into(),
        };
        let base = full.as_ref().ok().map(|r| r.result.iters);
        t.row(vec![kind.name().to_string(), fmt(&full, None), fmt(&d16, base), fmt(&b16, base)]);
    }
    print!("{t}");
    println!("(paper observed FP16 +19% vs BF16 +59% on rhd: fewer mantissa bits cost");
    println!(" more iterations even though BF16 needs no scaling)");
}

// --------------------------------------------------------------- shift --

fn shift(args: &Args) {
    header("Section 4.3 extension: shift_levid sweep (underflow guard position)");
    let opts =
        SolveOptions { tol: args.tol, max_iters: 500, record_history: false, ..Default::default() };
    let n = args.size.min(20);
    let mut t = Table::new(&["problem", "shift_levid", "#iter", "matrix bytes"]);
    for kind in [ProblemKind::Rhd, ProblemKind::Weather, ProblemKind::Rhd3T] {
        for lev in [0usize, 1, 2, 3, usize::MAX] {
            let combo = if lev == usize::MAX { Combo::D16SetupScale } else { Combo::D16Shift(lev) };
            match solve_e2e(kind, n, combo, &opts, Par::Seq) {
                Ok(r) => t.row(vec![
                    kind.name().to_string(),
                    if lev == usize::MAX { "all-fp16".into() } else { lev.to_string() },
                    format!("{}{}", r.result.iters, if r.result.converged() { "" } else { "!" }),
                    r.matrix_bytes.to_string(),
                ]),
                Err(e) => {
                    t.row(vec![kind.name().to_string(), lev.to_string(), "setup-fail".into(), e])
                }
            }
        }
    }
    print!("{t}");
    println!("(shift_levid = 0 stores everything in FP32; larger values push FP16");
    println!(" deeper; 'all-fp16' = the default policy)");
}

// -------------------------------------------------------------- smooth --

fn smooth(args: &Args) {
    header("Section 8: smoothing-count sensitivity (ν1 = ν2 = ν)");
    let opts =
        SolveOptions { tol: args.tol, max_iters: 500, record_history: false, ..Default::default() };
    let n = args.size.min(24);
    let mut t = Table::new(&["problem", "nu", "combo", "#iter", "total", "E2E speedup"]);
    for kind in [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Oil] {
        for nu in [1usize, 2] {
            let run = |combo: Combo| {
                let p = kind.build(n);
                let mut cfg = combo.mg_config();
                cfg.nu1 = nu;
                cfg.nu2 = nu;
                run_with_config(&p, combo, cfg, &opts)
            };
            let full = run(Combo::Full64);
            let mix = run(Combo::D16SetupScale);
            if let (Ok(f), Ok(m)) = (full, mix) {
                let sp = f.total().as_secs_f64() / m.total().as_secs_f64().max(1e-12);
                for r in [&f, &m] {
                    t.row(vec![
                        kind.name().to_string(),
                        nu.to_string(),
                        r.combo.label(),
                        r.result.iters.to_string(),
                        fmt_secs(r.total().as_secs_f64()),
                        if r.combo == Combo::D16SetupScale {
                            format!("{sp:.2}x")
                        } else {
                            String::new()
                        },
                    ]);
                }
            }
        }
    }
    print!("{t}");
    println!("(more smoothing makes MG heavier ⇒ larger FP16 E2E leverage, per §8)");
}

// --------------------------------------------------------------- cycle --

fn cycle_ablation(args: &Args) {
    header("Extension: cycle-shape ablation (V vs W vs F)");
    use fp16mg_core::Cycle;
    let opts =
        SolveOptions { tol: args.tol, max_iters: 400, record_history: false, ..Default::default() };
    let n = args.size.min(24);
    let mut t = Table::new(&["problem", "cycle", "#iter", "MG precond", "total"]);
    for kind in [ProblemKind::Laplace27, ProblemKind::Oil, ProblemKind::Weather] {
        for cyc in [Cycle::V, Cycle::W, Cycle::F] {
            let p = kind.build(n);
            let mut cfg = Combo::D16SetupScale.mg_config();
            cfg.cycle = cyc;
            if let Ok(r) = run_with_config(&p, Combo::D16SetupScale, cfg, &opts) {
                t.row(vec![
                    kind.name().to_string(),
                    format!("{cyc:?}"),
                    format!("{}{}", r.result.iters, if r.result.converged() { "" } else { "!" }),
                    fmt_secs(r.precond.as_secs_f64()),
                    fmt_secs(r.total().as_secs_f64()),
                ]);
            }
        }
    }
    print!("{t}");
    println!("(the paper uses V exclusively; W/F trade time per cycle for fewer");
    println!(" iterations and a larger coarse-level share — mostly a wash at ν = 1)");
}

// ---------------------------------------------------------------- semi --

fn semi_ablation(args: &Args) {
    header("Extension: full vs semicoarsening on the anisotropic problems");
    use fp16mg_core::Coarsening;
    let opts =
        SolveOptions { tol: args.tol, max_iters: 400, record_history: false, ..Default::default() };
    let n = args.size.min(24);
    let mut t = Table::new(&["problem", "coarsening", "#iter", "C_G", "C_O", "total"]);
    for kind in [ProblemKind::Oil, ProblemKind::Weather, ProblemKind::Laplace27] {
        for (label, coarsening) in
            [("full", Coarsening::Full), ("semi(0.5)", Coarsening::Semi { threshold: 0.5 })]
        {
            let p = kind.build(n);
            let mut cfg = Combo::D16SetupScale.mg_config();
            cfg.coarsening = coarsening;
            if let Ok(r) = run_with_config(&p, Combo::D16SetupScale, cfg, &opts) {
                t.row(vec![
                    kind.name().to_string(),
                    label.into(),
                    format!("{}{}", r.result.iters, if r.result.converged() { "" } else { "!" }),
                    format!("{:.2}", r.complexities.0),
                    format!("{:.2}", r.complexities.1),
                    fmt_secs(r.total().as_secs_f64()),
                ]);
            }
        }
    }
    print!("{t}");
    println!("(semicoarsening collapses the strong direction first: fewer iterations");
    println!(" on anisotropic problems at higher grid complexity — the PFMG trade)");
}

// --------------------------------------------------------------- audit --

fn audit_cmd(args: &Args) {
    header("Precision-safety audit: per-level FP16 range tables, shift_levid: Auto");
    fp16mg_bench::audit_report(args.size.min(24));
}

// --------------------------------------------------------------- serve --

fn serve_cmd(args: &Args, chaos: bool) {
    if chaos {
        header("Resilient runtime: chaos batch — bit-flip upsets under the retry ladder");
    } else {
        header("Resilient runtime: concurrent mixed batch under the retry ladder");
    }
    let workers = if args.workers > 0 {
        args.workers
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
    };
    let cfg = fp16mg_bench::ServeConfig {
        requests: args.requests,
        workers,
        size: args.size.min(12),
        tol: args.tol,
        deadline_ms: args.budget_ms,
        chaos,
    };
    fp16mg_bench::serve(&cfg);
    if chaos {
        println!("(expect: flip rows fail their corrupted attempt, then the repair-level");
        println!(" rung localizes the upset — see the repairs column, `L<level>:t<tap>` —");
        println!(" and re-solves the mended hierarchy without any rebuild; the panic row");
        println!(" stays isolated and every outcome is typed)");
    } else {
        println!("(expect: clean rows converge on the first rung; fault rows climb the");
        println!(" ladder to their first clean configuration; the panic row is isolated;");
        println!(" the deadline and no-converge rows end with typed errors)");
    }
}

// -------------------------------------------------------------- daemon --

fn daemon_cmd(args: &Args) {
    let workers = if args.workers > 0 { args.workers } else { 2 };
    let dir = if args.snapshot_dir.is_empty() {
        std::path::PathBuf::from(&args.out).join("daemon-state")
    } else {
        std::path::PathBuf::from(&args.snapshot_dir)
    };
    let cfg = fp16mg_bench::DaemonCliConfig {
        snapshot_dir: dir,
        requests: args.requests,
        workers,
        size: args.size.min(10),
        tol: args.tol,
        pace_ms: args.pace_ms,
        chaos: args.chaos,
        mem_budget: if args.mem_budget > 0 { Some(args.mem_budget) } else { None },
        threads: cli_threads(args),
    };
    std::process::exit(fp16mg_bench::run_daemon(&cfg));
}

/// The single kernel-parallelism count serving commands use: the first
/// `--threads` value (the flag doubles as a comma list for the scaling
/// figures; serving wants one knob).
fn cli_threads(args: &Args) -> usize {
    args.threads.first().copied().unwrap_or(1)
}

fn parse_addr(addr: &str) -> fp16mg_runtime::Endpoint {
    fp16mg_runtime::Endpoint::parse(addr).unwrap_or_else(|e| usage(&format!("--addr: {e}")))
}

fn net_daemon_cmd(args: &Args) {
    let workers = if args.workers > 0 { args.workers } else { 2 };
    let dir = if args.snapshot_dir.is_empty() {
        std::path::PathBuf::from(&args.out).join("netdaemon-state")
    } else {
        std::path::PathBuf::from(&args.snapshot_dir)
    };
    let cfg = fp16mg_bench::NetDaemonCliConfig {
        endpoint: parse_addr(&args.addr),
        state_dir: dir,
        size: args.size.min(10),
        tol: args.tol,
        workers,
        threads: cli_threads(args),
        mem_budget: if args.mem_budget > 0 { Some(args.mem_budget) } else { None },
    };
    std::process::exit(fp16mg_bench::run_net_daemon(&cfg));
}

// ------------------------------------------------------------- loadgen --

fn loadgen_cmd(args: &Args) {
    if args.addr.is_empty() {
        usage("loadgen needs --addr (or --soak for the self-contained acceptance run)");
    }
    let cfg = fp16mg_bench::LoadgenConfig {
        endpoint: parse_addr(&args.addr),
        requests: args.requests as u64,
        size: args.size.min(10),
        tol: args.tol,
        seed: 0x6c6f_6164,
        shutdown: args.shutdown,
    };
    std::process::exit(fp16mg_bench::run_loadgen(&cfg));
}

fn net_soak_cmd(args: &Args) {
    header("Network soak: kill/restart acceptance over the wire");
    let cfg = fp16mg_bench::NetSoakConfig {
        requests: args.requests as u64,
        kill_after: if args.kill_after > 0 { args.kill_after as u64 } else { 3 },
        size: args.size.min(10),
        tol: args.tol,
        workers: if args.workers > 0 { args.workers } else { 2 },
        threads: cli_threads(args),
        out: std::path::PathBuf::from(&args.out),
    };
    std::process::exit(fp16mg_bench::run_net_soak(&cfg));
}

// ---------------------------------------------------------- nettorture --

fn nettorture_cmd(args: &Args) {
    header("Wire-fault torture: crash-point matrix over the framed protocol");
    let mut cfg = fp16mg_bench::NetTortureConfig::default();
    if args.size_set {
        cfg.size = args.size.min(8);
    }
    if args.requests_set {
        cfg.requests = args.requests.clamp(4, 32) as u64;
    }
    std::process::exit(fp16mg_bench::run_nettorture_cli(&cfg));
}

fn soak_cmd(args: &Args) {
    header("Soak: kill/restart acceptance — checkpointed daemon, replayed decisions");
    let workers = if args.workers > 0 { args.workers } else { 2 };
    let cfg = fp16mg_bench::SoakConfig {
        requests: args.requests,
        workers,
        size: args.size.min(10),
        tol: args.tol,
        kill_after: if args.kill_after > 0 { args.kill_after } else { 2 },
        out: std::path::PathBuf::from(&args.out),
        mem_budget: if args.mem_budget > 0 { Some(args.mem_budget) } else { None },
    };
    std::process::exit(fp16mg_bench::run_soak(&cfg));
}

// ------------------------------------------------------------ overload --

fn overload_cmd(args: &Args) {
    header("Overload protection: admission control, shedding, circuit breaking");
    let workers = if args.workers > 0 { args.workers } else { 2 };
    let cfg = fp16mg_bench::OverloadConfig { size: args.size.min(10), tol: args.tol, workers };
    let report = fp16mg_bench::serve_overload(&cfg);
    if !report.violations.is_empty() {
        eprintln!("overload demo: {} acceptance violation(s)", report.violations.len());
        std::process::exit(1);
    }
}

// ------------------------------------------------------------ simulate --

/// Resolves `--problem`: `all` means the three time-dependent example
/// scenarios; any paper problem name selects a single trajectory.
fn sim_kinds(problem: &str) -> Vec<ProblemKind> {
    if problem == "all" {
        return vec![ProblemKind::Oil, ProblemKind::Rhd, ProblemKind::Weather];
    }
    match ProblemKind::all().iter().copied().find(|k| k.name() == problem) {
        Some(k) => vec![k],
        None => {
            let valid: Vec<&str> = ProblemKind::all().iter().map(|k| k.name()).collect();
            usage(&format!(
                "unknown problem '{problem}', valid names are all, {}",
                valid.join(", ")
            ))
        }
    }
}

fn simulate_cmd(args: &Args) {
    header("Simulate: drift-resilient time stepping with crash-safe resume");
    let size = if args.size_set { args.size } else { 12 };
    let mut worst = 0;
    for kind in sim_kinds(&args.problem) {
        let cfg = fp16mg_bench::SimConfig {
            kind,
            steps: args.steps,
            size,
            tol: args.tol,
            chaos: args.chaos,
            snapshot_dir: (!args.snapshot_dir.is_empty())
                .then(|| std::path::PathBuf::from(&args.snapshot_dir)),
            json_dir: Some(std::path::PathBuf::from(&args.out)),
            pace_ms: args.pace_ms,
            ack: true,
            ..fp16mg_bench::SimConfig::new(kind, args.steps, size, args.tol)
        };
        worst = worst.max(fp16mg_bench::run_sim_cli(cfg));
    }
    std::process::exit(worst);
}

fn torture_cmd(args: &Args) {
    header("Torture: storage-fault injection across every crash point of the durability stack");
    let kind = if args.problem == "all" { ProblemKind::Oil } else { sim_kinds(&args.problem)[0] };
    let cfg = fp16mg_bench::TortureConfig {
        kind,
        steps: if args.steps == 12 { 4 } else { args.steps.clamp(2, 8) },
        size: if args.size_set { args.size.min(10) } else { 6 },
        tol: args.tol.max(1e-7),
    };
    std::process::exit(fp16mg_bench::run_torture_cli(&cfg));
}

fn memtorture_cmd(args: &Args) {
    header("Memtorture: allocation-fault injection across every charged byte of the serve stack");
    let cfg = fp16mg_bench::MemTortureConfig {
        size: if args.size_set { args.size.min(10) } else { 6 },
        tol: args.tol.max(1e-8),
    };
    std::process::exit(fp16mg_bench::run_memtorture_cli(&cfg));
}

fn simulate_soak_cmd(args: &Args) {
    header("Simulate soak: SIGKILL mid-run, resume, bit-identical decision trail");
    let kind = if args.problem == "all" { ProblemKind::Oil } else { sim_kinds(&args.problem)[0] };
    let cfg = fp16mg_bench::SimSoakConfig {
        kind,
        steps: args.steps.max(12),
        size: if args.size_set { args.size.min(12) } else { 8 },
        tol: args.tol,
        kill_after: if args.kill_after > 0 { args.kill_after } else { 4 },
        out: std::path::PathBuf::from(&args.out).join("sim-soak"),
    };
    std::process::exit(fp16mg_bench::run_sim_soak(&cfg));
}

// -------------------------------------------------------- bench-compare --

fn bench_compare_cmd(args: &Args) {
    header("bench-compare: regression gate over committed BENCH_*.json baselines");
    if args.baseline.is_empty() || args.current.is_empty() {
        usage("bench-compare needs --baseline DIR and --current DIR");
    }
    std::process::exit(fp16mg_bench::run_compare(
        std::path::Path::new(&args.baseline),
        std::path::Path::new(&args.current),
    ));
}

// ----------------------------------------------------------- bench-json --

fn bench_json_cmd(args: &Args) {
    header("bench-json: machine-readable tier-1 timings");
    let cfg = fp16mg_bench::BenchJsonConfig {
        size: args.size.min(24),
        tol: args.tol,
        dir: std::path::PathBuf::from(&args.out),
    };
    match fp16mg_bench::bench_json_emit(&cfg) {
        Ok(paths) => {
            for p in &paths {
                println!("wrote {}", p.display());
            }
            println!("({} problems, combos Full64 + Mix16, size {})", paths.len(), cfg.size);
        }
        Err(e) => {
            // The benchmarks themselves succeeded; failing to persist
            // the JSON (full disk, read-only volume) must not discard
            // the run as an error.
            eprintln!(
                "bench-json: warning: cannot write into '{}': {e} (timings were measured; \
                 only the JSON emission failed)",
                args.out
            );
        }
    }
}

// --------------------------------------------------------------- guard --

fn guard(args: &Args) {
    header("Robustness: fault-injected FP16 levels — detect, promote, converge");
    use fp16mg_bench::{finest_narrow_level, solve_guarded};
    use fp16mg_sgdia::fault::FaultSpec;

    let opts =
        SolveOptions { tol: args.tol, max_iters: 500, record_history: false, ..Default::default() };
    let n = args.size.min(20);
    let mut t = Table::new(&[
        "problem",
        "scenario",
        "#iter",
        "rel.resid",
        "promoted",
        "restarts",
        "events",
    ]);
    let mut all_events: Vec<String> = Vec::new();
    for kind in [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Weather] {
        let p = kind.build(n);
        // Each scenario: (label, combo, inject?).
        for (label, combo, inject) in [
            ("Full64 clean", Combo::Full64, false),
            ("Mix16 clean", Combo::D16SetupScale, false),
            ("Mix16 injected", Combo::D16SetupScale, true),
        ] {
            macro_rules! go {
                ($pr:ty) => {{
                    let mut mg = match Mg::<$pr>::setup(&p.matrix, &combo.mg_config()) {
                        Ok(m) => m,
                        Err(e) => {
                            t.row(vec![
                                kind.name().into(),
                                label.into(),
                                "setup-fail".into(),
                                e.to_string(),
                                String::new(),
                                String::new(),
                                String::new(),
                            ]);
                            continue;
                        }
                    };
                    if inject {
                        match finest_narrow_level(&mg) {
                            Some(lev) => {
                                let spec = FaultSpec::inf(2e-4, 0xfeed);
                                let report = mg
                                    .stored_mut(lev)
                                    .expect("narrow level exists")
                                    .inject_faults(&spec);
                                all_events.push(format!(
                                    "{}: injected {} Inf values into level {lev} ({:?})",
                                    kind.name(),
                                    report.infs.max(1),
                                    mg.info().levels[lev].precision,
                                ));
                                if report.infs == 0 {
                                    // Rate too low for a small matrix: force one.
                                    mg.stored_mut(lev).expect("narrow level").inject_inf_at(0, 0);
                                }
                            }
                            None => {
                                t.row(vec![
                                    kind.name().into(),
                                    label.into(),
                                    "no 16-bit level".into(),
                                    String::new(),
                                    String::new(),
                                    String::new(),
                                    String::new(),
                                ]);
                                continue;
                            }
                        }
                    }
                    let out = solve_guarded(&p, &mut mg, &opts, Par::Seq);
                    for ev in &out.promotions {
                        all_events.push(format!("{}: {ev}", kind.name()));
                    }
                    t.row(vec![
                        kind.name().into(),
                        label.into(),
                        format!("{}{}", out.result.iters, if out.converged() { "" } else { "!" }),
                        format!("{:9.2e}", out.result.final_rel_residual),
                        out.promotions.len().to_string(),
                        out.restarts.to_string(),
                        out.promotions
                            .iter()
                            .map(|e| format!("L{}:{}", e.level, e.reason))
                            .collect::<Vec<_>>()
                            .join("; "),
                    ]);
                }};
            }
            if combo.p64() {
                go!(f64)
            } else {
                go!(f32)
            }
        }
    }
    print!("{t}");
    if !all_events.is_empty() {
        println!("\npromotion log:");
        for e in &all_events {
            println!("  {e}");
        }
    }
    println!("(expect: clean rows promote nothing; injected rows detect the corrupt");
    println!(" FP16 level inside one V-cycle, promote it to FP32, and converge to");
    println!(" the same tolerance as the clean run)");
}

/// Variant of solve_e2e with an explicit config (for the nu sweep).
fn run_with_config(
    p: &fp16mg_problems::Problem,
    combo: Combo,
    cfg: fp16mg_core::MgConfig,
    opts: &SolveOptions,
) -> Result<fp16mg_bench::E2eResult, String> {
    use fp16mg_core::MatOp;
    use fp16mg_krylov::{cg, gmres, TimedPrecond};
    use std::time::Instant;

    macro_rules! go {
        ($pr:ty) => {{
            let t0 = Instant::now();
            let mg = Mg::<$pr>::setup(&p.matrix, &cfg).map_err(|e| e.to_string())?;
            let setup = t0.elapsed();
            let matrix_bytes = mg.info().matrix_bytes;
            let workspace_bytes = mg.workspace_bytes();
            let complexities = (mg.info().grid_complexity, mg.info().operator_complexity);
            let mut timed = TimedPrecond::new(mg);
            let op = MatOp::new(&p.matrix, Par::Seq);
            let b = p.rhs();
            let mut x = vec![0.0f64; p.matrix.rows()];
            let t1 = Instant::now();
            let result = match p.solver {
                SolverKind::Cg => cg(&op, &mut timed, &b, &mut x, opts),
                SolverKind::Gmres => gmres(&op, &mut timed, &b, &mut x, opts),
            };
            let solve = t1.elapsed();
            let precond = timed.elapsed().min(solve);
            Ok(fp16mg_bench::E2eResult {
                problem: p.name,
                combo,
                setup,
                precond,
                other: solve - precond,
                solve,
                result,
                matrix_bytes,
                workspace_bytes,
                complexities,
            })
        }};
    }
    if combo.p64() {
        go!(f64)
    } else {
        go!(f32)
    }
}
