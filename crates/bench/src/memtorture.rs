//! Allocation-fault torture matrix over the memory-resilience layer.
//!
//! The harness mirrors the storage torture matrix (`torture.rs`), but
//! the injected resource is *memory*: every hierarchy setup, workspace
//! arena, cache insert, and rescale commit is charged against the serve
//! pool's [`MemGovernor`](fp16mg_runtime::MemGovernor), and the governor
//! doubles as a deterministic allocation-fault injector with a
//! monotonically increasing charge op index.
//!
//! - **Probe** — a clean run of a deterministic request stream (one
//!   worker, so charge order is total) records the charge log. The
//!   stream is shaped so every charge class appears: `setup` and
//!   `workspace` from sessions, `cache-insert` from cache builds,
//!   `rescale` from a drifted revisit.
//! - **Phase A** — a one-shot allocation failure at *every* charged op
//!   index of the clean run. Each failure must resolve through an
//!   existing degrade rung (ladder escalation, uncached serve, stale
//!   hit) and the stream must still converge end to end.
//! - **Phase B** — a bounded burst of failures (several consecutive
//!   charges refused) at the start, middle, and end of the log; the
//!   ladder's deeper rungs must absorb it.
//! - **Phase C** — organic byte budgets: a generous budget that must
//!   never refuse, and a tight budget (a fraction of the clean run's
//!   peak) that must trigger cache eviction or uncached degrade while
//!   every outcome stays typed, tracked usage never exceeds the budget,
//!   and at least one request is still served.
//!
//! After **every** case the harness asserts the byte accounting
//! returned to zero once the pool is dropped — a leaked
//! [`MemCharge`](fp16mg_runtime::MemCharge) anywhere in the stack fails
//! the matrix. The run exits zero only if every case held *and* every
//! fault class (`alloc-fail`, `alloc-burst`, `budget-exceeded`)
//! actually fired — an empty matrix cannot pass by default.

use std::collections::{BTreeMap, BTreeSet};

use fp16mg_core::MgConfig;
use fp16mg_krylov::{SolveError, SolveOptions};
use fp16mg_problems::ProblemKind;
use fp16mg_runtime::{
    AllocFault, PoolConfig, RequestOutcome, ServeError, ServePool, ShedPolicy, SolveRequest,
};

/// Fault classes that must have fired for the matrix to count as
/// exercised.
const REQUIRED_FIRED: &[&str] = &["alloc-fail", "alloc-burst", "budget-exceeded"];

/// Charge classes the probe stream must exercise; a missing class means
/// the stream no longer reaches that allocation site and the matrix is
/// blind to it.
const REQUIRED_CLASSES: &[&str] = &["setup", "workspace", "cache-insert", "rescale"];

/// Shape of the memory-torture run.
#[derive(Clone, Debug)]
pub struct MemTortureConfig {
    /// Grid extent of the stream's problems.
    pub size: usize,
    /// Convergence tolerance.
    pub tol: f64,
}

impl MemTortureConfig {
    /// The default matrix: small grids, tight enough tolerance that a
    /// silently broken preconditioner cannot sneak through.
    pub fn new() -> Self {
        MemTortureConfig { size: 6, tol: 1e-8 }
    }
}

impl Default for MemTortureConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything the matrix observed, for the CLI and for tests.
#[derive(Clone, Debug, Default)]
pub struct MemTortureReport {
    /// Fault cases executed.
    pub cases: usize,
    /// Charged allocation attempts in the clean run.
    pub probe_ops: u64,
    /// Peak tracked bytes of the clean run.
    pub probe_peak: u64,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<String>,
    /// Aggregate fault-class fire counts over all cases.
    pub fired: BTreeMap<String, u64>,
    /// Charge classes observed in the clean run.
    pub classes: BTreeSet<String>,
    /// Cache evictions forced by the tight-budget phase.
    pub mem_evictions: u64,
    /// Uncached (cache-insert refused) serves over all cases.
    pub uncached: u64,
}

impl MemTortureReport {
    /// True when every invariant held and every required fault class
    /// fired.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && REQUIRED_FIRED.iter().all(|k| self.fired.get(*k).copied().unwrap_or(0) > 0)
            && REQUIRED_CLASSES.iter().all(|c| self.classes.contains(*c))
    }
}

/// The deterministic request stream: a pure function of the index, one
/// entry per allocation-relevant behavior. Two problem classes keep two
/// cache entries live; the drifted revisits walk the rescale and
/// invalidate paths.
fn stream(cfg: &MemTortureConfig) -> Vec<SolveRequest> {
    let mk = |i: usize, kind: ProblemKind, factor: f64, class: &str| {
        let mut problem = kind.build(cfg.size);
        if factor != 1.0 {
            for v in problem.matrix.data_mut() {
                *v *= factor;
            }
        }
        let mut req = SolveRequest::new(format!("mem-{i:02}"), problem, MgConfig::d16());
        req.class = class.to_string();
        req.opts = SolveOptions { tol: cfg.tol, record_history: false, ..Default::default() };
        req
    };
    vec![
        mk(0, ProblemKind::Laplace27, 1.0, "steady"), // cold build: setup+workspace+cache-insert
        mk(1, ProblemKind::Laplace27, 1.0, "steady"), // warm hit
        mk(2, ProblemKind::Laplace27, 4.0, "steady"), // drift within rescale bound: "rescale"
        mk(3, ProblemKind::Laplace27, 96.0, "steady"), // drift past bound: invalidate + rebuild
        mk(4, ProblemKind::Oil, 1.0, "oil"),          // second cache entry
        mk(5, ProblemKind::Laplace27, 96.0, "steady"), // hit on the rebuilt entry
    ]
}

/// The torture pool: one worker (total charge order), cache on,
/// shedding off so admission decisions cannot differ between cases.
fn fault_pool_cfg() -> PoolConfig {
    PoolConfig {
        workers: 1,
        shed: ShedPolicy::disabled(),
        cache: fp16mg_runtime::CacheConfig::default(),
        ..PoolConfig::default()
    }
}

/// Short label for an outcome's terminal state.
fn outcome_label(o: &RequestOutcome) -> String {
    match &o.result {
        Ok(_) => "ok".to_string(),
        Err(ServeError::Rejected(a)) => format!("rejected:{a}"),
        Err(ServeError::Session(s)) => format!("session:{s}"),
    }
}

/// Case-level invariants shared by every phase: the batch completes
/// with typed outcomes only (a contained panic is a harness failure),
/// tracked bytes equal live cache bytes once the batch returns, and the
/// accounting reaches zero when the pool drops.
fn check_case(
    label: &str,
    pool: ServePool,
    outcomes: &[RequestOutcome],
    require_converged: bool,
    violations: &mut Vec<String>,
) -> BTreeMap<String, u64> {
    for o in outcomes {
        if matches!(&o.result, Err(ServeError::Session(SolveError::WorkerPanicked { .. }))) {
            violations.push(format!(
                "{label}: request {} PANICKED — an allocation failure must never panic",
                o.name
            ));
        }
        if require_converged && o.result.is_err() {
            violations.push(format!(
                "{label}: request {} did not resolve through a degrade rung: {}",
                o.name,
                outcome_label(o)
            ));
        }
    }
    let governor = pool.governor().clone();
    let live = pool.cache().cache_bytes();
    if governor.used() != live {
        violations.push(format!(
            "{label}: accounting leak while pool is live: {} B tracked, {} B of cache entries",
            governor.used(),
            live
        ));
    }
    let fired = governor.fired();
    drop(pool);
    if governor.used() != 0 {
        violations.push(format!(
            "{label}: {} B still tracked after the pool dropped (leaked charge receipts)",
            governor.used()
        ));
    }
    fired
}

/// Executes the full matrix and aggregates the verdict.
pub fn run_matrix(cfg: &MemTortureConfig) -> MemTortureReport {
    let mut report = MemTortureReport::default();

    // --- Probe: the clean run's charge log is the case schedule.
    let mut pool = ServePool::new(fault_pool_cfg());
    let outcomes = pool.run(stream(cfg));
    if let Some(o) = outcomes.iter().find(|o| o.result.is_err()) {
        report.violations.push(format!(
            "probe: clean run failed on {}: {}",
            o.name,
            outcome_label(o)
        ));
        return report;
    }
    let governor = pool.governor().clone();
    let log = governor.op_log();
    report.probe_ops = governor.op_count();
    report.probe_peak = governor.peak();
    report.classes = log.iter().map(|r| r.class.clone()).collect();
    for &class in REQUIRED_CLASSES {
        if !report.classes.contains(class) {
            report.violations.push(format!(
                "probe: charge class '{class}' never appeared — the stream no longer reaches \
                 that allocation site"
            ));
        }
    }
    drop(pool);
    if governor.used() != 0 {
        report.violations.push("probe: bytes still tracked after the clean run".to_string());
    }
    if !report.violations.is_empty() {
        return report;
    }

    let merge = |fired: BTreeMap<String, u64>, report: &mut MemTortureReport| {
        for (k, n) in fired {
            *report.fired.entry(k).or_insert(0) += n;
        }
    };

    // --- Phase A: one-shot allocation failure at every charged index.
    for i in 0..report.probe_ops {
        let label = format!("A:alloc-fail@{i}[{}]", log[i as usize].class);
        let mut pool = ServePool::new(fault_pool_cfg());
        pool.governor().schedule(i, AllocFault::Fail);
        let outcomes = pool.run(stream(cfg));
        report.cases += 1;
        let mut v = Vec::new();
        let fired = check_case(&label, pool, &outcomes, true, &mut v);
        if fired.get("alloc-fail").copied().unwrap_or(0) == 0 {
            v.push(format!("{label}: the scheduled fault never fired"));
        }
        report.violations.extend(v);
        merge(fired, &mut report);
    }

    // --- Phase B: bounded bursts (three consecutive refusals) at the
    // start, middle, and end of the log. The ladder has enough rungs to
    // climb past three consecutive failed builds.
    let last = report.probe_ops.saturating_sub(1);
    let mut burst_at: Vec<u64> = vec![0, report.probe_ops / 2, last];
    burst_at.dedup();
    for i in burst_at {
        let label = format!("B:alloc-burst@{i}");
        let mut pool = ServePool::new(fault_pool_cfg());
        pool.governor().schedule(i, AllocFault::Burst { count: 3 });
        let outcomes = pool.run(stream(cfg));
        report.cases += 1;
        let mut v = Vec::new();
        let fired = check_case(&label, pool, &outcomes, true, &mut v);
        if fired.get("alloc-burst").copied().unwrap_or(0) == 0 {
            v.push(format!("{label}: the scheduled burst never fired"));
        }
        report.violations.extend(v);
        merge(fired, &mut report);
    }

    // --- Phase C1: a budget at the clean-run peak must never refuse.
    {
        let label = "C:budget=peak";
        let mut pool_cfg = fault_pool_cfg();
        pool_cfg.mem_budget = Some(report.probe_peak);
        let mut pool = ServePool::new(pool_cfg);
        let outcomes = pool.run(stream(cfg));
        report.cases += 1;
        let mut v = Vec::new();
        let fired = check_case(label, pool, &outcomes, true, &mut v);
        if fired.get("budget-exceeded").copied().unwrap_or(0) > 0 {
            v.push(format!(
                "{label}: a budget equal to the clean-run peak refused a charge — the \
                 accounting drifted between runs"
            ));
        }
        report.violations.extend(v);
        merge(fired, &mut report);
    }

    // --- Phase C2: a tight budget (60% of peak) must degrade — evict
    // cache entries or serve uncached — while staying within budget and
    // keeping at least part of the stream served.
    {
        let label = "C:budget=tight";
        let budget = (report.probe_peak * 3) / 5;
        let mut pool_cfg = fault_pool_cfg();
        // Default shed policy: the tight budget must also drive the
        // pressure signal's mem_fill component through the pool's
        // eviction lever.
        pool_cfg.shed = ShedPolicy::default();
        pool_cfg.mem_budget = Some(budget);
        let mut pool = ServePool::new(pool_cfg);
        let outcomes = pool.run(stream(cfg));
        report.cases += 1;
        let governor = pool.governor().clone();
        if governor.peak() > budget {
            report.violations.push(format!(
                "{label}: tracked peak {} B exceeded the {} B budget",
                governor.peak(),
                budget
            ));
        }
        report.mem_evictions = pool.cache().mem_evictions();
        report.uncached = pool.cache().uncached_serves();
        if report.mem_evictions + report.uncached == 0 {
            report.violations.push(format!(
                "{label}: the tight budget forced no eviction and no uncached serve — the \
                 degrade machinery went unexercised"
            ));
        }
        if !outcomes.iter().any(|o| o.result.is_ok()) {
            report.violations.push(format!(
                "{label}: nothing was served under the tight budget — memory pressure must \
                 degrade, not blackout"
            ));
        }
        let mut v = Vec::new();
        let fired = check_case(label, pool, &outcomes, false, &mut v);
        report.violations.extend(v);
        merge(fired, &mut report);
    }

    for &k in REQUIRED_FIRED {
        if report.fired.get(k).copied().unwrap_or(0) == 0 {
            report.violations.push(format!("fault class '{k}' never fired"));
        }
    }
    report
}

/// CLI entry: runs the matrix, prints the verdict, returns the exit
/// code.
pub fn run_memtorture_cli(cfg: &MemTortureConfig) -> i32 {
    println!("memtorture: size={} tol={:e}", cfg.size, cfg.tol);
    let report = run_matrix(cfg);
    println!(
        "memtorture: {} cases over {} charged ops (clean-run peak {} B)",
        report.cases, report.probe_ops, report.probe_peak
    );
    println!(
        "memtorture: charge classes seen: {}",
        report.classes.iter().cloned().collect::<Vec<_>>().join(", ")
    );
    for (k, n) in &report.fired {
        println!("memtorture: fired {k} x{n}");
    }
    println!(
        "memtorture: tight budget forced {} eviction(s), {} uncached serve(s)",
        report.mem_evictions, report.uncached
    );
    if report.passed() {
        println!(
            "memtorture: PASS — every allocation failure resolved typed, accounting returned \
             to zero after every case"
        );
        0
    } else {
        for v in &report.violations {
            eprintln!("memtorture: VIOLATION: {v}");
        }
        eprintln!("memtorture: FAIL ({} violation(s))", report.violations.len());
        1
    }
}
