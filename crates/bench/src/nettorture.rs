//! `repro nettorture`: the wire-fault crash-point matrix.
//!
//! The storage torture matrix proved the durability stack survives
//! power loss at every I/O operation; this matrix proves the *wire*
//! keeps those guarantees: a connection killed at **every frame
//! boundary** of a probe run must never lose an acked request, never
//! execute a resubmission twice, and resolve every injected fault with
//! a typed error.
//!
//! Shape (mirroring `torture.rs`):
//!
//! 1. **Probe**: an in-process networked daemon on a deterministic
//!    [`FaultStorage`] backend serves the stream over a real Unix
//!    socket with a fault-free [`FaultTransport`] ticking every frame
//!    send/receive. The probe yields the op log (every frame boundary a
//!    fault can land on) and the reference durable trail.
//! 2. **Phases**: one fresh server + client per case —
//!    connection reset at every op index (A), torn frame / garbage
//!    bytes / oversized header at every send boundary (B–D), duplicate
//!    delivery at every submit boundary (E), stalled reads long enough
//!    to trip the server's deadline (F).
//! 3. **Invariants**, checked per case: the instant a request is acked,
//!    its decision line is in the **durable** trail image
//!    (acked ⇒ durable, checked at ack time, not at the end); at the
//!    end, the durable trail is bit-identical to the probe's (exactly
//!    one line per seq — resubmissions deduplicated, never re-run); the
//!    server drained cleanly; every injected fault has a typed
//!    resolution on record.
//! 4. **Self-check (G)**: a server deliberately acking *before* the
//!    (unsynced) trail append must be caught by the instant invariant —
//!    a harness that cannot see a broken ack order proves nothing.
//!
//! All six fault classes must fire across the matrix and at least one
//! lost-ack case must be answered with a `duplicate = true` ack, or the
//! run exits nonzero.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fp16mg_runtime::net::{
    Client, ClientConfig, ClientStats, Endpoint, FaultTransport, Frame, NetFault, NetOpKind,
    SubmitRequest,
};
use fp16mg_runtime::{FaultStorage, Storage};

use crate::daemon::TRAIL_FILE;
use crate::loadgen::priority_for;
use crate::netserve::{serve_net, NetServeConfig, NetServeReport};

/// Matrix knobs.
pub struct NetTortureConfig {
    /// Requests per case (8 covers every stream class).
    pub requests: u64,
    /// Problem base extent (small: the matrix runs many cases).
    pub size: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// Server per-connection deadline (ms); the stall must exceed it.
    pub conn_deadline_ms: u64,
    /// Client silence injected by the stall fault (ms).
    pub stall_ms: u64,
    /// Directory for the per-case Unix sockets (temp dir when `None`).
    pub sock_dir: Option<PathBuf>,
}

impl Default for NetTortureConfig {
    fn default() -> Self {
        NetTortureConfig {
            requests: 8,
            size: 6,
            tol: 1e-6,
            conn_deadline_ms: 500,
            stall_ms: 1200,
            sock_dir: None,
        }
    }
}

/// One case's verdict.
#[derive(Clone, Debug)]
pub struct CaseRow {
    /// `<phase>@op<k>` name.
    pub name: String,
    /// All invariants held.
    pub ok: bool,
    /// Violation detail when `ok` is false.
    pub detail: String,
}

/// The matrix verdict.
#[derive(Debug, Default)]
pub struct NetTortureReport {
    /// Per-case rows.
    pub cases: Vec<CaseRow>,
    /// Aggregate violations (all-classes-fired, dedup-proven, G).
    pub violations: Vec<String>,
    /// Firings per fault class across the whole matrix.
    pub fired: BTreeMap<String, u64>,
    /// Total `duplicate = true` acks observed (must be > 0).
    pub duplicate_acks: u64,
    /// Total idempotent resubmissions the clients performed.
    pub resubmissions: u64,
    /// The phase-G broken-ack-order server was detected.
    pub self_check_ok: bool,
}

impl NetTortureReport {
    /// Every case ok, every aggregate invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.cases.iter().all(|c| c.ok) && self.self_check_ok
    }
}

const STATE_DIR: &str = "state";

fn trail_path() -> PathBuf {
    PathBuf::from(STATE_DIR).join(TRAIL_FILE)
}

fn client_cfg(endpoint: Endpoint) -> ClientConfig {
    ClientConfig {
        endpoint,
        max_attempts: 10,
        backoff: Duration::from_millis(5),
        backoff_factor: 2.0,
        max_backoff: Duration::from_millis(100),
        jitter: 0.5,
        seed: 0xb0a7,
        deadlines: [Duration::from_secs(10); 3],
        write_deadline: Duration::from_secs(10),
    }
}

struct CaseOutcome {
    violations: Vec<String>,
    stats: ClientStats,
    fired: BTreeMap<String, u64>,
    server: NetServeReport,
}

/// The durable trail lines, by seq prefix, from the fault storage's
/// durable (post-power-loss) image — what would survive a crash.
fn durable_lines(storage: &FaultStorage) -> Vec<String> {
    let bytes = storage.peek_durable(&trail_path()).unwrap_or_default();
    String::from_utf8_lossy(&bytes).lines().map(|l| l.to_string()).collect()
}

fn server_cfg(cfg: &NetTortureConfig, endpoint: Endpoint, break_ack_order: bool) -> NetServeConfig {
    let mut sc = NetServeConfig::new(endpoint, PathBuf::from(STATE_DIR));
    sc.size = cfg.size;
    sc.tol = cfg.tol;
    sc.workers = 1;
    sc.conn_deadline = Duration::from_millis(cfg.conn_deadline_ms);
    sc.break_ack_order = break_ack_order;
    sc.quiet = true;
    sc
}

/// Drives one case: fresh storage, fresh in-process server, fresh
/// client with `schedule` planted, full stream + drain, instant and
/// end-state invariants.
fn run_case(
    cfg: &NetTortureConfig,
    sock: PathBuf,
    schedule: &[(u64, NetFault)],
    break_ack_order: bool,
    reference: &[String],
) -> CaseOutcome {
    let endpoint = Endpoint::Unix(sock);
    let storage = FaultStorage::new();
    let server_storage: Arc<dyn Storage> = Arc::new(storage.clone());
    let sc = server_cfg(cfg, endpoint.clone(), break_ack_order);
    let server = std::thread::spawn(move || serve_net(&sc, server_storage));

    let ft = FaultTransport::new();
    for &(index, fault) in schedule {
        ft.schedule(index, fault);
    }
    let mut client = Client::with_transport(client_cfg(endpoint.clone()), ft.clone());
    let mut violations = Vec::new();

    for seq in 0..cfg.requests {
        let req = SubmitRequest {
            key: seq,
            size: cfg.size as u32,
            tol: cfg.tol,
            priority: priority_for(seq),
        };
        match client.submit(req) {
            Ok(done) => {
                if done.key != seq {
                    violations.push(format!("ack for key {} while waiting on {seq}", done.key));
                }
                // THE instant invariant: the moment the ack is in hand,
                // the decision must already be in the durable image.
                let prefix = format!("seq={seq} ");
                if !durable_lines(&storage).iter().any(|l| l.starts_with(&prefix)) {
                    violations.push(format!("seq={seq}: ACKED BUT NOT DURABLE"));
                }
            }
            Err(e) => violations.push(format!("seq={seq}: {e}")),
        }
    }

    // Drain. A fault can eat the ShutdownOk after the server already
    // drained, so a failed client-side shutdown falls back to clean
    // retries without the fault transport; the server report is the
    // arbiter.
    if client.shutdown().is_err() {
        for _ in 0..50 {
            if server.is_finished() {
                break;
            }
            let mut plain = Client::new(client_cfg(endpoint.clone()));
            if plain.shutdown().is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let stats = client.stats.clone();
    let server = server.join().unwrap_or_else(|_| {
        let mut r = NetServeReport::default();
        r.violations.push("server thread panicked".into());
        r
    });

    // End state: the durable trail must be bit-identical to the probe's
    // — exactly one line per seq, same decisions, nothing extra.
    let lines = durable_lines(&storage);
    if !reference.is_empty() && lines != reference {
        violations.push(format!(
            "durable trail diverged: {} lines vs {} in reference",
            lines.len(),
            reference.len()
        ));
    }
    for v in &server.violations {
        violations.push(format!("server: {v}"));
    }
    if !server.drained {
        violations.push("server never drained".into());
    }
    // Typed-resolution invariant: every class that fired was resolved
    // with a recorded typed error; the protocol-violation classes must
    // have been answered by the server's typed Error frame.
    let fired = ft.fired();
    for class in fired.keys() {
        match stats.resolutions.get(class) {
            None => violations.push(format!("{class}: fired but no typed resolution recorded")),
            Some(r)
                if matches!(class.as_str(), "garbage-bytes" | "oversized-frame")
                    && !r.starts_with("error:") =>
            {
                violations.push(format!("{class}: resolved `{r}`, not a typed server error"))
            }
            Some(_) => {}
        }
    }
    CaseOutcome { violations, stats, fired, server }
}

/// Runs the probe + the full fault matrix.
pub fn run_net_matrix(cfg: &NetTortureConfig) -> NetTortureReport {
    let mut report = NetTortureReport::default();
    let dir = cfg.sock_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("fp16mg-nettorture-{}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&dir) {
        report.violations.push(format!("socket dir {}: {e}", dir.display()));
        return report;
    }
    let mut case_id = 0usize;
    let sock = |id: &mut usize| {
        let p = dir.join(format!("c{}.sock", *id));
        *id += 1;
        p
    };

    // --- Probe: a fault-free run enumerates every frame boundary (the
    // transport op log) and captures the reference durable trail every
    // fault case must reproduce bit-for-bit.
    let reference_storage = FaultStorage::new();
    let reference = {
        let server_storage: Arc<dyn Storage> = Arc::new(reference_storage.clone());
        let endpoint = Endpoint::Unix(sock(&mut case_id));
        let sc = server_cfg(cfg, endpoint.clone(), false);
        let handle = std::thread::spawn(move || serve_net(&sc, server_storage));
        let ft = FaultTransport::new();
        let mut client = Client::with_transport(client_cfg(endpoint), ft.clone());
        for seq in 0..cfg.requests {
            let req = SubmitRequest {
                key: seq,
                size: cfg.size as u32,
                tol: cfg.tol,
                priority: priority_for(seq),
            };
            if let Err(e) = client.submit(req) {
                report.violations.push(format!("reference run seq={seq}: {e}"));
            }
        }
        let _ = client.shutdown();
        let _ = handle.join();
        (durable_lines(&reference_storage), ft.op_log())
    };
    let (reference, op_log) = reference;
    if reference.len() as u64 != cfg.requests {
        report.violations.push(format!(
            "reference trail has {} lines for {} requests",
            reference.len(),
            cfg.requests
        ));
        return report;
    }
    println!(
        "probe: {} frame ops over {} requests, reference trail {} lines",
        op_log.len(),
        cfg.requests,
        reference.len()
    );

    let submit_kind =
        Frame::Submit(SubmitRequest { key: 0, size: 8, tol: 1e-6, priority: 1 }).kind();
    let send_ops: Vec<u64> = op_log
        .iter()
        .filter(|op| matches!(op.kind, NetOpKind::Send(_)))
        .map(|op| op.index)
        .collect();
    let submit_ops: Vec<u64> = op_log
        .iter()
        .filter(|op| matches!(op.kind, NetOpKind::Send(k) if k == submit_kind))
        .map(|op| op.index)
        .collect();
    let all_ops: Vec<u64> = op_log.iter().map(|op| op.index).collect();

    // --- Phase schedules ---------------------------------------------
    let mut cases: Vec<(String, Vec<(u64, NetFault)>)> = Vec::new();
    for &i in &all_ops {
        cases.push((format!("reset@op{i}"), vec![(i, NetFault::Reset)]));
    }
    for &i in &send_ops {
        cases.push((format!("torn@op{i}"), vec![(i, NetFault::Torn)]));
        cases.push((format!("garbage@op{i}"), vec![(i, NetFault::Garbage { len: 64 })]));
        cases.push((format!("oversized@op{i}"), vec![(i, NetFault::Oversized)]));
    }
    for &i in &submit_ops {
        cases.push((format!("duplicate@op{i}"), vec![(i, NetFault::Duplicate)]));
    }
    // Stalls are wall-clock (each case blocks for `stall_ms`), so the
    // phase samples the first, middle, and last submit boundaries.
    let stall_picks = [
        submit_ops.first().copied(),
        submit_ops.get(submit_ops.len() / 2).copied(),
        submit_ops.last().copied(),
    ];
    let mut stall_seen = std::collections::BTreeSet::new();
    for i in stall_picks.into_iter().flatten() {
        if stall_seen.insert(i) {
            cases.push((format!("stall@op{i}"), vec![(i, NetFault::Stall { ms: cfg.stall_ms })]));
        }
    }

    // --- Run the matrix ----------------------------------------------
    for (name, schedule) in cases {
        let out = run_case(cfg, sock(&mut case_id), &schedule, false, &reference);
        for (class, n) in &out.fired {
            *report.fired.entry(class.clone()).or_insert(0) += n;
        }
        report.duplicate_acks += out.stats.duplicate_acks + out.server.counters.duplicate_acks;
        report.resubmissions += out.stats.resubmissions;
        if schedule.iter().any(|(_, f)| matches!(f, NetFault::Stall { .. }))
            && out.server.counters.wire_errors.get("deadline").copied().unwrap_or(0) == 0
        {
            report.cases.push(CaseRow {
                name,
                ok: false,
                detail: "stall never tripped the server's read deadline".into(),
            });
            continue;
        }
        let ok = out.violations.is_empty();
        let detail = out.violations.join("; ");
        report.cases.push(CaseRow { name, ok, detail });
    }

    // --- Phase G: the self-check -------------------------------------
    // A server that acks before anything is durable must be caught by
    // the instant invariant; otherwise the matrix is decorative.
    let g = run_case(cfg, sock(&mut case_id), &[], true, &[]);
    report.self_check_ok = g.violations.iter().any(|v| v.contains("ACKED BUT NOT DURABLE"));
    if !report.self_check_ok {
        report
            .violations
            .push("self-check: broken ack order was NOT detected by the instant invariant".into());
    }

    // --- Aggregates ---------------------------------------------------
    for class in NetFault::all_labels() {
        if report.fired.get(class).copied().unwrap_or(0) == 0 {
            report.violations.push(format!("fault class `{class}` never fired"));
        }
    }
    if report.duplicate_acks == 0 {
        report.violations.push(
            "no resubmission was ever answered with duplicate=true — dedup never proven".into(),
        );
    }
    if report.resubmissions == 0 {
        report.violations.push("no case forced an idempotent resubmission".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// CLI driver (`repro nettorture`). Prints the matrix and returns the
/// process exit code.
pub fn run_nettorture_cli(cfg: &NetTortureConfig) -> i32 {
    println!(
        "wire-fault torture: {} requests/case, size {}, server deadline {} ms",
        cfg.requests, cfg.size, cfg.conn_deadline_ms
    );
    let report = run_net_matrix(cfg);
    let failed: Vec<&CaseRow> = report.cases.iter().filter(|c| !c.ok).collect();
    println!(
        "cases: {} total, {} failed | fired: {}",
        report.cases.len(),
        failed.len(),
        report.fired.iter().map(|(k, v)| format!("{k}×{v}")).collect::<Vec<_>>().join(" "),
    );
    println!(
        "dedup: {} duplicate acks over {} resubmissions | self-check: {}",
        report.duplicate_acks,
        report.resubmissions,
        if report.self_check_ok { "broken ack order detected" } else { "FAILED" },
    );
    for c in &failed {
        eprintln!("case {} FAILED: {}", c.name, c.detail);
    }
    for v in &report.violations {
        eprintln!("nettorture violation: {v}");
    }
    if report.passed() {
        println!("nettorture: every acked request durable at every crash point, exactly-once held");
        0
    } else {
        1
    }
}
