//! The `repro serve` demo: a batch of concurrent resilient solve
//! sessions through `fp16mg_runtime`.
//!
//! Builds a mixed batch — clean problems, fault-injected hierarchies
//! that must climb the retry ladder, a request with a deliberately
//! impossible tolerance, one bounded by a wall-clock deadline, and one
//! that panics its worker — runs them all on the concurrent pool, and
//! prints a per-request outcome table. The point of the demo: every
//! request ends in a *typed* outcome, the panic is isolated to its own
//! request, and the fault-injected requests converge anyway with their
//! rung sequence on record.

use std::time::Duration;

use fp16mg_core::{IntegrityPolicy, MgConfig, RecoveryPolicy};
use fp16mg_krylov::{HealthPolicy, SolveError, SolveOptions};
use fp16mg_problems::{ProblemKind, SolverKind};
use fp16mg_runtime::{
    run_batch, AdmissionConfig, BreakerConfig, BreakerState, BreakerTransition, Budget, FaultPlan,
    LevelBitFlip, PoolConfig, Priority, RequestOutcome, RetryPolicy, Rung, ServeError, ServePool,
    ShedPolicy, SolveRequest, SolverChoice,
};
use fp16mg_sgdia::fault::FaultSpec;

use crate::table::Table;

/// Knobs of the serve demo, filled from the `repro` command line.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of requests in the batch.
    pub requests: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Problem base extent.
    pub size: usize,
    /// Convergence tolerance for the well-posed requests.
    pub tol: f64,
    /// Deadline for the deadline-limited scenario, in milliseconds.
    pub deadline_ms: f64,
    /// Chaos mode: mix seeded bit-flip memory corruption into the batch
    /// so the integrity sentinels and the `repair-level` rung must keep
    /// the pool healthy.
    pub chaos: bool,
}

/// One short scenario tag per request, cycled over the batch.
const SCENARIOS: [&str; 8] = [
    "clean",
    "fault→promote",
    "clean",
    "fault→f32",
    "panic",
    "deadline",
    "fault→f64",
    "no-converge",
];

/// The `--chaos` batch: single-event bit-flip upsets in mid-hierarchy
/// FP16 coefficient planes, alongside clean solves, a rate-based fault
/// climber, and a worker panic — request isolation must hold under
/// memory faults too.
const CHAOS_SCENARIOS: [&str; 8] = [
    "flip→repair",
    "clean",
    "flip→repair",
    "flip→anomaly",
    "panic",
    "flip→repair",
    "fault→promote",
    "flip→anomaly",
];

/// Off-diagonal taps of the 27-point pattern whose level-1 couplings are
/// small enough that an exponent-MSB upset is catastrophic (verified by
/// the runtime integrity tests): each chaos flip lands on one of these.
const FLIP_TAPS: [usize; 6] = [0, 2, 5, 9, 17, 26];

fn build_requests(cfg: &ServeConfig) -> Vec<SolveRequest> {
    let kinds = [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Oil, ProblemKind::Weather];
    let scenarios: &[&'static str] = if cfg.chaos { &CHAOS_SCENARIOS } else { &SCENARIOS };
    let n = cfg.size;
    (0..cfg.requests)
        .map(|i| {
            let scenario = scenarios[i % scenarios.len()];
            let kind = kinds[i % kinds.len()];
            let name = format!("{scenario}#{i:02}");
            match scenario {
                "fault→promote" | "fault→f32" | "fault→f64" => {
                    let sticky = match scenario {
                        "fault→promote" => Rung::PromoteNarrow,
                        "fault→f32" => Rung::RebuildF32,
                        _ => Rung::RebuildF64,
                    };
                    // In-hierarchy self-healing off: the *ladder* must fix it.
                    let mut base = MgConfig::d16();
                    base.recovery = RecoveryPolicy::disabled();
                    let mut req = SolveRequest::new(name, ProblemKind::Laplace27.build(n), base);
                    req.opts.tol = cfg.tol;
                    req.policy = RetryPolicy {
                        attempts: [1, 1, 1, 1, 1],
                        backoff: Duration::from_micros(200),
                        seed: 0xfeed ^ i as u64,
                        ..RetryPolicy::default()
                    };
                    req.fault = Some(FaultPlan {
                        spec: FaultSpec::inf(0.02, 0xfeed ^ i as u64),
                        flip: None,
                        sticky_until: sticky,
                    });
                    req
                }
                "flip→repair" | "flip→anomaly" => {
                    // A single-event upset in a mid-hierarchy FP16 plane.
                    // Self-healing promotion off, full ABFT on: the
                    // sentinels must detect, localize, and repair. The
                    // problem extent is pinned to 12 so the d16 hierarchy
                    // always has a 16-bit mid level (level 1) to corrupt,
                    // and Richardson is chosen because multigrid-as-solver
                    // feels a poisoned level immediately.
                    let mut base = MgConfig::d16();
                    base.recovery = RecoveryPolicy::disabled();
                    base.integrity = IntegrityPolicy::armed(0);
                    base.integrity.verify_on_anomaly = scenario == "flip→anomaly";
                    let mut req = SolveRequest::new(name, ProblemKind::Laplace27.build(12), base);
                    req.solver = SolverChoice::Richardson;
                    req.opts.tol = cfg.tol.max(1e-6);
                    req.opts.max_iters = 40;
                    req.policy = RetryPolicy {
                        attempts: [1, 1, 1, 1, 1],
                        backoff: Duration::from_micros(200),
                        seed: 0xab15 ^ i as u64,
                        ..RetryPolicy::default()
                    };
                    req.fault = Some(FaultPlan {
                        spec: FaultSpec::none(0xab15 ^ i as u64),
                        flip: Some(LevelBitFlip {
                            level: 1,
                            tap: FLIP_TAPS[i % FLIP_TAPS.len()],
                            bit: 14,
                        }),
                        sticky_until: Rung::PromoteNarrow,
                    });
                    req
                }
                "panic" => {
                    let mut req =
                        SolveRequest::new(name, ProblemKind::Laplace27.build(n), MgConfig::d16());
                    req.panic_in_worker = true;
                    req
                }
                "deadline" => {
                    // An endless solve (tolerance zero, stagnation detection
                    // off) that only the wall-clock budget can stop.
                    let mut req =
                        SolveRequest::new(name, ProblemKind::Laplace27.build(n), MgConfig::d16());
                    req.opts = SolveOptions {
                        tol: 0.0,
                        health: HealthPolicy::disabled(),
                        record_history: false,
                        ..Default::default()
                    };
                    req.budget = Budget::with_deadline(Duration::from_secs_f64(
                        (cfg.deadline_ms * 1e-3).max(1e-3),
                    ));
                    req
                }
                "no-converge" => {
                    let mut req =
                        SolveRequest::new(name, ProblemKind::Laplace27.build(n), MgConfig::d16());
                    req.opts = SolveOptions {
                        tol: 0.0,
                        max_iters: 25,
                        health: HealthPolicy::disabled(),
                        record_history: false,
                        ..Default::default()
                    };
                    req.budget.max_iters = Some(50);
                    req
                }
                _ => {
                    let mut req = SolveRequest::new(name, kind.build(n), MgConfig::d16());
                    req.opts.tol = cfg.tol;
                    req
                }
            }
        })
        .collect()
}

fn outcome_label(outcome: &RequestOutcome) -> &'static str {
    match &outcome.result {
        Ok(_) => "converged",
        Err(ServeError::Rejected(e)) => e.label(),
        Err(ServeError::Session(SolveError::Breakdown(_))) => "breakdown",
        Err(ServeError::Session(SolveError::Stagnated(_))) => "stagnated",
        Err(ServeError::Session(SolveError::DeadlineExceeded { .. })) => "deadline",
        Err(ServeError::Session(SolveError::Cancelled { .. })) => "cancelled",
        Err(ServeError::Session(SolveError::VcycleBudgetExceeded { .. })) => "vcycle-budget",
        Err(ServeError::Session(SolveError::Unconverged { .. })) => "unconverged",
        Err(ServeError::Session(SolveError::SetupFailed { .. })) => "setup-failed",
        Err(ServeError::Session(SolveError::WorkerPanicked { .. })) => "panicked(isolated)",
    }
}

/// Runs the batch and prints the outcome table. Returns the outcomes so
/// integration tests can assert on them.
pub fn serve(cfg: &ServeConfig) -> Vec<RequestOutcome> {
    let requests = build_requests(cfg);
    let meta: Vec<(&'static str, SolverKind, SolverChoice)> =
        requests.iter().map(|r| (r.problem.name, r.problem.solver, r.solver)).collect();
    println!(
        "dispatching {} requests on {} workers (size {}, tol {:.0e}, deadline {:.0} ms{})",
        requests.len(),
        cfg.workers,
        cfg.size,
        cfg.tol,
        cfg.deadline_ms,
        if cfg.chaos { ", chaos: seeded bit flips armed" } else { "" }
    );

    // Injected worker panics are expected and contained; keep their
    // default stderr traces out of the report.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = run_batch(requests, cfg.workers);
    std::panic::set_hook(hook);

    let mut t = Table::new(&[
        "req",
        "problem",
        "solver",
        "outcome",
        "rungs",
        "repairs",
        "iters",
        "vcycles",
        "rel.resid",
        "time",
    ]);
    for out in &outcomes {
        let rel = match &out.result {
            Ok(res) => Some(res.final_rel_residual),
            Err(_) => out.report.attempts.last().map(|a| a.rel),
        };
        let (problem, solver_kind, choice) = meta[out.index];
        let solver = match choice {
            SolverChoice::Cg => "cg",
            SolverChoice::Gmres => "gmres",
            SolverChoice::BiCgStab => "bicgstab",
            SolverChoice::Richardson => "richardson",
            SolverChoice::Auto => match solver_kind {
                SolverKind::Cg => "cg",
                SolverKind::Gmres => "gmres",
            },
        };
        let repairs = out
            .report
            .repairs
            .iter()
            .map(|e| {
                let taps: Vec<String> = e.taps.iter().map(|t| format!("t{t}")).collect();
                format!("L{}:{}", e.level, taps.join("+"))
            })
            .collect::<Vec<_>>()
            .join(";");
        t.row(vec![
            out.name.clone(),
            problem.to_string(),
            solver.to_string(),
            outcome_label(out).to_string(),
            if out.report.attempts.is_empty() { "-".into() } else { out.report.summary() },
            if repairs.is_empty() { "-".into() } else { repairs },
            out.iters.to_string(),
            out.vcycles.to_string(),
            rel.map(|r| format!("{r:9.2e}")).unwrap_or_else(|| "-".into()),
            format!("{:7.1} ms", out.seconds * 1e3),
        ]);
    }
    print!("{t}");

    let converged = outcomes.iter().filter(|o| o.converged()).count();
    let panicked = outcomes
        .iter()
        .filter(|o| matches!(o.result, Err(ServeError::Session(SolveError::WorkerPanicked { .. }))))
        .count();
    let healed = outcomes.iter().filter(|o| o.converged() && o.report.attempts.len() > 1).count();
    let repaired: usize = outcomes.iter().map(|o| o.report.repairs.len()).sum();
    println!(
        "\n{converged}/{} converged ({healed} via retry-ladder escalation, \
         {repaired} localized level repair(s)), \
         {panicked} worker panic(s) isolated, every outcome typed, process intact",
        outcomes.len()
    );
    outcomes
}

// ------------------------------------------------------------ overload --

/// Knobs of the `repro serve --overload` demo.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Problem base extent (kept small: this demo is about admission, not
    /// numerics).
    pub size: usize,
    /// Convergence tolerance for the healthy requests.
    pub tol: f64,
    /// Worker threads executing admitted requests.
    pub workers: usize,
}

/// What the overload demo produced, for the acceptance checks and the
/// integration test.
#[derive(Debug)]
pub struct OverloadReport {
    /// `(wave name, outcomes)` in execution order.
    pub waves: Vec<(&'static str, Vec<RequestOutcome>)>,
    /// Every breaker state change observed, in order.
    pub transitions: Vec<BreakerTransition>,
    /// Acceptance-criteria violations (empty on a healthy run).
    pub violations: Vec<String>,
}

impl OverloadReport {
    /// All outcomes across all waves.
    pub fn outcomes(&self) -> impl Iterator<Item = &RequestOutcome> {
        self.waves.iter().flat_map(|(_, o)| o.iter())
    }
}

/// A healthy, quickly converging request of the given class/priority.
fn healthy_request(
    name: String,
    class: &str,
    priority: Priority,
    size: usize,
    tol: f64,
) -> SolveRequest {
    let mut req = SolveRequest::new(name, ProblemKind::Laplace27.build(size), MgConfig::d16());
    req.class = class.to_string();
    req.priority = priority;
    req.opts.tol = tol;
    req.opts.record_history = false;
    if priority == Priority::Interactive {
        // Generous deadline: exercises the slack component of the
        // pressure signal without ever being the thing that fails.
        req.budget = Budget::with_deadline(Duration::from_secs(30));
    }
    req
}

/// A deterministically failing request: tolerance zero, health checks
/// off, four iterations, no retries — terminal `Unconverged`, fast.
fn poisoned_request(name: String, size: usize) -> SolveRequest {
    let mut req = SolveRequest::new(name, ProblemKind::Laplace27.build(size), MgConfig::d16());
    req.class = "poison".to_string();
    req.opts = SolveOptions {
        tol: 0.0,
        health: HealthPolicy::disabled(),
        record_history: false,
        ..Default::default()
    };
    req.budget.max_iters = Some(4);
    req.policy = RetryPolicy::fail_fast();
    req
}

fn overload_pool(cfg: &OverloadConfig) -> ServePool {
    ServePool::new(PoolConfig {
        workers: cfg.workers,
        admission: AdmissionConfig {
            capacity: 8,
            per_priority: [6, 6, 4],
            est_service: Duration::from_millis(50),
        },
        shed: ShedPolicy {
            reduce_at: 0.4,
            economy_at: 0.7,
            shed_at: [f64::INFINITY, 0.95, 0.6],
            ..ShedPolicy::default()
        },
        breaker: BreakerConfig {
            window: 6,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: 3,
            cooldown_jitter: 0,
            probes: 1,
            probe_successes: 1,
            ..BreakerConfig::default()
        },
        ..PoolConfig::default()
    })
}

fn print_wave(title: &str, outcomes: &[RequestOutcome]) {
    println!("\n--- wave: {title} ---");
    let mut t = Table::new(&[
        "req",
        "prio",
        "class",
        "admission",
        "profile",
        "outcome",
        "degrades",
        "iters",
        "rel.resid",
        "time",
    ]);
    for out in outcomes {
        let admission = match (&out.result, out.probe) {
            (Err(ServeError::Rejected(e)), _) => e.label().to_string(),
            (_, true) => "probe".to_string(),
            _ => "admitted".to_string(),
        };
        let degrades = out.degrades.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("; ");
        let rel = match &out.result {
            Ok(res) => Some(res.final_rel_residual),
            Err(_) => out.report.attempts.last().map(|a| a.rel),
        };
        t.row(vec![
            out.name.clone(),
            out.priority.label().to_string(),
            out.class.clone(),
            admission,
            out.profile.label().to_string(),
            outcome_label(out).to_string(),
            if degrades.is_empty() { "-".into() } else { degrades },
            out.iters.to_string(),
            rel.map(|r| format!("{r:9.2e}")).unwrap_or_else(|| "-".into()),
            format!("{:7.1} ms", out.seconds * 1e3),
        ]);
    }
    print!("{t}");
}

/// Runs the overload-protection acceptance demo: four deterministic
/// waves through one [`ServePool`] (breaker state persists across
/// waves).
///
/// 1. **overload** — 18 healthy mixed-priority requests against a
///    capacity-8 queue: BestEffort is shed first under rising pressure,
///    admitted work degrades (Reduced, then Economy) and still
///    converges, the rest is refused `queue-full`. Interactive is never
///    shed.
/// 2. **poison** — five deterministically failing requests of one
///    problem class trip that class's breaker (Closed → Open).
/// 3. **recovery** — healthy requests of the poisoned class: the first
///    are refused `breaker-open` while the cooldown counts down, then
///    one is admitted as the half-open probe, converges, and closes the
///    breaker.
/// 4. **recovered** — the class serves normally again.
///
/// Every request across all waves ends typed: converged (possibly with
/// a [`fp16mg_runtime::DegradeEvent`] trail) or rejected with a typed
/// `AdmissionError`. Violations of these invariants are collected in
/// the report — and there should be none.
pub fn serve_overload(cfg: &OverloadConfig) -> OverloadReport {
    let size = cfg.size.clamp(6, 12);
    let mut pool = overload_pool(cfg);
    println!(
        "overload demo: queue capacity 8 (per-priority 6/6/4), {} workers, \
         shed at pressure 0.6 (best-effort) / 0.95 (batch) / never (interactive), \
         degrade at 0.4 (reduced) / 0.7 (economy), breaker window 6 @ 50% over ≥4 samples",
        cfg.workers
    );

    // Wave 1: oversubscription. 18 requests, priorities cycling
    // interactive → batch → best-effort, all of one healthy class.
    let wave1: Vec<SolveRequest> = (0..18)
        .map(|i| {
            let priority = Priority::ALL[i % 3];
            healthy_request(format!("{}#{i:02}", priority.label()), "mix", priority, size, cfg.tol)
        })
        .collect();
    let out1 = pool.run(wave1);
    print_wave("overload (18 mixed-priority requests, capacity 8)", &out1);

    // Wave 2: a poisoned class trips its breaker.
    let wave2: Vec<SolveRequest> =
        (0..5).map(|i| poisoned_request(format!("poison#{i:02}"), size)).collect();
    let out2 = pool.run(wave2);
    print_wave("poison (5 terminal failures in class 'poison')", &out2);

    // Wave 3: cooldown, then the half-open probe heals the class.
    let wave3: Vec<SolveRequest> = (0..3)
        .map(|i| {
            healthy_request(format!("recover#{i:02}"), "poison", Priority::Batch, size, cfg.tol)
        })
        .collect();
    let out3 = pool.run(wave3);
    print_wave("recovery (healthy 'poison'-class requests vs the open breaker)", &out3);

    // Wave 4: the class is healthy again.
    let wave4: Vec<SolveRequest> = (0..4)
        .map(|i| {
            healthy_request(format!("healed#{i:02}"), "poison", Priority::Batch, size, cfg.tol)
        })
        .collect();
    let out4 = pool.run(wave4);
    print_wave("recovered (breaker closed again)", &out4);

    let transitions = pool.breakers().transitions().to_vec();
    println!("\nbreaker transitions:");
    for tr in &transitions {
        println!("  {tr}");
    }

    let waves: Vec<(&'static str, Vec<RequestOutcome>)> =
        vec![("overload", out1), ("poison", out2), ("recovery", out3), ("recovered", out4)];
    let violations = check_overload(&waves, &transitions);
    if violations.is_empty() {
        let total: usize = waves.iter().map(|(_, o)| o.len()).sum();
        println!(
            "\nall {total} requests ended typed (admitted+converged, admitted+degraded \
             with event trail, or rejected with a typed AdmissionError); \
             best-effort shed first, interactive never shed; breaker opened on the \
             poisoned class and recovered via its half-open probe"
        );
    } else {
        println!("\nACCEPTANCE VIOLATIONS:");
        for v in &violations {
            println!("  - {v}");
        }
    }
    OverloadReport { waves, transitions, violations }
}

/// The acceptance checks of the overload demo, as data.
fn check_overload(
    waves: &[(&'static str, Vec<RequestOutcome>)],
    transitions: &[BreakerTransition],
) -> Vec<String> {
    use fp16mg_runtime::AdmissionError;
    let mut v = Vec::new();
    let wave = |name: &str| {
        waves.iter().find(|(n, _)| *n == name).map(|(_, o)| o.as_slice()).unwrap_or(&[])
    };

    // Universal: nothing untyped, nothing panicked, solutions for every Ok.
    for (name, outcomes) in waves {
        for out in outcomes.iter() {
            if let Err(ServeError::Session(SolveError::WorkerPanicked { .. })) = out.result {
                v.push(format!("{name}/{}: worker panic in an overload wave", out.name));
            }
            if out.converged() && out.solution.is_none() {
                v.push(format!("{name}/{}: converged without a solution", out.name));
            }
        }
    }

    // Wave 1: bounded queueing, shed order, degraded convergence.
    let o1 = wave("overload");
    let admitted = o1.iter().filter(|o| o.rejection().is_none()).count();
    if admitted > 8 {
        v.push(format!("overload: {admitted} admitted past the capacity-8 queue"));
    }
    let shed: Vec<_> =
        o1.iter().filter(|o| matches!(o.rejection(), Some(AdmissionError::Shed { .. }))).collect();
    if shed.is_empty() {
        v.push("overload: nothing was shed".into());
    }
    if let Some(first) = shed.first() {
        if first.priority != Priority::BestEffort {
            v.push(format!("overload: first shed was {}, not best-effort", first.priority));
        }
    }
    if shed.iter().any(|o| o.priority == Priority::Interactive) {
        v.push("overload: an interactive request was shed".into());
    }
    if !o1.iter().any(|o| matches!(o.rejection(), Some(AdmissionError::QueueFull { .. }))) {
        v.push("overload: the queue bound never engaged".into());
    }
    let degraded_ok = o1.iter().filter(|o| o.degraded() && o.converged()).count();
    if degraded_ok == 0 {
        v.push("overload: no degraded request converged".into());
    }
    if o1.iter().any(|o| o.degraded() && o.degrades.is_empty()) {
        v.push("overload: a degraded request has no DegradeEvent trail".into());
    }
    for out in o1.iter().filter(|o| o.rejection().is_none()) {
        if !out.converged() {
            v.push(format!("overload/{}: admitted healthy request failed", out.name));
        }
    }

    // Waves 2–4: the breaker story.
    let seq: Vec<(BreakerState, BreakerState)> =
        transitions.iter().filter(|t| t.class == "poison").map(|t| (t.from, t.to)).collect();
    let expect = [
        (BreakerState::Closed, BreakerState::Open),
        (BreakerState::Open, BreakerState::HalfOpen),
        (BreakerState::HalfOpen, BreakerState::Closed),
    ];
    if seq != expect {
        v.push(format!("breaker: transition sequence {seq:?}, expected {expect:?}"));
    }
    let o3 = wave("recovery");
    let open_rejects = o3
        .iter()
        .filter(|o| matches!(o.rejection(), Some(AdmissionError::BreakerOpen { .. })))
        .count();
    if open_rejects == 0 {
        v.push("recovery: the open breaker never rejected anything".into());
    }
    match o3.iter().find(|o| o.probe) {
        Some(probe) if !probe.converged() => v.push("recovery: the half-open probe failed".into()),
        None => v.push("recovery: no half-open probe was admitted".into()),
        _ => {}
    }
    let o4 = wave("recovered");
    if o4.is_empty() || !o4.iter().all(|o| o.converged()) {
        v.push("recovered: the healed class did not serve cleanly".into());
    }
    v
}
