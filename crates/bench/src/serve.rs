//! The `repro serve` demo: a batch of concurrent resilient solve
//! sessions through `fp16mg_runtime`.
//!
//! Builds a mixed batch — clean problems, fault-injected hierarchies
//! that must climb the retry ladder, a request with a deliberately
//! impossible tolerance, one bounded by a wall-clock deadline, and one
//! that panics its worker — runs them all on the concurrent pool, and
//! prints a per-request outcome table. The point of the demo: every
//! request ends in a *typed* outcome, the panic is isolated to its own
//! request, and the fault-injected requests converge anyway with their
//! rung sequence on record.

use std::time::Duration;

use fp16mg_core::{IntegrityPolicy, MgConfig, RecoveryPolicy};
use fp16mg_krylov::{HealthPolicy, SolveError, SolveOptions};
use fp16mg_problems::{ProblemKind, SolverKind};
use fp16mg_runtime::{
    run_batch, Budget, FaultPlan, LevelBitFlip, RequestOutcome, RetryPolicy, Rung, SolveRequest,
    SolverChoice,
};
use fp16mg_sgdia::fault::FaultSpec;

use crate::table::Table;

/// Knobs of the serve demo, filled from the `repro` command line.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of requests in the batch.
    pub requests: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Problem base extent.
    pub size: usize,
    /// Convergence tolerance for the well-posed requests.
    pub tol: f64,
    /// Deadline for the deadline-limited scenario, in milliseconds.
    pub deadline_ms: f64,
    /// Chaos mode: mix seeded bit-flip memory corruption into the batch
    /// so the integrity sentinels and the `repair-level` rung must keep
    /// the pool healthy.
    pub chaos: bool,
}

/// One short scenario tag per request, cycled over the batch.
const SCENARIOS: [&str; 8] = [
    "clean",
    "fault→promote",
    "clean",
    "fault→f32",
    "panic",
    "deadline",
    "fault→f64",
    "no-converge",
];

/// The `--chaos` batch: single-event bit-flip upsets in mid-hierarchy
/// FP16 coefficient planes, alongside clean solves, a rate-based fault
/// climber, and a worker panic — request isolation must hold under
/// memory faults too.
const CHAOS_SCENARIOS: [&str; 8] = [
    "flip→repair",
    "clean",
    "flip→repair",
    "flip→anomaly",
    "panic",
    "flip→repair",
    "fault→promote",
    "flip→anomaly",
];

/// Off-diagonal taps of the 27-point pattern whose level-1 couplings are
/// small enough that an exponent-MSB upset is catastrophic (verified by
/// the runtime integrity tests): each chaos flip lands on one of these.
const FLIP_TAPS: [usize; 6] = [0, 2, 5, 9, 17, 26];

fn build_requests(cfg: &ServeConfig) -> Vec<SolveRequest> {
    let kinds = [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Oil, ProblemKind::Weather];
    let scenarios: &[&'static str] = if cfg.chaos { &CHAOS_SCENARIOS } else { &SCENARIOS };
    let n = cfg.size;
    (0..cfg.requests)
        .map(|i| {
            let scenario = scenarios[i % scenarios.len()];
            let kind = kinds[i % kinds.len()];
            let name = format!("{scenario}#{i:02}");
            match scenario {
                "fault→promote" | "fault→f32" | "fault→f64" => {
                    let sticky = match scenario {
                        "fault→promote" => Rung::PromoteNarrow,
                        "fault→f32" => Rung::RebuildF32,
                        _ => Rung::RebuildF64,
                    };
                    // In-hierarchy self-healing off: the *ladder* must fix it.
                    let mut base = MgConfig::d16();
                    base.recovery = RecoveryPolicy::disabled();
                    let mut req = SolveRequest::new(name, ProblemKind::Laplace27.build(n), base);
                    req.opts.tol = cfg.tol;
                    req.policy = RetryPolicy {
                        attempts: [1, 1, 1, 1, 1],
                        backoff: Duration::from_micros(200),
                        seed: 0xfeed ^ i as u64,
                        ..RetryPolicy::default()
                    };
                    req.fault = Some(FaultPlan {
                        spec: FaultSpec::inf(0.02, 0xfeed ^ i as u64),
                        flip: None,
                        sticky_until: sticky,
                    });
                    req
                }
                "flip→repair" | "flip→anomaly" => {
                    // A single-event upset in a mid-hierarchy FP16 plane.
                    // Self-healing promotion off, full ABFT on: the
                    // sentinels must detect, localize, and repair. The
                    // problem extent is pinned to 12 so the d16 hierarchy
                    // always has a 16-bit mid level (level 1) to corrupt,
                    // and Richardson is chosen because multigrid-as-solver
                    // feels a poisoned level immediately.
                    let mut base = MgConfig::d16();
                    base.recovery = RecoveryPolicy::disabled();
                    base.integrity = IntegrityPolicy::armed(0);
                    base.integrity.verify_on_anomaly = scenario == "flip→anomaly";
                    let mut req = SolveRequest::new(name, ProblemKind::Laplace27.build(12), base);
                    req.solver = SolverChoice::Richardson;
                    req.opts.tol = cfg.tol.max(1e-6);
                    req.opts.max_iters = 40;
                    req.policy = RetryPolicy {
                        attempts: [1, 1, 1, 1, 1],
                        backoff: Duration::from_micros(200),
                        seed: 0xab15 ^ i as u64,
                        ..RetryPolicy::default()
                    };
                    req.fault = Some(FaultPlan {
                        spec: FaultSpec::none(0xab15 ^ i as u64),
                        flip: Some(LevelBitFlip {
                            level: 1,
                            tap: FLIP_TAPS[i % FLIP_TAPS.len()],
                            bit: 14,
                        }),
                        sticky_until: Rung::PromoteNarrow,
                    });
                    req
                }
                "panic" => {
                    let mut req =
                        SolveRequest::new(name, ProblemKind::Laplace27.build(n), MgConfig::d16());
                    req.panic_in_worker = true;
                    req
                }
                "deadline" => {
                    // An endless solve (tolerance zero, stagnation detection
                    // off) that only the wall-clock budget can stop.
                    let mut req =
                        SolveRequest::new(name, ProblemKind::Laplace27.build(n), MgConfig::d16());
                    req.opts = SolveOptions {
                        tol: 0.0,
                        health: HealthPolicy::disabled(),
                        record_history: false,
                        ..Default::default()
                    };
                    req.budget = Budget::with_deadline(Duration::from_secs_f64(
                        (cfg.deadline_ms * 1e-3).max(1e-3),
                    ));
                    req
                }
                "no-converge" => {
                    let mut req =
                        SolveRequest::new(name, ProblemKind::Laplace27.build(n), MgConfig::d16());
                    req.opts = SolveOptions {
                        tol: 0.0,
                        max_iters: 25,
                        health: HealthPolicy::disabled(),
                        record_history: false,
                        ..Default::default()
                    };
                    req.budget.max_iters = Some(50);
                    req
                }
                _ => {
                    let mut req = SolveRequest::new(name, kind.build(n), MgConfig::d16());
                    req.opts.tol = cfg.tol;
                    req
                }
            }
        })
        .collect()
}

fn outcome_label(outcome: &RequestOutcome) -> &'static str {
    match &outcome.result {
        Ok(_) => "converged",
        Err(SolveError::Breakdown(_)) => "breakdown",
        Err(SolveError::Stagnated(_)) => "stagnated",
        Err(SolveError::DeadlineExceeded { .. }) => "deadline",
        Err(SolveError::Cancelled { .. }) => "cancelled",
        Err(SolveError::VcycleBudgetExceeded { .. }) => "vcycle-budget",
        Err(SolveError::Unconverged { .. }) => "unconverged",
        Err(SolveError::SetupFailed { .. }) => "setup-failed",
        Err(SolveError::WorkerPanicked { .. }) => "panicked(isolated)",
    }
}

/// Runs the batch and prints the outcome table. Returns the outcomes so
/// integration tests can assert on them.
pub fn serve(cfg: &ServeConfig) -> Vec<RequestOutcome> {
    let requests = build_requests(cfg);
    let meta: Vec<(&'static str, SolverKind, SolverChoice)> =
        requests.iter().map(|r| (r.problem.name, r.problem.solver, r.solver)).collect();
    println!(
        "dispatching {} requests on {} workers (size {}, tol {:.0e}, deadline {:.0} ms{})",
        requests.len(),
        cfg.workers,
        cfg.size,
        cfg.tol,
        cfg.deadline_ms,
        if cfg.chaos { ", chaos: seeded bit flips armed" } else { "" }
    );

    // Injected worker panics are expected and contained; keep their
    // default stderr traces out of the report.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = run_batch(requests, cfg.workers);
    std::panic::set_hook(hook);

    let mut t = Table::new(&[
        "req",
        "problem",
        "solver",
        "outcome",
        "rungs",
        "repairs",
        "iters",
        "vcycles",
        "rel.resid",
        "time",
    ]);
    for out in &outcomes {
        let rel = match &out.result {
            Ok(res) => Some(res.final_rel_residual),
            Err(_) => out.report.attempts.last().map(|a| a.rel),
        };
        let (problem, solver_kind, choice) = meta[out.index];
        let solver = match choice {
            SolverChoice::Cg => "cg",
            SolverChoice::Gmres => "gmres",
            SolverChoice::BiCgStab => "bicgstab",
            SolverChoice::Richardson => "richardson",
            SolverChoice::Auto => match solver_kind {
                SolverKind::Cg => "cg",
                SolverKind::Gmres => "gmres",
            },
        };
        let repairs = out
            .report
            .repairs
            .iter()
            .map(|e| {
                let taps: Vec<String> = e.taps.iter().map(|t| format!("t{t}")).collect();
                format!("L{}:{}", e.level, taps.join("+"))
            })
            .collect::<Vec<_>>()
            .join(";");
        t.row(vec![
            out.name.clone(),
            problem.to_string(),
            solver.to_string(),
            outcome_label(out).to_string(),
            if out.report.attempts.is_empty() { "-".into() } else { out.report.summary() },
            if repairs.is_empty() { "-".into() } else { repairs },
            out.iters.to_string(),
            out.vcycles.to_string(),
            rel.map(|r| format!("{r:9.2e}")).unwrap_or_else(|| "-".into()),
            format!("{:7.1} ms", out.seconds * 1e3),
        ]);
    }
    print!("{t}");

    let converged = outcomes.iter().filter(|o| o.converged()).count();
    let panicked = outcomes
        .iter()
        .filter(|o| matches!(o.result, Err(SolveError::WorkerPanicked { .. })))
        .count();
    let healed = outcomes.iter().filter(|o| o.converged() && o.report.attempts.len() > 1).count();
    let repaired: usize = outcomes.iter().map(|o| o.report.repairs.len()).sum();
    println!(
        "\n{converged}/{} converged ({healed} via retry-ladder escalation, \
         {repaired} localized level repair(s)), \
         {panicked} worker panic(s) isolated, every outcome typed, process intact",
        outcomes.len()
    );
    outcomes
}
