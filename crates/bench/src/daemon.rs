//! `repro serve --daemon` / `--soak`: the persistent daemon child and
//! the kill/restart acceptance harness.
//!
//! The **child** (`run_daemon`) drives a [`Daemon`] over a deterministic
//! request stream that is a pure function of the sequence number: steady
//! `laplace27` work that exercises warm cache hits, a `drift` class
//! whose operator is rescaled between visits (walking the
//! Hit → RescaledHit → DriftInvalidated ladder), a deterministically
//! failing `poison` class that trips its circuit breaker, and
//! interactive-priority traffic. Each batch follows the durability
//! order **solve → append trail → checkpoint → acknowledge**, so a kill
//! at any instant loses nothing: unacknowledged work replays from the
//! snapshot cursor and the trail deduplicates by sequence number
//! (at-least-once, idempotent).
//!
//! The **driver** (`run_soak`) is the acceptance demo from the issue:
//! it runs a reference child to completion, then a second child that it
//! SIGKILLs mid-stream, restarts it from the snapshot, and verifies
//! that (a) the restart actually resumed warm, (b) every request in
//! `0..N` appears in the crash trail (zero lost), (c) duplicated
//! replay entries are identical to their first occurrence, and (d) the
//! *decision* fields of every trail line — admission, profile, outcome,
//! breaker state — are **bit-identical** to the reference run's. Cache
//! events are reported but excluded from the bit-compare: a restarted
//! daemon's cache is deliberately cold (metadata-only restore), so its
//! first touch of each entry rebuilds instead of hitting; everything
//! the snapshot promises to replay identically, is.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use fp16mg_core::MgConfig;
use fp16mg_krylov::{HealthPolicy, SolveError, SolveOptions};
use fp16mg_problems::ProblemKind;
use fp16mg_runtime::{
    append_durable, AdmissionConfig, BreakerConfig, CacheConfig, Daemon, DaemonConfig, PoolConfig,
    Priority, RealStorage, RequestOutcome, RetryPolicy, ServeError, ServePool, ShedPolicy,
    SolveRequest, SolverChoice, Storage, SuperviseConfig,
};
use fp16mg_sgdia::kernels::Par;

/// Child-mode configuration (`repro serve --daemon`).
pub struct DaemonCliConfig {
    /// Directory holding the snapshot and the trail file.
    pub snapshot_dir: PathBuf,
    /// Total requests the stream serves (lifetime, across restarts).
    pub requests: usize,
    /// Pool workers.
    pub workers: usize,
    /// Problem size (cells per axis).
    pub size: usize,
    /// Convergence tolerance for the clean requests.
    pub tol: f64,
    /// Wall-clock pause after each batch (milliseconds) — lets the soak
    /// driver land its kill mid-stream. Never affects decisions.
    pub pace_ms: u64,
    /// Run the wall-clock chaos demo (wedge + panic + quarantine)
    /// instead of the deterministic stream.
    pub chaos: bool,
    /// Byte budget for the pool's memory governor (`--mem-budget`;
    /// `None` = unlimited). When set, the drain line reports the
    /// governor's peak and the child exits nonzero if tracked bytes
    /// ever exceeded the budget — the soak driver relies on that
    /// self-check.
    pub mem_budget: Option<u64>,
    /// Kernel-parallelism threads for the solve phase (`--threads`).
    /// `> 1` runs the Krylov operator's SpMV row-parallel
    /// ([`Par::Threads`]); results stay bit-identical because row
    /// partitioning never reorders the per-row reduction.
    pub threads: usize,
}

/// Soak-driver configuration (`repro serve --daemon --soak`).
pub struct SoakConfig {
    /// Total requests per child run.
    pub requests: usize,
    /// Pool workers per child.
    pub workers: usize,
    /// Problem size.
    pub size: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// `done` lines to observe before SIGKILLing the crash child.
    pub kill_after: usize,
    /// Working directory for the reference and crash runs.
    pub out: PathBuf,
    /// Byte budget forwarded to every child (`--mem-budget`).
    pub mem_budget: Option<u64>,
}

const BATCH: u64 = 4;
pub(crate) const SNAPSHOT_FILE: &str = "daemon.snapshot";
pub(crate) const TRAIL_FILE: &str = "trail.log";

/// Maps a `--threads` count onto the kernel-parallelism knob: `0` and
/// `1` stay sequential, anything larger parallelizes the solve-phase
/// SpMV across that many threads.
pub(crate) fn par_for(threads: usize) -> Par {
    if threads > 1 {
        Par::Threads(threads)
    } else {
        Par::Seq
    }
}

/// The daemon pool shape: protections on, cache on, supervision on,
/// shedding off (the stream is paced by batches, not pressure), and a
/// small jittered breaker so the poison class demonstrably trips and
/// recovers inside a short run.
pub(crate) fn pool_cfg(workers: usize, mem_budget: Option<u64>) -> PoolConfig {
    // Under a pool byte budget the cache gets half: retained chains
    // evict LRU-first at insert time (deterministic, no shed policy
    // needed) before the governor ever has to refuse a session's
    // transient setup/workspace charges, so eviction — not refusal —
    // is the first response to byte pressure.
    let cache = CacheConfig { byte_budget: mem_budget.map(|b| b / 2), ..CacheConfig::default() };
    PoolConfig {
        workers,
        admission: AdmissionConfig::default(),
        shed: ShedPolicy::disabled(),
        mem_budget,
        breaker: BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown: 3,
            cooldown_jitter: 2,
            probes: 1,
            probe_successes: 1,
            ..BreakerConfig::default()
        },
        cache,
        supervise: SuperviseConfig::default(),
    }
}

/// The request at sequence number `seq` — a pure function of
/// `(seq, size, tol, par)`, so a replayed window reconstructs the exact
/// submitted stream. `par` only parallelizes the solve-phase SpMV (the
/// smoothers stay as configured), so decisions and residual bits are
/// identical at any thread count.
pub(crate) fn request_for(seq: u64, size: usize, tol: f64, par: Par) -> SolveRequest {
    let mut req = request_for_seq(seq, size, tol);
    req.par = par;
    req
}

fn request_for_seq(seq: u64, size: usize, tol: f64) -> SolveRequest {
    let name = format!("req-{seq:05}");
    match seq % 8 {
        // A deterministically failing class: tolerance zero, health
        // checks off, four iterations, no retries. Trips its breaker.
        6 => {
            let mut req =
                SolveRequest::new(name, ProblemKind::Laplace27.build(size), MgConfig::d16());
            req.class = "poison".to_string();
            req.opts = SolveOptions {
                tol: 0.0,
                health: HealthPolicy::disabled(),
                record_history: false,
                ..Default::default()
            };
            req.budget.max_iters = Some(4);
            req.policy = RetryPolicy::fail_fast();
            req
        }
        // The drift class: the same geometry revisited with a rescaled
        // operator. The factor cycle walks the audit ladder: ~1.0 stays
        // within the keep bound, 4.0 forces a rescale-in-place, 24.0
        // exceeds the rescale bound and invalidates. Visits land at
        // seq 3, 7 mod 8, so a 16-request stream walks the full ladder.
        3 | 7 => {
            let factors = [1.0, 1.1, 4.0, 24.0];
            let factor = factors[((seq / 4) as usize) % factors.len()];
            let mut problem = ProblemKind::Laplace27.build(size);
            for v in problem.matrix.data_mut() {
                *v *= factor;
            }
            let mut req = SolveRequest::new(name, problem, MgConfig::d16());
            req.class = "drift".to_string();
            req.opts = SolveOptions { tol, record_history: false, ..Default::default() };
            req
        }
        // Interactive-priority clean traffic (shares the laplace27
        // cache entry with the batch traffic).
        5 => {
            let mut req =
                SolveRequest::new(name, ProblemKind::Laplace27.build(size), MgConfig::d16());
            req.priority = Priority::Interactive;
            req.opts = SolveOptions { tol, record_history: false, ..Default::default() };
            req
        }
        // Steady batch traffic: identical operator every visit, so the
        // cache serves fingerprint-equal hits after the first build.
        _ => {
            let mut req =
                SolveRequest::new(name, ProblemKind::Laplace27.build(size), MgConfig::d16());
            req.opts = SolveOptions { tol, record_history: false, ..Default::default() };
            req
        }
    }
}

/// Short vocabulary for a session/rejection error.
pub(crate) fn err_label(e: &ServeError) -> &'static str {
    match e {
        ServeError::Rejected(a) => a.label(),
        ServeError::Session(s) => match s {
            SolveError::Unconverged { .. } => "unconverged",
            SolveError::DeadlineExceeded { .. } => "deadline",
            SolveError::Cancelled { .. } => "cancelled",
            SolveError::VcycleBudgetExceeded { .. } => "vcycle-budget",
            SolveError::WorkerPanicked { .. } => "panicked",
            SolveError::SetupFailed { .. } => "setup-failed",
            _ => "numerical",
        },
    }
}

/// One durable trail line. Everything before ` cache=` is **decision
/// state** and must replay bit-identically after a crash; the cache
/// field is physical (a restored cache is cold) and excluded from the
/// soak comparison.
pub(crate) fn trail_line(seq: u64, o: &RequestOutcome, pool: &ServePool) -> String {
    let outcome = match &o.result {
        Ok(_) => "ok",
        Err(e) => err_label(e),
    };
    let breaker = pool.breakers().state(&o.class).map(|s| s.label()).unwrap_or("closed");
    let cache = o.cache.map(|k| k.label()).unwrap_or("none");
    format!(
        "seq={seq} req={} class={} prio={} profile={} outcome={outcome} breaker={breaker} cache={cache}\n",
        o.name,
        o.class,
        o.priority.label(),
        o.profile.label(),
    )
}

/// Appends a batch's trail lines through the storage choke point:
/// fsynced, ENOSPC-retried, directory-synced when the file is created.
pub(crate) fn append_trail(storage: &dyn Storage, path: &Path, text: &str) -> Result<(), String> {
    append_durable(storage, path, text.as_bytes()).map_err(|e| e.to_string())
}

/// Runs the daemon child to completion (or resumes one). Returns the
/// process exit code.
pub fn run_daemon(cfg: &DaemonCliConfig) -> i32 {
    if cfg.chaos {
        return run_daemon_chaos(cfg);
    }
    if let Err(e) = fs::create_dir_all(&cfg.snapshot_dir) {
        eprintln!("daemon: cannot create {}: {e}", cfg.snapshot_dir.display());
        return 1;
    }
    let trail = cfg.snapshot_dir.join(TRAIL_FILE);
    let storage: std::sync::Arc<dyn Storage> = std::sync::Arc::new(RealStorage);
    let daemon = Daemon::start(DaemonConfig {
        pool: pool_cfg(cfg.workers, cfg.mem_budget),
        snapshot_path: Some(cfg.snapshot_dir.join(SNAPSHOT_FILE)),
        checkpoint_each_batch: false,
        storage: std::sync::Arc::clone(&storage),
    });
    let mut daemon = match daemon {
        Ok(d) => d,
        Err(e) => {
            eprintln!("daemon: snapshot unusable: {e}");
            return 1;
        }
    };
    for (path, err) in daemon.quarantined_snapshots() {
        eprintln!("daemon: quarantined snapshot {} ({err})", path.display());
    }
    if daemon.restored() {
        println!("daemon: resumed seq={}", daemon.seq());
    } else {
        println!("daemon: cold start");
    }
    let _ = std::io::stdout().flush();

    let total = cfg.requests as u64;
    while daemon.seq() < total {
        let start = daemon.seq();
        let end = (start + BATCH).min(total);
        let batch: Vec<SolveRequest> =
            (start..end).map(|i| request_for(i, cfg.size, cfg.tol, par_for(cfg.threads))).collect();
        let outcomes = match daemon.submit(batch) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("daemon: batch failed: {e}");
                return 1;
            }
        };
        // Durability order: trail first, then checkpoint, then ack.
        // A kill between the two replays the batch (the trail dedups by
        // seq); a kill before the trail write replays it with no trace
        // — either way nothing is lost.
        let mut lines = String::new();
        for (off, o) in outcomes.iter().enumerate() {
            lines.push_str(&trail_line(start + off as u64, o, daemon.pool()));
        }
        if let Err(e) = append_trail(storage.as_ref(), &trail, &lines) {
            eprintln!("daemon: trail write failed: {e}");
            return 1;
        }
        if let Err(e) = daemon.checkpoint() {
            eprintln!("daemon: checkpoint failed: {e}");
            return 1;
        }
        for off in 0..outcomes.len() {
            println!("done seq={}", start + off as u64);
        }
        let _ = std::io::stdout().flush();
        if cfg.pace_ms > 0 {
            std::thread::sleep(Duration::from_millis(cfg.pace_ms));
        }
    }

    let stats = daemon.pool().cache().stats();
    let governor = daemon.pool().governor().clone();
    let mem_evictions = daemon.pool().cache().mem_evictions();
    let uncached = daemon.pool().cache().uncached_serves();
    match daemon.drain() {
        Ok(report) => {
            println!(
                "daemon: drained seq={} ok={} err={} rejected={} cache[hit={} rescaled={} drift-inv={} rebuilt={}]",
                report.seq,
                report.counters.completed_ok,
                report.counters.completed_err,
                report.counters.rejected_queue_full
                    + report.counters.rejected_shed
                    + report.counters.rejected_breaker
                    + report.counters.rejected_quarantined,
                stats.hits,
                stats.rescaled_hits,
                stats.drift_invalidations,
                stats.rebuilds,
            );
            // Memory accounting summary — deliberately outside the
            // trail (the trail bit-compare covers decisions, not byte
            // counts). With a budget set the child self-checks: tracked
            // bytes must never have exceeded it.
            println!(
                "daemon: mem peak={} budget={} evicted={} uncached={}",
                governor.peak(),
                governor.budget().map_or_else(|| "none".to_string(), |b| b.to_string()),
                mem_evictions,
                uncached,
            );
            if let Some(budget) = governor.budget() {
                if governor.peak() > budget {
                    eprintln!(
                        "daemon: MEM BUDGET VIOLATED: peak {} B > budget {} B",
                        governor.peak(),
                        budget
                    );
                    return 1;
                }
            }
            0
        }
        Err(e) => {
            eprintln!("daemon: final checkpoint failed: {e}");
            1
        }
    }
}

/// The wall-clock chaos demo (`--daemon --chaos`): a panicking request
/// is contained and struck twice into quarantine, and a deliberately
/// endless request is wedge-detected and cancelled by the monitor.
/// Wall-clock by nature, so it lives outside the deterministic trail.
fn run_daemon_chaos(cfg: &DaemonCliConfig) -> i32 {
    let mut pool_cfg = pool_cfg(cfg.workers, cfg.mem_budget);
    // The chaos demo is about supervision, not circuit breaking: a
    // wedge failure plus a panic in the same class would trip the tight
    // daemon breaker and mask the quarantine refusal it demonstrates.
    pool_cfg.breaker = BreakerConfig::disabled();
    pool_cfg.supervise = SuperviseConfig {
        enabled: true,
        wedge_after: Duration::from_millis(250),
        poll: Duration::from_millis(10),
        max_strikes: 2,
        event_log_cap: 64,
    };
    let mut pool = ServePool::new(pool_cfg);
    let mut violations: Vec<String> = Vec::new();

    // An endless request: stationary Richardson at zero tolerance with
    // health checks off never converges, never stagnates, and has no
    // breakdown divisions — it can only end when the wedge monitor
    // cancels it. (A Krylov method would break down at machine
    // precision long before the 250 ms deadline.)
    let endless = || {
        let mut req =
            SolveRequest::new("wedge-me", ProblemKind::Laplace27.build(cfg.size), MgConfig::d16());
        req.solver = SolverChoice::Richardson;
        req.opts = SolveOptions {
            tol: 0.0,
            max_iters: usize::MAX / 2,
            health: HealthPolicy::disabled(),
            record_history: false,
            ..Default::default()
        };
        req.policy = RetryPolicy::fail_fast();
        req
    };
    println!("--- wedge detection: an endless request against a 250 ms deadline ---");
    let out = pool.run(vec![endless()]);
    let wedged_cancelled =
        matches!(&out[0].result, Err(ServeError::Session(SolveError::Cancelled { .. })));
    println!(
        "wedge-me -> {} (worker events: {})",
        out[0].result.as_ref().map(|_| "ok").unwrap_or_else(|e| err_label(&e.clone())),
        pool.worker_events().len()
    );
    if !wedged_cancelled {
        violations.push("endless request was not wedge-cancelled".into());
    }

    {
        println!("--- panic containment + quarantine: two strikes, then refusal ---");
        let panicker = || {
            let mut req = SolveRequest::new(
                "panic-me",
                ProblemKind::Laplace27.build(cfg.size),
                MgConfig::d16(),
            );
            req.panic_in_worker = true;
            req
        };
        for round in 0..3 {
            let out = pool.run(vec![panicker()]);
            println!(
                "round {round}: panic-me -> {}",
                out[0].result.as_ref().map(|_| "ok").unwrap_or_else(|e| err_label(&e.clone()))
            );
            let expect_quarantined = round >= 2;
            let got_quarantined = matches!(
                out[0].result,
                Err(ServeError::Rejected(fp16mg_runtime::AdmissionError::Quarantined { .. }))
            );
            if expect_quarantined != got_quarantined {
                violations.push(format!(
                    "round {round}: expected quarantined={expect_quarantined}, got {got_quarantined}"
                ));
            }
        }
    }

    println!("worker-event trail:");
    for ev in pool.worker_events() {
        println!(
            "  worker={} request={} event={}",
            ev.worker.map(|w| w.to_string()).unwrap_or_else(|| "-".into()),
            ev.request,
            ev.kind.label()
        );
    }
    if violations.is_empty() {
        println!("chaos demo: all supervision invariants held");
        0
    } else {
        for v in &violations {
            eprintln!("chaos violation: {v}");
        }
        1
    }
}

// ------------------------------------------------------------------ soak --

/// A parsed trail: per seq, every decision string (first occurrence
/// first) observed in the file.
pub(crate) fn read_trail(path: &Path) -> Result<Vec<(u64, String)>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let decision = line.split(" cache=").next().unwrap_or(line).to_string();
        let seq = line
            .strip_prefix("seq=")
            .and_then(|r| r.split_whitespace().next())
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| format!("{}: bad trail line {}", path.display(), i + 1))?;
        out.push((seq, decision));
    }
    Ok(out)
}

fn child_command(dir: &Path, cfg: &SoakConfig, pace_ms: u64) -> Result<Command, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg("--daemon")
        .arg("--snapshot-dir")
        .arg(dir)
        .arg("--requests")
        .arg(cfg.requests.to_string())
        .arg("--workers")
        .arg(cfg.workers.to_string())
        .arg("--size")
        .arg(cfg.size.to_string())
        .arg("--tol")
        .arg(cfg.tol.to_string())
        .arg("--pace-ms")
        .arg(pace_ms.to_string());
    if let Some(budget) = cfg.mem_budget {
        cmd.arg("--mem-budget").arg(budget.to_string());
    }
    Ok(cmd)
}

/// The kill/restart acceptance harness. Returns the process exit code
/// (nonzero when any invariant is violated).
pub fn run_soak(cfg: &SoakConfig) -> i32 {
    let mut violations: Vec<String> = Vec::new();
    let ref_dir = cfg.out.join("soak-ref");
    let crash_dir = cfg.out.join("soak-crash");
    for d in [&ref_dir, &crash_dir] {
        let _ = fs::remove_dir_all(d);
        if let Err(e) = fs::create_dir_all(d) {
            eprintln!("soak: cannot create {}: {e}", d.display());
            return 1;
        }
    }

    // 1. Reference run: uninterrupted, graceful drain, exit 0.
    println!("soak: reference run ({} requests)...", cfg.requests);
    match child_command(&ref_dir, cfg, 0).and_then(|mut c| c.status().map_err(|e| e.to_string())) {
        Ok(status) if status.success() => {}
        Ok(status) => violations.push(format!("reference run exited {status}")),
        Err(e) => {
            eprintln!("soak: cannot run reference child: {e}");
            return 1;
        }
    }

    // 2. Crash run: SIGKILL after `kill_after` acknowledged requests.
    println!("soak: crash run (SIGKILL after {} acks)...", cfg.kill_after);
    let mut killed = false;
    match child_command(&crash_dir, cfg, 15) {
        Err(e) => {
            eprintln!("soak: {e}");
            return 1;
        }
        Ok(mut cmd) => {
            let child = cmd.stdout(Stdio::piped()).spawn();
            let mut child = match child {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("soak: cannot spawn crash child: {e}");
                    return 1;
                }
            };
            let stdout = child.stdout.take().expect("piped stdout");
            let mut acks = 0usize;
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if line.starts_with("done seq=") {
                    acks += 1;
                    if acks >= cfg.kill_after {
                        let _ = child.kill(); // SIGKILL: no drain, no final checkpoint
                        killed = true;
                        break;
                    }
                }
            }
            let _ = child.wait();
            if !killed {
                violations.push(format!(
                    "crash child finished after {acks} acks before the kill at {} could land",
                    cfg.kill_after
                ));
            }
        }
    }

    // 3. Restart: must come up warm from the snapshot, finish the
    //    stream, drain gracefully, exit 0.
    println!("soak: restart from snapshot...");
    let mut resumed_seq: Option<u64> = None;
    match child_command(&crash_dir, cfg, 0).and_then(|mut c| c.output().map_err(|e| e.to_string()))
    {
        Ok(output) => {
            let stdout = String::from_utf8_lossy(&output.stdout);
            for line in stdout.lines() {
                if let Some(rest) = line.strip_prefix("daemon: resumed seq=") {
                    resumed_seq = rest.trim().parse::<u64>().ok();
                }
                if let Some(rest) = line.strip_prefix("daemon: mem ") {
                    // The child already self-checked peak ≤ budget (it
                    // exits nonzero on violation); echo for the record.
                    println!("soak: restart mem {rest}");
                }
            }
            if !output.status.success() {
                violations.push(format!("restarted child exited {}", output.status));
            }
        }
        Err(e) => {
            eprintln!("soak: cannot run restart child: {e}");
            return 1;
        }
    }
    match resumed_seq {
        Some(s) if s > 0 => println!("soak: restart resumed warm at seq={s}"),
        Some(_) => violations.push("restart reported seq=0 (did not resume)".into()),
        None if killed => {
            violations.push("restart did not report a snapshot resume (cold start?)".into())
        }
        None => {}
    }

    // 4. Trail validation.
    let ref_trail = read_trail(&ref_dir.join(TRAIL_FILE));
    let crash_trail = read_trail(&crash_dir.join(TRAIL_FILE));
    match (&ref_trail, &crash_trail) {
        (Ok(reference), Ok(crash)) => {
            let total = cfg.requests as u64;
            // Reference: exactly one decision per seq.
            let mut ref_by_seq: Vec<Option<&String>> = vec![None; cfg.requests];
            for (seq, decision) in reference {
                match ref_by_seq.get_mut(*seq as usize) {
                    Some(slot @ None) => *slot = Some(decision),
                    Some(_) => violations.push(format!("reference trail duplicates seq {seq}")),
                    None => violations.push(format!("reference trail has stray seq {seq}")),
                }
            }
            for seq in 0..total {
                if ref_by_seq[seq as usize].is_none() {
                    violations.push(format!("reference trail is missing seq {seq}"));
                }
            }
            // Crash+restart: full coverage, duplicates identical, and
            // every decision bit-identical to the reference.
            let mut crash_by_seq: Vec<Vec<&String>> = vec![Vec::new(); cfg.requests];
            for (seq, decision) in crash {
                match crash_by_seq.get_mut(*seq as usize) {
                    Some(v) => v.push(decision),
                    None => violations.push(format!("crash trail has stray seq {seq}")),
                }
            }
            // With a binding memory budget the decision bit-compare is
            // off the table by design: budget refusals depend on which
            // worker's bytes were live at charge time, and a restarted
            // governor is deliberately cold (the snapshot restores
            // metadata, not bytes). Coverage, no-loss, identical
            // replays, and the children's own peak ≤ budget self-checks
            // still hold; cross-run decision drift is reported but not
            // fatal.
            let strict = cfg.mem_budget.is_none();
            let mut replayed = 0usize;
            let mut drifted = 0usize;
            for seq in 0..cfg.requests {
                let entries = &crash_by_seq[seq];
                if entries.is_empty() {
                    violations.push(format!("crash trail lost seq {seq} (dropped request)"));
                    continue;
                }
                if entries.len() > 1 {
                    replayed += 1;
                    if entries.iter().any(|d| *d != entries[0]) {
                        violations.push(format!("crash trail replayed seq {seq} DIVERGENTLY"));
                    }
                }
                if let Some(reference) = ref_by_seq[seq] {
                    if entries[0] != reference {
                        if strict {
                            violations.push(format!(
                                "seq {seq} decision diverges from reference:\n  ref:   {reference}\n  crash: {}",
                                entries[0]
                            ));
                        } else {
                            drifted += 1;
                        }
                    }
                }
            }
            println!(
                "soak: {} requests covered, {} replayed identically after the kill",
                cfg.requests, replayed
            );
            if !strict && drifted > 0 {
                println!(
                    "soak: {drifted} decision(s) drifted under memory pressure (expected with \
                     --mem-budget; bit-compare applies to unbudgeted runs)"
                );
            }
            // The cache must have demonstrated its full event ladder in
            // the uninterrupted reference run. Under a binding budget
            // an entry may be evicted before its rescale/invalidate
            // revisit, so only the unbudgeted soak demands full-ladder
            // coverage.
            if strict {
                let ref_text = fs::read_to_string(ref_dir.join(TRAIL_FILE)).unwrap_or_default();
                for needed in
                    ["cache=hit", "cache=rescaled-hit", "cache=drift-invalidated", "cache=rebuilt"]
                {
                    if !ref_text.contains(needed) {
                        violations.push(format!("reference run never produced {needed}"));
                    }
                }
            }
        }
        (Err(e), _) | (_, Err(e)) => violations.push(format!("trail unreadable: {e}")),
    }

    if violations.is_empty() {
        println!("soak: all acceptance invariants held (kill, warm restart, bit-identical replay)");
        0
    } else {
        for v in &violations {
            eprintln!("soak violation: {v}");
        }
        1
    }
}
