//! Fig. 7 kernel measurement harness.
//!
//! Measures SpMV and SpTRSV in the paper's four implementation variants:
//!
//! * `MG-fp32/fp32` — the best full-FP32 kernel (baseline; speedup 1.0);
//! * `MG-fp16/fp32 (naive)` — FP16 storage in AOS layout, one convert per
//!   entry (the variant the paper shows *losing* to the baseline);
//! * `MG-fp16/fp32 (opt)` — FP16 in SOA layout with SIMD bulk conversion;
//! * `CSR` — a compressed-sparse-row kernel standing in for the vendor
//!   library bars (ARMPL/MKL);
//!
//! plus the analytic `Max-fp16/fp32` memory-volume bound. SpMV runs on
//! the full 3d7/3d19/3d27 patterns; SpTRSV on their lower-triangular
//! 3d4/3d10/3d14 parts, exactly as in the figure.

use std::time::Instant;

use fp16mg_fp::{Precision, F16};
use fp16mg_grid::Grid3;
use fp16mg_sgdia::kernels::{self, Par};
use fp16mg_sgdia::{model, Csr, Layout, SgDia};
use fp16mg_stencil::Pattern;

/// Which kernel is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Sparse matrix–vector product.
    Spmv,
    /// Sparse lower-triangular solve.
    Sptrsv,
}

/// Implementation variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// `MG-fp32/fp32`: FP32 SOA (SIMD where available).
    Fp32Baseline,
    /// `MG-fp16/fp32 (naive)`: FP16 AOS, scalar per-entry conversion.
    F16Naive,
    /// `MG-fp16/fp32 (opt)`: FP16 SOA, SIMD/staged bulk conversion.
    F16Opt,
    /// CSR FP32 (vendor-library stand-in).
    Csr,
}

impl Variant {
    /// Paper legend label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Fp32Baseline => "MG-fp32/fp32",
            Variant::F16Naive => "MG-fp16/fp32(naive)",
            Variant::F16Opt => "MG-fp16/fp32(opt)",
            Variant::Csr => "CSR(vendor)",
        }
    }

    /// All timed variants.
    pub fn all() -> [Variant; 4] {
        [Variant::Fp32Baseline, Variant::F16Naive, Variant::F16Opt, Variant::Csr]
    }
}

/// One output row: geometric-mean seconds per application over the size
/// sweep, and the speedup over the FP32 baseline.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// SpMV or SpTRSV.
    pub kernel: KernelKind,
    /// Pattern name as benchmarked ("3d7" … for SpMV, "3d4" … for
    /// SpTRSV).
    pub pattern: String,
    /// Implementation variant.
    pub variant: Variant,
    /// Geometric mean of seconds per kernel application.
    pub seconds: f64,
    /// Speedup over [`Variant::Fp32Baseline`] on the same pattern.
    pub speedup: f64,
}

/// Deterministic diagonally dominant test matrix for kernel timing.
pub fn test_matrix(pattern: &Pattern, n: usize, seed: u64) -> SgDia<f64> {
    let grid = Grid3::cube(n);
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        0.1 + 0.9 * ((state >> 11) as f64 / (1u64 << 53) as f64)
    };
    let taps: Vec<_> = pattern.taps().to_vec();
    let ntaps = taps.len() as f64;
    SgDia::from_fn(grid, pattern.clone(), Layout::Soa, |_, _, _, _, t| {
        if taps[t].is_diagonal() {
            ntaps + 0.5
        } else {
            -rng()
        }
    })
}

/// Extracts the lower-triangular (incl. diagonal) matrix of `full`.
pub fn lower_matrix(full: &SgDia<f64>) -> SgDia<f64> {
    let lp = full.pattern().lower_with_diag();
    let mut l = SgDia::<f64>::zeros(*full.grid(), lp.clone(), full.layout());
    for cell in 0..full.grid().cells() {
        for (t, tap) in lp.taps().iter().enumerate() {
            let ft = full.pattern().tap_index(*tap).expect("lower tap in full pattern");
            l.set(cell, t, full.get(cell, ft));
        }
    }
    l
}

/// Times `f` (one kernel application per call): runs enough repetitions
/// to fill ~`budget_ms`, returns seconds per application (best of 3
/// batches).
pub fn time_apply(mut f: impl FnMut(), budget_ms: f64) -> f64 {
    // Warm up and estimate.
    f();
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let reps = ((budget_ms / 1e3 / once).ceil() as usize).clamp(1, 10_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn geomean(v: &[f64]) -> f64 {
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

/// Runs the full Fig. 7 suite: SpMV on 3d7/3d19/3d27 and SpTRSV on their
/// lower parts, all variants, geometric mean over `sizes`.
pub fn kernel_suite(sizes: &[usize], par: Par, budget_ms: f64) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for (pname, pat) in [("3d7", Pattern::p7()), ("3d19", Pattern::p19()), ("3d27", Pattern::p27())]
    {
        // ---- SpMV ----
        let mut secs: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for (si, &n) in sizes.iter().enumerate() {
            let a64 = test_matrix(&pat, n, 0xbe9c_0000 + si as u64);
            let un = a64.rows();
            let x: Vec<f32> = (0..un).map(|i| ((i % 97) as f32) * 0.01 - 0.3).collect();
            let mut y = vec![0.0f32; un];

            let a32 = a64.convert::<f32>(); // SOA
            let a16_soa = a64.convert::<F16>();
            let a16_aos = a16_soa.to_layout(Layout::Aos);
            let csr = Csr::<f32>::from_sgdia(&a32);

            secs[0].push(time_apply(|| kernels::spmv(&a32, &x, &mut y, par), budget_ms));
            secs[1].push(time_apply(|| kernels::spmv(&a16_aos, &x, &mut y, par), budget_ms));
            secs[2].push(time_apply(|| kernels::spmv(&a16_soa, &x, &mut y, par), budget_ms));
            secs[3].push(time_apply(|| csr.spmv(&x, &mut y), budget_ms));
        }
        let base = geomean(&secs[0]);
        for (v, s) in Variant::all().into_iter().zip(&secs) {
            let g = geomean(s);
            rows.push(KernelRow {
                kernel: KernelKind::Spmv,
                pattern: pname.into(),
                variant: v,
                seconds: g,
                speedup: base / g,
            });
        }

        // ---- SpTRSV on the lower pattern ----
        let lname = pat.lower_with_diag().name();
        let mut secs: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for (si, &n) in sizes.iter().enumerate() {
            let a64 = test_matrix(&pat, n, 0x7259_0000 + si as u64);
            let l64 = lower_matrix(&a64);
            let un = l64.rows();
            let b: Vec<f32> = (0..un).map(|i| ((i % 89) as f32) * 0.01 + 0.1).collect();
            let mut x = vec![0.0f32; un];

            let l32 = l64.convert::<f32>(); // SOA
            let l16_soa = l64.convert::<F16>();
            let l16_aos = l16_soa.to_layout(Layout::Aos);
            let csr = Csr::<f32>::from_sgdia(&l32);

            secs[0].push(time_apply(|| kernels::sptrsv_forward(&l32, &b, &mut x), budget_ms));
            secs[1].push(time_apply(|| kernels::sptrsv_forward(&l16_aos, &b, &mut x), budget_ms));
            secs[2].push(time_apply(|| kernels::sptrsv_forward(&l16_soa, &b, &mut x), budget_ms));
            secs[3].push(time_apply(|| csr.solve_lower(&b, &mut x), budget_ms));
        }
        let base = geomean(&secs[0]);
        for (v, s) in Variant::all().into_iter().zip(&secs) {
            let g = geomean(s);
            rows.push(KernelRow {
                kernel: KernelKind::Sptrsv,
                pattern: lname.clone(),
                variant: v,
                seconds: g,
                speedup: base / g,
            });
        }
    }
    rows
}

/// The `Max-fp16/fp32` bound for a pattern at size `n` (memory-volume
/// ratio including the kernel's vectors).
pub fn max_speedup(pattern: &Pattern, n: usize, kernel: KernelKind) -> f64 {
    let grid = Grid3::cube(n);
    let entries = match kernel {
        KernelKind::Spmv => grid.cells() * pattern.len(),
        KernelKind::Sptrsv => grid.cells() * pattern.lower_with_diag().len(),
    };
    model::spmv_max_speedup(
        entries,
        grid.unknowns(),
        Precision::F32,
        Precision::F16,
        Precision::F32,
    )
}
