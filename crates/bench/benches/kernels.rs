//! Benches for the Fig. 7 kernel ablation.
//!
//! One group per (kernel, pattern); within a group, the four variants
//! (`MG-fp32/fp32` baseline, naive AOS FP16, optimized SOA FP16, CSR) so
//! the printed rows show the relative speedups directly.

use std::time::Duration;

use fp16mg_bench::kernelbench::{lower_matrix, test_matrix};
use fp16mg_bench::Group;
use fp16mg_fp::F16;
use fp16mg_sgdia::kernels::{self, Par};
use fp16mg_sgdia::{Csr, Layout};
use fp16mg_stencil::Pattern;

// Must exceed the LLC for the bandwidth story; see DESIGN.md.
const N: usize = 112;

fn bench_spmv() {
    for (pname, pat) in [("3d7", Pattern::p7()), ("3d19", Pattern::p19()), ("3d27", Pattern::p27())]
    {
        let a64 = test_matrix(&pat, N, 0xc0ffee);
        let un = a64.rows();
        let bytes16 = (a64.stored_entries() * 2 + un * 8) as u64;
        let x: Vec<f32> = (0..un).map(|i| ((i % 97) as f32) * 0.01 - 0.3).collect();
        let mut y = vec![0.0f32; un];

        let a32 = a64.convert::<f32>();
        let a16_soa = a64.convert::<F16>();
        let a16_aos = a16_soa.to_layout(Layout::Aos);
        let csr = Csr::<f32>::from_sgdia(&a32);

        let g = Group::new(format!("spmv/{pname}"))
            .throughput_bytes(bytes16)
            .measurement_time(Duration::from_secs(3));
        g.bench("fp32-baseline", || kernels::spmv(&a32, &x, &mut y, Par::Seq));
        g.bench("fp16-naive-aos", || kernels::spmv(&a16_aos, &x, &mut y, Par::Seq));
        g.bench("fp16-opt-soa", || kernels::spmv(&a16_soa, &x, &mut y, Par::Seq));
        g.bench("csr-fp32", || csr.spmv(&x, &mut y));
    }
}

fn bench_sptrsv() {
    for (pname, pat) in [("3d4", Pattern::p7()), ("3d10", Pattern::p19()), ("3d14", Pattern::p27())]
    {
        let a64 = test_matrix(&pat, N, 0xdead);
        let l64 = lower_matrix(&a64);
        let un = l64.rows();
        let b_rhs: Vec<f32> = (0..un).map(|i| ((i % 89) as f32) * 0.01 + 0.1).collect();
        let mut x = vec![0.0f32; un];

        let l32 = l64.convert::<f32>();
        let l16_soa = l64.convert::<F16>();
        let l16_aos = l16_soa.to_layout(Layout::Aos);
        let csr = Csr::<f32>::from_sgdia(&l32);

        let g = Group::new(format!("sptrsv/{pname}"))
            .throughput_bytes((l64.stored_entries() * 2 + un * 8) as u64)
            .measurement_time(Duration::from_secs(3));
        g.bench("fp32-baseline", || kernels::sptrsv_forward(&l32, &b_rhs, &mut x));
        g.bench("fp16-naive-aos", || kernels::sptrsv_forward(&l16_aos, &b_rhs, &mut x));
        g.bench("fp16-opt-soa", || kernels::sptrsv_forward(&l16_soa, &b_rhs, &mut x));
        g.bench("csr-fp32", || csr.solve_lower(&b_rhs, &mut x));
    }
}

fn main() {
    bench_spmv();
    bench_sptrsv();
}
