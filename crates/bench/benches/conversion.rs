//! Criterion bench for the §5 conversion primitive itself: soft-float vs
//! hardware F16C bulk widening/narrowing throughput. The ~10× gap is why
//! the SIMD paths exist and why the naive per-entry kernel loses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fp16mg_fp::{simd, F16};

fn bench_conversion(c: &mut Criterion) {
    let n = 1 << 20;
    let src16: Vec<F16> = (0..n).map(|i| F16::from_f32((i % 1000) as f32 * 0.05 - 20.0)).collect();
    let mut dst32 = vec![0.0f32; n];
    let src32: Vec<f32> = (0..n).map(|i| (i % 1000) as f32 * 0.05 - 20.0).collect();
    let mut dst16 = vec![F16::ZERO; n];

    let mut g = c.benchmark_group("convert/1M");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::from_parameter("widen-simd"), |b| {
        b.iter(|| simd::widen_f16(&src16, &mut dst32))
    });
    g.bench_function(BenchmarkId::from_parameter("widen-scalar-soft"), |b| {
        b.iter(|| simd::widen_f16_scalar(&src16, &mut dst32))
    });
    g.bench_function(BenchmarkId::from_parameter("narrow-simd"), |b| {
        b.iter(|| simd::narrow_f32(&src32, &mut dst16))
    });
    g.bench_function(BenchmarkId::from_parameter("narrow-scalar-soft"), |b| {
        b.iter(|| simd::narrow_f32_scalar(&src32, &mut dst16))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_conversion
}
criterion_main!(benches);
