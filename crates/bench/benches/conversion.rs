//! Bench for the §5 conversion primitive itself: soft-float vs hardware
//! F16C bulk widening/narrowing throughput. The ~10× gap is why the SIMD
//! paths exist and why the naive per-entry kernel loses.

use fp16mg_bench::Group;
use fp16mg_fp::{simd, F16};

fn main() {
    let n = 1 << 20;
    let src16: Vec<F16> = (0..n).map(|i| F16::from_f32((i % 1000) as f32 * 0.05 - 20.0)).collect();
    let mut dst32 = vec![0.0f32; n];
    let src32: Vec<f32> = (0..n).map(|i| (i % 1000) as f32 * 0.05 - 20.0).collect();
    let mut dst16 = vec![F16::ZERO; n];

    let g = Group::new("convert/1M").throughput_elements(n as u64);
    g.bench("widen-simd", || simd::widen_f16(&src16, &mut dst32));
    g.bench("widen-scalar-soft", || simd::widen_f16_scalar(&src16, &mut dst32));
    g.bench("narrow-simd", || simd::narrow_f32(&src32, &mut dst16));
    g.bench("narrow-scalar-soft", || simd::narrow_f32_scalar(&src32, &mut dst16));
}
