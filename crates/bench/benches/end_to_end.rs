//! Benches for the Fig. 8/9 end-to-end comparison: each problem solved
//! with the Full64 baseline and the Mix16 (K64 P32 D16 setup-then-scale)
//! configuration. Setup is *included* in the measured iteration, matching
//! the paper's "entire workflow" definition.

use std::time::Duration;

use fp16mg_bench::{solve_e2e, Combo, Group};
use fp16mg_krylov::SolveOptions;
use fp16mg_problems::ProblemKind;
use fp16mg_sgdia::kernels::Par;

fn main() {
    let opts =
        SolveOptions { tol: 1e-9, max_iters: 500, record_history: false, ..Default::default() };
    for kind in ProblemKind::all() {
        let n = if kind.components() == 1 { 20 } else { 12 };
        let g = Group::new(format!("e2e/{}", kind.name())).measurement_time(Duration::from_secs(3));
        for combo in [Combo::Full64, Combo::D16SetupScale] {
            let label = if combo == Combo::Full64 { "Full64" } else { "Mix16" };
            g.bench(label, || {
                let r = solve_e2e(kind, n, combo, &opts, Par::Seq).expect("setup");
                assert!(r.result.converged(), "{} {label} did not converge", kind.name());
                let _ = r.total();
            });
        }
    }
}
