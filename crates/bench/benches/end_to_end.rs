//! Criterion benches for the Fig. 8/9 end-to-end comparison: each problem
//! solved with the Full64 baseline and the Mix16 (K64 P32 D16
//! setup-then-scale) configuration. Setup is *included* in the measured
//! iteration, matching the paper's "entire workflow" definition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp16mg_bench::{solve_e2e, Combo};
use fp16mg_krylov::SolveOptions;
use fp16mg_problems::ProblemKind;
use fp16mg_sgdia::kernels::Par;

fn bench_e2e(c: &mut Criterion) {
    let opts = SolveOptions { tol: 1e-9, max_iters: 500, record_history: false, ..Default::default() };
    for kind in ProblemKind::all() {
        let n = if kind.components() == 1 { 20 } else { 12 };
        let mut g = c.benchmark_group(format!("e2e/{}", kind.name()));
        for combo in [Combo::Full64, Combo::D16SetupScale] {
            let label = if combo == Combo::Full64 { "Full64" } else { "Mix16" };
            g.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| {
                    let r = solve_e2e(kind, n, combo, &opts, Par::Seq).expect("setup");
                    assert!(r.result.converged(), "{} {label} did not converge", kind.name());
                    r.total()
                })
            });
        }
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_e2e
}
criterion_main!(benches);
