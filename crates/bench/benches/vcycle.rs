//! Benches for a single V-cycle application per storage precision — the
//! preconditioner-only speedup (the orange bars of Fig. 8, isolated from
//! iteration-count effects), plus the setup-then-scale setup-phase
//! overhead (the blue bars).

use fp16mg_bench::{Combo, Group};
use fp16mg_core::Mg;
use fp16mg_problems::ProblemKind;

fn bench_vcycle() {
    for kind in [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Oil, ProblemKind::Weather] {
        let n = 24;
        let p = kind.build(n);
        let rn = p.matrix.rows();
        let r: Vec<f32> = (0..rn).map(|i| ((i % 101) as f32) * 0.01 - 0.4).collect();
        let mut e = vec![0.0f32; rn];
        let g = Group::new(format!("vcycle/{}", kind.name()));
        for combo in [Combo::D32, Combo::D16SetupScale, Combo::Bf16] {
            let mut mg = match Mg::<f32>::setup(&p.matrix, &combo.mg_config()) {
                Ok(m) => m,
                Err(_) => continue,
            };
            g.bench(combo.label(), || mg.apply_pr(&r, &mut e));
        }
    }
}

fn bench_setup() {
    // Setup-phase cost of the two scaling strategies vs no scaling, on an
    // out-of-range problem (laplace27*1e8): setup-then-scale must add only
    // limited overhead (Fig. 8's blue bars).
    let p = ProblemKind::Laplace27E8.build(16);
    let g = Group::new("setup/laplace27e8");
    for combo in [Combo::Full64, Combo::D16SetupScale, Combo::D16ScaleSetup] {
        g.bench(combo.label(), || {
            if combo.p64() {
                let _ = Mg::<f64>::setup(&p.matrix, &combo.mg_config()).unwrap();
            } else {
                let _ = Mg::<f32>::setup(&p.matrix, &combo.mg_config()).unwrap();
            }
        });
    }
}

fn main() {
    bench_vcycle();
    bench_setup();
}
