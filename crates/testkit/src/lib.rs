//! Dependency-free pseudo-randomness and a minimal property-test harness.
//!
//! The workspace is built and tested in offline environments where pulling
//! `rand`/`proptest` from a registry is not possible, so this crate provides
//! the two facilities the rest of the code actually needs:
//!
//! * [`Rng`] — a deterministic SplitMix64 generator with the handful of
//!   range helpers the coefficient-field synthesis and the tests use. The
//!   stream is stable across platforms and releases (it is part of the
//!   reproducibility story: problem generators are seeded).
//! * [`check`] / [`check_cases`] — a proptest-style driver: run a predicate
//!   over many generated cases, reporting the failing seed so a case can be
//!   replayed with `Rng::new(seed)`.

#![warn(missing_docs)]

/// Deterministic SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, needs 8 bytes of state, and cannot be
/// mis-seeded (any 64-bit seed gives a full-period stream) — exactly the
/// properties wanted for reproducible test-case and coefficient-field
/// generation.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53-bit resolution).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        lo + self.f64() * (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        self.f64_range(lo as f64, hi as f64) as f32
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `u16` over the full range.
    #[inline]
    pub fn u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A pair of independent standard-normal draws (Box–Muller).
    #[inline]
    pub fn normal_pair(&mut self) -> (f64, f64) {
        let u1 = self.f64().max(f64::EPSILON);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * core::f64::consts::PI * u2).sin_cos();
        (r * c, r * s)
    }

    /// A "normal-ish" finite, nonzero `f32` spanning many decades of
    /// magnitude — the replacement for `proptest::num::f32::NORMAL`:
    /// uniform sign, exponent uniform over the normal range, uniform
    /// mantissa.
    #[inline]
    pub fn f32_normal(&mut self) -> f32 {
        let sign = (self.next_u64() & 1) << 31;
        let exp = self.usize_range(1, 255) as u64; // normal exponents only
        let mantissa = self.next_u64() & 0x7f_ffff;
        f32::from_bits((sign | (exp << 23) | mantissa) as u32)
    }
}

/// Runs `body` over `cases` generated cases, each with a distinct
/// deterministic [`Rng`]. On failure the panic message names the failing
/// case seed, which replays as `Rng::new(seed)`.
///
/// # Panics
/// Propagates the first failing case with its seed prepended.
pub fn check_cases(base_seed: u64, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = base_seed ^ case.wrapping_mul(0x2545f4914f6cdd1d);
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            panic!("property failed for case {case} (replay with Rng::new({seed:#x})): {msg}");
        }
    }
}

/// The case count to run: the `PROPTEST_CASES` environment variable when
/// set to a positive integer (the same knob proptest uses, so CI can dial
/// coverage up in release builds without touching code), else `default`.
pub fn env_cases(default: u64) -> u64 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.trim().parse::<u64>().ok().filter(|&n| n > 0).unwrap_or(default),
        Err(_) => default,
    }
}

/// [`check_cases`] with a named property: the seed derives from the name
/// (distinct properties explore distinct streams) and the case count is
/// `default_cases`, overridable via `PROPTEST_CASES`.
pub fn check_n(name: &str, default_cases: u64, body: impl FnMut(&mut Rng)) {
    check_cases(name_seed(name), env_cases(default_cases), body);
}

/// [`check_n`] with the default case count (32).
pub fn check(name: &str, body: impl FnMut(&mut Rng)) {
    check_n(name, 32, body);
}

/// FNV-1a hash of a property name, the per-property base seed.
fn name_seed(name: &str) -> u64 {
    let mut seed = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_full_range() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.f64_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let u = r.usize_range(5, 9);
            assert!((5..9).contains(&u));
            let n = r.f32_normal();
            assert!(n.is_finite() && n != 0.0 && n.is_normal());
        }
    }

    #[test]
    fn normal_pair_moments() {
        let mut r = Rng::new(42);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n / 2 {
            let (a, b) = r.normal_pair();
            sum += a + b;
            sumsq += a * a + b * b;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn check_reports_seed() {
        let r = std::panic::catch_unwind(|| {
            check_cases(1, 4, |_| panic!("boom"));
        });
        let msg = format!("{:?}", r.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("replay with"), "{msg}");
    }
}
