//! Reusable solver scratch: the per-solve work vectors, preallocated
//! once and handed back to every solve.
//!
//! A single [`crate::cg_ctl`] call already allocates its four work
//! vectors only once, before the iteration loop — but a driver that
//! solves repeatedly at the same size (a time stepper, a serve daemon)
//! pays that allocation per solve. [`SolveScratch`] hoists it: carve the
//! vectors once, pass `&mut scratch` to [`crate::cg_ctl_in`], and every
//! warm solve runs without touching the heap at all.

use fp16mg_fp::Scalar;

/// Preallocated CG work vectors (`r`, `z`, `p`, `Ap`), reusable across
/// solves of the same size.
pub struct SolveScratch<K: Scalar> {
    pub(crate) r: Vec<K>,
    pub(crate) z: Vec<K>,
    pub(crate) p: Vec<K>,
    pub(crate) ap: Vec<K>,
}

impl<K: Scalar> SolveScratch<K> {
    /// Allocates scratch for systems of `n` unknowns.
    pub fn new(n: usize) -> Self {
        SolveScratch {
            r: vec![K::ZERO; n],
            z: vec![K::ZERO; n],
            p: vec![K::ZERO; n],
            ap: vec![K::ZERO; n],
        }
    }

    /// Number of unknowns the scratch is sized for.
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// True when sized for zero unknowns.
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Grows the scratch to `n` unknowns if it is smaller (no-op, and no
    /// allocation, when already large enough).
    pub fn ensure(&mut self, n: usize) {
        if self.r.len() < n {
            *self = Self::new(n);
        }
    }

    /// Bytes held by the scratch vectors.
    pub fn bytes(&self) -> usize {
        4 * self.r.capacity() * core::mem::size_of::<K>()
    }
}
