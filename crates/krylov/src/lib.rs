//! Krylov iterative solvers in the paper's *iterative precision* `K`.
//!
//! Nothing in this crate knows about multigrid or FP16: the solvers are
//! generic over a [`LinOp`] (the system matrix) and a [`Preconditioner`].
//! That is exactly the paper's separation (§4.2): "all the optimizations
//! focus on preconditioners, so nothing special is applied to iterative
//! solvers". The preconditioner boundary is where precision changes: the
//! solver hands over a `K`-precision residual and receives a `K`-precision
//! error estimate; any internal truncation (Algorithm 2 lines 4/6) is the
//! preconditioner's business.
//!
//! Solvers: preconditioned flexible [`cg`] (SPD systems; the paper's rhd,
//! rhd-3T, solid-3D, laplace27), restarted flexible [`gmres`] and
//! [`bicgstab`] (nonsymmetric; oil, oil-4C, weather), and the stationary
//! [`richardson`] iteration of Algorithm 2.
//! All record the per-iteration relative residual history that Fig. 6
//! plots.

#![warn(missing_docs)]
mod bicgstab;
mod cg;
pub mod control;
mod gmres;
pub mod health;
mod richardson;
mod scratch;
mod traits;
mod types;

pub use bicgstab::{bicgstab, bicgstab_ctl};
pub use cg::{cg, cg_ctl, cg_ctl_in};
pub use control::{NoControl, SolveControl};
pub use gmres::{gmres, gmres_ctl};
pub use health::{Breakdown, HealthPolicy, IterHealth, SolveError, SolveHealth, Stagnation};
pub use richardson::{richardson, richardson_ctl};
pub use scratch::SolveScratch;
pub use traits::{IdentityPrecond, LinOp, Preconditioner, TimedPrecond};
pub use types::{SolveOptions, SolveResult, StopReason};

#[cfg(test)]
mod tests;
