//! Preconditioned conjugate gradients (flexible variant).

use fp16mg_fp::Scalar;

use crate::control::{NoControl, SolveControl};
use crate::health::{Breakdown, SolveHealth};
use crate::scratch::SolveScratch;
use crate::traits::{axpy, dot, norm2, xpby, LinOp, Preconditioner};
use crate::types::{SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` for SPD `A` with preconditioner `M⁻¹` (also SPD —
/// the V-cycle with forward/backward Gauss–Seidel pre/post smoothing and
/// `R = Pᵀ` qualifies). `x` holds the initial guess on entry and the
/// solution on exit.
///
/// Uses the *flexible* (Polak–Ribière) beta
/// `β = zₖ₊₁ᵀ(rₖ₊₁ − rₖ) / zₖᵀrₖ` instead of the Fletcher–Reeves form
/// `β = zₖ₊₁ᵀrₖ₊₁ / zₖᵀrₖ`. For an exact fixed preconditioner the two
/// coincide; for a reduced-precision multigrid whose application carries
/// `O(ε_P)` rounding noise, the flexible form restores local
/// orthogonality and avoids the late-stage stagnation classic PCG
/// exhibits once the residual approaches the preconditioner's noise
/// floor — the CG analog of choosing FGMRES, and standard practice for
/// variable preconditioners (Notay's flexible CG; hypre's `flex`
/// option). Cost: one extra dot product per iteration.
///
/// Fails typed rather than silently: a curvature `pᵀAp ≤ 0`
/// ([`Breakdown::Indefinite`] — loss of definiteness in the working
/// precision), a non-finite residual, or a plateau flagged by the
/// [`crate::HealthPolicy`] monitor each stop the solve with a diagnosis
/// in the result.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn cg<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
) -> SolveResult {
    cg_ctl(a, m, b, x, opts, &mut NoControl)
}

/// [`cg`] with a per-iteration [`SolveControl`] hook: the control is
/// polled at the top of every iteration and can abort the solve with a
/// typed interruption (deadline, cancellation, budget) — see
/// [`crate::StopReason::Interrupted`].
///
/// # Panics
/// Panics on dimension mismatch.
pub fn cg_ctl<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
    ctl: &mut impl SolveControl,
) -> SolveResult {
    let mut scratch = SolveScratch::new(a.rows());
    cg_ctl_in(a, m, b, x, opts, ctl, &mut scratch)
}

/// [`cg_ctl`] with caller-owned work vectors: the four per-solve vectors
/// come from `scratch` instead of fresh allocations, so a driver that
/// solves repeatedly at one size (time stepper, serve daemon) performs
/// zero heap allocations per warm solve. The scratch grows on demand and
/// is reusable across solves.
///
/// # Panics
/// Panics on dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn cg_ctl_in<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
    ctl: &mut impl SolveControl,
    scratch: &mut SolveScratch<K>,
) -> SolveResult {
    let n = a.rows();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        x.fill(K::ZERO);
        return SolveResult::new(StopReason::Converged, 0, 0.0, vec![0.0]);
    }

    scratch.ensure(n);
    let r = &mut scratch.r[..n];
    let z = &mut scratch.z[..n];
    let p = &mut scratch.p[..n];
    let ap = &mut scratch.ap[..n];

    // r = b - A x
    a.apply(x, r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }

    let mut health = SolveHealth::new(opts.health, opts.record_history);
    let mut history = Vec::new();
    let mut rel = norm2(r) / bnorm;
    if opts.record_history {
        history.push(rel);
    }
    health.observe(0, rel);
    if rel < opts.tol {
        return SolveResult::new(StopReason::Converged, 0, rel, history)
            .with_health(health.into_records());
    }

    m.apply(r, z);
    p.copy_from_slice(z);
    let mut rz = dot(r, z);

    for it in 1..=opts.max_iters {
        if let Err(e) = ctl.check(it) {
            return SolveResult::new(StopReason::Interrupted, it - 1, rel, history)
                .with_interrupt(e)
                .with_health(health.into_records());
        }
        a.apply(p, ap);
        let pap = dot(p, ap);
        if !pap.is_finite() || pap <= 0.0 {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Breakdown, it, f64::NAN, history)
                .with_breakdown(Breakdown::Indefinite { iter: it, pap })
                .with_health(health.into_records());
        }
        let alpha = rz / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);

        rel = norm2(r) / bnorm;
        if opts.record_history {
            history.push(rel);
        }
        if !rel.is_finite() {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Breakdown, it, rel, history)
                .with_breakdown(Breakdown::NonFiniteResidual { iter: it, value: rel })
                .with_health(health.into_records());
        }
        if rel < opts.tol {
            return SolveResult::new(StopReason::Converged, it, rel, history)
                .with_health(health.into_records());
        }
        if let Some(stag) = health.observe(it, rel) {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Stagnated, it, rel, history)
                .with_stagnation(stag)
                .with_health(health.into_records());
        }

        m.apply(r, z);
        let rz_new = dot(r, z);
        // Polak–Ribière numerator zᵀ(r_new − r_old): with
        // r_old = r_new + α·Ap this is rz_new − (rz_new + α·zᵀAp)
        //       = −α·zᵀAp, so β = (rz_new − zᵀr_old)/rz = −α·zᵀAp / rz.
        let z_ap = dot(z, ap);
        let beta_pr = -alpha * z_ap / rz;
        // Guard against loss of positivity from preconditioner noise.
        let beta = if beta_pr.is_finite() { beta_pr.max(0.0) } else { 0.0 };
        rz = rz_new;
        // p = z + beta p
        xpby(z, beta, p);
    }

    SolveResult::new(StopReason::MaxIters, opts.max_iters, rel, history)
        .with_health(health.into_records())
}
