//! Solver tests on small dense-stored operators with known solutions.

use crate::{
    cg, gmres, richardson, IdentityPrecond, LinOp, Preconditioner, SolveOptions, StopReason,
    TimedPrecond,
};
use fp16mg_fp::Scalar;

/// Dense row-major test operator.
struct Dense {
    n: usize,
    a: Vec<f64>,
}

impl Dense {
    /// 1-D Laplacian (tridiagonal 2,-1), SPD.
    fn laplace1d(n: usize) -> Self {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 2.0;
            if i > 0 {
                a[i * n + i - 1] = -1.0;
            }
            if i + 1 < n {
                a[i * n + i + 1] = -1.0;
            }
        }
        Dense { n, a }
    }

    /// Nonsymmetric advection-diffusion-like tridiagonal.
    fn advection1d(n: usize) -> Self {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 3.0;
            if i > 0 {
                a[i * n + i - 1] = -1.8;
            }
            if i + 1 < n {
                a[i * n + i + 1] = -0.7;
            }
        }
        Dense { n, a }
    }
}

impl<K: Scalar> LinOp<K> for Dense {
    fn rows(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[K], y: &mut [K]) {
        for (i, out) in y.iter_mut().enumerate().take(self.n) {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            let acc: f64 = row.iter().zip(x).map(|(&a, xv)| a * xv.to_f64()).sum();
            *out = K::from_f64(acc);
        }
    }
}

/// Jacobi preconditioner for the dense operators above.
struct Jacobi {
    dinv: Vec<f64>,
}

impl Jacobi {
    fn of(d: &Dense) -> Self {
        Jacobi { dinv: (0..d.n).map(|i| 1.0 / d.a[i * d.n + i]).collect() }
    }
}

impl<K: Scalar> Preconditioner<K> for Jacobi {
    fn apply(&mut self, r: &[K], z: &mut [K]) {
        for ((zi, &ri), &di) in z.iter_mut().zip(r).zip(&self.dinv) {
            *zi = K::from_f64(ri.to_f64() * di);
        }
    }
}

fn residual_norm(a: &Dense, b: &[f64], x: &[f64]) -> f64 {
    let mut ax = vec![0.0f64; b.len()];
    LinOp::<f64>::apply(a, x, &mut ax);
    b.iter().zip(&ax).map(|(&bi, &ai)| (bi - ai) * (bi - ai)).sum::<f64>().sqrt()
}

#[test]
fn cg_solves_spd_system() {
    let a = Dense::laplace1d(64);
    let b = vec![1.0f64; 64];
    let mut x = vec![0.0f64; 64];
    let res = cg(&a, &mut IdentityPrecond, &b, &mut x, &SolveOptions::default());
    assert_eq!(res.reason, StopReason::Converged);
    assert!(residual_norm(&a, &b, &x) < 1e-7);
    assert!(res.final_rel_residual < 1e-9);
}

#[test]
fn cg_with_jacobi_preconditioner() {
    let a = Dense::laplace1d(64);
    let mut m = Jacobi::of(&a);
    let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut x = vec![0.0f64; 64];
    let res = cg(&a, &mut m, &b, &mut x, &SolveOptions::default());
    assert!(res.converged());
    assert!(residual_norm(&a, &b, &x) < 1e-7);
}

#[test]
fn cg_history_is_recorded_and_decreasing_overall() {
    let a = Dense::laplace1d(32);
    let b = vec![1.0f64; 32];
    let mut x = vec![0.0f64; 32];
    let res = cg(&a, &mut IdentityPrecond, &b, &mut x, &SolveOptions::default());
    assert_eq!(res.history.len(), res.iters + 1);
    assert_eq!(res.history[0], 1.0); // x0 = 0 => r0 = b
    assert!(res.history.last().unwrap() < &1e-9);
}

#[test]
fn gmres_solves_nonsymmetric_system() {
    let a = Dense::advection1d(80);
    let b: Vec<f64> = (0..80).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut x = vec![0.0f64; 80];
    let res = gmres(&a, &mut IdentityPrecond, &b, &mut x, &SolveOptions::default());
    assert!(res.converged(), "{res:?}");
    assert!(residual_norm(&a, &b, &x) < 1e-6);
}

#[test]
fn gmres_restarts() {
    let a = Dense::advection1d(100);
    let b = vec![1.0f64; 100];
    let mut x = vec![0.0f64; 100];
    let opts = SolveOptions { restart: 5, max_iters: 2000, ..Default::default() };
    let res = gmres(&a, &mut IdentityPrecond, &b, &mut x, &opts);
    assert!(res.converged(), "{res:?}");
    assert!(residual_norm(&a, &b, &x) < 1e-6);
    assert!(res.iters > 5, "must have crossed a restart boundary");
}

#[test]
fn gmres_with_preconditioner_converges_faster() {
    let a = Dense::advection1d(100);
    let b = vec![1.0f64; 100];
    let opts = SolveOptions { restart: 10, max_iters: 2000, ..Default::default() };
    let mut x1 = vec![0.0f64; 100];
    let r1 = gmres(&a, &mut IdentityPrecond, &b, &mut x1, &opts);
    let mut x2 = vec![0.0f64; 100];
    let mut m = Jacobi::of(&a);
    let r2 = gmres(&a, &mut m, &b, &mut x2, &opts);
    assert!(r1.converged() && r2.converged());
    assert!(r2.iters <= r1.iters);
}

#[test]
fn richardson_with_good_preconditioner() {
    // Jacobi Richardson on a strongly diagonally dominant system.
    let mut a = Dense::laplace1d(32);
    for i in 0..32 {
        a.a[i * 32 + i] = 5.0;
    }
    let mut m = Jacobi::of(&a);
    let b = vec![1.0f64; 32];
    let mut x = vec![0.0f64; 32];
    let opts = SolveOptions { max_iters: 200, ..Default::default() };
    let res = richardson(&a, &mut m, &b, &mut x, &opts);
    assert!(res.converged(), "{res:?}");
    assert!(residual_norm(&a, &b, &x) < 1e-7);
}

#[test]
fn richardson_detects_divergence_as_maxiters() {
    // Identity preconditioner on the 1-D Laplacian: ρ(I - A) ≈ 3 > 1.
    let a = Dense::laplace1d(16);
    let b = vec![1.0f64; 16];
    let mut x = vec![0.0f64; 16];
    let opts = SolveOptions { max_iters: 30, record_history: true, ..Default::default() };
    let res = richardson(&a, &mut IdentityPrecond, &b, &mut x, &opts);
    assert!(!res.converged());
}

#[test]
fn breakdown_on_nan_preconditioner() {
    // A preconditioner that injects NaN (mimicking unscaled FP16 overflow,
    // §3.4) must surface as Breakdown, not run forever.
    struct NanPrecond;
    impl Preconditioner<f64> for NanPrecond {
        fn apply(&mut self, _r: &[f64], z: &mut [f64]) {
            z.fill(f64::NAN);
        }
    }
    let a = Dense::laplace1d(16);
    let b = vec![1.0f64; 16];
    let mut x = vec![0.0f64; 16];
    let res = cg(&a, &mut NanPrecond, &b, &mut x, &SolveOptions::default());
    assert_eq!(res.reason, StopReason::Breakdown);
    let mut x2 = vec![0.0f64; 16];
    let res2 = richardson(&a, &mut NanPrecond, &b, &mut x2, &SolveOptions::default());
    assert_eq!(res2.reason, StopReason::Breakdown);
    let mut x3 = vec![0.0f64; 16];
    let res3 = gmres(&a, &mut NanPrecond, &b, &mut x3, &SolveOptions::default());
    assert_eq!(res3.reason, StopReason::Breakdown);
}

#[test]
fn zero_rhs_returns_zero() {
    let a = Dense::laplace1d(8);
    let b = vec![0.0f64; 8];
    let mut x = vec![1.0f64; 8];
    let res = cg(&a, &mut IdentityPrecond, &b, &mut x, &SolveOptions::default());
    assert!(res.converged());
    assert!(x.iter().all(|&v| v == 0.0));
}

#[test]
fn timed_precond_counts_calls() {
    let a = Dense::laplace1d(32);
    let mut m = TimedPrecond::new(Jacobi::of(&a));
    let b = vec![1.0f64; 32];
    let mut x = vec![0.0f64; 32];
    let res = cg(&a, &mut m, &b, &mut x, &SolveOptions::default());
    assert!(res.converged());
    // CG applies M once before the loop and once per iteration (the last
    // iteration skips it only on convergence exit).
    assert!(m.calls() >= res.iters);
    assert!(m.elapsed().as_nanos() > 0);
}

#[test]
fn cg_f32_iterative_precision() {
    // The solvers are generic over K: run one in f32 (the paper's K32
    // configurations).
    let a = Dense::laplace1d(32);
    let b = vec![1.0f32; 32];
    let mut x = vec![0.0f32; 32];
    let opts = SolveOptions { tol: 1e-5, ..Default::default() };
    let res = cg(&a, &mut IdentityPrecond, &b, &mut x, &opts);
    assert!(res.converged());
}

#[test]
fn bicgstab_solves_nonsymmetric_system() {
    use crate::bicgstab;
    let a = Dense::advection1d(80);
    let b: Vec<f64> = (0..80).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut x = vec![0.0f64; 80];
    let res = bicgstab(&a, &mut IdentityPrecond, &b, &mut x, &SolveOptions::default());
    assert!(res.converged(), "{res:?}");
    assert!(residual_norm(&a, &b, &x) < 1e-6);
}

#[test]
fn bicgstab_with_preconditioner_converges_faster() {
    use crate::bicgstab;
    let a = Dense::advection1d(100);
    let b = vec![1.0f64; 100];
    let opts = SolveOptions { max_iters: 500, ..Default::default() };
    let mut x1 = vec![0.0f64; 100];
    let r1 = bicgstab(&a, &mut IdentityPrecond, &b, &mut x1, &opts);
    let mut m = Jacobi::of(&a);
    let mut x2 = vec![0.0f64; 100];
    let r2 = bicgstab(&a, &mut m, &b, &mut x2, &opts);
    assert!(r1.converged() && r2.converged());
    assert!(r2.iters <= r1.iters);
}

#[test]
fn bicgstab_breakdown_on_nan() {
    use crate::bicgstab;
    struct NanPrecond;
    impl Preconditioner<f64> for NanPrecond {
        fn apply(&mut self, _r: &[f64], z: &mut [f64]) {
            z.fill(f64::NAN);
        }
    }
    let a = Dense::laplace1d(16);
    let b = vec![1.0f64; 16];
    let mut x = vec![0.0f64; 16];
    let res = bicgstab(&a, &mut NanPrecond, &b, &mut x, &SolveOptions::default());
    assert_eq!(res.reason, StopReason::Breakdown);
}

#[test]
fn bicgstab_zero_rhs() {
    use crate::bicgstab;
    let a = Dense::laplace1d(8);
    let b = vec![0.0f64; 8];
    let mut x = vec![1.0f64; 8];
    let res = bicgstab(&a, &mut IdentityPrecond, &b, &mut x, &SolveOptions::default());
    assert!(res.converged());
    assert!(x.iter().all(|&v| v == 0.0));
}

// --------------------------------------------------- degraded profiles --

#[test]
fn degrade_relaxes_within_the_ceiling() {
    let o = SolveOptions { tol: 1e-9, max_iters: 500, ..SolveOptions::default() };
    let d = o.degrade(1e2, 1e-4, 120);
    assert_eq!(d.tol, 1e-9 * 1e2);
    assert_eq!(d.max_iters, 120);
    // Unrelated knobs are preserved.
    assert_eq!(d.restart, o.restart);
    assert_eq!(d.record_history, o.record_history);
}

#[test]
fn degrade_clamps_at_the_ceiling_and_never_tightens() {
    let o = SolveOptions { tol: 1e-6, ..SolveOptions::default() };
    assert_eq!(o.degrade(1e4, 1e-4, 1000).tol, 1e-4, "relaxation stops at the ceiling");
    let loose = SolveOptions { tol: 1e-3, ..SolveOptions::default() };
    assert_eq!(loose.degrade(1e2, 1e-4, 1000).tol, 1e-3, "never tighter than requested");
    // A relax factor below 1 would tighten; it is treated as 1.
    assert_eq!(o.degrade(0.5, 1e-4, 1000).tol, 1e-6);
    // An iteration cap of 0 still leaves one iteration.
    assert_eq!(o.degrade(1e2, 1e-4, 0).max_iters, 1);
    // A cap above the requested budget never raises it.
    assert_eq!(o.degrade(1e2, 1e-4, 10_000).max_iters, o.max_iters);
}

// ------------------------------------------------------- solve control --

mod control {
    use super::*;
    use crate::health::SolveError;
    use crate::{bicgstab_ctl, cg_ctl, gmres_ctl, richardson_ctl, SolveControl};

    /// A control that cancels after `allow` checks.
    struct CancelAfter {
        allow: usize,
        seen: usize,
    }

    impl SolveControl for CancelAfter {
        fn check(&mut self, iter: usize) -> Result<(), SolveError> {
            self.seen += 1;
            if self.seen > self.allow {
                Err(SolveError::Cancelled { iter })
            } else {
                Ok(())
            }
        }
    }

    /// Runs each solver on a problem it would not finish in 3 iterations
    /// and asserts the cancellation fires mid-iteration, typed.
    fn assert_interrupted(res: crate::SolveResult, solver: &str) {
        assert_eq!(res.reason, StopReason::Interrupted, "{solver}: {res:?}");
        assert!(
            matches!(res.interrupt, Some(SolveError::Cancelled { .. })),
            "{solver}: {:?}",
            res.interrupt
        );
        assert!(
            matches!(res.failure(), Some(SolveError::Cancelled { .. })),
            "{solver}: failure() must surface the interrupt"
        );
        assert!(res.iters <= 3, "{solver}: stopped late ({} iters)", res.iters);
    }

    #[test]
    fn cancellation_fires_mid_iteration_in_all_solvers() {
        let spd = Dense::laplace1d(64);
        let nonsym = Dense::advection1d(64);
        let b = vec![1.0f64; 64];
        let opts = SolveOptions::default();

        let mut x = vec![0.0f64; 64];
        let mut ctl = CancelAfter { allow: 3, seen: 0 };
        assert_interrupted(cg_ctl(&spd, &mut IdentityPrecond, &b, &mut x, &opts, &mut ctl), "cg");

        let mut x = vec![0.0f64; 64];
        let mut ctl = CancelAfter { allow: 3, seen: 0 };
        assert_interrupted(
            bicgstab_ctl(&nonsym, &mut IdentityPrecond, &b, &mut x, &opts, &mut ctl),
            "bicgstab",
        );

        let mut x = vec![0.0f64; 64];
        let mut ctl = CancelAfter { allow: 3, seen: 0 };
        assert_interrupted(
            gmres_ctl(&nonsym, &mut IdentityPrecond, &b, &mut x, &opts, &mut ctl),
            "gmres",
        );

        let mut x = vec![0.0f64; 64];
        let mut ctl = CancelAfter { allow: 3, seen: 0 };
        assert_interrupted(
            richardson_ctl(&spd, &mut Jacobi::of(&spd), &b, &mut x, &opts, &mut ctl),
            "richardson",
        );
    }

    #[test]
    fn deadline_error_via_closure_control() {
        use std::time::{Duration, Instant};
        let a = Dense::laplace1d(64);
        let b = vec![1.0f64; 64];
        let mut x = vec![0.0f64; 64];
        // A zero-length deadline: the first check already fails.
        let started = Instant::now();
        let deadline = Duration::ZERO;
        let mut ctl = |iter: usize| {
            let elapsed = started.elapsed();
            if elapsed > deadline {
                Err(SolveError::DeadlineExceeded { iter, elapsed, deadline })
            } else {
                Ok(())
            }
        };
        let res = cg_ctl(&a, &mut IdentityPrecond, &b, &mut x, &SolveOptions::default(), &mut ctl);
        assert_eq!(res.reason, StopReason::Interrupted);
        assert_eq!(res.iters, 0);
        match res.interrupt {
            Some(SolveError::DeadlineExceeded { iter: 1, .. }) => {}
            other => panic!("expected DeadlineExceeded at iter 1, got {other:?}"),
        }
    }

    #[test]
    fn no_control_changes_nothing() {
        // The plain entry points and the _ctl variants with NoControl
        // must agree bit-for-bit.
        let a = Dense::laplace1d(48);
        let b = vec![1.0f64; 48];
        let opts = SolveOptions::default();
        let mut x1 = vec![0.0f64; 48];
        let r1 = cg(&a, &mut IdentityPrecond, &b, &mut x1, &opts);
        let mut x2 = vec![0.0f64; 48];
        let r2 = cg_ctl(&a, &mut IdentityPrecond, &b, &mut x2, &opts, &mut crate::NoControl);
        assert_eq!(r1.iters, r2.iters);
        assert_eq!(r1.final_rel_residual, r2.final_rel_residual);
        assert_eq!(x1, x2);
    }

    #[test]
    fn gmres_interrupt_keeps_partial_progress() {
        // Cancel mid-restart-cycle: the partial x += Z y update must have
        // been applied, improving on the zero initial guess.
        let a = Dense::advection1d(100);
        let b = vec![1.0f64; 100];
        let mut x = vec![0.0f64; 100];
        let opts = SolveOptions { restart: 30, ..Default::default() };
        let mut ctl = CancelAfter { allow: 5, seen: 0 };
        let res = gmres_ctl(&a, &mut IdentityPrecond, &b, &mut x, &opts, &mut ctl);
        assert_eq!(res.reason, StopReason::Interrupted);
        assert!(x.iter().any(|&v| v != 0.0), "partial update must be applied");
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(residual_norm(&a, &b, &x) < bnorm, "iterate must improve on x0 = 0");
    }

    #[test]
    fn retryable_classification() {
        assert!(SolveError::Unconverged { iters: 10, rel: 0.5 }.retryable());
        assert!(SolveError::SetupFailed { message: "g".into() }.retryable());
        assert!(!SolveError::Cancelled { iter: 1 }.retryable());
        assert!(!SolveError::WorkerPanicked { message: "p".into() }.retryable());
        assert!(!SolveError::DeadlineExceeded {
            iter: 1,
            elapsed: std::time::Duration::from_millis(2),
            deadline: std::time::Duration::from_millis(1),
        }
        .retryable());
    }
}
