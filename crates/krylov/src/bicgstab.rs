//! Preconditioned BiCGStab.

use fp16mg_fp::Scalar;

use crate::traits::{dot, norm2, LinOp, Preconditioner};
use crate::types::{SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` for general `A` with right preconditioning via the
/// stabilized bi-conjugate gradient method — the workhorse of reservoir
/// simulators (the paper's oil problems ship from OpenCAEPoro, whose
/// default solver family includes BiCGStab) and a short-recurrence
/// alternative to restarted GMRES: two matrix–vector products and two
/// preconditioner applications per iteration, O(1) memory.
///
/// `x` holds the initial guess on entry and the solution on exit.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn bicgstab<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
) -> SolveResult {
    let n = a.rows();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        x.fill(K::ZERO);
        return SolveResult {
            reason: StopReason::Converged,
            iters: 0,
            final_rel_residual: 0.0,
            history: vec![0.0],
        };
    }

    let mut r = vec![K::ZERO; n];
    a.apply(x, &mut r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let r0: Vec<K> = r.clone(); // shadow residual
    let mut p = r.clone();
    let mut phat = vec![K::ZERO; n];
    let mut v = vec![K::ZERO; n];
    let mut s = vec![K::ZERO; n];
    let mut shat = vec![K::ZERO; n];
    let mut t = vec![K::ZERO; n];
    let mut rho = dot(&r0, &r);

    let mut history = Vec::new();
    let mut rel = norm2(&r) / bnorm;
    if opts.record_history {
        history.push(rel);
    }
    if rel < opts.tol {
        return SolveResult {
            reason: StopReason::Converged,
            iters: 0,
            final_rel_residual: rel,
            history,
        };
    }

    for it in 1..=opts.max_iters {
        // p̂ = M⁻¹p; v = A p̂.
        m.apply(&p, &mut phat);
        a.apply(&phat, &mut v);
        let r0v = dot(&r0, &v);
        if r0v == 0.0 || !r0v.is_finite() {
            return SolveResult {
                reason: StopReason::Breakdown,
                iters: it,
                final_rel_residual: rel,
                history,
            };
        }
        let alpha = rho / r0v;
        let ka = K::from_f64(alpha);
        for ((si, &ri), &vi) in s.iter_mut().zip(&r).zip(&v) {
            *si = ri - ka * vi;
        }
        // Early exit on half-step convergence.
        let snorm = norm2(&s) / bnorm;
        if snorm < opts.tol {
            for (xi, &ph) in x.iter_mut().zip(&phat) {
                *xi += ka * ph;
            }
            if opts.record_history {
                history.push(snorm);
            }
            return SolveResult {
                reason: StopReason::Converged,
                iters: it,
                final_rel_residual: snorm,
                history,
            };
        }
        // ŝ = M⁻¹s; t = A ŝ.
        m.apply(&s, &mut shat);
        a.apply(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            return SolveResult {
                reason: StopReason::Breakdown,
                iters: it,
                final_rel_residual: rel,
                history,
            };
        }
        let omega = dot(&t, &s) / tt;
        let kw = K::from_f64(omega);
        for ((xi, &ph), &sh) in x.iter_mut().zip(&phat).zip(&shat) {
            *xi += ka * ph + kw * sh;
        }
        for ((ri, &si), &ti) in r.iter_mut().zip(&s).zip(&t) {
            *ri = si - kw * ti;
        }

        rel = norm2(&r) / bnorm;
        if opts.record_history {
            history.push(rel);
        }
        if !rel.is_finite() {
            return SolveResult {
                reason: StopReason::Breakdown,
                iters: it,
                final_rel_residual: rel,
                history,
            };
        }
        if rel < opts.tol {
            return SolveResult {
                reason: StopReason::Converged,
                iters: it,
                final_rel_residual: rel,
                history,
            };
        }

        let rho_new = dot(&r0, &r);
        if rho_new == 0.0 || omega == 0.0 {
            return SolveResult {
                reason: StopReason::Breakdown,
                iters: it,
                final_rel_residual: rel,
                history,
            };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        let kb = K::from_f64(beta);
        for ((pi, &ri), &vi) in p.iter_mut().zip(&r).zip(&v) {
            *pi = ri + kb * (*pi - kw * vi);
        }
    }

    SolveResult {
        reason: StopReason::MaxIters,
        iters: opts.max_iters,
        final_rel_residual: rel,
        history,
    }
}
