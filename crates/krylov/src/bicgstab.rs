//! Preconditioned BiCGStab.

use fp16mg_fp::Scalar;

use crate::control::{NoControl, SolveControl};
use crate::health::{Breakdown, SolveHealth};
use crate::traits::{dot, norm2, LinOp, Preconditioner};
use crate::types::{SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` for general `A` with right preconditioning via the
/// stabilized bi-conjugate gradient method — the workhorse of reservoir
/// simulators (the paper's oil problems ship from OpenCAEPoro, whose
/// default solver family includes BiCGStab) and a short-recurrence
/// alternative to restarted GMRES: two matrix–vector products and two
/// preconditioner applications per iteration, O(1) memory.
///
/// `x` holds the initial guess on entry and the solution on exit.
///
/// The classic BiCGStab breakdown conditions are reported typed: a
/// vanished shadow correlation as [`Breakdown::RhoBreakdown`], a
/// degenerate stabilization step as [`Breakdown::OmegaBreakdown`], plus
/// non-finite residuals and monitor-detected stagnation.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn bicgstab<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
) -> SolveResult {
    bicgstab_ctl(a, m, b, x, opts, &mut NoControl)
}

/// [`bicgstab`] with a per-iteration [`SolveControl`] hook (see
/// [`crate::cg_ctl`] for the contract).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn bicgstab_ctl<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
    ctl: &mut impl SolveControl,
) -> SolveResult {
    let n = a.rows();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        x.fill(K::ZERO);
        return SolveResult::new(StopReason::Converged, 0, 0.0, vec![0.0]);
    }

    let mut r = vec![K::ZERO; n];
    a.apply(x, &mut r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let r0: Vec<K> = r.clone(); // shadow residual
    let mut p = r.clone();
    let mut phat = vec![K::ZERO; n];
    let mut v = vec![K::ZERO; n];
    let mut s = vec![K::ZERO; n];
    let mut shat = vec![K::ZERO; n];
    let mut t = vec![K::ZERO; n];
    let mut rho = dot(&r0, &r);

    let mut health = SolveHealth::new(opts.health, opts.record_history);
    let mut history = Vec::new();
    let mut rel = norm2(&r) / bnorm;
    if opts.record_history {
        history.push(rel);
    }
    health.observe(0, rel);
    if rel < opts.tol {
        return SolveResult::new(StopReason::Converged, 0, rel, history)
            .with_health(health.into_records());
    }

    for it in 1..=opts.max_iters {
        if let Err(e) = ctl.check(it) {
            return SolveResult::new(StopReason::Interrupted, it - 1, rel, history)
                .with_interrupt(e)
                .with_health(health.into_records());
        }
        // p̂ = M⁻¹p; v = A p̂.
        m.apply(&p, &mut phat);
        a.apply(&phat, &mut v);
        let r0v = dot(&r0, &v);
        if r0v == 0.0 || !r0v.is_finite() {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Breakdown, it, rel, history)
                .with_breakdown(Breakdown::RhoBreakdown { iter: it, rho: r0v })
                .with_health(health.into_records());
        }
        let alpha = rho / r0v;
        let ka = K::from_f64(alpha);
        for ((si, &ri), &vi) in s.iter_mut().zip(&r).zip(&v) {
            *si = ri - ka * vi;
        }
        // Early exit on half-step convergence.
        let snorm = norm2(&s) / bnorm;
        if snorm < opts.tol {
            for (xi, &ph) in x.iter_mut().zip(&phat) {
                *xi += ka * ph;
            }
            if opts.record_history {
                history.push(snorm);
            }
            return SolveResult::new(StopReason::Converged, it, snorm, history)
                .with_health(health.into_records());
        }
        // ŝ = M⁻¹s; t = A ŝ.
        m.apply(&s, &mut shat);
        a.apply(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Breakdown, it, rel, history)
                .with_breakdown(Breakdown::OmegaBreakdown { iter: it, omega: tt })
                .with_health(health.into_records());
        }
        let omega = dot(&t, &s) / tt;
        let kw = K::from_f64(omega);
        for ((xi, &ph), &sh) in x.iter_mut().zip(&phat).zip(&shat) {
            *xi += ka * ph + kw * sh;
        }
        for ((ri, &si), &ti) in r.iter_mut().zip(&s).zip(&t) {
            *ri = si - kw * ti;
        }

        rel = norm2(&r) / bnorm;
        if opts.record_history {
            history.push(rel);
        }
        if !rel.is_finite() {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Breakdown, it, rel, history)
                .with_breakdown(Breakdown::NonFiniteResidual { iter: it, value: rel })
                .with_health(health.into_records());
        }
        if rel < opts.tol {
            return SolveResult::new(StopReason::Converged, it, rel, history)
                .with_health(health.into_records());
        }
        if let Some(stag) = health.observe(it, rel) {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Stagnated, it, rel, history)
                .with_stagnation(stag)
                .with_health(health.into_records());
        }

        let rho_new = dot(&r0, &r);
        if rho_new == 0.0 || omega == 0.0 {
            m.on_health_anomaly();
            let b = if rho_new == 0.0 {
                Breakdown::RhoBreakdown { iter: it, rho: rho_new }
            } else {
                Breakdown::OmegaBreakdown { iter: it, omega }
            };
            return SolveResult::new(StopReason::Breakdown, it, rel, history)
                .with_breakdown(b)
                .with_health(health.into_records());
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        let kb = K::from_f64(beta);
        for ((pi, &ri), &vi) in p.iter_mut().zip(&r).zip(&v) {
            *pi = ri + kb * (*pi - kw * vi);
        }
    }

    SolveResult::new(StopReason::MaxIters, opts.max_iters, rel, history)
        .with_health(health.into_records())
}
