//! Restarted flexible GMRES (FGMRES) with right preconditioning.

use fp16mg_fp::Scalar;

use crate::control::{NoControl, SolveControl};
use crate::health::{Breakdown, SolveHealth};
use crate::traits::{norm2, LinOp, Preconditioner};
use crate::types::{SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` for general (nonsymmetric) `A` via flexible
/// GMRES(m) with right preconditioning. `x` holds the initial guess on
/// entry and the solution on exit.
///
/// The *flexible* variant stores the preconditioned basis
/// `z_j = M⁻¹ v_j` and forms the solution update from those exact
/// vectors (`x += Z y`). This matters for reduced-precision
/// preconditioners: plain right-preconditioned GMRES re-applies `M⁻¹` to
/// the assembled combination `V y` at the end of each cycle, and the
/// preconditioner's rounding error — `O(ε_P · κ)` for an FP32 multigrid
/// on an ill-conditioned system — then lands directly in the solution
/// update, creating a residual floor far above the FP64 target. FGMRES
/// sidesteps that by construction, which is why multigrid-preconditioned
/// production solvers (hypre's FlexGMRES, PETSc's fgmres) default to it.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gmres<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
) -> SolveResult {
    gmres_ctl(a, m, b, x, opts, &mut NoControl)
}

/// [`gmres`] with a per-iteration [`SolveControl`] hook, polled once per
/// *inner* (Arnoldi) iteration. On interruption the partial flexible
/// update `x += Z y` for the completed inner iterations is still
/// applied, so the iterate reflects all work done so far.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gmres_ctl<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
    ctl: &mut impl SolveControl,
) -> SolveResult {
    let n = a.rows();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let restart = opts.restart.max(1);

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        x.fill(K::ZERO);
        return SolveResult::new(StopReason::Converged, 0, 0.0, vec![0.0]);
    }

    let mut health = SolveHealth::new(opts.health, opts.record_history);
    let mut history = Vec::new();
    let mut total_iters = 0usize;
    let mut last_breakdown: Option<Breakdown> = None;

    // Krylov basis V (restart+1 vectors), flexible basis Z (restart
    // vectors), Hessenberg in f64.
    let mut basis: Vec<Vec<K>> = Vec::with_capacity(restart + 1);
    let mut zbasis: Vec<Vec<K>> = Vec::with_capacity(restart);
    let mut h = vec![0.0f64; (restart + 1) * restart];
    let mut cs = vec![0.0f64; restart];
    let mut sn = vec![0.0f64; restart];
    let mut g = vec![0.0f64; restart + 1];
    let mut scratch = vec![K::ZERO; n];

    let mut rel;
    loop {
        // r0 = b - A x
        let mut r = vec![K::ZERO; n];
        a.apply(x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let beta = norm2(&r);
        rel = beta / bnorm;
        if opts.record_history && history.is_empty() {
            history.push(rel);
        }
        if !rel.is_finite() {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Breakdown, total_iters, rel, history)
                .with_breakdown(Breakdown::NonFiniteResidual { iter: total_iters, value: rel })
                .with_health(health.into_records());
        }
        if rel < opts.tol {
            return SolveResult::new(StopReason::Converged, total_iters, rel, history)
                .with_health(health.into_records());
        }
        if total_iters >= opts.max_iters {
            return SolveResult::new(StopReason::MaxIters, total_iters, rel, history)
                .with_health(health.into_records());
        }

        // Arnoldi from v0 = r/beta.
        basis.clear();
        zbasis.clear();
        let inv_beta = K::from_f64(1.0 / beta);
        basis.push(r.iter().map(|&v| v * inv_beta).collect());
        g.iter_mut().for_each(|v| *v = 0.0);
        g[0] = beta;
        h.iter_mut().for_each(|v| *v = 0.0);

        let mut k_used = 0usize;
        let mut broke_down = false;
        let mut stagnated = None;
        let mut interrupted = None;
        for k in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            if let Err(e) = ctl.check(total_iters + 1) {
                interrupted = Some(e);
                break;
            }
            // z_k = M⁻¹ v_k (kept); w = A z_k.
            let mut z = vec![K::ZERO; n];
            m.apply(&basis[k], &mut z);
            a.apply(&z, &mut scratch);
            zbasis.push(z);
            // Modified Gram–Schmidt.
            for (i, vi) in basis.iter().enumerate() {
                let hik = crate::traits::dot(&scratch, vi);
                h[i * restart + k] = hik;
                let c = K::from_f64(hik);
                for (w, &v) in scratch.iter_mut().zip(vi) {
                    *w = (-c).mul_add(v, *w);
                }
            }
            let hkk = norm2(&scratch);
            h[(k + 1) * restart + k] = hkk;
            if !hkk.is_finite() {
                broke_down = true;
                last_breakdown =
                    Some(Breakdown::HessenbergNonFinite { iter: total_iters + 1, entry: hkk });
                k_used = k + 1;
                total_iters += 1;
                break;
            }

            // Apply accumulated Givens rotations to column k.
            for i in 0..k {
                let t = cs[i] * h[i * restart + k] + sn[i] * h[(i + 1) * restart + k];
                h[(i + 1) * restart + k] =
                    -sn[i] * h[i * restart + k] + cs[i] * h[(i + 1) * restart + k];
                h[i * restart + k] = t;
            }
            // New rotation to annihilate h[k+1][k].
            let denom = (h[k * restart + k].powi(2) + hkk * hkk).sqrt();
            if denom == 0.0 {
                // Exact breakdown: solution lies in the current space.
                k_used = k + 1;
                total_iters += 1;
                break;
            }
            cs[k] = h[k * restart + k] / denom;
            sn[k] = hkk / denom;
            h[k * restart + k] = denom;
            h[(k + 1) * restart + k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];

            total_iters += 1;
            k_used = k + 1;
            rel = g[k + 1].abs() / bnorm;
            if opts.record_history {
                history.push(rel);
            }
            if rel < opts.tol || hkk == 0.0 {
                break;
            }
            // Observe *after* the convergence check so a converged final
            // iteration is never misread as a stall.
            stagnated = health.observe(total_iters, rel);
            if stagnated.is_some() {
                break;
            }
            if k + 1 < restart {
                let inv = K::from_f64(1.0 / hkk);
                basis.push(scratch.iter().map(|&v| v * inv).collect());
            }
        }

        if k_used > 0 {
            // Solve the triangular system h y = g.
            let mut y = vec![0.0f64; k_used];
            for i in (0..k_used).rev() {
                let mut v = g[i];
                for j in i + 1..k_used {
                    v -= h[i * restart + j] * y[j];
                }
                let d = h[i * restart + i];
                if d == 0.0 || !v.is_finite() {
                    broke_down = true;
                    last_breakdown = Some(Breakdown::HessenbergNonFinite {
                        iter: total_iters,
                        entry: if d == 0.0 { d } else { v },
                    });
                    break;
                }
                y[i] = v / d;
            }
            if !broke_down {
                // x += Z y — the flexible update.
                for (j, zj) in zbasis.iter().enumerate().take(k_used) {
                    let c = K::from_f64(y[j]);
                    for (xi, &zv) in x.iter_mut().zip(zj) {
                        *xi = c.mul_add(zv, *xi);
                    }
                }
            }
        }
        if broke_down {
            m.on_health_anomaly();
            let b = last_breakdown
                .unwrap_or(Breakdown::HessenbergNonFinite { iter: total_iters, entry: f64::NAN });
            return SolveResult::new(StopReason::Breakdown, total_iters, f64::NAN, history)
                .with_breakdown(b)
                .with_health(health.into_records());
        }
        if let Some(e) = interrupted {
            return SolveResult::new(StopReason::Interrupted, total_iters, rel, history)
                .with_interrupt(e)
                .with_health(health.into_records());
        }
        if let Some(stag) = stagnated {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Stagnated, total_iters, rel, history)
                .with_stagnation(stag)
                .with_health(health.into_records());
        }
    }
}
