//! Operator and preconditioner abstractions.

use fp16mg_fp::Scalar;
use std::time::{Duration, Instant};

/// A square linear operator in the iterative precision `K`.
pub trait LinOp<K: Scalar> {
    /// Number of rows (= columns = vector length).
    fn rows(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &[K], y: &mut [K]);
}

/// A preconditioner `M⁻¹` applied in the iterative precision `K`.
///
/// Implementations are free to drop to lower precisions internally — the
/// FP16 multigrid truncates the incoming residual to its computation
/// precision and widens the returned error (paper Algorithm 2, lines 4–6).
/// `&mut self` allows internal scratch reuse.
pub trait Preconditioner<K: Scalar> {
    /// `z ≈ M⁻¹ r`.
    fn apply(&mut self, r: &[K], z: &mut [K]);

    /// Called by the solver when its health monitor reports an anomaly —
    /// a numerical breakdown or a precision-attributable stagnation —
    /// *before* the solver gives up on the iteration. A stateful
    /// preconditioner can audit itself (e.g. verify integrity sentinels
    /// and repair corrupted storage) and return how many corrective
    /// actions it took; the solver records nothing and still exits with
    /// its typed error, but a retry can now succeed against the mended
    /// state. The default does nothing.
    fn on_health_anomaly(&mut self) -> usize {
        0
    }
}

/// The identity preconditioner (unpreconditioned solves).
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityPrecond;

impl<K: Scalar> Preconditioner<K> for IdentityPrecond {
    fn apply(&mut self, r: &[K], z: &mut [K]) {
        z.copy_from_slice(r);
    }
}

/// Wraps a preconditioner and accumulates wall time and call count — the
/// instrumentation behind the Fig. 8/9 time breakdown (setup / MG
/// preconditioner / other).
pub struct TimedPrecond<M> {
    inner: M,
    elapsed: Duration,
    calls: usize,
}

impl<M> TimedPrecond<M> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: M) -> Self {
        TimedPrecond { inner, elapsed: Duration::ZERO, calls: 0 }
    }

    /// Total time spent inside `apply`.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Number of `apply` calls.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Returns the wrapped preconditioner.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Borrows the wrapped preconditioner.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<K: Scalar, M: Preconditioner<K>> Preconditioner<K> for TimedPrecond<M> {
    fn apply(&mut self, r: &[K], z: &mut [K]) {
        let t0 = Instant::now();
        self.inner.apply(r, z);
        self.elapsed += t0.elapsed();
        self.calls += 1;
    }

    fn on_health_anomaly(&mut self) -> usize {
        // Integrity work is preconditioner work: bill it the same way.
        let t0 = Instant::now();
        let actions = self.inner.on_health_anomaly();
        self.elapsed += t0.elapsed();
        actions
    }
}

/// Euclidean norm with `f64` accumulation regardless of `K`.
pub(crate) fn norm2<K: Scalar>(v: &[K]) -> f64 {
    v.iter().map(|&x| x.to_f64() * x.to_f64()).sum::<f64>().sqrt()
}

/// Dot product with `f64` accumulation.
pub(crate) fn dot<K: Scalar>(a: &[K], b: &[K]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x.to_f64() * y.to_f64()).sum()
}

/// `y += alpha * x`.
pub(crate) fn axpy<K: Scalar>(alpha: f64, x: &[K], y: &mut [K]) {
    let a = K::from_f64(alpha);
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = a.mul_add(xi, *yi);
    }
}

/// `y = x + beta * y`.
pub(crate) fn xpby<K: Scalar>(x: &[K], beta: f64, y: &mut [K]) {
    let b = K::from_f64(beta);
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = b.mul_add(*yi, xi);
    }
}
