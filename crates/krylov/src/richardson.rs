//! Stationary (Richardson) iteration — the paper's Algorithm 2.

use fp16mg_fp::Scalar;

use crate::control::{NoControl, SolveControl};
use crate::health::{Breakdown, SolveHealth};
use crate::traits::{norm2, LinOp, Preconditioner};
use crate::types::{SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` by the preconditioned stationary iteration
/// `x ← x + M⁻¹ (b − A x)` (Algorithm 2). Converges iff
/// `ρ(I − M⁻¹A) < 1`; with a multigrid preconditioner this is "multigrid
/// as a solver". `x` holds the initial guess on entry and the solution on
/// exit.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn richardson<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
) -> SolveResult {
    richardson_ctl(a, m, b, x, opts, &mut NoControl)
}

/// [`richardson`] with a per-iteration [`SolveControl`] hook (see
/// [`crate::cg_ctl`] for the contract).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn richardson_ctl<K: Scalar>(
    a: &impl LinOp<K>,
    m: &mut impl Preconditioner<K>,
    b: &[K],
    x: &mut [K],
    opts: &SolveOptions,
    ctl: &mut impl SolveControl,
) -> SolveResult {
    let n = a.rows();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        x.fill(K::ZERO);
        return SolveResult::new(StopReason::Converged, 0, 0.0, vec![0.0]);
    }

    let mut r = vec![K::ZERO; n];
    let mut e = vec![K::ZERO; n];
    let mut health = SolveHealth::new(opts.health, opts.record_history);
    let mut history = Vec::new();
    let mut rel = f64::NAN;

    for it in 0..=opts.max_iters {
        if let Err(e) = ctl.check(it) {
            return SolveResult::new(StopReason::Interrupted, it.saturating_sub(1), rel, history)
                .with_interrupt(e)
                .with_health(health.into_records());
        }
        // r = b - A x  (iterative precision, Algorithm 2 line 3)
        a.apply(x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        rel = norm2(&r) / bnorm;
        if opts.record_history {
            history.push(rel);
        }
        if !rel.is_finite() {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Breakdown, it, rel, history)
                .with_breakdown(Breakdown::NonFiniteResidual { iter: it, value: rel })
                .with_health(health.into_records());
        }
        if rel < opts.tol {
            return SolveResult::new(StopReason::Converged, it, rel, history)
                .with_health(health.into_records());
        }
        if let Some(stag) = health.observe(it, rel) {
            m.on_health_anomaly();
            return SolveResult::new(StopReason::Stagnated, it, rel, history)
                .with_stagnation(stag)
                .with_health(health.into_records());
        }
        if it == opts.max_iters {
            break;
        }
        // e = M⁻¹ r (lines 4–6: truncation/recovery inside the
        // preconditioner), then x += e.
        m.apply(&r, &mut e);
        for (xi, &ei) in x.iter_mut().zip(&e) {
            *xi += ei;
        }
    }

    SolveResult::new(StopReason::MaxIters, opts.max_iters, rel, history)
        .with_health(health.into_records())
}
