//! Cooperative per-iteration solve control.
//!
//! A long-running Krylov solve is a unit of work that an outer runtime
//! may need to bound (wall-clock deadline, V-cycle budget) or abort
//! (cooperative cancellation). The solvers poll a [`SolveControl`] once
//! per iteration — before any matrix or preconditioner work for that
//! iteration — and stop with [`crate::StopReason::Interrupted`] and the
//! returned typed [`SolveError`] the moment the hook objects. The
//! iterate `x` is left at its last completed state, so a caller that
//! raised a *soft* limit can resume from it.
//!
//! The hook deliberately lives on a trait rather than inside
//! [`crate::SolveOptions`]: options stay `Clone + Debug` plain data,
//! while controls may carry clocks, atomics, or shared counters.

use crate::health::SolveError;

/// Per-iteration control hook polled by every solver loop.
pub trait SolveControl {
    /// Called at the top of each iteration (for GMRES: each *inner*
    /// iteration) with the iteration number about to run. Returning an
    /// error aborts the solve immediately with
    /// [`crate::StopReason::Interrupted`] and the error recorded in
    /// [`crate::SolveResult::interrupt`].
    ///
    /// # Errors
    /// The typed reason the solve must stop (deadline, cancellation,
    /// budget exhaustion).
    fn check(&mut self, iter: usize) -> Result<(), SolveError>;
}

/// The do-nothing control: never interrupts. Used by the plain solver
/// entry points ([`crate::cg`], [`crate::gmres`], …).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoControl;

impl SolveControl for NoControl {
    fn check(&mut self, _iter: usize) -> Result<(), SolveError> {
        Ok(())
    }
}

/// Closures are controls: `|iter| if done { Err(...) } else { Ok(()) }`.
/// The solvers take `&mut impl SolveControl`, so one control instance
/// (e.g. a budget guard) can be polled through several attempts.
impl<F: FnMut(usize) -> Result<(), SolveError>> SolveControl for F {
    fn check(&mut self, iter: usize) -> Result<(), SolveError> {
        self(iter)
    }
}
