//! Runtime solve-health monitoring.
//!
//! Reduced-precision preconditioning fails in recognizable ways: the
//! residual plateaus at the storage format's noise floor instead of
//! converging, rebounds after an overflow poisons a level, or the Krylov
//! recurrence itself breaks down (CG's `pᵀAp ≤ 0`, BiCGSTAB's `ρ ≈ 0`,
//! a NaN in GMRES's Hessenberg). The seed code either panicked or spun to
//! `max_iters` silently; this module turns those outcomes into typed
//! diagnoses the recovery layer in `fp16mg-core` can act on — stagnation
//! *above the FP16 unit-roundoff floor* is the signal that promoting a
//! stored level to FP32 (rather than more iterations) is the fix.

/// Typed cause of a solver breakdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Breakdown {
    /// CG: the curvature `pᵀAp` was ≤ 0 or non-finite — the operator or
    /// preconditioner is not positive definite *in the working precision*
    /// (a truncated FP16 level can lose definiteness the exact operator
    /// has).
    Indefinite {
        /// Iteration at which the breakdown was detected.
        iter: usize,
        /// The offending curvature value.
        pap: f64,
    },
    /// BiCGSTAB: the shadow-residual correlation `ρ = r̃ᵀr` (or `r̃ᵀv`)
    /// vanished or went non-finite, so the recurrence coefficients are
    /// undefined.
    RhoBreakdown {
        /// Iteration at which the breakdown was detected.
        iter: usize,
        /// The offending correlation value.
        rho: f64,
    },
    /// BiCGSTAB: the stabilization step degenerated (`tᵀt = 0` or
    /// `ω = 0`).
    OmegaBreakdown {
        /// Iteration at which the breakdown was detected.
        iter: usize,
        /// The offending stabilization value.
        omega: f64,
    },
    /// GMRES: a non-finite entry appeared in the Hessenberg factorization
    /// (NaN/∞ propagated through the Arnoldi process) or its triangular
    /// solve was singular.
    HessenbergNonFinite {
        /// Inner iteration at which the breakdown was detected.
        iter: usize,
        /// The offending Hessenberg entry or pivot.
        entry: f64,
    },
    /// The residual norm itself became NaN or ±∞.
    NonFiniteResidual {
        /// Iteration at which the breakdown was detected.
        iter: usize,
        /// The non-finite relative residual.
        value: f64,
    },
}

impl Breakdown {
    /// Iteration at which the breakdown was detected.
    pub fn iter(&self) -> usize {
        match *self {
            Breakdown::Indefinite { iter, .. }
            | Breakdown::RhoBreakdown { iter, .. }
            | Breakdown::OmegaBreakdown { iter, .. }
            | Breakdown::HessenbergNonFinite { iter, .. }
            | Breakdown::NonFiniteResidual { iter, .. } => iter,
        }
    }

    /// True when the breakdown involves a non-finite value — the signature
    /// of overflow in a stored matrix rather than a property of the exact
    /// problem, and therefore precision-attributable.
    pub fn non_finite(&self) -> bool {
        match *self {
            Breakdown::Indefinite { pap: v, .. }
            | Breakdown::RhoBreakdown { rho: v, .. }
            | Breakdown::OmegaBreakdown { omega: v, .. }
            | Breakdown::HessenbergNonFinite { entry: v, .. }
            | Breakdown::NonFiniteResidual { value: v, .. } => !v.is_finite(),
        }
    }
}

impl core::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Breakdown::Indefinite { iter, pap } => {
                write!(
                    f,
                    "CG breakdown at iteration {iter}: pᵀAp = {pap} (not SPD in working precision)"
                )
            }
            Breakdown::RhoBreakdown { iter, rho } => {
                write!(f, "BiCGSTAB breakdown at iteration {iter}: shadow correlation ρ = {rho}")
            }
            Breakdown::OmegaBreakdown { iter, omega } => {
                write!(f, "BiCGSTAB breakdown at iteration {iter}: stabilization ω = {omega}")
            }
            Breakdown::HessenbergNonFinite { iter, entry } => {
                write!(f, "GMRES breakdown at inner iteration {iter}: Hessenberg entry {entry}")
            }
            Breakdown::NonFiniteResidual { iter, value } => {
                write!(f, "non-finite residual norm {value} at iteration {iter}")
            }
        }
    }
}

/// Diagnosis of a residual plateau or rebound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stagnation {
    /// Iteration at which stagnation was declared.
    pub iter: usize,
    /// Best relative residual reached before stalling.
    pub best_rel: f64,
    /// Relative residual at declaration time.
    pub rel: f64,
    /// True when the plateau sits *above* [`HealthPolicy::fp16_floor`]:
    /// the stall is then attributable to reduced-precision storage (a
    /// correctly scaled FP16 preconditioner bottoms out near its unit
    /// roundoff, not above it) and precision promotion is the indicated
    /// recovery.
    pub above_fp16_floor: bool,
}

impl core::fmt::Display for Stagnation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "stagnated at iteration {}: best rel {:.3e}, current {:.3e}{}",
            self.iter,
            self.best_rel,
            self.rel,
            if self.above_fp16_floor { " (above FP16 roundoff floor)" } else { "" }
        )
    }
}

/// A failed solve, as a proper error type for callers that want `Result`.
///
/// Beyond the numerical failures ([`SolveError::Breakdown`],
/// [`SolveError::Stagnated`]) this is also the typed vocabulary of the
/// resilient runtime layer (`fp16mg-runtime`): deadline and budget
/// interruptions raised through the [`crate::SolveControl`] hook,
/// cancellation, retry-ladder exhaustion, and panic isolation in the
/// concurrent pool all surface here, so one error type describes every
/// way a solve session can end short of convergence.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The recurrence broke down.
    Breakdown(Breakdown),
    /// The residual stalled or rebounded without converging.
    Stagnated(Stagnation),
    /// The wall-clock deadline passed mid-solve (raised by a
    /// [`crate::SolveControl`] hook, never by the bare solvers).
    DeadlineExceeded {
        /// Iteration at which the deadline check fired.
        iter: usize,
        /// Time elapsed since the session started.
        elapsed: std::time::Duration,
        /// The configured deadline.
        deadline: std::time::Duration,
    },
    /// The solve was cooperatively cancelled.
    Cancelled {
        /// Iteration at which the cancellation was observed.
        iter: usize,
    },
    /// The V-cycle budget ran out: the preconditioner has been applied
    /// more times than the session allows (counting re-runs inside the
    /// self-healing `apply_pr` loop, which plain iteration counts miss).
    VcycleBudgetExceeded {
        /// Iteration at which the check fired.
        iter: usize,
        /// V-cycles performed so far.
        used: usize,
        /// The configured cap.
        budget: usize,
    },
    /// Every rung of the retry ladder ran out of attempts without a
    /// typed numerical failure — the solver kept hitting its iteration
    /// cap while making (insufficient) progress.
    Unconverged {
        /// Iterations performed by the last attempt.
        iters: usize,
        /// Final relative residual of the last attempt.
        rel: f64,
    },
    /// Hierarchy setup failed, so the solve never started (carries the
    /// rendered `SetupError`/`ConfigError` message from `fp16mg-core`,
    /// which this crate does not depend on).
    SetupFailed {
        /// The rendered setup error.
        message: String,
    },
    /// The worker thread running this solve panicked; the panic was
    /// caught at the pool boundary and the rest of the batch completed.
    WorkerPanicked {
        /// The panic payload, rendered.
        message: String,
    },
}

impl SolveError {
    /// True when a retry (possibly at a higher-precision rung) could
    /// plausibly succeed. Interruptions (deadline, cancellation, V-cycle
    /// budget) and panics are final: the session's budget is spent or
    /// its owner asked it to stop.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            SolveError::Breakdown(_)
                | SolveError::Stagnated(_)
                | SolveError::Unconverged { .. }
                | SolveError::SetupFailed { .. }
        )
    }
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolveError::Breakdown(b) => write!(f, "{b}"),
            SolveError::Stagnated(s) => write!(f, "{s}"),
            SolveError::DeadlineExceeded { iter, elapsed, deadline } => write!(
                f,
                "deadline exceeded at iteration {iter}: {:.1} ms elapsed of {:.1} ms allowed",
                elapsed.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            SolveError::Cancelled { iter } => write!(f, "cancelled at iteration {iter}"),
            SolveError::VcycleBudgetExceeded { iter, used, budget } => write!(
                f,
                "V-cycle budget exceeded at iteration {iter}: {used} cycles used of {budget}"
            ),
            SolveError::Unconverged { iters, rel } => {
                write!(f, "unconverged after ladder exhaustion: {iters} iters, rel {rel:.3e}")
            }
            SolveError::SetupFailed { message } => write!(f, "setup failed: {message}"),
            SolveError::WorkerPanicked { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Stagnation-detection configuration.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Master switch; `false` restores the seed behavior (run to
    /// `max_iters` no matter what the residual does).
    pub enabled: bool,
    /// Consecutive iterations without meaningful progress tolerated before
    /// declaring stagnation.
    pub patience: usize,
    /// An iteration counts as progress when it improves the best relative
    /// residual by at least this factor (`rel < min_progress * best`).
    pub min_progress: f64,
    /// A single iteration whose residual exceeds `rebound * best` counts as
    /// `rebound_weight` stalled iterations — catches post-overflow
    /// divergence long before `patience` quiet iterations elapse.
    pub rebound: f64,
    /// Stall-equivalents charged per rebound iteration.
    pub rebound_weight: usize,
    /// FP16 unit roundoff `2⁻¹¹`: plateaus above this are attributed to
    /// reduced-precision storage (see [`Stagnation::above_fp16_floor`]).
    pub fp16_floor: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            enabled: true,
            patience: 40,
            min_progress: 0.999,
            rebound: 1.0e4,
            rebound_weight: 8,
            fp16_floor: f64::powi(2.0, -11),
        }
    }
}

impl HealthPolicy {
    /// A policy with stagnation detection off (seed behavior).
    pub fn disabled() -> Self {
        HealthPolicy { enabled: false, ..HealthPolicy::default() }
    }
}

/// Per-iteration health record kept alongside the residual history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterHealth {
    /// Iteration number.
    pub iter: usize,
    /// Relative residual at this iteration.
    pub rel: f64,
    /// Best relative residual so far.
    pub best_rel: f64,
    /// Stall-equivalents accumulated since the last progress.
    pub stalled_for: usize,
}

/// Incremental stagnation monitor driven by the per-iteration relative
/// residual. One instance per solve; solvers call [`SolveHealth::observe`]
/// after each residual evaluation.
#[derive(Clone, Debug)]
pub struct SolveHealth {
    policy: HealthPolicy,
    record: bool,
    best_rel: f64,
    stalled: usize,
    records: Vec<IterHealth>,
}

impl SolveHealth {
    /// Creates a monitor. `record` keeps the per-iteration records (the
    /// health counterpart of `record_history`).
    pub fn new(policy: HealthPolicy, record: bool) -> Self {
        SolveHealth { policy, record, best_rel: f64::INFINITY, stalled: 0, records: Vec::new() }
    }

    /// Feeds one relative residual; returns a diagnosis once the stall
    /// budget is exhausted (never before `patience` is consumed, and never
    /// when the policy is disabled). Non-finite residuals are the
    /// breakdown paths' business, not stagnation — they return `None`.
    pub fn observe(&mut self, iter: usize, rel: f64) -> Option<Stagnation> {
        if rel.is_finite() {
            if rel < self.policy.min_progress * self.best_rel {
                self.best_rel = rel;
                self.stalled = 0;
            } else if self.best_rel.is_finite() && rel > self.policy.rebound * self.best_rel {
                self.stalled += self.policy.rebound_weight.max(1);
            } else {
                self.stalled += 1;
            }
        }
        if self.record {
            self.records.push(IterHealth {
                iter,
                rel,
                best_rel: self.best_rel,
                stalled_for: self.stalled,
            });
        }
        if self.policy.enabled && rel.is_finite() && self.stalled >= self.policy.patience {
            Some(Stagnation {
                iter,
                best_rel: self.best_rel,
                rel,
                above_fp16_floor: self.best_rel > self.policy.fp16_floor,
            })
        } else {
            None
        }
    }

    /// Best relative residual observed so far.
    pub fn best_rel(&self) -> f64 {
        self.best_rel
    }

    /// Consumes the monitor, returning the per-iteration records.
    pub fn into_records(self) -> Vec<IterHealth> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_progress_never_stagnates() {
        let mut h = SolveHealth::new(HealthPolicy::default(), true);
        let mut rel = 1.0;
        for it in 0..500 {
            assert_eq!(h.observe(it, rel), None);
            rel *= 0.9;
        }
        assert_eq!(h.into_records().len(), 500);
    }

    #[test]
    fn plateau_stagnates_after_patience() {
        let policy = HealthPolicy { patience: 10, ..HealthPolicy::default() };
        let mut h = SolveHealth::new(policy, false);
        let mut out = None;
        for it in 0..100 {
            out = h.observe(it, 1e-2);
            if out.is_some() {
                break;
            }
        }
        let s = out.expect("plateau must be flagged");
        // First observation sets best; nine more exhaust patience=10.
        assert_eq!(s.iter, 10);
        assert!(s.above_fp16_floor);
    }

    #[test]
    fn plateau_below_floor_not_precision_attributable() {
        let policy = HealthPolicy { patience: 5, ..HealthPolicy::default() };
        let mut h = SolveHealth::new(policy, false);
        let mut out = None;
        for it in 0..100 {
            out = h.observe(it, 1e-12);
            if out.is_some() {
                break;
            }
        }
        assert!(!out.expect("plateau must be flagged").above_fp16_floor);
    }

    #[test]
    fn rebound_accelerates_detection() {
        let policy = HealthPolicy { patience: 16, rebound_weight: 8, ..HealthPolicy::default() };
        let mut h = SolveHealth::new(policy, false);
        assert_eq!(h.observe(0, 1e-6), None);
        // Two huge rebounds burn 8 stall-equivalents each.
        assert_eq!(h.observe(1, 1e3), None);
        assert!(h.observe(2, 1e3).is_some());
    }

    #[test]
    fn disabled_policy_never_fires() {
        let mut h = SolveHealth::new(HealthPolicy::disabled(), false);
        for it in 0..10_000 {
            assert_eq!(h.observe(it, 0.5), None);
        }
    }

    #[test]
    fn non_finite_residuals_ignored() {
        let policy = HealthPolicy { patience: 3, ..HealthPolicy::default() };
        let mut h = SolveHealth::new(policy, false);
        for it in 0..100 {
            assert_eq!(h.observe(it, f64::NAN), None);
        }
    }

    #[test]
    fn breakdown_accessors() {
        let b = Breakdown::Indefinite { iter: 7, pap: -1.0 };
        assert_eq!(b.iter(), 7);
        assert!(!b.non_finite());
        let b = Breakdown::NonFiniteResidual { iter: 3, value: f64::INFINITY };
        assert!(b.non_finite());
        let e = SolveError::Breakdown(b);
        assert!(format!("{e}").contains("non-finite residual"));
    }
}
