//! Solver options and results.

/// Stopping configuration shared by all solvers.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Relative residual tolerance `‖r‖₂ / ‖b‖₂` (the paper's convergence
    /// threshold; Fig. 6 uses 1e-10, most runs 1e-9).
    pub tol: f64,
    /// Maximum iterations (for GMRES: total inner iterations).
    pub max_iters: usize,
    /// GMRES restart length `m` (ignored by CG/Richardson).
    pub restart: usize,
    /// Record the residual history (Fig. 6 curves).
    pub record_history: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { tol: 1e-9, max_iters: 500, restart: 30, record_history: true }
    }
}

/// Why a solve stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Relative residual dropped below `tol`.
    Converged,
    /// Iteration budget exhausted.
    MaxIters,
    /// A NaN or infinity appeared (e.g. unscaled FP16 overflow, §3.4).
    Breakdown,
}

/// Outcome of a solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Stop reason.
    pub reason: StopReason,
    /// Iterations performed (preconditioner applications for CG/Richardson;
    /// inner iterations for GMRES).
    pub iters: usize,
    /// Final relative residual `‖r‖₂ / ‖b‖₂` (NaN on breakdown).
    pub final_rel_residual: f64,
    /// Relative residual after each iteration, starting with the initial
    /// value at index 0 (empty unless `record_history`).
    pub history: Vec<f64>,
}

impl SolveResult {
    /// True when the solve converged.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}
