//! Solver options and results.

use crate::health::{Breakdown, HealthPolicy, IterHealth, SolveError, Stagnation};

/// Stopping configuration shared by all solvers.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Relative residual tolerance `‖r‖₂ / ‖b‖₂` (the paper's convergence
    /// threshold; Fig. 6 uses 1e-10, most runs 1e-9).
    pub tol: f64,
    /// Maximum iterations (for GMRES: total inner iterations).
    pub max_iters: usize,
    /// GMRES restart length `m` (ignored by CG/Richardson).
    pub restart: usize,
    /// Record the residual history (Fig. 6 curves) and the per-iteration
    /// health records.
    pub record_history: bool,
    /// Stagnation/rebound detection policy.
    pub health: HealthPolicy,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-9,
            max_iters: 500,
            restart: 30,
            record_history: true,
            health: HealthPolicy::default(),
        }
    }
}

impl SolveOptions {
    /// A degraded copy of these options for load-shedding service tiers:
    /// the tolerance is multiplied by `relax` (≥ 1) but never loosened
    /// past `ceiling` — and never *tightened*, so a caller who already
    /// asked for something looser than the ceiling keeps it — and
    /// `max_iters` is capped at `iter_cap` (floored at 1).
    pub fn degrade(&self, relax: f64, ceiling: f64, iter_cap: usize) -> SolveOptions {
        let tol = (self.tol * relax.max(1.0)).min(ceiling).max(self.tol);
        SolveOptions { tol, max_iters: self.max_iters.min(iter_cap.max(1)), ..self.clone() }
    }
}

/// Why a solve stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Relative residual dropped below `tol`.
    Converged,
    /// Iteration budget exhausted.
    MaxIters,
    /// The recurrence broke down (see [`SolveResult::breakdown`] for the
    /// typed cause — e.g. unscaled FP16 overflow, §3.4).
    Breakdown,
    /// The residual plateaued or rebounded without converging (see
    /// [`SolveResult::stagnation`]).
    Stagnated,
    /// A [`crate::SolveControl`] hook stopped the solve mid-iteration —
    /// deadline, cancellation, or budget exhaustion (see
    /// [`SolveResult::interrupt`] for the typed cause). The iterate holds
    /// the last completed state.
    Interrupted,
}

/// Outcome of a solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Stop reason.
    pub reason: StopReason,
    /// Iterations performed (preconditioner applications for CG/Richardson;
    /// inner iterations for GMRES).
    pub iters: usize,
    /// Final relative residual `‖r‖₂ / ‖b‖₂` (NaN on breakdown).
    pub final_rel_residual: f64,
    /// Relative residual after each iteration, starting with the initial
    /// value at index 0 (empty unless `record_history`).
    pub history: Vec<f64>,
    /// Typed breakdown cause when `reason == Breakdown`.
    pub breakdown: Option<Breakdown>,
    /// Stagnation diagnosis when `reason == Stagnated`.
    pub stagnation: Option<Stagnation>,
    /// Typed interruption when `reason == Interrupted` (deadline,
    /// cancellation, or budget exhaustion raised by the solve control).
    pub interrupt: Option<SolveError>,
    /// Per-iteration health records (empty unless `record_history`).
    pub health: Vec<IterHealth>,
}

impl SolveResult {
    /// A result with no failure diagnosis attached.
    pub(crate) fn new(
        reason: StopReason,
        iters: usize,
        final_rel_residual: f64,
        history: Vec<f64>,
    ) -> Self {
        SolveResult {
            reason,
            iters,
            final_rel_residual,
            history,
            breakdown: None,
            stagnation: None,
            interrupt: None,
            health: Vec::new(),
        }
    }

    /// Attaches a breakdown diagnosis (reason becomes `Breakdown`).
    pub(crate) fn with_breakdown(mut self, b: Breakdown) -> Self {
        self.reason = StopReason::Breakdown;
        self.breakdown = Some(b);
        self
    }

    /// Attaches a stagnation diagnosis (reason becomes `Stagnated`).
    pub(crate) fn with_stagnation(mut self, s: Stagnation) -> Self {
        self.reason = StopReason::Stagnated;
        self.stagnation = Some(s);
        self
    }

    /// Attaches a control interruption (reason becomes `Interrupted`).
    pub(crate) fn with_interrupt(mut self, e: SolveError) -> Self {
        self.reason = StopReason::Interrupted;
        self.interrupt = Some(e);
        self
    }

    /// Attaches the per-iteration health records.
    pub(crate) fn with_health(mut self, health: Vec<IterHealth>) -> Self {
        self.health = health;
        self
    }

    /// True when the solve converged.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }

    /// The typed failure, if the solve broke down or stagnated. `MaxIters`
    /// is not reported here: exhausting the budget while making progress
    /// is a tuning matter, not a numerical failure.
    pub fn failure(&self) -> Option<SolveError> {
        match self.reason {
            StopReason::Breakdown => Some(SolveError::Breakdown(self.breakdown.unwrap_or(
                Breakdown::NonFiniteResidual { iter: self.iters, value: self.final_rel_residual },
            ))),
            StopReason::Stagnated => self.stagnation.map(SolveError::Stagnated),
            StopReason::Interrupted => self.interrupt.clone(),
            _ => None,
        }
    }

    /// True when the failure is attributable to reduced-precision storage:
    /// a non-finite breakdown (overflow signature) or a stagnation plateau
    /// above the FP16 roundoff floor. This is the predicate the recovery
    /// layer keys on.
    pub fn precision_suspect(&self) -> bool {
        match self.reason {
            StopReason::Breakdown => self.breakdown.map(|b| b.non_finite()).unwrap_or(true),
            StopReason::Stagnated => self.stagnation.map(|s| s.above_fp16_floor).unwrap_or(false),
            _ => false,
        }
    }
}
