//! Worker supervision and the persistent daemon shell.
//!
//! A batch pool can afford to let one slow request hold its worker — the
//! batch ends and the process exits. An always-on daemon cannot: a
//! wedged worker is a permanently lost execution slot, and a request
//! that *reliably* wedges or panics its worker will take every slot in
//! turn. Supervision closes both holes:
//!
//! * **Heartbeats + wedge detection** — every worker posts its in-flight
//!   request to a heartbeat slot; a monitor thread polls the slots and
//!   trips the request's cooperative [`CancelToken`] once it has run
//!   past [`SuperviseConfig::wedge_after`]. The solver observes the
//!   cancellation at its next iteration boundary and the worker moves
//!   on — a *recovered* slot, not a killed thread, so no state is
//!   poisoned. (Cancelled sessions never feed the circuit breakers:
//!   wall-clock wedges must not perturb the deterministic replay state.)
//! * **Panic isolation + restart** — a panicking session is contained
//!   per-request (`catch_unwind`, as before); the worker loop simply
//!   continues with the next request, which *is* the restart.
//! * **Poisoned-request quarantine** — every wedge or panic is a strike
//!   against the request's name; at [`SuperviseConfig::max_strikes`]
//!   the [`Quarantine`] refuses further admissions of that request with
//!   a typed [`AdmissionError::Quarantined`](crate::AdmissionError),
//!   so a poison pill stops costing workers. Strikes are part of the
//!   daemon snapshot: a restart does not give a poison pill a fresh
//!   set of workers to burn.
//!
//! [`Daemon`] is the persistent shell around [`ServePool`]: it restores
//! pool state from a [`DaemonSnapshot`] at start, checkpoints after
//! batches, and drains gracefully — stop admitting, finish in-flight,
//! write a final checkpoint, exit clean.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crate::ladder::SolveRequest;
use crate::pool::{PoolConfig, RequestOutcome, ServeCounters, ServePool};
use crate::snapshot::{DaemonSnapshot, SnapshotError, SnapshotStore};
use crate::storage::{RealStorage, Storage};

/// Supervisor tuning.
#[derive(Clone, Debug)]
pub struct SuperviseConfig {
    /// Master switch. When off, no heartbeats are posted, no monitor
    /// thread runs, and the quarantine admits everything — the batch
    /// pool's historical behavior.
    pub enabled: bool,
    /// Wall-clock ceiling for one in-flight request; past it the
    /// monitor trips the request's cancel token (wedge detection).
    pub wedge_after: Duration,
    /// Monitor poll interval.
    pub poll: Duration,
    /// Wedges/panics charged to one request name before the quarantine
    /// refuses it (`0` disables quarantining).
    pub max_strikes: usize,
    /// Ring capacity of the worker-event trail.
    pub event_log_cap: usize,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            enabled: true,
            wedge_after: Duration::from_secs(30),
            poll: Duration::from_millis(5),
            max_strikes: 2,
            event_log_cap: 256,
        }
    }
}

impl SuperviseConfig {
    /// Supervision off entirely (the batch-pool compatibility shape).
    pub fn disabled() -> Self {
        SuperviseConfig { enabled: false, ..Self::default() }
    }
}

/// What the supervisor observed about one worker.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerEventKind {
    /// The in-flight request ran past the wedge deadline; its cancel
    /// token was tripped.
    Wedged {
        /// Seconds the request had been in flight when tripped.
        elapsed: f64,
    },
    /// The session panicked; the panic was contained and the worker
    /// continued with the next request.
    Panicked,
    /// The request's strike count reached the quarantine threshold;
    /// further admissions of this name are refused.
    Quarantined {
        /// The strike count at quarantine.
        strikes: usize,
    },
}

impl WorkerEventKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkerEventKind::Wedged { .. } => "wedged",
            WorkerEventKind::Panicked => "panicked",
            WorkerEventKind::Quarantined { .. } => "quarantined",
        }
    }
}

/// One supervision observation.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerEvent {
    /// The worker slot involved (`None` for registry-level events like
    /// quarantine promotion, which happen after the batch).
    pub worker: Option<usize>,
    /// The request's display name.
    pub request: String,
    /// What happened.
    pub kind: WorkerEventKind,
}

/// Strike bookkeeping for poisoned requests, keyed by request name.
/// Deterministic: strikes come from panics (deterministic) and wedges
/// (wall-clock), but the *count* is all that is persisted and compared.
#[derive(Clone, Debug, Default)]
pub struct Quarantine {
    strikes: BTreeMap<String, usize>,
    max_strikes: usize,
}

impl Quarantine {
    /// An empty quarantine refusing names at `max_strikes` strikes
    /// (`0` never refuses).
    pub fn new(max_strikes: usize) -> Self {
        Quarantine { strikes: BTreeMap::new(), max_strikes }
    }

    /// Charges one strike against `name`, returning the new count.
    pub fn strike(&mut self, name: &str) -> usize {
        let n = self.strikes.entry(name.to_string()).or_insert(0);
        *n += 1;
        *n
    }

    /// Strikes charged against `name` so far.
    pub fn strikes_of(&self, name: &str) -> usize {
        self.strikes.get(name).copied().unwrap_or(0)
    }

    /// True when `name` has reached the strike threshold.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.max_strikes > 0 && self.strikes_of(name) >= self.max_strikes
    }

    /// Every (name, strikes) pair, in name order (checkpointing).
    pub fn export(&self) -> Vec<(String, usize)> {
        self.strikes.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// Restores strike counts from a checkpoint (merged by maximum, so
    /// a restore never forgets strikes observed since).
    pub fn restore(&mut self, entries: &[(String, usize)]) {
        for (name, n) in entries {
            let e = self.strikes.entry(name.clone()).or_insert(0);
            *e = (*e).max(*n);
        }
    }
}

/// Daemon shell configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The pool the daemon runs.
    pub pool: PoolConfig,
    /// Snapshot file path; `None` runs without persistence (restart
    /// cold).
    pub snapshot_path: Option<PathBuf>,
    /// Checkpoint automatically after every completed batch. Turn off
    /// when the caller orders its own durable writes (e.g. a trail
    /// file) *before* the checkpoint, then calls
    /// [`Daemon::checkpoint`] explicitly.
    pub checkpoint_each_batch: bool,
    /// Storage backend every durable byte flows through. The default is
    /// the real filesystem; tests swap in a fault-injecting backend.
    pub storage: Arc<dyn Storage>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            pool: PoolConfig::default(),
            snapshot_path: None,
            checkpoint_each_batch: true,
            storage: Arc::new(RealStorage),
        }
    }
}

/// What a graceful drain left behind.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Requests completed over the daemon's lifetime (restored + new).
    pub seq: u64,
    /// Final admission/outcome counters.
    pub counters: ServeCounters,
    /// True when a final checkpoint was written.
    pub checkpointed: bool,
}

/// The persistent serve daemon: a [`ServePool`] plus a durable sequence
/// cursor and snapshot lifecycle. `seq` counts requests whose outcomes
/// have been *returned to the caller*; it only advances when a batch
/// completes, so a crash between checkpoints replays the unacknowledged
/// window instead of losing it — at-least-once, deduplicated by `seq`.
pub struct Daemon {
    pool: ServePool,
    cfg: DaemonConfig,
    seq: u64,
    restored: bool,
    /// Next publication generation for the A/B snapshot rotation.
    generation: u64,
    /// Quarantined snapshot slots observed during recovery.
    quarantined: Vec<(PathBuf, SnapshotError)>,
}

impl Daemon {
    /// Starts the daemon, warm from the newest good snapshot generation
    /// at [`DaemonConfig::snapshot_path`] when one exists (no snapshot
    /// anywhere is a cold start, not an error).
    ///
    /// Recovery scans the A/B rotation slots plus the legacy
    /// single-file path. A torn or corrupt slot is quarantined (moved
    /// to `<slot>.quarantine`) and recovery falls back to the previous
    /// good generation; the quarantine evidence is reported by
    /// [`Daemon::quarantined_snapshots`].
    ///
    /// # Errors
    /// When snapshots are present but *none* decodes, the daemon
    /// refuses to start with the last slot's typed [`SnapshotError`] —
    /// silently cold-starting would re-serve acknowledged work, and
    /// refusing to guess is the crash-safety contract.
    pub fn start(cfg: DaemonConfig) -> Result<Self, SnapshotError> {
        let mut pool = ServePool::new(cfg.pool.clone());
        let mut seq = 0;
        let mut restored = false;
        let mut generation = 0;
        let mut quarantined = Vec::new();
        if let Some(path) = &cfg.snapshot_path {
            let store = SnapshotStore::new(path.clone());
            let recovery = store.recover(cfg.storage.as_ref(), &DaemonSnapshot::decode)?;
            quarantined = recovery.quarantined;
            let best = recovery
                .candidates
                .into_iter()
                .max_by_key(|(_, snap)| snap.seq)
                .map(|(from, snap)| (store.slot_for(0) == from, snap));
            match best {
                Some((from_slot_a, snap)) => {
                    pool.restore_state(&snap.state);
                    seq = snap.seq;
                    restored = true;
                    // Publish into the *other* slot next, so the newest
                    // good generation is never the one overwritten.
                    generation = if from_slot_a { 1 } else { 0 };
                }
                None => {
                    if let Some((_, err)) = quarantined.last() {
                        return Err(err.clone());
                    }
                }
            }
        }
        Ok(Daemon { pool, cfg, seq, restored, generation, quarantined })
    }

    /// True when this daemon restored state from a snapshot.
    pub fn restored(&self) -> bool {
        self.restored
    }

    /// Requests completed over the daemon's lifetime.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The underlying pool (stats, breaker states, cache).
    pub fn pool(&self) -> &ServePool {
        &self.pool
    }

    /// Serves one batch and advances the sequence cursor, checkpointing
    /// after when [`DaemonConfig::checkpoint_each_batch`] is on.
    ///
    /// # Errors
    /// A failed checkpoint write. The batch's outcomes are lost to the
    /// caller in that case — by design: acknowledging work the snapshot
    /// does not cover would break the replay contract.
    pub fn submit(
        &mut self,
        batch: Vec<SolveRequest>,
    ) -> Result<Vec<RequestOutcome>, SnapshotError> {
        let n = batch.len() as u64;
        let outcomes = self.pool.run(batch);
        self.seq += n;
        if self.cfg.checkpoint_each_batch {
            self.checkpoint()?;
        }
        Ok(outcomes)
    }

    /// Snapshot slots that were present but undecodable at start and
    /// were quarantined (renamed to `<slot>.quarantine`).
    pub fn quarantined_snapshots(&self) -> &[(PathBuf, SnapshotError)] {
        &self.quarantined
    }

    /// Writes a snapshot now, rotating between the A/B generation
    /// slots so a torn checkpoint can only ever destroy the *older* of
    /// the two retained generations. Returns `false` when no snapshot
    /// path is configured.
    ///
    /// # Errors
    /// Propagates snapshot I/O failures.
    pub fn checkpoint(&mut self) -> Result<bool, SnapshotError> {
        let Some(path) = &self.cfg.snapshot_path else { return Ok(false) };
        let store = SnapshotStore::new(path.clone());
        let snap = DaemonSnapshot { seq: self.seq, state: self.pool.export_state() };
        store.publish(self.cfg.storage.as_ref(), self.generation, &snap.encode())?;
        self.generation += 1;
        Ok(true)
    }

    /// Graceful drain: the daemon stops admitting (it consumes itself —
    /// no further [`Daemon::submit`] is possible), in-flight work is
    /// already finished (submit is synchronous), a final checkpoint is
    /// written, and the report is returned for the caller's exit path.
    ///
    /// # Errors
    /// Propagates the final checkpoint's I/O failure.
    pub fn drain(mut self) -> Result<DrainReport, SnapshotError> {
        let checkpointed = self.checkpoint()?;
        Ok(DrainReport { seq: self.seq, counters: self.pool.counters(), checkpointed })
    }
}
