//! Framed wire protocol, deadline-aware connections, and a deterministic
//! fault-injecting transport for the networked daemon.
//!
//! The durability stack built by the storage layer ends at the process
//! boundary; this module extends it across the one boundary a production
//! solver service actually has — the wire. Three rules shape everything
//! here:
//!
//! 1. **Strict decode limits before allocation.** Every frame is length
//!    prefixed, and the declared length is checked against
//!    [`limits::MAX_PAYLOAD`] *before* the payload buffer is allocated —
//!    the same checked-sizes-first discipline as `sgdia::io::limits`. A
//!    malformed or oversized frame is a typed [`WireError`], never a
//!    panic and never an unbounded buffer.
//! 2. **Idempotency keys.** Every submit carries the sequence number it
//!    claims ([`SubmitRequest::key`]), which maps directly onto the
//!    daemon's at-least-once trail: a resubmission of an already-applied
//!    key is answered from the durable decision record with
//!    `duplicate = true`, not re-executed.
//! 3. **Deterministic fault injection.** [`FaultTransport`] mirrors
//!    `FaultStorage`'s op-index schedule: every frame send/receive ticks
//!    a global operation counter, and a fault scheduled at index `i`
//!    fires exactly there — which is what lets the `nettorture` matrix
//!    kill the connection at *every* frame boundary of a probe run.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::jitter;

/// Hard ceilings of the wire format, checked before any allocation.
pub mod limits {
    /// Frame header length: magic `u32` + kind `u8` + payload length `u32`.
    pub const HEADER_LEN: usize = 9;
    /// Largest accepted payload. Every frame in the protocol is a small
    /// control record — requests carry parameters, not matrices — so the
    /// bound is deliberately tight; a declared length above it is
    /// rejected before the payload buffer exists.
    pub const MAX_PAYLOAD: u32 = 4096;
    /// Largest accepted label (outcome/profile/reason strings).
    pub const MAX_LABEL: usize = 96;
}

/// Frame magic, `"MGW1"` little-endian. A connection that opens with
/// anything else is not speaking this protocol and is told so typed.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"MGW1");

/// Typed error codes carried by [`Frame::Error`], so a client can tell a
/// protocol violation from a server-side refusal without string parsing.
pub mod codes {
    /// The connection did not open with [`super::WIRE_MAGIC`].
    pub const BAD_MAGIC: u8 = 1;
    /// Unknown frame kind byte.
    pub const UNKNOWN_KIND: u8 = 2;
    /// Declared payload length above [`super::limits::MAX_PAYLOAD`].
    pub const OVERSIZED: u8 = 3;
    /// The stream ended inside a frame.
    pub const TRUNCATED: u8 = 4;
    /// Payload failed field validation.
    pub const MALFORMED: u8 = 5;
    /// Submit key is ahead of the stream position the server will accept.
    pub const OUT_OF_ORDER: u8 = 6;
    /// The server is draining and no longer accepts work.
    pub const DRAINING: u8 = 7;
    /// A frame kind the server does not expect in this state.
    pub const UNEXPECTED: u8 = 8;
    /// Submit parameters disagree with the server's configured stream.
    pub const STREAM_MISMATCH: u8 = 9;
    /// The durability pipeline failed after execution; the request was
    /// *not* acknowledged and may be resubmitted.
    pub const INTERNAL: u8 = 10;
}

fn code_label(code: u8) -> &'static str {
    match code {
        codes::BAD_MAGIC => "bad-magic",
        codes::UNKNOWN_KIND => "unknown-kind",
        codes::OVERSIZED => "oversized",
        codes::TRUNCATED => "truncated",
        codes::MALFORMED => "malformed",
        codes::OUT_OF_ORDER => "out-of-order",
        codes::DRAINING => "draining",
        codes::UNEXPECTED => "unexpected",
        codes::STREAM_MISMATCH => "stream-mismatch",
        codes::INTERNAL => "internal",
        _ => "unknown-code",
    }
}

/// Everything that can go wrong on the wire, typed. Decode failures are
/// distinguishable from transport failures so the server can answer the
/// former with a [`Frame::Error`] and merely count the latter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame did not open with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes actually read, as a little-endian `u32`.
        got: u32,
    },
    /// Unknown frame kind byte.
    UnknownKind {
        /// The kind byte actually read.
        got: u8,
    },
    /// Declared payload length above [`limits::MAX_PAYLOAD`]. Raised
    /// before any payload allocation.
    Oversized {
        /// The declared payload length.
        got: u32,
        /// The limit it exceeded.
        limit: u32,
    },
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the frame section needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// Payload failed field validation (`what` names the field).
    Malformed {
        /// The field that failed validation.
        what: &'static str,
    },
    /// A label exceeded [`limits::MAX_LABEL`].
    LabelTooLong {
        /// The declared label length.
        got: usize,
        /// The limit it exceeded.
        limit: usize,
    },
    /// A read or write missed its deadline (slowloris defense tripping,
    /// or a stalled peer).
    Deadline,
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The connection failed mid-frame (reset, broken pipe, refused).
    ConnectionLost(String),
}

impl WireError {
    /// Stable label for fault accounting and counters.
    pub fn label(&self) -> &'static str {
        match self {
            WireError::BadMagic { .. } => "bad-magic",
            WireError::UnknownKind { .. } => "unknown-kind",
            WireError::Oversized { .. } => "oversized",
            WireError::Truncated { .. } => "truncated",
            WireError::Malformed { .. } => "malformed",
            WireError::LabelTooLong { .. } => "label-too-long",
            WireError::Deadline => "deadline",
            WireError::Closed => "closed",
            WireError::ConnectionLost(_) => "connection-lost",
        }
    }

    /// The [`codes`] value a server reports this decode failure as.
    pub fn code(&self) -> u8 {
        match self {
            WireError::BadMagic { .. } => codes::BAD_MAGIC,
            WireError::UnknownKind { .. } => codes::UNKNOWN_KIND,
            WireError::Oversized { .. } => codes::OVERSIZED,
            WireError::Truncated { .. } | WireError::Closed => codes::TRUNCATED,
            WireError::Malformed { .. } | WireError::LabelTooLong { .. } => codes::MALFORMED,
            WireError::Deadline | WireError::ConnectionLost(_) => codes::INTERNAL,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad magic {got:#010x}"),
            WireError::UnknownKind { got } => write!(f, "unknown frame kind {got}"),
            WireError::Oversized { got, limit } => {
                write!(f, "declared payload {got} exceeds limit {limit}")
            }
            WireError::Truncated { needed, got } => {
                write!(f, "stream ended inside a frame (needed {needed}, got {got})")
            }
            WireError::Malformed { what } => write!(f, "malformed field: {what}"),
            WireError::LabelTooLong { got, limit } => {
                write!(f, "label length {got} exceeds limit {limit}")
            }
            WireError::Deadline => write!(f, "read/write deadline exceeded"),
            WireError::Closed => write!(f, "peer closed at frame boundary"),
            WireError::ConnectionLost(why) => write!(f, "connection lost: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One solve submission: the idempotency key (the sequence number this
/// request claims in the daemon's stream) plus the stream parameters the
/// client believes the server is configured with.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitRequest {
    /// Idempotency key: the claimed sequence number. A key below the
    /// server's position is answered from the durable decision record
    /// with `duplicate = true`; a key above it is a typed
    /// [`codes::OUT_OF_ORDER`] refusal.
    pub key: u64,
    /// Problem base extent the stream was configured with.
    pub size: u32,
    /// Convergence tolerance the stream was configured with.
    pub tol: f64,
    /// Admission priority class: 0 interactive, 1 batch, 2 best-effort.
    pub priority: u8,
}

/// The acknowledgment of an applied (or deduplicated) submission. An ack
/// is only sent after the decision is in the fsynced trail and the
/// checkpoint is rotated — acked implies durable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoneReply {
    /// The idempotency key being acknowledged.
    pub key: u64,
    /// `true` when this ack was served from the durable decision record
    /// of an earlier application instead of executing again.
    pub duplicate: bool,
    /// Typed outcome label of the application (`converged`, …).
    pub outcome: String,
    /// Degrade profile the request was served under.
    pub profile: String,
    /// Circuit-breaker state of the request's class after application.
    pub breaker: String,
}

/// A protocol frame. The numeric kinds are part of the wire format.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Kind 1: submit one solve (client → server).
    Submit(SubmitRequest),
    /// Kind 2: durable acknowledgment (server → client).
    Done(DoneReply),
    /// Kind 3: typed backpressure — the admission layer refused the
    /// request; retry after the hinted delay instead of buffering.
    Busy {
        /// Label of the [`crate::AdmissionError`] that refused it.
        reason: String,
        /// Retry hint in milliseconds.
        retry_ms: u32,
    },
    /// Kind 4: typed refusal or protocol violation report.
    Error {
        /// A [`codes`] value.
        code: u8,
        /// Human-readable detail (diagnostic only, may be clipped).
        detail: String,
    },
    /// Kind 5: liveness probe (client → server).
    Ping,
    /// Kind 6: liveness answer (server → client).
    Pong,
    /// Kind 7: request a graceful drain (client → server).
    Shutdown,
    /// Kind 8: drain finished — trail fsynced, snapshot rotated.
    ShutdownOk {
        /// The stream position the server drained at.
        seq: u64,
    },
}

const KIND_SUBMIT: u8 = 1;
const KIND_DONE: u8 = 2;
const KIND_BUSY: u8 = 3;
const KIND_ERROR: u8 = 4;
const KIND_PING: u8 = 5;
const KIND_PONG: u8 = 6;
const KIND_SHUTDOWN: u8 = 7;
const KIND_SHUTDOWN_OK: u8 = 8;

/// Clips a label to [`limits::MAX_LABEL`] bytes on a char boundary.
/// Labels on the wire are diagnostics; clipping is lossy but total.
fn clip(s: &str) -> &str {
    if s.len() <= limits::MAX_LABEL {
        return s;
    }
    let mut end = limits::MAX_LABEL;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn put_label(out: &mut Vec<u8>, s: &str) {
    let s = clip(s);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Frame {
    /// The wire kind byte of this frame.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Submit(_) => KIND_SUBMIT,
            Frame::Done(_) => KIND_DONE,
            Frame::Busy { .. } => KIND_BUSY,
            Frame::Error { .. } => KIND_ERROR,
            Frame::Ping => KIND_PING,
            Frame::Pong => KIND_PONG,
            Frame::Shutdown => KIND_SHUTDOWN,
            Frame::ShutdownOk { .. } => KIND_SHUTDOWN_OK,
        }
    }

    /// Encodes the frame (header + payload). Labels longer than
    /// [`limits::MAX_LABEL`] are clipped, so encoding is total and the
    /// result always decodes.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Frame::Submit(r) => {
                payload.extend_from_slice(&r.key.to_le_bytes());
                payload.extend_from_slice(&r.size.to_le_bytes());
                payload.extend_from_slice(&r.tol.to_bits().to_le_bytes());
                payload.push(r.priority);
            }
            Frame::Done(d) => {
                payload.extend_from_slice(&d.key.to_le_bytes());
                payload.push(u8::from(d.duplicate));
                put_label(&mut payload, &d.outcome);
                put_label(&mut payload, &d.profile);
                put_label(&mut payload, &d.breaker);
            }
            Frame::Busy { reason, retry_ms } => {
                payload.extend_from_slice(&retry_ms.to_le_bytes());
                put_label(&mut payload, reason);
            }
            Frame::Error { code, detail } => {
                payload.push(*code);
                put_label(&mut payload, detail);
            }
            Frame::Ping | Frame::Pong | Frame::Shutdown => {}
            Frame::ShutdownOk { seq } => payload.extend_from_slice(&seq.to_le_bytes()),
        }
        let mut out = Vec::with_capacity(limits::HEADER_LEN + payload.len());
        out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// A bounds-checked payload cursor: every read is validated against the
/// remaining bytes, and [`Cur::done`] rejects trailing garbage, so a
/// frame either decodes completely or fails typed.
struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.b.len() - self.off < n {
            return Err(WireError::Truncated { needed: n, got: self.b.len() - self.off });
        }
        let s = &self.b[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn label(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        if len > limits::MAX_LABEL {
            return Err(WireError::LabelTooLong { got: len, limit: limits::MAX_LABEL });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed { what: "utf8 label" })
    }

    fn done(&self) -> Result<(), WireError> {
        if self.off != self.b.len() {
            return Err(WireError::Malformed { what: "trailing payload bytes" });
        }
        Ok(())
    }
}

/// Decodes a payload of a known kind. Every field is validated: sizes,
/// priorities, and tolerances outside their domains are typed
/// [`WireError::Malformed`] failures, and trailing bytes are rejected.
fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cur::new(payload);
    let frame = match kind {
        KIND_SUBMIT => {
            let key = c.u64()?;
            let size = c.u32()?;
            if !(2..=4096).contains(&size) {
                return Err(WireError::Malformed { what: "submit size" });
            }
            let tol = f64::from_bits(c.u64()?);
            if !tol.is_finite() || tol <= 0.0 {
                return Err(WireError::Malformed { what: "submit tol" });
            }
            let priority = c.u8()?;
            if priority > 2 {
                return Err(WireError::Malformed { what: "submit priority" });
            }
            Frame::Submit(SubmitRequest { key, size, tol, priority })
        }
        KIND_DONE => {
            let key = c.u64()?;
            let duplicate = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed { what: "done duplicate flag" }),
            };
            let outcome = c.label()?;
            let profile = c.label()?;
            let breaker = c.label()?;
            Frame::Done(DoneReply { key, duplicate, outcome, profile, breaker })
        }
        KIND_BUSY => {
            let retry_ms = c.u32()?;
            let reason = c.label()?;
            Frame::Busy { reason, retry_ms }
        }
        KIND_ERROR => {
            let code = c.u8()?;
            let detail = c.label()?;
            Frame::Error { code, detail }
        }
        KIND_PING => Frame::Ping,
        KIND_PONG => Frame::Pong,
        KIND_SHUTDOWN => Frame::Shutdown,
        KIND_SHUTDOWN_OK => Frame::ShutdownOk { seq: c.u64()? },
        got => return Err(WireError::UnknownKind { got }),
    };
    c.done()?;
    Ok(frame)
}

/// Validates a frame header, returning `(kind, payload_len)`. The
/// declared length is checked against [`limits::MAX_PAYLOAD`] here,
/// before any payload buffer exists.
fn decode_header(head: &[u8; limits::HEADER_LEN]) -> Result<(u8, usize), WireError> {
    let magic = u32::from_le_bytes(head[0..4].try_into().unwrap());
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let kind = head[4];
    if !(KIND_SUBMIT..=KIND_SHUTDOWN_OK).contains(&kind) {
        return Err(WireError::UnknownKind { got: kind });
    }
    let len = u32::from_le_bytes(head[5..9].try_into().unwrap());
    if len > limits::MAX_PAYLOAD {
        return Err(WireError::Oversized { got: len, limit: limits::MAX_PAYLOAD });
    }
    Ok((kind, len as usize))
}

/// Decodes one frame from a byte slice, returning the frame and the
/// bytes consumed. This is the pure-function face of the decoder the
/// property tests fuzz: any input yields a valid frame or a typed
/// [`WireError`], never a panic, and allocation is bounded by
/// [`limits::MAX_PAYLOAD`].
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < limits::HEADER_LEN {
        return Err(WireError::Truncated { needed: limits::HEADER_LEN, got: buf.len() });
    }
    let head: [u8; limits::HEADER_LEN] = buf[..limits::HEADER_LEN].try_into().unwrap();
    let (kind, len) = decode_header(&head)?;
    let rest = &buf[limits::HEADER_LEN..];
    if rest.len() < len {
        return Err(WireError::Truncated { needed: len, got: rest.len() });
    }
    let frame = decode_payload(kind, &rest[..len])?;
    Ok((frame, limits::HEADER_LEN + len))
}

/// Reads exactly `buf.len()` bytes unless the stream ends first;
/// returns the count actually read. Deadline expiry and transport
/// failures are typed.
fn read_full(r: &mut dyn Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(WireError::Deadline)
            }
            Err(e) => return Err(WireError::ConnectionLost(e.to_string())),
        }
    }
    Ok(got)
}

/// Reads one frame from a stream. A clean close at a frame boundary is
/// [`WireError::Closed`]; a close inside a frame is
/// [`WireError::Truncated`]. The payload buffer is only allocated after
/// the declared length passed the limit check.
pub fn read_frame(r: &mut dyn Read) -> Result<Frame, WireError> {
    let mut head = [0u8; limits::HEADER_LEN];
    let got = read_full(r, &mut head)?;
    if got == 0 {
        return Err(WireError::Closed);
    }
    if got < limits::HEADER_LEN {
        return Err(WireError::Truncated { needed: limits::HEADER_LEN, got });
    }
    let (kind, len) = decode_header(&head)?;
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(WireError::Truncated { needed: len, got });
    }
    decode_payload(kind, &payload)
}

/// Writes one encoded frame. Deadline expiry and transport failures are
/// typed, mirroring [`read_frame`].
pub fn write_frame(w: &mut dyn Write, frame: &Frame) -> Result<(), WireError> {
    write_bytes(w, &frame.encode())
}

fn write_bytes(w: &mut dyn Write, bytes: &[u8]) -> Result<(), WireError> {
    let map = |e: io::Error| {
        if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
            WireError::Deadline
        } else {
            WireError::ConnectionLost(e.to_string())
        }
    };
    w.write_all(bytes).map_err(map)?;
    w.flush().map_err(map)
}

/// Where a server listens / a client connects: a Unix socket path or a
/// TCP address, parsed from `unix:<path>` / `tcp:<host>:<port>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix domain socket at a filesystem path.
    Unix(PathBuf),
    /// TCP socket at `host:port`.
    Tcp(String),
}

impl Endpoint {
    /// Parses `unix:<path>` or `tcp:<host>:<port>`.
    ///
    /// # Errors
    /// A message naming the accepted forms when the scheme is missing or
    /// the operand is empty.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if !addr.contains(':') {
                return Err(format!("tcp endpoint `{addr}` must be host:port"));
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        Err(format!("endpoint `{s}` must be unix:<path> or tcp:<host>:<port>"))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A bound listening socket over either transport.
pub enum Listener {
    /// Unix domain socket listener (remembers its path for cleanup).
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the endpoint. A stale Unix socket file (left by a killed
    /// process) is detected by a failed probe connect and removed, so a
    /// restarted daemon can rebind the same path.
    ///
    /// # Errors
    /// The underlying bind error when the address is genuinely taken.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    /// The Unix socket path, for cleanup on shutdown.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        match self {
            Listener::Unix(_, p) => Some(p),
            Listener::Tcp(_) => None,
        }
    }
}

/// One accepted or dialed connection over either transport.
pub enum Conn {
    /// Unix domain socket stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Dials the endpoint (blocking connect).
    ///
    /// # Errors
    /// The underlying connect error (refused, not found, …).
    pub fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        match endpoint {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Conn::Tcp),
        }
    }

    /// Arms per-connection read/write deadlines — the slowloris defense:
    /// a peer that stalls mid-frame trips [`WireError::Deadline`] instead
    /// of pinning the connection forever.
    ///
    /// # Errors
    /// The underlying `setsockopt` error.
    pub fn set_deadlines(&self, read: Duration, write: Duration) -> io::Result<()> {
        match self {
            Conn::Unix(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
        }
    }

    /// Shuts both directions down, ignoring errors (used to simulate a
    /// hard reset and to close desynchronized streams).
    pub fn shutdown(&self) {
        match self {
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// The bounded accept loop: a thread accepts connections, arms their
/// deadlines, and hands them over a bounded channel. When the channel is
/// full the connection is answered with a typed [`Frame::Busy`] and
/// closed — backpressure is a wire response, never an unbounded buffer.
pub struct Acceptor {
    rx: Receiver<Conn>,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    busy: Arc<AtomicU64>,
    unix_path: Option<PathBuf>,
    handle: Option<JoinHandle<()>>,
}

impl Acceptor {
    /// Spawns the accept thread on a bound listener. `backlog` bounds the
    /// handover channel; `deadline` is armed on every accepted
    /// connection's reads and writes.
    ///
    /// # Errors
    /// The listener's `set_nonblocking` error.
    pub fn spawn(listener: Listener, backlog: usize, deadline: Duration) -> io::Result<Acceptor> {
        listener.set_nonblocking(true)?;
        let unix_path = listener.unix_path().cloned();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Conn>(backlog.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let busy = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            let busy = Arc::clone(&busy);
            std::thread::spawn(move || accept_loop(listener, tx, stop, accepted, busy, deadline))
        };
        Ok(Acceptor { rx, stop, accepted, busy, unix_path, handle: Some(handle) })
    }

    /// The next queued connection, or `None` after `timeout` (or once the
    /// accept thread has stopped and the queue is drained).
    pub fn next(&self, timeout: Duration) -> Option<Conn> {
        match self.rx.recv_timeout(timeout) {
            Ok(conn) => Some(conn),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// `true` once the accept thread has exited and no connection is
    /// queued — the listener is genuinely gone, not merely idle.
    pub fn finished(&self) -> bool {
        self.handle.as_ref().map(|h| h.is_finished()).unwrap_or(true)
    }

    /// Total connections accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Connections refused with a typed `Busy` because the backlog was
    /// full.
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::SeqCst)
    }

    /// Stops accepting: flags the thread down, joins it, and removes the
    /// Unix socket file so a later bind does not find a stale path.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Acceptor {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: Listener,
    tx: SyncSender<Conn>,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    busy: Arc<AtomicU64>,
    deadline: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                accepted.fetch_add(1, Ordering::SeqCst);
                let _ = conn.set_deadlines(deadline, deadline);
                match tx.try_send(conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut conn)) => {
                        busy.fetch_add(1, Ordering::SeqCst);
                        let _ = write_frame(
                            &mut conn,
                            &Frame::Busy { reason: "accept-backlog".into(), retry_ms: 50 },
                        );
                        conn.shutdown();
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// The six wire fault classes the torture matrix must fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Hard connection reset at a frame boundary (close without I/O; at a
    /// receive op this loses an ack the server already considers durable).
    Reset,
    /// Half a frame written, then the connection closed — the peer sees a
    /// stream that ends inside a frame.
    Torn,
    /// The client goes silent for `ms` milliseconds mid-conversation,
    /// long enough to trip the server's read deadline.
    Stall {
        /// Silence duration in milliseconds (choose it above the server's
        /// connection deadline).
        ms: u64,
    },
    /// `len` deterministic garbage bytes instead of a frame; the server
    /// must answer with a typed bad-magic error.
    Garbage {
        /// Garbage length in bytes (≥ header size to reach the decoder).
        len: u16,
    },
    /// A header declaring a payload above [`limits::MAX_PAYLOAD`]; the
    /// server must reject it before allocating.
    Oversized,
    /// The same frame delivered twice — the at-least-once case the trail
    /// dedup must absorb.
    Duplicate,
}

impl NetFault {
    /// Stable class label for fired-fault accounting.
    pub fn label(&self) -> &'static str {
        match self {
            NetFault::Reset => "reset-mid-frame",
            NetFault::Torn => "torn-frame",
            NetFault::Stall { .. } => "stalled-read",
            NetFault::Garbage { .. } => "garbage-bytes",
            NetFault::Oversized => "oversized-frame",
            NetFault::Duplicate => "duplicate-delivery",
        }
    }

    /// All six class labels, for the all-classes-fired gate.
    pub fn all_labels() -> [&'static str; 6] {
        [
            "reset-mid-frame",
            "torn-frame",
            "stalled-read",
            "garbage-bytes",
            "oversized-frame",
            "duplicate-delivery",
        ]
    }
}

/// What a transport operation was, for the op log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetOpKind {
    /// A frame send; carries the frame kind byte so the matrix can
    /// schedule send-shaped faults at submit boundaries specifically.
    Send(u8),
    /// A frame receive.
    Recv,
}

/// One logged transport operation.
#[derive(Clone, Copy, Debug)]
pub struct NetOp {
    /// Global operation index (one counter across the connection's life,
    /// ticked at every frame send and receive).
    pub index: u64,
    /// What the operation was.
    pub kind: NetOpKind,
}

#[derive(Default)]
struct TransportInner {
    ops: u64,
    log: Vec<NetOp>,
    schedule: BTreeMap<u64, NetFault>,
    fired: BTreeMap<String, u64>,
}

/// Deterministic wire-fault injector, mirroring `FaultStorage`'s design:
/// a global op index ticks at every logical frame send/receive, faults
/// fire at scheduled indices exactly once, and every firing is recorded
/// per class. Cloning shares the underlying state, so a harness keeps a
/// handle while the client injects.
#[derive(Clone, Default)]
pub struct FaultTransport {
    inner: Arc<Mutex<TransportInner>>,
}

impl FaultTransport {
    /// A transport with an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TransportInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Schedules `fault` to fire at global op index `index`.
    pub fn schedule(&self, index: u64, fault: NetFault) {
        self.lock().schedule.insert(index, fault);
    }

    /// Total operations ticked so far.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// The full operation log (probe runs use it to enumerate every
    /// frame boundary a fault can be scheduled at).
    pub fn op_log(&self) -> Vec<NetOp> {
        self.lock().log.clone()
    }

    /// How many times each fault class fired, by label.
    pub fn fired(&self) -> BTreeMap<String, u64> {
        self.lock().fired.clone()
    }

    /// Ticks the op counter for one logical frame operation, returning
    /// the fault scheduled at this index (removed — each fires once) and
    /// recording the firing per class.
    pub fn tick(&self, kind: NetOpKind) -> Option<NetFault> {
        let mut g = self.lock();
        let index = g.ops;
        g.ops += 1;
        g.log.push(NetOp { index, kind });
        let fault = g.schedule.remove(&index);
        if let Some(f) = fault {
            *g.fired.entry(f.label().to_string()).or_insert(0) += 1;
        }
        fault
    }
}

/// Client configuration: endpoint, retry ladder shape, and per-priority
/// read-deadline classes.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Where the daemon listens.
    pub endpoint: Endpoint,
    /// Attempts per request across reconnects before giving up.
    pub max_attempts: usize,
    /// Base backoff after a failed attempt.
    pub backoff: Duration,
    /// Exponential growth factor of the backoff ladder.
    pub backoff_factor: f64,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by
    /// `1 - jitter·unit`, decorrelating retry storms deterministically.
    pub jitter: f64,
    /// Seed of the client's jitter stream.
    pub seed: u64,
    /// Read deadline per priority class (interactive, batch,
    /// best-effort): how long an ack may take before the attempt is
    /// abandoned and resubmitted.
    pub deadlines: [Duration; 3],
    /// Write deadline for all frames.
    pub write_deadline: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            endpoint: Endpoint::Unix(PathBuf::from("/tmp/fp16mg.sock")),
            max_attempts: 12,
            backoff: Duration::from_millis(20),
            backoff_factor: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            seed: 0x006e_6574_7769_7265,
            deadlines: [Duration::from_secs(5), Duration::from_secs(30), Duration::from_secs(60)],
            write_deadline: Duration::from_secs(5),
        }
    }
}

/// What the client observed, for harness assertions and the loadgen
/// summary.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Submit frames sent (including resubmissions).
    pub submitted: u64,
    /// Acks received.
    pub acked: u64,
    /// Acks served from the durable decision record (`duplicate = true`).
    pub duplicate_acks: u64,
    /// Retries of a request whose earlier attempt may have reached the
    /// server — the at-least-once deliveries the trail dedup must absorb.
    pub resubmissions: u64,
    /// Typed `Busy` responses honored with a backoff retry.
    pub busy_retries: u64,
    /// Reconnects after a lost connection.
    pub reconnects: u64,
    /// Typed resolutions observed per injected fault class: fault label →
    /// the typed error (wire or server) that resolved it.
    pub resolutions: BTreeMap<String, String>,
}

/// Why a request ultimately failed at the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The retry ladder ran out of attempts.
    Exhausted {
        /// Attempts made.
        attempts: usize,
        /// Label of the last failure.
        last: String,
    },
    /// The server refused the request with a terminal typed error.
    Rejected {
        /// The [`codes`] value.
        code: u8,
        /// The server's detail string.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
            ClientError::Rejected { code, detail } => {
                write!(f, "rejected: {} ({detail})", code_label(*code))
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// The serving client: one connection, reconnected on demand, with a
/// jittered retry/backoff ladder and idempotent resubmission. Requests
/// carry their sequence number as the idempotency key, so a retry after
/// a lost ack is deduplicated by the server's trail, not re-executed.
pub struct Client {
    cfg: ClientConfig,
    conn: Option<Conn>,
    ft: Option<FaultTransport>,
    extra_replies: u32,
    backoff_pos: u64,
    /// Observed counters; the harnesses read these directly.
    pub stats: ClientStats,
}

impl Client {
    /// A client for `cfg.endpoint`, not yet connected.
    pub fn new(cfg: ClientConfig) -> Self {
        Client {
            cfg,
            conn: None,
            ft: None,
            extra_replies: 0,
            backoff_pos: 0,
            stats: ClientStats::default(),
        }
    }

    /// A client whose frame operations tick (and obey) a fault schedule.
    pub fn with_transport(cfg: ClientConfig, ft: FaultTransport) -> Self {
        let mut c = Client::new(cfg);
        c.ft = Some(ft);
        c
    }

    fn drop_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            conn.shutdown();
        }
        self.extra_replies = 0;
    }

    fn ensure_conn(&mut self, read_deadline: Duration) -> Result<(), WireError> {
        if self.conn.is_none() {
            let conn = Conn::connect(&self.cfg.endpoint)
                .map_err(|e| WireError::ConnectionLost(format!("connect: {e}")))?;
            conn.set_deadlines(read_deadline, self.cfg.write_deadline)
                .map_err(|e| WireError::ConnectionLost(format!("deadlines: {e}")))?;
            self.conn = Some(conn);
        } else if let Some(conn) = &self.conn {
            let _ = conn.set_deadlines(read_deadline, self.cfg.write_deadline);
        }
        Ok(())
    }

    /// The jittered exponential backoff for retry `k` of this client's
    /// stream (deterministic in `(seed, position)`).
    fn backoff_for(&mut self, k: usize) -> Duration {
        let base = self.cfg.backoff.as_secs_f64() * self.cfg.backoff_factor.powi(k as i32);
        let capped = base.min(self.cfg.max_backoff.as_secs_f64());
        let pos = jitter::fold_seed(self.cfg.seed, "net-client").wrapping_add(self.backoff_pos);
        self.backoff_pos += 1;
        let scale = 1.0 - self.cfg.jitter.clamp(0.0, 1.0) * jitter::unit(pos);
        Duration::from_secs_f64(capped * scale)
    }

    fn resolve(&mut self, class: &'static str, typed: String) {
        self.stats.resolutions.entry(class.to_string()).or_insert(typed);
    }

    /// Sends one frame through the fault schedule. Injected faults
    /// damage the wire exactly as scheduled and surface as the typed
    /// error the production retry ladder must absorb.
    fn faulted_send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let fault = self.ft.as_ref().and_then(|ft| ft.tick(NetOpKind::Send(frame.kind())));
        let conn = self.conn.as_mut().expect("send without connection");
        match fault {
            None => write_frame(conn, frame),
            Some(NetFault::Reset) => {
                self.resolve("reset-mid-frame", "wire:connection-lost".into());
                self.drop_conn();
                Err(WireError::ConnectionLost("injected reset".into()))
            }
            Some(NetFault::Torn) => {
                let bytes = frame.encode();
                let half = (bytes.len() / 2).max(1);
                let _ = write_bytes(conn, &bytes[..half]);
                self.resolve("torn-frame", "wire:connection-lost".into());
                self.drop_conn();
                Err(WireError::ConnectionLost("injected torn frame".into()))
            }
            Some(NetFault::Stall { ms }) => {
                std::thread::sleep(Duration::from_millis(ms));
                // The server's read deadline has tripped and closed the
                // connection; the write may still land in a dead socket
                // buffer, so the failure surfaces typed on the next read.
                let r = write_frame(conn, frame);
                self.resolve("stalled-read", "wire:deadline".into());
                match r {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        self.drop_conn();
                        Err(e)
                    }
                }
            }
            Some(NetFault::Garbage { len }) => {
                let n = (len as usize).max(limits::HEADER_LEN);
                let mut garbage = Vec::with_capacity(n);
                let seed = jitter::fold_seed(self.cfg.seed, "garbage");
                for i in 0..n {
                    garbage.push((jitter::splitmix64(seed.wrapping_add(i as u64)) & 0xff) as u8);
                }
                garbage[0] = 0; // guarantee the magic check fails
                write_bytes(conn, &garbage)?;
                // The server must answer typed (bad magic) and close.
                match read_frame(conn) {
                    Ok(Frame::Error { code, .. }) => {
                        self.resolve("garbage-bytes", format!("error:{}", code_label(code)));
                    }
                    Ok(_) | Err(_) => {
                        self.resolve("garbage-bytes", "wire:connection-lost".into());
                    }
                }
                self.drop_conn();
                Err(WireError::ConnectionLost("stream desynced by garbage".into()))
            }
            Some(NetFault::Oversized) => {
                let mut head = Vec::with_capacity(limits::HEADER_LEN);
                head.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
                head.push(KIND_SUBMIT);
                head.extend_from_slice(&(limits::MAX_PAYLOAD + 1).to_le_bytes());
                write_bytes(conn, &head)?;
                match read_frame(conn) {
                    Ok(Frame::Error { code, .. }) => {
                        self.resolve("oversized-frame", format!("error:{}", code_label(code)));
                    }
                    Ok(_) | Err(_) => {
                        self.resolve("oversized-frame", "wire:connection-lost".into());
                    }
                }
                self.drop_conn();
                Err(WireError::ConnectionLost("oversized header sent".into()))
            }
            Some(NetFault::Duplicate) => {
                let bytes = frame.encode();
                write_bytes(conn, &bytes)?;
                write_bytes(conn, &bytes)?;
                self.extra_replies += 1;
                self.resolve("duplicate-delivery", "ack:duplicate".into());
                Ok(())
            }
        }
    }

    /// Receives one frame through the fault schedule. A receive-side
    /// fault abandons the reply (the lost-ack case): the connection is
    /// dropped before reading, so the attempt fails typed and the retry
    /// ladder resubmits idempotently.
    fn faulted_recv(&mut self) -> Result<Frame, WireError> {
        let fault = self.ft.as_ref().and_then(|ft| ft.tick(NetOpKind::Recv));
        match fault {
            None => {}
            Some(NetFault::Stall { ms }) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.resolve("stalled-read", "wire:deadline".into());
            }
            Some(f) => {
                // Receive-side injection can only model abandonment: the
                // peer's bytes are not ours to damage. Every class
                // degrades to dropping the connection before the read.
                self.resolve(f.label(), "wire:connection-lost".into());
                self.drop_conn();
                return Err(WireError::ConnectionLost("injected receive fault".into()));
            }
        }
        let conn = self.conn.as_mut().expect("recv without connection");
        match read_frame(conn) {
            Ok(f) => Ok(f),
            Err(e) => {
                self.drop_conn();
                Err(e)
            }
        }
    }

    /// Drains replies to duplicated deliveries so the stream stays in
    /// sync. The extra ack must carry `duplicate = true` — the server
    /// applied the first copy and answered the second from the trail.
    fn drain_extras(&mut self) {
        while self.extra_replies > 0 {
            self.extra_replies -= 1;
            let Some(conn) = self.conn.as_mut() else { break };
            match read_frame(conn) {
                Ok(Frame::Done(d)) if d.duplicate => self.stats.duplicate_acks += 1,
                Ok(_) => {}
                Err(_) => {
                    self.drop_conn();
                    break;
                }
            }
        }
    }

    fn try_once(&mut self, frame: &Frame, read_deadline: Duration) -> Result<Frame, WireError> {
        let had_conn = self.conn.is_some();
        self.ensure_conn(read_deadline)?;
        if !had_conn && self.stats.submitted > 0 {
            self.stats.reconnects += 1;
        }
        self.faulted_send(frame)?;
        self.faulted_recv()
    }

    /// Submits one request through the retry ladder: `Busy` responses
    /// back off and retry, lost connections reconnect and resubmit the
    /// same idempotency key, terminal server errors surface typed.
    ///
    /// # Errors
    /// [`ClientError::Rejected`] on a terminal server refusal,
    /// [`ClientError::Exhausted`] when the ladder runs out of attempts.
    pub fn submit(&mut self, req: SubmitRequest) -> Result<DoneReply, ClientError> {
        let deadline = self.cfg.deadlines[(req.priority as usize).min(2)];
        let frame = Frame::Submit(req.clone());
        let mut last = String::from("never attempted");
        let mut sent_before = false;
        for attempt in 0..self.cfg.max_attempts {
            if sent_before {
                self.stats.resubmissions += 1;
            }
            self.stats.submitted += 1;
            sent_before = true;
            match self.try_once(&frame, deadline) {
                Ok(Frame::Done(d)) if d.key == req.key => {
                    self.stats.acked += 1;
                    if d.duplicate {
                        self.stats.duplicate_acks += 1;
                    }
                    self.drain_extras();
                    return Ok(d);
                }
                Ok(Frame::Busy { reason, retry_ms }) => {
                    self.stats.busy_retries += 1;
                    last = format!("busy:{reason}");
                    let hint = Duration::from_millis(retry_ms as u64);
                    let sleep = self.backoff_for(attempt).max(hint);
                    std::thread::sleep(sleep);
                }
                Ok(Frame::Error { code, detail }) => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Ok(other) => {
                    last = format!("unexpected frame kind {}", other.kind());
                    self.drop_conn();
                    std::thread::sleep(self.backoff_for(attempt));
                }
                Err(e) => {
                    last = e.label().to_string();
                    self.drop_conn();
                    std::thread::sleep(self.backoff_for(attempt));
                }
            }
        }
        Err(ClientError::Exhausted { attempts: self.cfg.max_attempts, last })
    }

    /// Pings the server (used to wait for a daemon to come up).
    ///
    /// # Errors
    /// The wire error when the server is not reachable.
    pub fn ping(&mut self) -> Result<(), WireError> {
        self.ensure_conn(self.cfg.deadlines[0])?;
        self.faulted_send(&Frame::Ping)?;
        match self.faulted_recv()? {
            Frame::Pong => Ok(()),
            other => {
                self.drop_conn();
                Err(WireError::Malformed {
                    what: if other.kind() == KIND_PONG { "pong" } else { "ping reply" },
                })
            }
        }
    }

    /// Requests a graceful drain and waits for the durable
    /// acknowledgment.
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] when the server stopped answering — a
    /// reset can lose the `ShutdownOk` after the drain completed, so
    /// callers should treat exhaustion here as "check the server's own
    /// report".
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        let mut last = String::from("never attempted");
        for attempt in 0..self.cfg.max_attempts {
            match self.try_once(&Frame::Shutdown, self.cfg.deadlines[1]) {
                Ok(Frame::ShutdownOk { seq }) => return Ok(seq),
                Ok(Frame::Error { code, detail }) => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Ok(other) => {
                    last = format!("unexpected frame kind {}", other.kind());
                    self.drop_conn();
                    std::thread::sleep(self.backoff_for(attempt));
                }
                Err(e) => {
                    last = e.label().to_string();
                    self.drop_conn();
                    std::thread::sleep(self.backoff_for(attempt));
                }
            }
        }
        Err(ClientError::Exhausted { attempts: self.cfg.max_attempts, last })
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn frame_roundtrip_all_kinds() {
        let frames = [
            Frame::Submit(SubmitRequest { key: 7, size: 12, tol: 1e-7, priority: 1 }),
            Frame::Done(DoneReply {
                key: 7,
                duplicate: true,
                outcome: "converged".into(),
                profile: "full".into(),
                breaker: "closed".into(),
            }),
            Frame::Busy { reason: "queue-full".into(), retry_ms: 25 },
            Frame::Error { code: codes::OUT_OF_ORDER, detail: "want 3".into() },
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::ShutdownOk { seq: 41 },
        ];
        for f in frames {
            let bytes = f.encode();
            let (back, used) = decode_frame(&bytes).expect("roundtrip");
            assert_eq!(back, f);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn oversized_header_rejected_before_payload() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        bytes.push(KIND_SUBMIT);
        bytes.extend_from_slice(&(limits::MAX_PAYLOAD + 1).to_le_bytes());
        // No payload at all: the length check must fire before the
        // decoder ever asks for payload bytes.
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::Oversized { got: limits::MAX_PAYLOAD + 1, limit: limits::MAX_PAYLOAD })
        );
    }

    #[test]
    fn bad_magic_and_unknown_kind_are_typed() {
        let mut bytes = Frame::Ping.encode();
        bytes[0] = 0;
        assert!(matches!(decode_frame(&bytes), Err(WireError::BadMagic { .. })));
        let mut bytes = Frame::Ping.encode();
        bytes[4] = 99;
        assert_eq!(decode_frame(&bytes), Err(WireError::UnknownKind { got: 99 }));
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut bytes = Frame::ShutdownOk { seq: 1 }.encode();
        bytes.push(0);
        let len = (bytes.len() - limits::HEADER_LEN) as u32;
        bytes[5..9].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::Malformed { what: "trailing payload bytes" })
        );
    }

    #[test]
    fn labels_clip_to_limit_and_still_decode() {
        let long = "x".repeat(limits::MAX_LABEL * 2);
        let f = Frame::Error { code: codes::INTERNAL, detail: long };
        let (back, _) = decode_frame(&f.encode()).expect("clipped label decodes");
        match back {
            Frame::Error { detail, .. } => assert_eq!(detail.len(), limits::MAX_LABEL),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn endpoint_parse_forms() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/s.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/s.sock")))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:8080"),
            Ok(Endpoint::Tcp("127.0.0.1:8080".into()))
        );
        assert!(Endpoint::parse("udp:nope").is_err());
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:noport").is_err());
    }

    #[test]
    fn fault_transport_ticks_and_fires_once() {
        let ft = FaultTransport::new();
        ft.schedule(1, NetFault::Reset);
        assert_eq!(ft.tick(NetOpKind::Send(KIND_SUBMIT)), None);
        assert_eq!(ft.tick(NetOpKind::Recv), Some(NetFault::Reset));
        assert_eq!(ft.tick(NetOpKind::Recv), None);
        assert_eq!(ft.op_count(), 3);
        assert_eq!(ft.fired().get("reset-mid-frame"), Some(&1));
        let log = ft.op_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].index, 0);
        assert!(matches!(log[0].kind, NetOpKind::Send(k) if k == KIND_SUBMIT));
    }
}
