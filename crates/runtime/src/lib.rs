//! Resilient solve runtime: budgets, cancellation, retry ladder, and
//! concurrent request isolation.
//!
//! The layers below this crate make a single mixed-precision solve
//! *diagnosable* (typed breakdowns, stagnation detection) and partially
//! *self-healing* (FP16→FP32 level promotion inside the V-cycle). This
//! crate makes solves *dependable as a service*:
//!
//! - [`Budget`]/[`CancelToken`] bound one solve session by wall clock,
//!   outer iterations, and V-cycle applications, and let another thread
//!   cancel it cooperatively. [`BudgetGuard`] implements
//!   `fp16mg_krylov::SolveControl`, so the bounds are enforced at every
//!   Krylov iteration boundary, not just between attempts.
//! - [`run_session`] walks the retry ladder ([`Rung`]): retry the mixed
//!   FP16 configuration, repair corrupted levels in place from their
//!   integrity sentinels, eagerly promote 16-bit levels, rebuild in
//!   FP32, and finally fall back to full FP64 — with per-rung attempt
//!   caps and jittered backoff ([`RetryPolicy`]), recording every
//!   attempt (and every localized repair) in a [`RetryReport`].
//! - [`ServePool`] drives many sessions concurrently on a scoped worker
//!   pool behind an overload-protection layer: a bounded
//!   [`AdmissionQueue`] with per-[`Priority`] capacity, a
//!   per-problem-class circuit [`breaker`](crate::breaker), and a
//!   pressure-driven [`shed`](crate::shed) stage that degrades admitted
//!   work ([`DegradeProfile`]) or sheds it (BestEffort first,
//!   Interactive never) — every refusal a typed [`AdmissionError`],
//!   every downgrade a typed [`DegradeEvent`]. A panicking session
//!   becomes a typed `SolveError::WorkerPanicked` outcome while every
//!   other request completes. [`run_batch`] remains as the
//!   protection-off compatibility wrapper.
//!
//! Under the `fault-inject` feature, requests can carry a [`FaultPlan`]
//! that keeps corrupting rebuilt hierarchies until a chosen rung, which
//! is how the tests prove each rung is reachable and actually fixes the
//! fault class beneath it.

#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod budget;
pub mod cache;
pub mod jitter;
pub mod ladder;
pub mod mem;
pub mod net;
pub mod pool;
pub mod ring;
pub mod shed;
pub mod snapshot;
pub mod storage;
pub mod supervise;

pub use admission::{AdmissionConfig, AdmissionError, AdmissionQueue, Priority};
pub use breaker::{
    BreakerConfig, BreakerDecision, BreakerExport, BreakerRegistry, BreakerState,
    BreakerTransition, CircuitBreaker,
};
pub use budget::{Budget, BudgetGuard, CancelToken};
pub use cache::{
    CacheConfig, CacheEntryMeta, CacheEvent, CacheEventKind, CacheStats, HierarchyCache,
};
pub use ladder::{
    run_session, run_session_with, Attempt, AuditSnapshot, RetryPolicy, RetryReport, Rung,
    SessionOutcome, SolveRequest, SolverChoice,
};
#[cfg(feature = "fault-inject")]
pub use ladder::{FaultPlan, LevelBitFlip};
pub use mem::{AllocFault, ChargeRecord, MemCharge, MemError, MemGovernor};
pub use net::{
    decode_frame, read_frame, write_frame, Acceptor, Client, ClientConfig, ClientError,
    ClientStats, Conn, DoneReply, Endpoint, FaultTransport, Frame, Listener, NetFault, NetOp,
    NetOpKind, SubmitRequest, WireError, WIRE_MAGIC,
};
pub use pool::{
    run_batch, PoolConfig, PoolState, RequestOutcome, ServeCounters, ServeError, ServePool,
};
pub use ring::Ring;
pub use shed::{estimate_pressure, DegradeEvent, DegradeProfile, PressureSignal, ShedPolicy};
pub use snapshot::{
    DaemonSnapshot, Recovery, SimCounters, SimSnapshot, SnapshotError, SnapshotStore,
    SNAPSHOT_VERSION,
};
pub use storage::{
    append_durable, Fault, FaultStorage, OpKind, OpRecord, RealStorage, Storage, StorageError,
    StorageFile, ENOSPC_RETRIES,
};
pub use supervise::{
    Daemon, DaemonConfig, DrainReport, Quarantine, SuperviseConfig, WorkerEvent, WorkerEventKind,
};

#[cfg(test)]
mod tests;
