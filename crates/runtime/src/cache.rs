//! The hierarchy cache: retained Galerkin setup with audited, drift-
//! bounded invalidation.
//!
//! The FP64 Galerkin triple-product chain (§4 lines 1–3) dominates
//! setup cost; the per-level scale-and-truncate that follows (lines
//! 4–14, Theorem 4.1) is cheap. A long-running daemon therefore caches
//! the *chain* per problem class and geometry and serves each request
//! by re-running only the cheap half ([`Mg::setup_from_chain`]) — but a
//! cache is only as trustworthy as its invalidation. Here invalidation
//! is *audited*: a [`RangeAudit`] of the incoming operator is compared
//! against the cached baseline (one [`OperatorDrift`] — no access to
//! the cached matrix needed), and a typed three-way predicate decides:
//!
//! * drift ≤ `keep_max` → **[`CacheEventKind::Hit`]**: serve from the
//!   cached chain as-is. Sound because the outer Krylov operator is
//!   always the caller's exact matrix — only the preconditioner lags.
//! * drift ≤ `rescale_max` → **[`CacheEventKind::RescaledHit`]**: the
//!   finest level is re-scaled and re-truncated from the *new* operator
//!   ([`Mg::setup_rescaled`]), restoring the Theorem 4.1 no-overflow
//!   guarantee for the drifted values while the coarse Galerkin tail is
//!   reused (bounded Galerkin lag); the chain's finest slot is swapped
//!   in place so an identical follow-up is a fingerprint hit.
//! * beyond — or any structural drift (new overflow, changed sparsity)
//!   → **[`CacheEventKind::DriftInvalidated`]**: the entry is torn down
//!   and rebuilt from scratch.
//!
//! Bit-equal operators short-circuit via an FNV-1a fingerprint of the
//! raw matrix bits before any audit runs. Every decision is recorded as
//! a typed [`CacheEvent`] in a ring-bounded trail, and the per-class
//! keying reuses the breaker registry's convention, so cache, breaker,
//! and admission speak the same class vocabulary.

use std::collections::BTreeMap;

use fp16mg_core::{GalerkinChain, Mg, MgConfig, ScaleStrategy, SetupError};
use fp16mg_fp::{Fnv1a, Precision};
use fp16mg_sgdia::audit::{self, drift, OperatorDrift, RangeAudit};
use fp16mg_sgdia::SgDia;

use crate::mem::{MemCharge, MemGovernor};
use crate::ring::Ring;

/// Cache tuning.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Master switch; a disabled cache makes every acquire a plain
    /// build with no retention.
    pub enabled: bool,
    /// Maximum retained entries (least-recently-used eviction beyond).
    pub capacity: usize,
    /// Byte budget for retained chains (`None` = unbounded). Before an
    /// insert, least-recently-used entries are evicted until the new
    /// chain fits; an insert whose charge still fails is served
    /// *uncached* — a typed degrade, never an abort.
    pub byte_budget: Option<u64>,
    /// Drift magnitude (log2 units, see [`OperatorDrift::magnitude`])
    /// up to which the cached hierarchy is served unchanged.
    pub keep_max: f64,
    /// Drift magnitude up to which the finest level is re-scaled in
    /// place; beyond it the entry is invalidated and rebuilt.
    pub rescale_max: f64,
    /// Ring capacity of the typed event trail.
    pub event_log_cap: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 8,
            byte_budget: None,
            keep_max: 0.25,
            rescale_max: 3.0,
            event_log_cap: 256,
        }
    }
}

impl CacheConfig {
    /// Caching off entirely (the batch-mode compatibility shape).
    pub fn disabled() -> Self {
        CacheConfig { enabled: false, ..Self::default() }
    }
}

/// What the cache decided for one acquire (or eviction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEventKind {
    /// Served from the cached chain unchanged (fingerprint-equal, or
    /// drift within the keep bound).
    Hit,
    /// Served after re-scaling the finest level from the drifted
    /// operator; the coarse Galerkin tail was reused.
    RescaledHit,
    /// Drift exceeded the rescale bound (or was structural): the entry
    /// was torn down and rebuilt from the incoming operator.
    DriftInvalidated,
    /// No usable entry existed; a fresh chain was built and cached.
    Rebuilt,
    /// An entry was evicted to make room (LRU).
    Evicted,
    /// An entry was evicted for *bytes*: the byte budget (or an external
    /// memory-pressure sweep) needed room.
    MemEvicted,
    /// The hierarchy was served but its chain was not retained: the
    /// cache-insert charge was refused (byte budget or injected fault).
    /// A degrade, not a failure — the caller still gets its solve.
    Uncached,
}

impl CacheEventKind {
    /// Short display label (trail vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            CacheEventKind::Hit => "hit",
            CacheEventKind::RescaledHit => "rescaled-hit",
            CacheEventKind::DriftInvalidated => "drift-invalidated",
            CacheEventKind::Rebuilt => "rebuilt",
            CacheEventKind::Evicted => "evicted",
            CacheEventKind::MemEvicted => "mem-evicted",
            CacheEventKind::Uncached => "uncached",
        }
    }
}

impl core::fmt::Display for CacheEventKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One typed cache decision, in the ring-bounded trail.
#[derive(Clone, Debug)]
pub struct CacheEvent {
    /// What happened.
    pub kind: CacheEventKind,
    /// The problem class the decision was about.
    pub class: String,
    /// The measured drift, when an audit ran (absent for fingerprint
    /// hits, cold builds, and evictions).
    pub drift: Option<OperatorDrift>,
}

/// Cache key: the breaker registry's class string plus the operator
/// geometry, so one class solving two grid sizes gets two entries
/// instead of thrash.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Problem class (the breaker/admission keying).
    pub class: String,
    /// Finest grid dims.
    pub dims: (usize, usize, usize),
    /// Components per cell.
    pub components: usize,
    /// Stencil taps.
    pub taps: usize,
}

impl CacheKey {
    /// The key of `class` solving `a`.
    pub fn of(class: &str, a: &SgDia<f64>) -> Self {
        let g = a.grid();
        CacheKey {
            class: class.to_string(),
            dims: (g.nx, g.ny, g.nz),
            components: g.components,
            taps: a.pattern().len(),
        }
    }
}

/// Aggregate decision counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plain hits (fingerprint-equal or within the keep bound).
    pub hits: u64,
    /// Rescale-in-place hits.
    pub rescaled_hits: u64,
    /// Drift invalidations (each followed by a rebuild of the entry).
    pub drift_invalidations: u64,
    /// Cold builds (no usable entry).
    pub rebuilds: u64,
    /// LRU evictions.
    pub evictions: u64,
}

/// Checkpointable description of one entry — everything except the
/// matrices themselves. A restored entry is *cold* (its first acquire
/// rebuilds the chain) but keeps its identity and counters, so cache
/// effectiveness statistics survive a restart honestly.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntryMeta {
    /// The entry's key.
    pub key: CacheKey,
    /// FNV-1a fingerprint of the finest operator's raw bits.
    pub fingerprint: u64,
    /// Times this entry served a plain hit.
    pub hits: u64,
    /// Times this entry served a rescaled hit.
    pub rescaled_hits: u64,
    /// Times this entry was (re)built.
    pub builds: u64,
}

/// One retained setup. `chain`/`baseline` are `None` for entries
/// restored from a snapshot (metadata only) until their first rebuild.
#[derive(Debug)]
struct CacheEntry {
    chain: Option<GalerkinChain>,
    baseline: Option<RangeAudit>,
    fingerprint: u64,
    config_tag: String,
    last_used: u64,
    hits: u64,
    rescaled_hits: u64,
    builds: u64,
    /// Bytes the retained chain keeps resident (0 for cold entries).
    bytes: u64,
    /// The governor receipt for those bytes. Dropping the entry drops
    /// the receipt, crediting the bytes back — double-charging is
    /// impossible by construction.
    charge: Option<MemCharge>,
}

/// The per-class, drift-audited hierarchy cache.
#[derive(Debug)]
pub struct HierarchyCache {
    cfg: CacheConfig,
    entries: BTreeMap<CacheKey, CacheEntry>,
    events: Ring<CacheEvent>,
    stats: CacheStats,
    /// Byte accounting for retained chains (`"cache-insert"` /
    /// `"rescale"` charge classes). Unlimited unless the cache was
    /// built with [`HierarchyCache::with_governor`].
    governor: MemGovernor,
    /// Evictions forced by bytes rather than entry count (also counted
    /// in `stats.evictions`).
    mem_evictions: u64,
    /// Serves whose chain retention was refused (charge failed).
    uncached: u64,
    tick: u64,
}

impl HierarchyCache {
    /// An empty cache with private (unlimited) byte accounting.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_governor(cfg, MemGovernor::unlimited())
    }

    /// An empty cache charging its retained bytes against `governor` —
    /// the shape a daemon uses so cache bytes, hierarchy bytes, and the
    /// pressure signal share one budget.
    pub fn with_governor(cfg: CacheConfig, governor: MemGovernor) -> Self {
        let events = Ring::new(cfg.event_log_cap);
        HierarchyCache {
            cfg,
            entries: BTreeMap::new(),
            events,
            stats: CacheStats::default(),
            governor,
            mem_evictions: 0,
            uncached: 0,
            tick: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate decision counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently retained by warm entries' chains.
    pub fn cache_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Evictions forced by byte pressure (subset of `stats().evictions`).
    pub fn mem_evictions(&self) -> u64 {
        self.mem_evictions
    }

    /// Serves whose chain retention was refused by the byte accounting
    /// (the `uncached` degrade rung).
    pub fn uncached_serves(&self) -> u64 {
        self.uncached
    }

    /// Evicts least-recently-used entries until retained bytes fit
    /// within `budget`. Returns the number of entries evicted. This is
    /// the hook a pressure-driven runtime calls when the memory
    /// component of its `PressureSignal` crosses the eviction threshold.
    pub fn evict_until_within(&mut self, budget: u64) -> usize {
        let mut evicted = 0;
        while self.cache_bytes() > budget && !self.entries.is_empty() {
            self.evict_lru(CacheEventKind::MemEvicted);
            evicted += 1;
        }
        evicted
    }

    /// The most recent typed decisions (ring-bounded).
    pub fn events(&self) -> &[CacheEvent] {
        &self.events
    }

    /// Produces a hierarchy for `class` solving `matrix` under `config`,
    /// reusing the cached Galerkin chain when the audited drift allows,
    /// and returns the typed decision alongside.
    ///
    /// `ScaleThenSetup` configs are served by a full build without
    /// touching the cache (their chains are single-use; see
    /// [`GalerkinChain::build`]) — recorded as a rebuild, never
    /// retained.
    ///
    /// # Errors
    /// Propagates [`SetupError`] from whichever build path ran. A
    /// failed build leaves the previous entry untouched.
    pub fn acquire(
        &mut self,
        class: &str,
        matrix: &SgDia<f64>,
        config: &MgConfig,
    ) -> Result<(Mg<f32>, CacheEventKind), SetupError> {
        self.tick += 1;
        if !self.cfg.enabled || config.scale == ScaleStrategy::ScaleThenSetup {
            let mg = Mg::<f32>::setup(matrix, config)?;
            self.record(CacheEventKind::Rebuilt, class, None);
            return Ok((mg, CacheEventKind::Rebuilt));
        }
        let key = CacheKey::of(class, matrix);
        let config_tag = format!("{config:?}");

        // Fast path: a warm entry with a matching config.
        if let Some(entry) = self.entries.get(&key) {
            if entry.config_tag == config_tag && entry.chain.is_some() {
                let fingerprint = fingerprint(matrix);
                if fingerprint == entry.fingerprint {
                    return self.serve_hit(&key, config, None);
                }
                let current = audit::audit(matrix, Precision::F16);
                let d = match entry.baseline.as_ref() {
                    Some(baseline) => drift(baseline, &current),
                    // A warm chain always carries its baseline; treat a
                    // missing one as unbounded drift out of caution.
                    None => OperatorDrift {
                        range_shift: f64::INFINITY,
                        floor_shift: f64::INFINITY,
                        new_overflow: false,
                        structure_changed: false,
                    },
                };
                if !d.structural() && d.magnitude() <= self.cfg.keep_max {
                    return self.serve_hit(&key, config, Some(d));
                }
                if !d.structural() && d.magnitude() <= self.cfg.rescale_max {
                    return self.serve_rescaled(&key, matrix, config, fingerprint, current, d);
                }
                return self.rebuild(key, matrix, config, config_tag, Some(d));
            }
        }
        // Cold (no entry, config changed, or metadata-only after a
        // restore): build fresh. A config change or restored entry is a
        // rebuild of an existing slot; a brand-new key may evict.
        let existed = self.entries.contains_key(&key);
        if existed {
            self.rebuild(key, matrix, config, config_tag, None)
        } else {
            self.evict_for_room(&key);
            self.build_into(key, matrix, config, config_tag, CacheEventKind::Rebuilt, None)
        }
    }

    /// Serves a plain hit from the warm entry at `key`.
    fn serve_hit(
        &mut self,
        key: &CacheKey,
        config: &MgConfig,
        d: Option<OperatorDrift>,
    ) -> Result<(Mg<f32>, CacheEventKind), SetupError> {
        let tick = self.tick;
        let class = key.class.clone();
        let entry = self.entries.get_mut(key).expect("hit entry exists");
        let chain = entry.chain.as_ref().expect("hit entry is warm");
        let mg = Mg::<f32>::setup_from_chain(chain, config)?;
        entry.hits += 1;
        entry.last_used = tick;
        self.stats.hits += 1;
        self.record(CacheEventKind::Hit, &class, d);
        Ok((mg, CacheEventKind::Hit))
    }

    /// Serves a rescaled hit: rebuild the finest level from `matrix`,
    /// reuse the coarse tail, and commit the swap so an identical
    /// follow-up operator fingerprint-hits.
    fn serve_rescaled(
        &mut self,
        key: &CacheKey,
        matrix: &SgDia<f64>,
        config: &MgConfig,
        fingerprint: u64,
        current: RangeAudit,
        d: OperatorDrift,
    ) -> Result<(Mg<f32>, CacheEventKind), SetupError> {
        // The rescale commit materializes a fresh copy of the finest
        // operator inside the chain — charge it before doing the work.
        // A refused charge degrades to serving the *stale* chain as a
        // plain hit: bounded Galerkin lag (the drift is ≤ `rescale_max`
        // by the caller's check), zero new bytes, and the outer Krylov
        // iteration still runs on the caller's exact matrix.
        let finest_bytes = matrix.value_bytes() as u64;
        // Held (not bound to `_`) so the transient bytes stay tracked
        // for the duration of the rescale, then credit back on return.
        let _rescale_charge = match self.governor.try_charge("rescale", finest_bytes) {
            Ok(c) => c,
            Err(_) => return self.serve_hit(key, config, Some(d)),
        };
        let tick = self.tick;
        let class = key.class.clone();
        let entry = self.entries.get_mut(key).expect("rescale entry exists");
        let chain = entry.chain.as_mut().expect("rescale entry is warm");
        let mg = Mg::<f32>::setup_rescaled(matrix, chain, config)?;
        chain.swap_finest(matrix, config)?;
        entry.fingerprint = fingerprint;
        entry.baseline = Some(current);
        entry.rescaled_hits += 1;
        entry.last_used = tick;
        self.stats.rescaled_hits += 1;
        self.record(CacheEventKind::RescaledHit, &class, Some(d));
        Ok((mg, CacheEventKind::RescaledHit))
    }

    /// Rebuilds the entry at `key` from scratch. With a measured drift
    /// this is a drift invalidation; without one it is a plain rebuild
    /// (cold entry, changed config, restored metadata).
    fn rebuild(
        &mut self,
        key: CacheKey,
        matrix: &SgDia<f64>,
        config: &MgConfig,
        config_tag: String,
        d: Option<OperatorDrift>,
    ) -> Result<(Mg<f32>, CacheEventKind), SetupError> {
        let kind =
            if d.is_some() { CacheEventKind::DriftInvalidated } else { CacheEventKind::Rebuilt };
        self.build_into(key, matrix, config, config_tag, kind, d)
    }

    /// Builds a fresh chain + hierarchy and installs it at `key`,
    /// preserving the previous entry's counters if one existed.
    fn build_into(
        &mut self,
        key: CacheKey,
        matrix: &SgDia<f64>,
        config: &MgConfig,
        config_tag: String,
        kind: CacheEventKind,
        d: Option<OperatorDrift>,
    ) -> Result<(Mg<f32>, CacheEventKind), SetupError> {
        let chain = GalerkinChain::build(matrix, config)?;
        let mg = Mg::<f32>::setup_from_chain(&chain, config)?;
        let class = key.class.clone();
        match kind {
            CacheEventKind::DriftInvalidated => self.stats.drift_invalidations += 1,
            _ => self.stats.rebuilds += 1,
        }
        // Retention is fallible: release the bytes of whatever chain the
        // slot held (it is being replaced either way), make room under
        // the byte budget, and charge the new chain. A refused charge
        // degrades to an uncached serve — the caller still gets its
        // hierarchy, the slot just goes cold.
        let bytes = chain.value_bytes() as u64;
        if let Some(old) = self.entries.get_mut(&key) {
            old.chain = None;
            old.bytes = 0;
            old.charge = None;
        }
        self.evict_for_bytes(bytes);
        let charge = match self.governor.try_charge("cache-insert", bytes) {
            Ok(c) => c,
            Err(_) => {
                self.entries.remove(&key);
                self.uncached += 1;
                self.record(CacheEventKind::Uncached, &class, d);
                return Ok((mg, CacheEventKind::Uncached));
            }
        };
        let baseline = audit::audit(matrix, Precision::F16);
        let fp = fingerprint(matrix);
        let tick = self.tick;
        let entry = self.entries.entry(key).or_insert_with(|| CacheEntry {
            chain: None,
            baseline: None,
            fingerprint: 0,
            config_tag: String::new(),
            last_used: 0,
            hits: 0,
            rescaled_hits: 0,
            builds: 0,
            bytes: 0,
            charge: None,
        });
        entry.chain = Some(chain);
        entry.baseline = Some(baseline);
        entry.fingerprint = fp;
        entry.config_tag = config_tag;
        entry.last_used = tick;
        entry.builds += 1;
        entry.bytes = bytes;
        entry.charge = Some(charge);
        self.record(kind, &class, d);
        Ok((mg, kind))
    }

    /// Evicts least-recently-used entries until a new key fits.
    fn evict_for_room(&mut self, _incoming: &CacheKey) {
        while self.entries.len() >= self.cfg.capacity.max(1) {
            self.evict_lru(CacheEventKind::Evicted);
        }
    }

    /// Evicts LRU entries until `incoming_bytes` more would fit within
    /// the byte budget (no-op when unbounded).
    fn evict_for_bytes(&mut self, incoming_bytes: u64) {
        let Some(budget) = self.cfg.byte_budget else { return };
        while !self.entries.is_empty() && self.cache_bytes().saturating_add(incoming_bytes) > budget
        {
            self.evict_lru(CacheEventKind::MemEvicted);
        }
    }

    /// Removes the least-recently-used entry, recording `kind`
    /// (`Evicted` for count pressure, `MemEvicted` for byte pressure).
    /// Dropping the entry drops its charge receipt, so the governor's
    /// accounting credits back exactly once.
    fn evict_lru(&mut self, kind: CacheEventKind) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
            .expect("non-empty cache has an LRU entry");
        self.entries.remove(&victim);
        self.stats.evictions += 1;
        if kind == CacheEventKind::MemEvicted {
            self.mem_evictions += 1;
        }
        self.record(kind, &victim.class, None);
    }

    fn record(&mut self, kind: CacheEventKind, class: &str, drift: Option<OperatorDrift>) {
        self.events.push(CacheEvent { kind, class: class.to_string(), drift });
    }

    /// Checkpointable metadata of every entry, in key order.
    pub fn metadata(&self) -> Vec<CacheEntryMeta> {
        self.entries
            .iter()
            .map(|(key, e)| CacheEntryMeta {
                key: key.clone(),
                fingerprint: e.fingerprint,
                hits: e.hits,
                rescaled_hits: e.rescaled_hits,
                builds: e.builds,
            })
            .collect()
    }

    /// Restores metadata-only (cold) entries from a snapshot. Existing
    /// warm entries of the same key are left untouched — a restore
    /// never discards real cached work.
    pub fn restore_metadata(&mut self, metas: &[CacheEntryMeta]) {
        for m in metas {
            self.entries.entry(m.key.clone()).or_insert_with(|| CacheEntry {
                chain: None,
                baseline: None,
                fingerprint: m.fingerprint,
                config_tag: String::new(),
                last_used: 0,
                hits: m.hits,
                rescaled_hits: m.rescaled_hits,
                builds: m.builds,
                bytes: 0,
                charge: None,
            });
        }
    }

    /// Restores the aggregate counters from a snapshot.
    pub fn restore_stats(&mut self, stats: CacheStats) {
        self.stats = stats;
    }
}

/// FNV-1a over the raw bit patterns of every stored entry, cell-major
/// within each tap (layout-independent, like the ABFT sentinels): equal
/// fingerprints ⇔ bit-identical operators.
pub fn fingerprint(a: &SgDia<f64>) -> u64 {
    let mut h = Fnv1a::new();
    let cells = a.grid().cells();
    for tap in 0..a.pattern().len() {
        for cell in 0..cells {
            h.write_value(a.get(cell, tap));
        }
    }
    h.finish()
}
