//! Load shedding and degraded-mode solve profiles.
//!
//! Under pressure the pool has two levers, applied in this order:
//!
//! 1. **Degrade** admitted work: serve it with a cheaper profile —
//!    looser tolerance, capped iterations, and in the extreme the
//!    paper's FP16 storage below `shift_levid` with a hard V-cycle cap.
//!    The request still converges (to a looser target); the quality
//!    trade is recorded as a typed [`DegradeEvent`] trail.
//! 2. **Shed** work that the pool prefers to refuse outright:
//!    [`Priority::BestEffort`] first, [`Priority::Batch`] at near-
//!    saturation, [`Priority::Interactive`] never (interactive work is
//!    only refused by a hard capacity bound or an open breaker).
//!
//! The pressure signal driving both is computed from *declared*
//! quantities — queue depth against capacity, queued deadline slack
//! against a configured per-request service estimate, and tracked bytes
//! against the pool's memory budget — never from measured wall time or
//! RSS, so a replayed batch makes identical decisions.

use crate::admission::Priority;
use std::time::Duration;

/// Quality profile a request is served at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradeProfile {
    /// Requested quality, untouched.
    #[default]
    Full,
    /// Looser tolerance and capped outer iterations.
    Reduced,
    /// Reduced, plus uniform-FP16 storage below `shift_levid`, a hard
    /// V-cycle cap, and no FP64 rebuild rung: minimum cost per request.
    Economy,
}

impl DegradeProfile {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            DegradeProfile::Full => "full",
            DegradeProfile::Reduced => "reduced",
            DegradeProfile::Economy => "economy",
        }
    }
}

impl core::fmt::Display for DegradeProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded quality downgrade. A degraded request carries the full
/// trail in its outcome, so "it converged, but to what?" is always
/// answerable from the record.
#[derive(Clone, Debug, PartialEq)]
pub enum DegradeEvent {
    /// Convergence tolerance loosened.
    TolRelaxed {
        /// Tolerance the caller asked for.
        from: f64,
        /// Tolerance actually served.
        to: f64,
    },
    /// Outer-iteration budget capped.
    ItersCapped {
        /// Cap the caller asked for.
        from: usize,
        /// Cap actually served.
        to: usize,
    },
    /// Storage switched to FP16 below this level (the paper's
    /// `shift_levid` knob) with an F32 coarse solve.
    StorageEconomized {
        /// First level kept above FP16.
        shift_levid: usize,
    },
    /// Hard V-cycle budget imposed.
    VcyclesCapped {
        /// The imposed cap.
        cap: usize,
    },
    /// A retry-ladder rung disabled (economy drops the FP64 rebuild —
    /// the most expensive recovery — rather than spend it on shed-window
    /// work).
    LadderTrimmed {
        /// Label of the disabled rung.
        rung: &'static str,
    },
}

impl core::fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DegradeEvent::TolRelaxed { from, to } => write!(f, "tol {from:.1e}→{to:.1e}"),
            DegradeEvent::ItersCapped { from, to } => write!(f, "iters {from}→{to}"),
            DegradeEvent::StorageEconomized { shift_levid } => {
                write!(f, "fp16-until {shift_levid}")
            }
            DegradeEvent::VcyclesCapped { cap } => write!(f, "vcycles ≤{cap}"),
            DegradeEvent::LadderTrimmed { rung } => write!(f, "no {rung}"),
        }
    }
}

/// The pressure signal: three components, combined as their max. All
/// are fractions in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PressureSignal {
    /// Queue depth over total capacity.
    pub queue_fill: f64,
    /// Fraction of queued deadline-bearing requests whose deadline is
    /// shorter than their expected wait (position in queue over worker
    /// count, times the declared service estimate).
    pub slack_deficit: f64,
    /// Fraction of the pool's memory budget in use
    /// ([`crate::MemGovernor::fill`]; zero when the pool has no byte
    /// budget). Tracked bytes, not RSS, so the signal replays
    /// deterministically.
    pub mem_fill: f64,
}

impl PressureSignal {
    /// Combined pressure in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.queue_fill.max(self.slack_deficit).max(self.mem_fill).clamp(0.0, 1.0)
    }
}

/// Computes the pressure signal from declared quantities only.
///
/// `queued_deadlines` holds the deadline (if any) of each already-queued
/// request, in queue order; request `i`'s expected start is
/// `(i / workers) * est_service` — the batch-position model, not a
/// wall-clock measurement, so the signal is deterministic.
pub fn estimate_pressure(
    depth: usize,
    capacity: usize,
    workers: usize,
    est_service: Duration,
    queued_deadlines: &[Option<Duration>],
) -> PressureSignal {
    let queue_fill = if capacity == 0 { 1.0 } else { (depth as f64 / capacity as f64).min(1.0) };
    let workers = workers.max(1);
    let mut with_deadline = 0usize;
    let mut missing = 0usize;
    for (i, dl) in queued_deadlines.iter().enumerate() {
        if let Some(deadline) = dl {
            with_deadline += 1;
            let expected_wait = est_service * (i / workers) as u32;
            if *deadline < expected_wait + est_service {
                missing += 1;
            }
        }
    }
    let slack_deficit =
        if with_deadline == 0 { 0.0 } else { missing as f64 / with_deadline as f64 };
    PressureSignal { queue_fill, slack_deficit, mem_fill: 0.0 }
}

/// Thresholds mapping pressure to profiles and shed decisions.
#[derive(Clone, Debug)]
pub struct ShedPolicy {
    /// Pressure at or above which admitted work is served
    /// [`DegradeProfile::Reduced`].
    pub reduce_at: f64,
    /// Pressure at or above which admitted work is served
    /// [`DegradeProfile::Economy`].
    pub economy_at: f64,
    /// Per-priority shed thresholds, indexed by [`Priority::index`]: a
    /// request is shed when pressure ≥ its class's threshold.
    /// Interactive defaults to `f64::INFINITY` — never shed.
    pub shed_at: [f64; 3],
    /// Multiplier applied to the requested tolerance under Reduced and
    /// Economy (≥ 1; a degraded tolerance is never *tighter* than asked).
    pub tol_relax: f64,
    /// Loosest tolerance degradation may reach.
    pub tol_ceiling: f64,
    /// Outer-iteration cap under Reduced.
    pub reduced_max_iters: usize,
    /// Outer-iteration cap under Economy.
    pub economy_max_iters: usize,
    /// `shift_levid` for Economy's FP16-until storage.
    pub economy_shift_levid: usize,
    /// Hard V-cycle budget under Economy.
    pub economy_max_vcycles: usize,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            reduce_at: 0.5,
            economy_at: 0.75,
            shed_at: [f64::INFINITY, 0.95, 0.7],
            tol_relax: 1e2,
            tol_ceiling: 1e-4,
            reduced_max_iters: 120,
            economy_max_iters: 60,
            economy_shift_levid: 2,
            economy_max_vcycles: 400,
        }
    }
}

impl ShedPolicy {
    /// A policy that never degrades and never sheds (the `run_batch`
    /// compatibility shape).
    pub fn disabled() -> Self {
        ShedPolicy {
            reduce_at: f64::INFINITY,
            economy_at: f64::INFINITY,
            shed_at: [f64::INFINITY; 3],
            ..Self::default()
        }
    }

    /// Profile admitted work is served at under this pressure.
    pub fn profile_for(&self, pressure: f64) -> DegradeProfile {
        if pressure >= self.economy_at {
            DegradeProfile::Economy
        } else if pressure >= self.reduce_at {
            DegradeProfile::Reduced
        } else {
            DegradeProfile::Full
        }
    }

    /// Whether this priority class is shed at this pressure.
    pub fn should_shed(&self, priority: Priority, pressure: f64) -> bool {
        pressure >= self.shed_at[priority.index()]
    }
}
