use std::time::Duration;

use fp16mg_core::MgConfig;
use fp16mg_krylov::{HealthPolicy, SolveError, SolveOptions};
use fp16mg_problems::{Problem, ProblemKind};

use crate::budget::{Budget, BudgetGuard, CancelToken};
use crate::ladder::{run_session, RetryPolicy, Rung, SolveRequest, SolverChoice};
use crate::pool::run_batch;

fn laplace(n: usize) -> Problem {
    ProblemKind::Laplace27.build(n)
}

/// Options that can never converge or stagnate: the solve runs until an
/// external bound (budget, deadline, cancellation) stops it.
fn endless_opts() -> SolveOptions {
    SolveOptions { tol: 0.0, health: HealthPolicy::disabled(), ..Default::default() }
}

mod budget {
    use super::*;
    use fp16mg_krylov::SolveControl;

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled() && t2.is_cancelled());
    }

    #[test]
    fn guard_reports_cancellation_first() {
        let budget = Budget { deadline: Some(Duration::ZERO), ..Budget::unlimited() };
        budget.cancel.cancel();
        let mut guard = BudgetGuard::arm(budget);
        assert!(matches!(guard.check(7), Err(SolveError::Cancelled { iter: 7 })));
    }

    #[test]
    fn guard_enforces_deadline() {
        let mut guard = BudgetGuard::arm(Budget::with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(guard.check(3), Err(SolveError::DeadlineExceeded { iter: 3, .. })));
    }

    #[test]
    fn clamp_iters_tracks_session_consumption() {
        let budget = Budget { max_iters: Some(10), ..Budget::unlimited() };
        let mut guard = BudgetGuard::arm(budget);
        assert_eq!(guard.clamp_iters(500), Some(10));
        guard.charge_iters(7);
        assert_eq!(guard.clamp_iters(500), Some(3));
        assert_eq!(guard.clamp_iters(2), Some(2));
        guard.charge_iters(3);
        assert_eq!(guard.clamp_iters(500), None);
        assert_eq!(guard.iters_done(), 10);
    }

    #[test]
    fn adopt_cycles_precharges_rebuilt_counters() {
        let budget = Budget { max_vcycles: Some(100), ..Budget::unlimited() };
        let mut guard = BudgetGuard::arm(budget);
        let c1 = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        guard.adopt_cycles(std::sync::Arc::clone(&c1));
        c1.fetch_add(42, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(guard.vcycles(), 42);
        // A fresh hierarchy (counter at zero) must not reset the total.
        let c2 = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        guard.adopt_cycles(c2);
        assert_eq!(guard.vcycles(), 42);
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy::default();
        for k in 0..12 {
            let b = p.backoff_for(k);
            assert_eq!(b, p.backoff_for(k), "same attempt number, same backoff");
            assert!(b <= p.max_backoff);
        }
        // Jitter must actually vary the early sleeps.
        assert_ne!(p.backoff_for(0), p.backoff_for(1));
    }
}

mod session {
    use super::*;

    #[test]
    fn clean_problem_converges_on_first_rung() {
        let req = SolveRequest::new("clean", laplace(8), MgConfig::d16());
        let out = run_session(&req);
        let result = out.result.expect("clean laplace27 must converge");
        assert!(result.converged());
        assert_eq!(out.report.rung_sequence(), vec![Rung::Retry]);
        assert!(out.report.attempts[0].converged);
        assert!(out.vcycles > 0, "V-cycle accounting must see the preconditioner");
        let x = out.solution.expect("converged session returns its solution");
        assert_eq!(x.len(), req.problem.matrix.rows());
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auto_solver_follows_problem_designation() {
        // oil is a GMRES problem (Table 3); Auto must route accordingly
        // and still converge through the runtime.
        let mut req = SolveRequest::new("oil", ProblemKind::Oil.build(6), MgConfig::d16());
        req.opts.tol = 1e-8;
        let out = run_session(&req);
        assert!(out.converged(), "oil via auto-GMRES: {:?}", out.result.err());
    }

    #[test]
    fn explicit_solver_choices_run() {
        for (choice, tol) in [(SolverChoice::BiCgStab, 1e-8), (SolverChoice::Richardson, 1e-6)] {
            let mut req = SolveRequest::new("choice", laplace(8), MgConfig::d16());
            req.solver = choice;
            req.opts.tol = tol;
            let out = run_session(&req);
            assert!(out.converged(), "{choice:?} failed: {:?}", out.result.err());
        }
    }

    #[test]
    fn pre_cancelled_session_ends_before_any_attempt() {
        let req = SolveRequest::new("cancelled", laplace(8), MgConfig::d16());
        req.budget.cancel.cancel();
        let out = run_session(&req);
        assert!(matches!(out.result, Err(SolveError::Cancelled { .. })));
        assert!(out.report.attempts.is_empty());
        assert!(out.solution.is_none());
    }

    #[test]
    fn deadline_interrupts_endless_solve() {
        let mut req = SolveRequest::new("deadline", laplace(8), MgConfig::d16());
        req.opts = endless_opts();
        req.budget = Budget::with_deadline(Duration::from_millis(15));
        let out = run_session(&req);
        assert!(
            matches!(out.result, Err(SolveError::DeadlineExceeded { .. })),
            "expected deadline, got {:?}",
            out.result
        );
        // An interrupt is final: fast early attempts may complete before
        // the deadline fires (the retained hierarchy makes retries cheap),
        // but the attempt the deadline cuts off must be the last — the
        // ladder never escalates past an interrupt.
        if let Some(pos) = out
            .report
            .attempts
            .iter()
            .position(|a| matches!(a.error, Some(SolveError::DeadlineExceeded { .. })))
        {
            assert_eq!(pos, out.report.attempts.len() - 1, "no attempts after the interrupt");
        }
    }

    #[test]
    fn iteration_budget_exhaustion_returns_unconverged() {
        let mut req = SolveRequest::new("iters", laplace(8), MgConfig::d16());
        req.opts = endless_opts();
        req.budget.max_iters = Some(3);
        let out = run_session(&req);
        assert!(
            matches!(out.result, Err(SolveError::Unconverged { iters: 3, .. })),
            "expected unconverged at 3 iters, got {:?}",
            out.result
        );
        assert_eq!(out.report.attempts.len(), 1, "no budget left for a second attempt");
        assert_eq!(out.iters, 3);
    }

    #[test]
    fn vcycle_budget_interrupts_mid_solve() {
        let mut req = SolveRequest::new("vcycles", laplace(8), MgConfig::d16());
        req.opts = endless_opts();
        req.budget.max_vcycles = Some(3);
        let out = run_session(&req);
        assert!(
            matches!(out.result, Err(SolveError::VcycleBudgetExceeded { budget: 3, .. })),
            "expected V-cycle budget, got {:?}",
            out.result
        );
        assert!(out.vcycles >= 3);
    }
}

mod pool {
    use super::*;

    #[test]
    fn batch_outcomes_keep_submission_order() {
        let requests: Vec<_> = (0..5)
            .map(|i| SolveRequest::new(format!("req-{i}"), laplace(6), MgConfig::d16()))
            .collect();
        let outcomes = run_batch(requests, 3);
        assert_eq!(outcomes.len(), 5);
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(out.index, i);
            assert_eq!(out.name, format!("req-{i}"));
            assert!(out.converged(), "request {i} failed: {:?}", out.result);
        }
    }

    #[test]
    fn empty_batch_and_oversized_worker_count_are_fine() {
        assert!(run_batch(Vec::new(), 8).is_empty());
        let outcomes = run_batch(vec![SolveRequest::new("solo", laplace(6), MgConfig::d16())], 64);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].converged());
    }
}

#[cfg(feature = "fault-inject")]
mod fault {
    use super::*;
    use crate::ladder::FaultPlan;
    use fp16mg_core::RecoveryPolicy;
    use fp16mg_sgdia::fault::FaultSpec;

    fn faulted_request(name: &str, sticky_until: Rung) -> SolveRequest {
        let mut base = MgConfig::d16();
        // Rung climbing is the subject here, so the in-hierarchy
        // self-healing (which would fix the F16 faults at rung 0) is off.
        base.recovery = RecoveryPolicy::disabled();
        let mut req = SolveRequest::new(name, laplace(8), base);
        req.policy = RetryPolicy {
            attempts: [1, 1, 1, 1, 1],
            backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        req.fault =
            Some(FaultPlan { spec: FaultSpec::inf(0.02, 0xfeed), flip: None, sticky_until });
        req
    }

    #[test]
    fn every_rung_is_reachable_and_fixes_its_fault_class() {
        for sticky in [Rung::PromoteNarrow, Rung::RebuildF32, Rung::RebuildF64] {
            let req = faulted_request("sticky", sticky);
            let out = run_session(&req);
            assert!(
                out.converged(),
                "rung {sticky:?} should have fixed the fault: {:?}",
                out.result.err()
            );
            let rungs = out.report.rung_sequence();
            // RepairLevel records no attempt here: without retained
            // parents (default policy) there is nothing it can repair,
            // so it is silently skipped on the way up.
            let expected: Vec<Rung> = Rung::ALL[..=sticky.index()]
                .iter()
                .copied()
                .filter(|r| *r != Rung::RepairLevel)
                .collect();
            assert_eq!(rungs, expected, "session must climb exactly to the first clean rung");
            assert_eq!(out.report.final_rung(), Some(sticky));
            for attempt in &out.report.attempts[..out.report.attempts.len() - 1] {
                assert!(!attempt.converged);
                assert!(attempt.error.as_ref().is_some_and(|e| e.retryable()));
            }
            assert!(out.report.attempts.last().unwrap().converged);
        }
    }

    #[test]
    fn promote_rung_records_eager_promotions() {
        let req = faulted_request("promote", Rung::PromoteNarrow);
        let out = run_session(&req);
        assert!(out.converged());
        let last = out.report.attempts.last().unwrap();
        assert_eq!(last.rung, Rung::PromoteNarrow);
        assert!(last.promotions > 0, "eager promotion must be visible in the attempt record");
    }

    #[test]
    fn ladder_exhaustion_returns_last_typed_error() {
        let mut req = faulted_request("exhausted", Rung::RebuildF64);
        // The only rung that would escape the fault is disabled, so the
        // ladder must exhaust and hand back the last rung's failure.
        req.policy.attempts = [1, 1, 1, 1, 0];
        let out = run_session(&req);
        let err = out.result.expect_err("every enabled rung is corrupted");
        assert!(
            matches!(err, SolveError::Breakdown(_) | SolveError::Stagnated(_)),
            "expected the last numerical failure, got {err:?}"
        );
        assert_eq!(
            out.report.rung_sequence(),
            vec![Rung::Retry, Rung::PromoteNarrow, Rung::RebuildF32]
        );
        assert!(out.solution.is_none());
    }

    #[test]
    fn retry_rung_retries_before_escalating() {
        let mut req = faulted_request("retry-twice", Rung::PromoteNarrow);
        req.policy.attempts = [2, 1, 1, 1, 1];
        let out = run_session(&req);
        assert!(out.converged());
        assert_eq!(out.report.rung_sequence(), vec![Rung::Retry, Rung::Retry, Rung::PromoteNarrow]);
    }

    #[test]
    fn pool_isolates_panicking_request() {
        let mut requests: Vec<_> = (0..4)
            .map(|i| SolveRequest::new(format!("clean-{i}"), laplace(6), MgConfig::d16()))
            .collect();
        requests[1].panic_in_worker = true;
        requests[1].name = "poisoned".into();
        let outcomes = run_batch(requests, 2);
        assert_eq!(outcomes.len(), 4);
        for (i, out) in outcomes.iter().enumerate() {
            if i == 1 {
                let err = out.result.as_ref().expect_err("injected panic must surface");
                match err {
                    SolveError::WorkerPanicked { message } => {
                        assert!(message.contains("injected worker panic"), "message: {message}");
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
            } else {
                assert!(out.converged(), "request {i} must survive its neighbor's panic");
            }
        }
    }
}

#[cfg(feature = "fault-inject")]
mod integrity {
    use super::*;
    use crate::ladder::{FaultPlan, LevelBitFlip};
    use fp16mg_core::{IntegrityPolicy, RecoveryPolicy, RepairTrigger};
    use fp16mg_sgdia::fault::FaultSpec;

    /// A request carrying a single targeted bit flip into a mid-hierarchy
    /// FP16 level, with full ABFT armed and self-healing promotion off so
    /// the sentinels — not the promotion logic — must save the solve.
    fn flipped_request(flip: LevelBitFlip, verify_on_anomaly: bool) -> SolveRequest {
        let mut base = MgConfig::d16();
        base.recovery = RecoveryPolicy::disabled();
        base.integrity = IntegrityPolicy::armed(0);
        base.integrity.verify_on_anomaly = verify_on_anomaly;
        let mut req = SolveRequest::new("flip", laplace(12), base);
        req.policy = RetryPolicy {
            attempts: [1, 1, 1, 1, 1],
            backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        // Richardson (multigrid as the solver) is maximally sensitive to
        // a corrupted level — a Krylov method would partially absorb the
        // perturbation. The modest cap makes the corrupted attempt fail
        // retryably (Unconverged) even when the flip only slows
        // convergence instead of breaking the iteration outright.
        req.solver = SolverChoice::Richardson;
        req.opts.tol = 1e-6;
        req.opts.max_iters = 40;
        req.fault = Some(FaultPlan {
            spec: FaultSpec::none(0x0b17_f11b),
            flip: Some(flip),
            sticky_until: Rung::PromoteNarrow,
        });
        req
    }

    #[test]
    fn bit_flip_is_localized_and_repaired_without_rebuild() {
        // Exponent-MSB upset in an off-diagonal tap of mid-hierarchy
        // level 1 (laplace(12) has three levels; level 1 is F16). The
        // corrupted retry fails; the repair-level rung's sentinel sweep
        // localizes the flip to (level 1, tap 0), re-truncates that one
        // level from its retained f64 parent, and the re-solve converges
        // — no promotion, no rebuild.
        let flip = LevelBitFlip { level: 1, tap: 0, bit: 14 };
        let req = flipped_request(flip, false);
        let out = run_session(&req);
        assert!(out.converged(), "repair must rescue the solve: {:?}", out.result.err());
        assert_eq!(
            out.report.rung_sequence(),
            vec![Rung::Retry, Rung::RepairLevel],
            "repair-level must fix the flip without reaching a rebuild rung"
        );
        assert_eq!(out.report.repairs.len(), 1, "exactly one level repaired");
        let ev = &out.report.repairs[0];
        assert_eq!(ev.level, 1, "repair localized to the corrupted level");
        assert_eq!(ev.taps, vec![0], "repair localized to the corrupted plane");
        assert_eq!(ev.trigger, RepairTrigger::Requested);
        let last = out.report.attempts.last().unwrap();
        assert_eq!(last.rung, Rung::RepairLevel);
        assert_eq!(last.repairs, 1);
        assert!(last.converged);
    }

    #[test]
    fn anomaly_hook_repairs_during_the_solve() {
        // With verify_on_anomaly armed, the in-solve hook mends the
        // hierarchy the moment the solver reports a breakdown or stall;
        // the repair-level rung then gives the mended hierarchy its
        // clean re-solve. Either way, no rebuild rung is reached.
        let flip = LevelBitFlip { level: 1, tap: 0, bit: 14 };
        let req = flipped_request(flip, true);
        let out = run_session(&req);
        assert!(out.converged(), "{:?}", out.result.err());
        assert!(!out.report.repairs.is_empty(), "the flip must be repaired somewhere");
        assert!(
            out.report.repairs.iter().all(|e| e.level == 1 && e.taps == vec![0]),
            "every repair must localize to the flipped plane: {:?}",
            out.report.repairs
        );
        assert!(
            out.report.final_rung() <= Some(Rung::RepairLevel),
            "no rebuild may be needed: {}",
            out.report.summary()
        );
    }

    #[test]
    fn integrity_sweeps_charge_the_session_vcycle_budget() {
        // Same clean problem with and without a per-cycle verification
        // sweep: the sweeps must be visible in the session's V-cycle
        // accounting (regression guard — uncharged sweeps would run
        // outside deadline and max_vcycles control).
        let mut plain = SolveRequest::new("plain", laplace(8), MgConfig::d16());
        plain.opts.tol = 1e-8;
        let base_cycles = run_session(&plain).vcycles;

        let mut cfg = MgConfig::d16();
        cfg.integrity = IntegrityPolicy::armed(1); // verify after every cycle
        let mut checked = SolveRequest::new("checked", laplace(8), cfg);
        checked.opts.tol = 1e-8;
        let out = run_session(&checked);
        assert!(out.converged());
        assert!(
            out.vcycles > base_cycles,
            "verification sweeps must charge the cycle counter: {} vs {}",
            out.vcycles,
            base_cycles
        );
    }
}

mod audit_gate {
    use super::*;
    use crate::ladder::AuditSnapshot;

    /// A Laplace problem rescaled so every coefficient sits below the
    /// FP16 normal range: in-range for the overflow check (so setup never
    /// scales it) but a guaranteed ~100% underflow loss in F16 storage.
    fn underflowing_problem(n: usize) -> fp16mg_problems::Problem {
        let mut p = laplace(n);
        for v in p.matrix.data_mut() {
            *v *= 1.0e-8;
        }
        p
    }

    #[test]
    fn healthy_problem_passes_the_gate_and_stays_on_rung_zero() {
        let req = SolveRequest::new("gated-clean", laplace(8), MgConfig::d16());
        let out = run_session(&req);
        assert!(out.converged());
        let audit: &AuditSnapshot = out.report.audit.as_ref().expect("gate must record evidence");
        assert!(!audit.skipped_retry);
        assert!(audit.reason.is_none());
        assert!(!audit.levels.is_empty(), "d16 has 16-bit levels to audit");
        for (_, a) in &audit.levels {
            assert!(a.overflow_free());
        }
        // The gate's build is handed to the first attempt, not discarded:
        // the session still converges on the first rung with one attempt.
        assert_eq!(out.report.rung_sequence(), vec![Rung::Retry]);
    }

    #[test]
    fn doomed_underflow_starts_ladder_at_promote() {
        let req = SolveRequest::new("gated-doomed", underflowing_problem(8), MgConfig::d16());
        let out = run_session(&req);
        assert!(out.converged(), "promotion must rescue the solve: {:?}", out.result.err());
        let audit = out.report.audit.as_ref().unwrap();
        assert!(audit.skipped_retry, "gate must skip the doomed mixed-precision rung");
        let reason = audit.reason.as_deref().unwrap();
        assert!(reason.contains("underflow"), "reason: {reason}");
        assert!(
            audit.levels.iter().any(|(_, a)| a.underflow_loss_fraction() > 0.9),
            "evidence must show the underflow that justified the skip"
        );
        // No rung-0 attempt was burned.
        let rungs = out.report.rung_sequence();
        assert!(!rungs.contains(&Rung::Retry), "rungs: {rungs:?}");
        assert_eq!(rungs.first(), Some(&Rung::PromoteNarrow));
    }

    #[test]
    fn gate_can_be_disabled() {
        let mut req = SolveRequest::new("ungated", laplace(8), MgConfig::d16());
        req.policy.audit_gate = false;
        let out = run_session(&req);
        assert!(out.converged());
        assert!(out.report.audit.is_none());
    }

    #[test]
    fn gate_respects_a_looser_threshold() {
        // With the threshold at 1.0 nothing short of saturation is
        // "doomed": the gate must record the (terrible) audit but still
        // let rung 0 try.
        let mut req = SolveRequest::new("loose", underflowing_problem(8), MgConfig::d16());
        req.policy.audit_max_underflow = 1.0;
        req.policy.attempts = [1, 1, 1, 1, 1];
        let out = run_session(&req);
        let audit = out.report.audit.as_ref().unwrap();
        assert!(!audit.skipped_retry);
        let rungs = out.report.rung_sequence();
        assert_eq!(rungs.first(), Some(&Rung::Retry), "rungs: {rungs:?}");
    }
}
