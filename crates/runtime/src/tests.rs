use std::time::Duration;

use fp16mg_core::MgConfig;
use fp16mg_krylov::{HealthPolicy, SolveError, SolveOptions};
use fp16mg_problems::{Problem, ProblemKind};

use crate::budget::{Budget, BudgetGuard, CancelToken};
use crate::ladder::{run_session, RetryPolicy, Rung, SolveRequest, SolverChoice};
use crate::pool::run_batch;

fn laplace(n: usize) -> Problem {
    ProblemKind::Laplace27.build(n)
}

/// Options that can never converge or stagnate: the solve runs until an
/// external bound (budget, deadline, cancellation) stops it.
fn endless_opts() -> SolveOptions {
    SolveOptions { tol: 0.0, health: HealthPolicy::disabled(), ..Default::default() }
}

mod budget {
    use super::*;
    use fp16mg_krylov::SolveControl;

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled() && t2.is_cancelled());
    }

    #[test]
    fn guard_reports_cancellation_first() {
        let budget = Budget { deadline: Some(Duration::ZERO), ..Budget::unlimited() };
        budget.cancel.cancel();
        let mut guard = BudgetGuard::arm(budget);
        assert!(matches!(guard.check(7), Err(SolveError::Cancelled { iter: 7 })));
    }

    #[test]
    fn guard_enforces_deadline() {
        let mut guard = BudgetGuard::arm(Budget::with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(guard.check(3), Err(SolveError::DeadlineExceeded { iter: 3, .. })));
    }

    #[test]
    fn clamp_iters_tracks_session_consumption() {
        let budget = Budget { max_iters: Some(10), ..Budget::unlimited() };
        let mut guard = BudgetGuard::arm(budget);
        assert_eq!(guard.clamp_iters(500), Some(10));
        guard.charge_iters(7);
        assert_eq!(guard.clamp_iters(500), Some(3));
        assert_eq!(guard.clamp_iters(2), Some(2));
        guard.charge_iters(3);
        assert_eq!(guard.clamp_iters(500), None);
        assert_eq!(guard.iters_done(), 10);
    }

    #[test]
    fn adopt_cycles_precharges_rebuilt_counters() {
        let budget = Budget { max_vcycles: Some(100), ..Budget::unlimited() };
        let mut guard = BudgetGuard::arm(budget);
        let c1 = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        guard.adopt_cycles(std::sync::Arc::clone(&c1));
        c1.fetch_add(42, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(guard.vcycles(), 42);
        // A fresh hierarchy (counter at zero) must not reset the total.
        let c2 = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        guard.adopt_cycles(c2);
        assert_eq!(guard.vcycles(), 42);
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy::default();
        for k in 0..12 {
            let b = p.backoff_for(k);
            assert_eq!(b, p.backoff_for(k), "same attempt number, same backoff");
            assert!(b <= p.max_backoff);
        }
        // Jitter must actually vary the early sleeps.
        assert_ne!(p.backoff_for(0), p.backoff_for(1));
    }
}

mod session {
    use super::*;

    #[test]
    fn clean_problem_converges_on_first_rung() {
        let req = SolveRequest::new("clean", laplace(8), MgConfig::d16());
        let out = run_session(&req);
        let result = out.result.expect("clean laplace27 must converge");
        assert!(result.converged());
        assert_eq!(out.report.rung_sequence(), vec![Rung::Retry]);
        assert!(out.report.attempts[0].converged);
        assert!(out.vcycles > 0, "V-cycle accounting must see the preconditioner");
        let x = out.solution.expect("converged session returns its solution");
        assert_eq!(x.len(), req.problem.matrix.rows());
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auto_solver_follows_problem_designation() {
        // oil is a GMRES problem (Table 3); Auto must route accordingly
        // and still converge through the runtime.
        let mut req = SolveRequest::new("oil", ProblemKind::Oil.build(6), MgConfig::d16());
        req.opts.tol = 1e-8;
        let out = run_session(&req);
        assert!(out.converged(), "oil via auto-GMRES: {:?}", out.result.err());
    }

    #[test]
    fn explicit_solver_choices_run() {
        for (choice, tol) in [(SolverChoice::BiCgStab, 1e-8), (SolverChoice::Richardson, 1e-6)] {
            let mut req = SolveRequest::new("choice", laplace(8), MgConfig::d16());
            req.solver = choice;
            req.opts.tol = tol;
            let out = run_session(&req);
            assert!(out.converged(), "{choice:?} failed: {:?}", out.result.err());
        }
    }

    #[test]
    fn pre_cancelled_session_ends_before_any_attempt() {
        let req = SolveRequest::new("cancelled", laplace(8), MgConfig::d16());
        req.budget.cancel.cancel();
        let out = run_session(&req);
        assert!(matches!(out.result, Err(SolveError::Cancelled { .. })));
        assert!(out.report.attempts.is_empty());
        assert!(out.solution.is_none());
    }

    #[test]
    fn deadline_interrupts_endless_solve() {
        let mut req = SolveRequest::new("deadline", laplace(8), MgConfig::d16());
        req.opts = endless_opts();
        req.budget = Budget::with_deadline(Duration::from_millis(15));
        let out = run_session(&req);
        assert!(
            matches!(out.result, Err(SolveError::DeadlineExceeded { .. })),
            "expected deadline, got {:?}",
            out.result
        );
        // An interrupt is final: fast early attempts may complete before
        // the deadline fires (the retained hierarchy makes retries cheap),
        // but the attempt the deadline cuts off must be the last — the
        // ladder never escalates past an interrupt.
        if let Some(pos) = out
            .report
            .attempts
            .iter()
            .position(|a| matches!(a.error, Some(SolveError::DeadlineExceeded { .. })))
        {
            assert_eq!(pos, out.report.attempts.len() - 1, "no attempts after the interrupt");
        }
    }

    #[test]
    fn iteration_budget_exhaustion_returns_unconverged() {
        let mut req = SolveRequest::new("iters", laplace(8), MgConfig::d16());
        req.opts = endless_opts();
        req.budget.max_iters = Some(3);
        let out = run_session(&req);
        assert!(
            matches!(out.result, Err(SolveError::Unconverged { iters: 3, .. })),
            "expected unconverged at 3 iters, got {:?}",
            out.result
        );
        assert_eq!(out.report.attempts.len(), 1, "no budget left for a second attempt");
        assert_eq!(out.iters, 3);
    }

    #[test]
    fn vcycle_budget_interrupts_mid_solve() {
        let mut req = SolveRequest::new("vcycles", laplace(8), MgConfig::d16());
        req.opts = endless_opts();
        req.budget.max_vcycles = Some(3);
        let out = run_session(&req);
        assert!(
            matches!(out.result, Err(SolveError::VcycleBudgetExceeded { budget: 3, .. })),
            "expected V-cycle budget, got {:?}",
            out.result
        );
        assert!(out.vcycles >= 3);
    }
}

mod pool {
    use super::*;

    #[test]
    fn batch_outcomes_keep_submission_order() {
        let requests: Vec<_> = (0..5)
            .map(|i| SolveRequest::new(format!("req-{i}"), laplace(6), MgConfig::d16()))
            .collect();
        let outcomes = run_batch(requests, 3);
        assert_eq!(outcomes.len(), 5);
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(out.index, i);
            assert_eq!(out.name, format!("req-{i}"));
            assert!(out.converged(), "request {i} failed: {:?}", out.result);
        }
    }

    #[test]
    fn empty_batch_and_oversized_worker_count_are_fine() {
        assert!(run_batch(Vec::new(), 8).is_empty());
        let outcomes = run_batch(vec![SolveRequest::new("solo", laplace(6), MgConfig::d16())], 64);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].converged());
    }

    #[test]
    fn zero_workers_still_serves_on_one_worker() {
        // Regression: `workers == 0` must clamp to one worker, not hang
        // or panic, and an empty batch with zero workers is just empty.
        assert!(run_batch(Vec::new(), 0).is_empty());
        let outcomes = run_batch(vec![SolveRequest::new("zero", laplace(6), MgConfig::d16())], 0);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].converged(), "{:?}", outcomes[0].result);
    }

    #[test]
    fn run_batch_compatibility_admits_everything_at_full_quality() {
        let requests: Vec<_> = (0..6)
            .map(|i| SolveRequest::new(format!("compat-{i}"), laplace(6), MgConfig::d16()))
            .collect();
        for out in run_batch(requests, 2) {
            assert!(out.rejection().is_none(), "run_batch must never reject");
            assert!(!out.degraded(), "run_batch must never degrade");
            assert!(out.degrades.is_empty());
            assert!(!out.probe);
        }
    }
}

#[cfg(feature = "fault-inject")]
mod fault {
    use super::*;
    use crate::ladder::FaultPlan;
    use fp16mg_core::RecoveryPolicy;
    use fp16mg_sgdia::fault::FaultSpec;

    fn faulted_request(name: &str, sticky_until: Rung) -> SolveRequest {
        let mut base = MgConfig::d16();
        // Rung climbing is the subject here, so the in-hierarchy
        // self-healing (which would fix the F16 faults at rung 0) is off.
        base.recovery = RecoveryPolicy::disabled();
        let mut req = SolveRequest::new(name, laplace(8), base);
        req.policy = RetryPolicy {
            attempts: [1, 1, 1, 1, 1],
            backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        req.fault =
            Some(FaultPlan { spec: FaultSpec::inf(0.02, 0xfeed), flip: None, sticky_until });
        req
    }

    #[test]
    fn every_rung_is_reachable_and_fixes_its_fault_class() {
        for sticky in [Rung::PromoteNarrow, Rung::RebuildF32, Rung::RebuildF64] {
            let req = faulted_request("sticky", sticky);
            let out = run_session(&req);
            assert!(
                out.converged(),
                "rung {sticky:?} should have fixed the fault: {:?}",
                out.result.err()
            );
            let rungs = out.report.rung_sequence();
            // RepairLevel records no attempt here: without retained
            // parents (default policy) there is nothing it can repair,
            // so it is silently skipped on the way up.
            let expected: Vec<Rung> = Rung::ALL[..=sticky.index()]
                .iter()
                .copied()
                .filter(|r| *r != Rung::RepairLevel)
                .collect();
            assert_eq!(rungs, expected, "session must climb exactly to the first clean rung");
            assert_eq!(out.report.final_rung(), Some(sticky));
            for attempt in &out.report.attempts[..out.report.attempts.len() - 1] {
                assert!(!attempt.converged);
                assert!(attempt.error.as_ref().is_some_and(|e| e.retryable()));
            }
            assert!(out.report.attempts.last().unwrap().converged);
        }
    }

    #[test]
    fn promote_rung_records_eager_promotions() {
        let req = faulted_request("promote", Rung::PromoteNarrow);
        let out = run_session(&req);
        assert!(out.converged());
        let last = out.report.attempts.last().unwrap();
        assert_eq!(last.rung, Rung::PromoteNarrow);
        assert!(last.promotions > 0, "eager promotion must be visible in the attempt record");
    }

    #[test]
    fn ladder_exhaustion_returns_last_typed_error() {
        let mut req = faulted_request("exhausted", Rung::RebuildF64);
        // The only rung that would escape the fault is disabled, so the
        // ladder must exhaust and hand back the last rung's failure.
        req.policy.attempts = [1, 1, 1, 1, 0];
        let out = run_session(&req);
        let err = out.result.expect_err("every enabled rung is corrupted");
        assert!(
            matches!(err, SolveError::Breakdown(_) | SolveError::Stagnated(_)),
            "expected the last numerical failure, got {err:?}"
        );
        assert_eq!(
            out.report.rung_sequence(),
            vec![Rung::Retry, Rung::PromoteNarrow, Rung::RebuildF32]
        );
        assert!(out.solution.is_none());
    }

    #[test]
    fn retry_rung_retries_before_escalating() {
        let mut req = faulted_request("retry-twice", Rung::PromoteNarrow);
        req.policy.attempts = [2, 1, 1, 1, 1];
        let out = run_session(&req);
        assert!(out.converged());
        assert_eq!(out.report.rung_sequence(), vec![Rung::Retry, Rung::Retry, Rung::PromoteNarrow]);
    }

    #[test]
    fn pool_isolates_panicking_request() {
        let mut requests: Vec<_> = (0..4)
            .map(|i| SolveRequest::new(format!("clean-{i}"), laplace(6), MgConfig::d16()))
            .collect();
        requests[1].panic_in_worker = true;
        requests[1].name = "poisoned".into();
        let outcomes = run_batch(requests, 2);
        assert_eq!(outcomes.len(), 4);
        for (i, out) in outcomes.iter().enumerate() {
            if i == 1 {
                let err = out.result.as_ref().expect_err("injected panic must surface");
                match err {
                    crate::pool::ServeError::Session(SolveError::WorkerPanicked { message }) => {
                        assert!(message.contains("injected worker panic"), "message: {message}");
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
            } else {
                assert!(out.converged(), "request {i} must survive its neighbor's panic");
            }
        }
    }
}

#[cfg(feature = "fault-inject")]
mod integrity {
    use super::*;
    use crate::ladder::{FaultPlan, LevelBitFlip};
    use fp16mg_core::{IntegrityPolicy, RecoveryPolicy, RepairTrigger};
    use fp16mg_sgdia::fault::FaultSpec;

    /// A request carrying a single targeted bit flip into a mid-hierarchy
    /// FP16 level, with full ABFT armed and self-healing promotion off so
    /// the sentinels — not the promotion logic — must save the solve.
    fn flipped_request(flip: LevelBitFlip, verify_on_anomaly: bool) -> SolveRequest {
        let mut base = MgConfig::d16();
        base.recovery = RecoveryPolicy::disabled();
        base.integrity = IntegrityPolicy::armed(0);
        base.integrity.verify_on_anomaly = verify_on_anomaly;
        let mut req = SolveRequest::new("flip", laplace(12), base);
        req.policy = RetryPolicy {
            attempts: [1, 1, 1, 1, 1],
            backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        // Richardson (multigrid as the solver) is maximally sensitive to
        // a corrupted level — a Krylov method would partially absorb the
        // perturbation. The modest cap makes the corrupted attempt fail
        // retryably (Unconverged) even when the flip only slows
        // convergence instead of breaking the iteration outright.
        req.solver = SolverChoice::Richardson;
        req.opts.tol = 1e-6;
        req.opts.max_iters = 40;
        req.fault = Some(FaultPlan {
            spec: FaultSpec::none(0x0b17_f11b),
            flip: Some(flip),
            sticky_until: Rung::PromoteNarrow,
        });
        req
    }

    #[test]
    fn bit_flip_is_localized_and_repaired_without_rebuild() {
        // Exponent-MSB upset in an off-diagonal tap of mid-hierarchy
        // level 1 (laplace(12) has three levels; level 1 is F16). The
        // corrupted retry fails; the repair-level rung's sentinel sweep
        // localizes the flip to (level 1, tap 0), re-truncates that one
        // level from its retained f64 parent, and the re-solve converges
        // — no promotion, no rebuild.
        let flip = LevelBitFlip { level: 1, tap: 0, bit: 14 };
        let req = flipped_request(flip, false);
        let out = run_session(&req);
        assert!(out.converged(), "repair must rescue the solve: {:?}", out.result.err());
        assert_eq!(
            out.report.rung_sequence(),
            vec![Rung::Retry, Rung::RepairLevel],
            "repair-level must fix the flip without reaching a rebuild rung"
        );
        assert_eq!(out.report.repairs.len(), 1, "exactly one level repaired");
        let ev = &out.report.repairs[0];
        assert_eq!(ev.level, 1, "repair localized to the corrupted level");
        assert_eq!(ev.taps, vec![0], "repair localized to the corrupted plane");
        assert_eq!(ev.trigger, RepairTrigger::Requested);
        let last = out.report.attempts.last().unwrap();
        assert_eq!(last.rung, Rung::RepairLevel);
        assert_eq!(last.repairs, 1);
        assert!(last.converged);
    }

    #[test]
    fn anomaly_hook_repairs_during_the_solve() {
        // With verify_on_anomaly armed, the in-solve hook mends the
        // hierarchy the moment the solver reports a breakdown or stall;
        // the repair-level rung then gives the mended hierarchy its
        // clean re-solve. Either way, no rebuild rung is reached.
        let flip = LevelBitFlip { level: 1, tap: 0, bit: 14 };
        let req = flipped_request(flip, true);
        let out = run_session(&req);
        assert!(out.converged(), "{:?}", out.result.err());
        assert!(!out.report.repairs.is_empty(), "the flip must be repaired somewhere");
        assert!(
            out.report.repairs.iter().all(|e| e.level == 1 && e.taps == vec![0]),
            "every repair must localize to the flipped plane: {:?}",
            out.report.repairs
        );
        assert!(
            out.report.final_rung() <= Some(Rung::RepairLevel),
            "no rebuild may be needed: {}",
            out.report.summary()
        );
    }

    #[test]
    fn integrity_sweeps_charge_the_session_vcycle_budget() {
        // Same clean problem with and without a per-cycle verification
        // sweep: the sweeps must be visible in the session's V-cycle
        // accounting (regression guard — uncharged sweeps would run
        // outside deadline and max_vcycles control).
        let mut plain = SolveRequest::new("plain", laplace(8), MgConfig::d16());
        plain.opts.tol = 1e-8;
        let base_cycles = run_session(&plain).vcycles;

        let mut cfg = MgConfig::d16();
        cfg.integrity = IntegrityPolicy::armed(1); // verify after every cycle
        let mut checked = SolveRequest::new("checked", laplace(8), cfg);
        checked.opts.tol = 1e-8;
        let out = run_session(&checked);
        assert!(out.converged());
        assert!(
            out.vcycles > base_cycles,
            "verification sweeps must charge the cycle counter: {} vs {}",
            out.vcycles,
            base_cycles
        );
    }
}

mod audit_gate {
    use super::*;
    use crate::ladder::AuditSnapshot;

    /// A Laplace problem rescaled so every coefficient sits below the
    /// FP16 normal range: in-range for the overflow check (so setup never
    /// scales it) but a guaranteed ~100% underflow loss in F16 storage.
    fn underflowing_problem(n: usize) -> fp16mg_problems::Problem {
        let mut p = laplace(n);
        for v in p.matrix.data_mut() {
            *v *= 1.0e-8;
        }
        p
    }

    #[test]
    fn healthy_problem_passes_the_gate_and_stays_on_rung_zero() {
        let req = SolveRequest::new("gated-clean", laplace(8), MgConfig::d16());
        let out = run_session(&req);
        assert!(out.converged());
        let audit: &AuditSnapshot = out.report.audit.as_ref().expect("gate must record evidence");
        assert!(!audit.skipped_retry);
        assert!(audit.reason.is_none());
        assert!(!audit.levels.is_empty(), "d16 has 16-bit levels to audit");
        for (_, a) in &audit.levels {
            assert!(a.overflow_free());
        }
        // The gate's build is handed to the first attempt, not discarded:
        // the session still converges on the first rung with one attempt.
        assert_eq!(out.report.rung_sequence(), vec![Rung::Retry]);
    }

    #[test]
    fn doomed_underflow_starts_ladder_at_promote() {
        let req = SolveRequest::new("gated-doomed", underflowing_problem(8), MgConfig::d16());
        let out = run_session(&req);
        assert!(out.converged(), "promotion must rescue the solve: {:?}", out.result.err());
        let audit = out.report.audit.as_ref().unwrap();
        assert!(audit.skipped_retry, "gate must skip the doomed mixed-precision rung");
        let reason = audit.reason.as_deref().unwrap();
        assert!(reason.contains("underflow"), "reason: {reason}");
        assert!(
            audit.levels.iter().any(|(_, a)| a.underflow_loss_fraction() > 0.9),
            "evidence must show the underflow that justified the skip"
        );
        // No rung-0 attempt was burned.
        let rungs = out.report.rung_sequence();
        assert!(!rungs.contains(&Rung::Retry), "rungs: {rungs:?}");
        assert_eq!(rungs.first(), Some(&Rung::PromoteNarrow));
    }

    #[test]
    fn gate_can_be_disabled() {
        let mut req = SolveRequest::new("ungated", laplace(8), MgConfig::d16());
        req.policy.audit_gate = false;
        let out = run_session(&req);
        assert!(out.converged());
        assert!(out.report.audit.is_none());
    }

    #[test]
    fn gate_respects_a_looser_threshold() {
        // With the threshold at 1.0 nothing short of saturation is
        // "doomed": the gate must record the (terrible) audit but still
        // let rung 0 try.
        let mut req = SolveRequest::new("loose", underflowing_problem(8), MgConfig::d16());
        req.policy.audit_max_underflow = 1.0;
        req.policy.attempts = [1, 1, 1, 1, 1];
        let out = run_session(&req);
        let audit = out.report.audit.as_ref().unwrap();
        assert!(!audit.skipped_retry);
        let rungs = out.report.rung_sequence();
        assert_eq!(rungs.first(), Some(&Rung::Retry), "rungs: {rungs:?}");
    }
}

mod admission {
    use crate::admission::{AdmissionConfig, AdmissionError, AdmissionQueue, Priority};
    use std::time::Duration;

    fn small() -> AdmissionConfig {
        AdmissionConfig {
            capacity: 4,
            per_priority: [3, 3, 1],
            est_service: Duration::from_millis(10),
        }
    }

    #[test]
    fn total_capacity_bounds_the_queue() {
        let mut q = AdmissionQueue::new(small());
        for _ in 0..3 {
            q.try_reserve(Priority::Interactive).unwrap();
        }
        q.try_reserve(Priority::Batch).unwrap();
        assert_eq!(q.depth(), 4);
        let err = q.try_reserve(Priority::Batch).unwrap_err();
        assert!(
            matches!(err, AdmissionError::QueueFull { capacity: 4, depth: 4, .. }),
            "expected the total bound, got {err:?}"
        );
    }

    #[test]
    fn per_priority_cap_binds_before_total() {
        let mut q = AdmissionQueue::new(small());
        q.try_reserve(Priority::BestEffort).unwrap();
        let err = q.try_reserve(Priority::BestEffort).unwrap_err();
        assert!(
            matches!(
                err,
                AdmissionError::QueueFull { priority: Priority::BestEffort, capacity: 1, depth: 1 }
            ),
            "expected the best-effort reservation bound, got {err:?}"
        );
        // Other classes still have room.
        q.try_reserve(Priority::Interactive).unwrap();
    }

    #[test]
    fn release_frees_the_slot() {
        let mut q = AdmissionQueue::new(small());
        q.try_reserve(Priority::BestEffort).unwrap();
        assert_eq!(q.depth_of(Priority::BestEffort), 1);
        q.release(Priority::BestEffort);
        assert_eq!(q.depth(), 0);
        q.try_reserve(Priority::BestEffort).unwrap();
        // Releasing an empty class saturates at zero.
        q.release(Priority::Interactive);
        assert_eq!(q.depth_of(Priority::Interactive), 0);
    }

    #[test]
    fn fill_fraction_tracks_depth() {
        let mut q = AdmissionQueue::new(small());
        assert_eq!(q.fill(), 0.0);
        q.try_reserve(Priority::Interactive).unwrap();
        q.try_reserve(Priority::Batch).unwrap();
        assert!((q.fill() - 0.5).abs() < 1e-12);
        let degenerate = AdmissionQueue::new(AdmissionConfig { capacity: 0, ..small() });
        assert_eq!(degenerate.fill(), 1.0, "a zero-capacity queue is always full");
    }

    #[test]
    fn priority_order_is_most_to_least_protected() {
        assert_eq!(
            Priority::ALL.map(Priority::index),
            [0, 1, 2],
            "shed order and per-priority arrays key off this"
        );
        assert_eq!(Priority::default(), Priority::Batch);
    }
}

mod breaker {
    use crate::breaker::{
        BreakerConfig, BreakerDecision, BreakerRegistry, BreakerState, CircuitBreaker,
    };

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 3,
            failure_threshold: 0.5,
            cooldown: 2,
            cooldown_jitter: 0,
            probes: 1,
            probe_successes: 1,
            ..BreakerConfig::default()
        }
    }

    /// Feeds failures until the breaker opens.
    fn tripped() -> CircuitBreaker {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record(false, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        b
    }

    #[test]
    fn closed_trips_only_past_min_samples_and_threshold() {
        let mut b = CircuitBreaker::new(cfg());
        b.record(false, false);
        b.record(false, false);
        assert_eq!(b.state(), BreakerState::Closed, "two samples are below min_samples");
        b.record(true, false);
        assert_eq!(b.state(), BreakerState::Open, "2/3 failures crosses the 0.5 threshold");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn healthy_window_never_trips() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..20 {
            // One failure in four stays below the threshold.
            b.record(i % 4 != 0, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn open_rejects_then_counts_down_to_a_half_open_probe() {
        let mut b = tripped();
        match b.on_admission_attempt() {
            BreakerDecision::Reject { failure_rate, cooldown_remaining } => {
                assert_eq!(cooldown_remaining, 1);
                assert!(failure_rate >= 0.5);
            }
            other => panic!("open breaker must reject, got {other:?}"),
        }
        // The attempt completing the cooldown *is* the probe.
        assert_eq!(b.on_admission_attempt(), BreakerDecision::Admit { probe: true });
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_grants_only_the_probe_quota() {
        let mut b = tripped();
        b.on_admission_attempt();
        assert_eq!(b.on_admission_attempt(), BreakerDecision::Admit { probe: true });
        assert_eq!(
            b.on_admission_attempt(),
            BreakerDecision::Reject { failure_rate: 1.0, cooldown_remaining: 0 },
            "the probe quota is spent; everything else waits for its verdict"
        );
    }

    #[test]
    fn probe_success_closes_and_clears_the_window() {
        let mut b = tripped();
        b.on_admission_attempt();
        b.on_admission_attempt();
        b.record(true, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failure_rate(), 0.0, "the poisoned window must not linger after recovery");
        assert_eq!(b.on_admission_attempt(), BreakerDecision::Admit { probe: false });
    }

    #[test]
    fn probe_failure_reopens_for_another_cooldown() {
        let mut b = tripped();
        b.on_admission_attempt();
        b.on_admission_attempt();
        b.record(false, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(
            matches!(b.on_admission_attempt(), BreakerDecision::Reject { .. }),
            "a failed probe must not leave the class admitting traffic"
        );
    }

    #[test]
    fn stragglers_are_ignored_while_not_closed() {
        // A non-probe session that was in flight when the breaker tripped
        // must not perturb the cooldown or the half-open bookkeeping.
        let mut b = tripped();
        b.record(false, false);
        b.record(true, false);
        assert_eq!(b.state(), BreakerState::Open);
        b.on_admission_attempt();
        b.on_admission_attempt();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(true, false); // straggler during half-open
        assert_eq!(b.state(), BreakerState::HalfOpen, "only the probe verdict decides");
        b.record(true, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_jitter_is_deterministic() {
        let jittered = BreakerConfig { cooldown_jitter: 3, ..cfg() };
        let run = || {
            let mut b = CircuitBreaker::new(jittered.clone());
            for _ in 0..3 {
                b.record(false, false);
            }
            let mut rejects = 0;
            while matches!(b.on_admission_attempt(), BreakerDecision::Reject { .. }) {
                rejects += 1;
                assert!(rejects < 100, "cooldown must terminate");
            }
            rejects
        };
        assert_eq!(run(), run(), "same seed, same trip count, same cooldown");
    }

    #[test]
    fn disabled_breaker_admits_everything_and_records_nothing() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..10 {
            b.record(false, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.on_admission_attempt(), BreakerDecision::Admit { probe: false });
    }

    #[test]
    fn registry_isolates_classes_and_logs_transitions() {
        let mut reg = BreakerRegistry::new(cfg());
        for _ in 0..3 {
            assert!(matches!(
                reg.on_admission_attempt("bad"),
                BreakerDecision::Admit { probe: false }
            ));
            reg.record("bad", false, false);
            assert!(matches!(
                reg.on_admission_attempt("good"),
                BreakerDecision::Admit { probe: false }
            ));
            reg.record("good", true, false);
        }
        assert_eq!(reg.state("bad"), Some(BreakerState::Open));
        assert_eq!(reg.state("good"), Some(BreakerState::Closed));
        assert_eq!(reg.state("never-seen"), None);
        let bad_moves: Vec<_> =
            reg.transitions().iter().filter(|t| t.class == "bad").map(|t| (t.from, t.to)).collect();
        assert_eq!(bad_moves, vec![(BreakerState::Closed, BreakerState::Open)]);
        assert!(!reg.transitions().iter().any(|t| t.class == "good"));
    }
}

mod shed {
    use super::*;
    use crate::admission::Priority;
    use crate::ladder::Rung;
    use crate::shed::{estimate_pressure, DegradeEvent, DegradeProfile, ShedPolicy};

    #[test]
    fn profile_bands_follow_the_thresholds() {
        let p = ShedPolicy::default();
        assert_eq!(p.profile_for(0.0), DegradeProfile::Full);
        assert_eq!(p.profile_for(0.49), DegradeProfile::Full);
        assert_eq!(p.profile_for(0.5), DegradeProfile::Reduced);
        assert_eq!(p.profile_for(0.74), DegradeProfile::Reduced);
        assert_eq!(p.profile_for(0.75), DegradeProfile::Economy);
        assert_eq!(p.profile_for(1.0), DegradeProfile::Economy);
    }

    #[test]
    fn shed_order_is_best_effort_then_batch_never_interactive() {
        let p = ShedPolicy::default();
        assert!(p.should_shed(Priority::BestEffort, 0.7));
        assert!(!p.should_shed(Priority::Batch, 0.7));
        assert!(!p.should_shed(Priority::Interactive, 0.7));
        assert!(p.should_shed(Priority::Batch, 0.95));
        assert!(!p.should_shed(Priority::Interactive, 1.0), "interactive is never shed");
        let off = ShedPolicy::disabled();
        for pr in Priority::ALL {
            assert!(!off.should_shed(pr, 1.0));
        }
        assert_eq!(off.profile_for(1.0), DegradeProfile::Full);
    }

    #[test]
    fn pressure_tracks_queue_fill() {
        let est = Duration::from_millis(100);
        let s = estimate_pressure(3, 4, 2, est, &[]);
        assert!((s.queue_fill - 0.75).abs() < 1e-12);
        assert_eq!(s.slack_deficit, 0.0);
        assert!((s.value() - 0.75).abs() < 1e-12);
        assert_eq!(estimate_pressure(5, 0, 2, est, &[]).value(), 1.0);
    }

    #[test]
    fn pressure_tracks_queued_deadline_slack() {
        // One worker, 100 ms per request: request i waits i*100 ms and
        // needs 100 ms more. Deadlines of 50 ms (position 0) and 150 ms
        // (position 3) miss; 10 s (position 1) does not; `None` (position
        // 2) does not vote.
        let est = Duration::from_millis(100);
        let deadlines = [
            Some(Duration::from_millis(50)),
            Some(Duration::from_secs(10)),
            None,
            Some(Duration::from_millis(150)),
        ];
        let s = estimate_pressure(4, 100, 1, est, &deadlines);
        assert!((s.slack_deficit - 2.0 / 3.0).abs() < 1e-12, "got {}", s.slack_deficit);
        assert!(s.queue_fill < s.slack_deficit, "slack must dominate via max()");
        assert!((s.value() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_profile_is_a_no_op() {
        let mut req = SolveRequest::new("full", laplace(6), MgConfig::d16());
        let before = req.opts.clone();
        let events = req.apply_profile(DegradeProfile::Full, &ShedPolicy::default());
        assert!(events.is_empty());
        assert_eq!(req.opts.tol, before.tol);
        assert_eq!(req.opts.max_iters, before.max_iters);
    }

    #[test]
    fn reduced_profile_relaxes_tol_and_caps_iters_with_events() {
        let policy = ShedPolicy::default();
        let mut req = SolveRequest::new("reduced", laplace(6), MgConfig::d16());
        let (tol0, iters0) = (req.opts.tol, req.opts.max_iters);
        let events = req.apply_profile(DegradeProfile::Reduced, &policy);
        assert!((req.opts.tol - tol0 * policy.tol_relax).abs() < 1e-18);
        assert_eq!(req.opts.max_iters, policy.reduced_max_iters);
        assert_eq!(
            events,
            vec![
                DegradeEvent::TolRelaxed { from: tol0, to: req.opts.tol },
                DegradeEvent::ItersCapped { from: iters0, to: policy.reduced_max_iters },
            ]
        );
    }

    #[test]
    fn economy_profile_economizes_storage_caps_vcycles_and_trims_the_ladder() {
        let policy = ShedPolicy::default();
        let mut req = SolveRequest::new("economy", laplace(6), MgConfig::d16());
        let events = req.apply_profile(DegradeProfile::Economy, &policy);
        assert!(events
            .iter()
            .any(|e| matches!(e, DegradeEvent::StorageEconomized { shift_levid: 2 })));
        assert!(events.iter().any(|e| matches!(e, DegradeEvent::VcyclesCapped { cap: 400 })));
        assert!(events.iter().any(|e| matches!(e, DegradeEvent::LadderTrimmed { .. })));
        assert_eq!(req.budget.max_vcycles, Some(policy.economy_max_vcycles));
        assert_eq!(
            req.policy.attempts[Rung::RebuildF64.index()],
            0,
            "economy must not spend the FP64 rebuild on shed-window work"
        );
        // The degraded request still converges (to its looser target).
        let out = run_session(&req);
        assert!(out.converged(), "economy profile must stay solvable: {:?}", out.result.err());
    }

    #[test]
    fn degradation_never_tightens_the_requested_tolerance() {
        let policy = ShedPolicy::default();
        let mut req = SolveRequest::new("loose-already", laplace(6), MgConfig::d16());
        // Caller asked for something looser than the degradation ceiling.
        req.opts.tol = 1e-3;
        let events = req.apply_profile(DegradeProfile::Reduced, &policy);
        assert_eq!(req.opts.tol, 1e-3, "a degraded tolerance is never tighter than requested");
        assert!(!events.iter().any(|e| matches!(e, DegradeEvent::TolRelaxed { .. })));
    }
}

mod serve_pool {
    use super::*;
    use crate::admission::{AdmissionConfig, AdmissionError, Priority};
    use crate::breaker::{BreakerConfig, BreakerState};
    use crate::pool::{PoolConfig, ServeError, ServePool};
    use crate::shed::ShedPolicy;

    fn prioritized(name: &str, priority: Priority) -> SolveRequest {
        let mut req = SolveRequest::new(name, laplace(6), MgConfig::d16());
        req.priority = priority;
        req
    }

    /// A request whose session always ends in a fast typed terminal
    /// failure (unreachable tolerance, two-iteration budget, no retries).
    fn poisoned(name: &str) -> SolveRequest {
        let mut req = SolveRequest::new(name, laplace(6), MgConfig::d16());
        req.class = "poison".into();
        req.opts = endless_opts();
        req.budget.max_iters = Some(2);
        req.policy.attempts = [1, 0, 0, 0, 0];
        req
    }

    fn healthy_of_class(name: &str, class: &str) -> SolveRequest {
        let mut req = SolveRequest::new(name, laplace(6), MgConfig::d16());
        req.class = class.into();
        req
    }

    fn breaker_cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown: 2,
            cooldown_jitter: 0,
            probes: 1,
            probe_successes: 1,
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn full_queue_sheds_best_effort_first_and_every_refusal_is_typed() {
        let mut pool = ServePool::new(PoolConfig {
            workers: 2,
            admission: AdmissionConfig {
                capacity: 4,
                per_priority: [4, 4, 4],
                est_service: Duration::from_millis(10),
            },
            // Shedding starts for best-effort at half fill; batch only at
            // near-saturation; interactive never.
            shed: ShedPolicy {
                reduce_at: 0.5,
                economy_at: 0.8,
                shed_at: [f64::INFINITY, 0.95, 0.5],
                ..ShedPolicy::default()
            },
            breaker: breaker_cfg(),
            ..PoolConfig::default()
        });
        let requests: Vec<_> = (0..9)
            .map(|i| {
                let pr = Priority::ALL[i % 3];
                prioritized(&format!("{}-{i}", pr.label()), pr)
            })
            .collect();
        let outcomes = pool.run(requests);
        assert_eq!(outcomes.len(), 9);

        let shed: Vec<_> = outcomes
            .iter()
            .filter(|o| matches!(o.rejection(), Some(AdmissionError::Shed { .. })))
            .collect();
        let queue_full = outcomes
            .iter()
            .filter(|o| matches!(o.rejection(), Some(AdmissionError::QueueFull { .. })))
            .count();
        let admitted: Vec<_> = outcomes.iter().filter(|o| o.rejection().is_none()).collect();

        assert!(!shed.is_empty(), "an oversubscribed batch must shed something");
        assert_eq!(
            shed[0].priority,
            Priority::BestEffort,
            "the first request shed must be best-effort"
        );
        assert!(
            shed.iter().all(|o| o.priority != Priority::Interactive),
            "interactive work is never shed"
        );
        assert!(queue_full > 0, "past capacity the hard bound must refuse");
        assert!(admitted.len() <= 4, "no more than capacity may be admitted");
        for o in &admitted {
            assert!(o.converged(), "{}: {:?}", o.name, o.result);
            if o.degraded() {
                assert!(!o.degrades.is_empty(), "degraded outcomes carry their event trail");
            }
        }
        assert!(
            admitted.iter().any(|o| o.degraded()),
            "half-full onward the pool serves degraded profiles"
        );
    }

    #[test]
    fn poisoned_class_trips_the_breaker_and_recovers_via_probe() {
        let mut pool = ServePool::new(PoolConfig {
            workers: 2,
            admission: AdmissionConfig::default(),
            shed: ShedPolicy::disabled(),
            breaker: breaker_cfg(),
            ..PoolConfig::default()
        });

        // Batch 1: the poisoned class fails terminally and trips its
        // breaker (min_samples 2, threshold 0.5); a healthy class in the
        // same batch is untouched.
        let mut batch = vec![poisoned("bad-0"), poisoned("bad-1"), poisoned("bad-2")];
        batch.push(healthy_of_class("ok-0", "healthy"));
        let out1 = pool.run(batch);
        for o in &out1[..3] {
            assert!(
                matches!(o.result, Err(ServeError::Session(_))),
                "{}: poisoned sessions fail typed, not at admission: {:?}",
                o.name,
                o.result
            );
        }
        assert!(out1[3].converged());
        assert_eq!(pool.breakers().state("poison"), Some(BreakerState::Open));
        assert_eq!(pool.breakers().state("healthy"), Some(BreakerState::Closed));

        // Batch 2: cooldown of 2 admission attempts — the first is
        // refused typed, the second is admitted as the half-open probe
        // (now healthy, it converges and closes the breaker), the third
        // arrives half-open with the probe quota spent.
        let out2 = pool.run(vec![
            healthy_of_class("recover-0", "poison"),
            healthy_of_class("recover-1", "poison"),
            healthy_of_class("recover-2", "poison"),
        ]);
        assert!(
            matches!(
                out2[0].rejection(),
                Some(AdmissionError::BreakerOpen { cooldown_remaining: 1, .. })
            ),
            "got {:?}",
            out2[0].result
        );
        assert!(out2[1].probe, "the attempt completing the cooldown is the probe");
        assert!(out2[1].converged());
        assert!(!out2[1].degraded(), "probes run at full quality");
        assert!(
            matches!(out2[2].rejection(), Some(AdmissionError::BreakerOpen { .. })),
            "got {:?}",
            out2[2].result
        );
        assert_eq!(pool.breakers().state("poison"), Some(BreakerState::Closed));

        // Batch 3: the recovered class serves normally again.
        let out3 = pool.run(vec![healthy_of_class("healed", "poison")]);
        assert!(out3[0].converged() && !out3[0].probe);

        let moves: Vec<_> = pool
            .breakers()
            .transitions()
            .iter()
            .filter(|t| t.class == "poison")
            .map(|t| (t.from, t.to))
            .collect();
        assert_eq!(
            moves,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ],
            "the full recovery arc must be visible in the transition log"
        );
    }

    #[test]
    fn degraded_profiles_are_deterministic_for_a_replayed_batch() {
        let make = || {
            let mut pool = ServePool::new(PoolConfig {
                workers: 2,
                admission: AdmissionConfig {
                    capacity: 4,
                    per_priority: [4, 4, 4],
                    est_service: Duration::from_millis(10),
                },
                shed: ShedPolicy::default(),
                breaker: breaker_cfg(),
                ..PoolConfig::default()
            });
            let requests: Vec<_> =
                (0..6).map(|i| prioritized(&format!("r{i}"), Priority::Batch)).collect();
            pool.run(requests)
                .into_iter()
                .map(|o| (o.profile, o.pressure, o.result.err().map(|e| e.to_string())))
                .collect::<Vec<_>>()
        };
        assert_eq!(make(), make(), "admission decisions depend on declared quantities only");
    }
}

mod jitter {
    use crate::jitter::{fold_seed, splitmix64, unit};

    /// The jitter stream is part of the replay contract: these outputs
    /// are pinned so a drive-by constant change cannot silently
    /// desynchronize breakers and ladders restored from a snapshot.
    #[test]
    fn splitmix64_sequence_is_pinned() {
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
        assert_eq!(splitmix64(2), 0x9758_35de_1c97_56ce);
        assert_eq!(splitmix64(0xdead_beef), 0x4adf_b90f_68c9_eb9b);
    }

    #[test]
    fn unit_is_pinned_and_in_range() {
        assert_eq!(unit(0).to_bits(), 0.883_310_808_213_642_6_f64.to_bits());
        for x in 0..1000 {
            let u = unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fold_seed_is_pinned_and_decorrelates_names() {
        assert_eq!(fold_seed(0, "poison"), 0x82b0_b584_35f6_cc91);
        assert_eq!(fold_seed(5, ""), 0xcbf2_9ce4_8422_2320);
        assert_ne!(fold_seed(1, "a"), fold_seed(1, "b"));
        assert_eq!(fold_seed(1, "a"), fold_seed(1, "a"));
    }
}

mod ring {
    use crate::ring::Ring;

    #[test]
    fn bounded_push_evicts_oldest_and_counts() {
        let mut r: Ring<usize> = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(&r[..], &[2, 3, 4]);
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.total(), 5);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn extend_and_clear_preserve_the_lifetime_total() {
        let mut r: Ring<&str> = Ring::new(2);
        r.extend(["a", "b", "c"]);
        assert_eq!(&r[..], &["b", "c"]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total(), 3, "clear drops items, not history");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        // A zero-capacity trail would silently drop everything, so the
        // constructor refuses to build one.
        let mut r: Ring<u8> = Ring::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(1);
        r.push(2);
        assert_eq!(&r[..], &[2]);
        assert_eq!(r.evicted(), 1);
    }
}

mod cache {
    use super::*;
    use crate::cache::{CacheConfig, CacheEventKind, HierarchyCache};
    use fp16mg_core::ScaleStrategy;

    fn cfg() -> CacheConfig {
        CacheConfig { capacity: 2, ..CacheConfig::default() }
    }

    fn scaled(n: usize, factor: f64) -> fp16mg_sgdia::SgDia<f64> {
        let mut a = laplace(n).matrix;
        for v in a.data_mut() {
            *v *= factor;
        }
        a
    }

    #[test]
    fn event_ladder_hit_rescale_invalidate() {
        let mut cache = HierarchyCache::new(cfg());
        let config = MgConfig::d16();
        let events = [
            (1.0, CacheEventKind::Rebuilt),           // cold build
            (1.0, CacheEventKind::Hit),               // fingerprint-equal
            (1.1, CacheEventKind::Hit),               // |log2 1.1| < keep_max
            (4.0, CacheEventKind::RescaledHit),       // ≤ rescale_max: swap in place
            (96.0, CacheEventKind::DriftInvalidated), // past the bound: rebuild
            (96.0, CacheEventKind::Hit),              // the rebuilt entry serves again
        ];
        for (factor, expect) in events {
            let (_, kind) = cache.acquire("c", &scaled(6, factor), &config).unwrap();
            assert_eq!(kind, expect, "factor {factor}");
        }
        let s = cache.stats();
        // The drift-invalidated rebuild is counted under its own
        // column; `rebuilds` counts cold builds only.
        assert_eq!(
            (s.hits, s.rescaled_hits, s.drift_invalidations, s.rebuilds),
            (3, 1, 1, 1),
            "{s:?}"
        );
        assert_eq!(cache.events().len(), 6, "every decision is a typed event");
    }

    #[test]
    fn capacity_overflow_evicts_lru() {
        let mut cache = HierarchyCache::new(CacheConfig { capacity: 1, ..cfg() });
        let config = MgConfig::d16();
        let a = laplace(6).matrix;
        cache.acquire("one", &a, &config).unwrap();
        cache.acquire("two", &a, &config).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache.events().iter().any(|e| e.kind == CacheEventKind::Evicted),
            "evictions are typed events too"
        );
        // The evicted class cold-builds again.
        let (_, kind) = cache.acquire("one", &a, &config).unwrap();
        assert_eq!(kind, CacheEventKind::Rebuilt);
    }

    #[test]
    fn restored_metadata_is_cold_but_keeps_identity() {
        let mut warm = HierarchyCache::new(cfg());
        let config = MgConfig::d16();
        let a = laplace(6).matrix;
        warm.acquire("c", &a, &config).unwrap();
        warm.acquire("c", &a, &config).unwrap(); // one hit on record

        let mut restored = HierarchyCache::new(cfg());
        restored.restore_metadata(&warm.metadata());
        restored.restore_stats(warm.stats());
        assert_eq!(restored.len(), 1);
        // Cold: the chain was not persisted, so the first touch rebuilds …
        let (_, kind) = restored.acquire("c", &a, &config).unwrap();
        assert_eq!(kind, CacheEventKind::Rebuilt);
        // … but the entry's history survived the restart.
        let meta = &restored.metadata()[0];
        assert_eq!(meta.hits, 1);
        assert_eq!(meta.builds, 2);
        // … and the next touch is warm again.
        let (_, kind) = restored.acquire("c", &a, &config).unwrap();
        assert_eq!(kind, CacheEventKind::Hit);
    }

    #[test]
    fn disabled_cache_and_prescaled_configs_always_rebuild() {
        let mut off = HierarchyCache::new(CacheConfig::disabled());
        let a = laplace(6).matrix;
        for _ in 0..2 {
            let (_, kind) = off.acquire("c", &a, &MgConfig::d16()).unwrap();
            assert_eq!(kind, CacheEventKind::Rebuilt);
        }
        // ScaleThenSetup coarsens a prescaled operator: its chain is
        // single-use and must never be retained.
        let mut on = HierarchyCache::new(cfg());
        let config = MgConfig { scale: ScaleStrategy::ScaleThenSetup, ..MgConfig::d16() };
        for _ in 0..2 {
            let (_, kind) = on.acquire("c", &a, &config).unwrap();
            assert_eq!(kind, CacheEventKind::Rebuilt);
        }
        assert!(on.is_empty());
    }
}

mod snapshot {
    use super::*;
    use crate::pool::{PoolConfig, PoolState, ServePool};
    use crate::snapshot::{DaemonSnapshot, SnapshotError, SNAPSHOT_VERSION};
    use fp16mg_fp::Fnv1a;

    /// A state with every record type populated: counters, a tripped
    /// breaker with a jittered cooldown, quarantine strikes, cache
    /// stats and entries with escapable names.
    fn populated_state() -> PoolState {
        let mut pool = ServePool::new(PoolConfig::daemon(2));
        let bad = |name: &str| {
            let mut req = SolveRequest::new(name, laplace(6), MgConfig::d16());
            req.class = "poison class".into(); // space exercises escaping
            req.opts = endless_opts();
            req.budget.max_iters = Some(2);
            req.policy = RetryPolicy::fail_fast();
            req
        };
        let ok = SolveRequest::new("ok", laplace(6), MgConfig::d16());
        pool.run(vec![bad("bad-0"), bad("bad-1"), ok]);
        let mut state = pool.export_state();
        state.quarantine = vec![("wedger".into(), 2), ("%weird name%".into(), 1)];
        state
    }

    fn recompute_checksum(text: &str) -> String {
        let body_end = text.rfind("checksum ").unwrap();
        let body = &text[..body_end];
        let mut h = Fnv1a::new();
        for b in body.bytes() {
            h.write_u8(b);
        }
        format!("{body}checksum {:016x}\n", h.finish())
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = DaemonSnapshot { seq: 12, state: populated_state() };
        let back = DaemonSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back.seq, 12);
        assert_eq!(back.state, snap.state);
    }

    #[test]
    fn file_round_trip_via_temp_and_rename() {
        let dir = std::env::temp_dir().join(format!("fp16mg-snap-{}", std::process::id()));
        let path = dir.join("nested").join("daemon.snapshot");
        let snap = DaemonSnapshot { seq: 7, state: populated_state() };
        snap.write(&path).unwrap();
        assert!(
            !path.with_extension("snapshot.tmp").exists(),
            "the temp file must not survive the rename"
        );
        let back = DaemonSnapshot::read(&path).unwrap();
        assert_eq!(back.seq, 7);
        assert_eq!(back.state, snap.state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_rejected_typed() {
        let text = DaemonSnapshot { seq: 3, state: populated_state() }.encode();

        // One flipped byte in the body: checksum mismatch.
        let corrupt = text.replacen("seq 3", "seq 4", 1);
        assert!(matches!(
            DaemonSnapshot::decode(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Torn write: the trailer never made it to disk.
        let torn = &text[..text.rfind("checksum").unwrap()];
        assert!(matches!(DaemonSnapshot::decode(torn), Err(SnapshotError::Truncated)));

        // Not a snapshot at all.
        assert!(matches!(
            DaemonSnapshot::decode("#!/bin/sh\necho hi\n"),
            Err(SnapshotError::BadMagic { .. })
        ));

        // A future version with a valid checksum is refused, not guessed.
        let future = recompute_checksum(&text.replacen(
            &format!("v{SNAPSHOT_VERSION}"),
            &format!("v{}", SNAPSHOT_VERSION + 1),
            1,
        ));
        assert!(matches!(
            DaemonSnapshot::decode(&future),
            Err(SnapshotError::UnsupportedVersion { found }) if found == SNAPSHOT_VERSION + 1
        ));

        // An unknown record tag (with a valid checksum) is a parse error.
        let alien = recompute_checksum(&text.replacen("cache-stats", "gremlin", 1));
        assert!(matches!(DaemonSnapshot::decode(&alien), Err(SnapshotError::Parse { .. })));

        // A missing file is a typed I/O error.
        assert!(matches!(
            DaemonSnapshot::read(std::path::Path::new("/nonexistent/no.snapshot")),
            Err(SnapshotError::Io { .. })
        ));
    }
}

mod sim_snapshot {
    use crate::snapshot::{SimCounters, SimSnapshot, SnapshotError, SNAPSHOT_VERSION};

    /// A snapshot exercising every record: escapable problem name,
    /// non-trivial cursor, NaN residual, negative/subnormal solution
    /// entries.
    fn populated() -> SimSnapshot {
        SimSnapshot {
            problem: "oil 4C".into(), // space exercises escaping
            size: 12,
            steps: 24,
            tol: 1e-8,
            seed: 0xdead_beef_cafe_f00d,
            step: 9,
            chain_step: 6,
            finest_step: 8,
            last_resid: f64::NAN,
            counters: SimCounters { keep: 4, rescale: 3, rebuild: 2, repairs: 1, rollbacks: 1 },
            x: vec![1.5, -0.0, f64::MIN_POSITIVE / 4.0, -3.25e101, 0.0],
        }
    }

    /// Bit-level equality: `PartialEq` would call NaN != NaN and
    /// -0.0 == 0.0, neither of which is the resume guarantee.
    fn assert_bits_eq(a: &SimSnapshot, b: &SimSnapshot) {
        assert_eq!(a.problem, b.problem);
        assert_eq!((a.size, a.steps, a.seed), (b.size, b.steps, b.seed));
        assert_eq!(a.tol.to_bits(), b.tol.to_bits());
        assert_eq!((a.step, a.chain_step, a.finest_step), (b.step, b.chain_step, b.finest_step));
        assert_eq!(a.last_resid.to_bits(), b.last_resid.to_bits());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.x.len(), b.x.len());
        for (av, bv) in a.x.iter().zip(&b.x) {
            assert_eq!(av.to_bits(), bv.to_bits());
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let snap = populated();
        let back = SimSnapshot::decode(&snap.encode()).unwrap();
        assert_bits_eq(&snap, &back);
    }

    #[test]
    fn file_round_trip_via_temp_and_rename() {
        let dir = std::env::temp_dir().join(format!("fp16mg-sim-snap-{}", std::process::id()));
        let path = dir.join("nested").join("sim.snapshot");
        let snap = populated();
        snap.write(&path).unwrap();
        assert!(
            !path.with_extension("snapshot.tmp").exists(),
            "the temp file must not survive the rename"
        );
        let back = SimSnapshot::read(&path).unwrap();
        assert_bits_eq(&snap, &back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_rejected_typed() {
        let text = populated().encode();

        // One flipped byte in the body: checksum mismatch.
        let corrupt = text.replacen("cursor 9", "cursor 8", 1);
        assert!(matches!(
            SimSnapshot::decode(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Torn write: the trailer never made it to disk.
        let torn = &text[..text.rfind("checksum").unwrap()];
        assert!(matches!(SimSnapshot::decode(torn), Err(SnapshotError::Truncated)));

        // Not a snapshot at all — and a *daemon* snapshot is equally
        // foreign (the magics are distinct on purpose).
        assert!(matches!(
            SimSnapshot::decode("#!/bin/sh\necho hi\n"),
            Err(SnapshotError::BadMagic { .. })
        ));
        assert!(matches!(
            SimSnapshot::decode(&format!("fp16mg-snapshot v{SNAPSHOT_VERSION}\nseq 1\n")),
            Err(SnapshotError::BadMagic { .. })
        ));

        // A future version with a valid checksum is refused.
        let body_end = text.rfind("checksum ").unwrap();
        let future_body = text[..body_end].replacen(
            &format!("v{SNAPSHOT_VERSION}"),
            &format!("v{}", SNAPSHOT_VERSION + 1),
            1,
        );
        let mut h = fp16mg_fp::Fnv1a::new();
        for b in future_body.bytes() {
            h.write_u8(b);
        }
        let future = format!("{future_body}checksum {:016x}\n", h.finish());
        assert!(matches!(
            SimSnapshot::decode(&future),
            Err(SnapshotError::UnsupportedVersion { found }) if found == SNAPSHOT_VERSION + 1
        ));

        // A missing file is a typed I/O error.
        assert!(matches!(
            SimSnapshot::read(std::path::Path::new("/nonexistent/no.snapshot")),
            Err(SnapshotError::Io { .. })
        ));
    }

    #[test]
    fn x_record_length_must_match() {
        let snap = populated();
        let text = snap.encode();
        // Declare one fewer element than the record carries.
        let n = snap.x.len();
        let body_end = text.rfind("checksum ").unwrap();
        let bad_body = text[..body_end].replacen(&format!("x {n} "), &format!("x {} ", n - 1), 1);
        let mut h = fp16mg_fp::Fnv1a::new();
        for b in bad_body.bytes() {
            h.write_u8(b);
        }
        let bad = format!("{bad_body}checksum {:016x}\n", h.finish());
        assert!(matches!(SimSnapshot::decode(&bad), Err(SnapshotError::Parse { .. })));
    }
}

mod daemon {
    use super::*;
    use crate::admission::AdmissionError;
    use crate::pool::{PoolConfig, ServePool};
    use crate::supervise::{Daemon, DaemonConfig, Quarantine};

    fn temp_snapshot(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join(format!("fp16mg-daemon-{}-{tag}", std::process::id()))
            .join("daemon.snapshot")
    }

    /// A deterministic mixed batch: two requests of a class that fails
    /// terminally and one healthy request.
    fn batch() -> Vec<SolveRequest> {
        let bad = |name: &str| {
            let mut req = SolveRequest::new(name, laplace(6), MgConfig::d16());
            req.class = "poison".into();
            req.opts = endless_opts();
            req.budget.max_iters = Some(2);
            req.policy = RetryPolicy::fail_fast();
            req
        };
        vec![bad("bad-0"), bad("bad-1"), SolveRequest::new("ok", laplace(6), MgConfig::d16())]
    }

    fn decisions(outcomes: &[crate::pool::RequestOutcome]) -> Vec<(String, String, String)> {
        outcomes
            .iter()
            .map(|o| {
                (
                    o.name.clone(),
                    o.profile.label().to_string(),
                    o.result.as_ref().map(|_| "ok".into()).unwrap_or_else(|e| e.to_string()),
                )
            })
            .collect()
    }

    #[test]
    fn checkpoint_restore_replays_identical_decisions() {
        let path = temp_snapshot("replay");
        let _ = std::fs::remove_file(&path);
        let cfg = || DaemonConfig {
            pool: PoolConfig::daemon(2),
            snapshot_path: Some(path.clone()),
            ..DaemonConfig::default()
        };

        // Run one batch (trips the poison breaker), checkpoint, "crash".
        let mut first = Daemon::start(cfg()).unwrap();
        assert!(!first.restored());
        first.submit(batch()).unwrap();
        let exported = first.pool().export_state();
        drop(first); // no drain: the per-batch checkpoint is the survivor

        // The restarted daemon resumes the cursor and the breaker state …
        let mut restored = Daemon::start(cfg()).unwrap();
        assert!(restored.restored());
        assert_eq!(restored.seq(), 3);
        assert_eq!(restored.pool().export_state().breakers, exported.breakers);
        assert_eq!(restored.pool().counters(), exported.counters);

        // … and an untouched reference pool that replays history from
        // scratch reaches the exact same decisions on the next batch.
        let mut reference = ServePool::new(PoolConfig::daemon(2));
        reference.run(batch());
        let live = restored.submit(batch()).unwrap();
        let replayed = reference.run(batch());
        assert_eq!(decisions(&live), decisions(&replayed));

        // Graceful drain writes the final checkpoint and reports it.
        let report = restored.drain().unwrap();
        assert_eq!(report.seq, 6);
        assert!(report.checkpointed);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn quarantined_names_are_refused_at_the_gate() {
        let mut q = Quarantine::new(2);
        assert_eq!(q.strike("flaky"), 1);
        assert!(!q.is_quarantined("flaky"));
        assert_eq!(q.strike("flaky"), 2);
        assert!(q.is_quarantined("flaky"));

        // Restore merges by max: a replayed older snapshot cannot
        // un-quarantine a name.
        let mut merged = Quarantine::new(2);
        merged.restore(&[("flaky".into(), 1)]);
        merged.restore(&q.export());
        merged.restore(&[("flaky".into(), 1)]);
        assert_eq!(merged.strikes_of("flaky"), 2);

        // The pool's admission gate refuses the name with a typed error.
        let mut pool = ServePool::new(PoolConfig::daemon(1));
        let mut state = pool.export_state();
        state.quarantine = vec![("flaky".into(), 2)];
        pool.restore_state(&state);
        let out = pool.run(vec![SolveRequest::new("flaky", laplace(6), MgConfig::d16())]);
        assert!(
            matches!(out[0].rejection(), Some(AdmissionError::Quarantined { strikes: 2, .. })),
            "got {:?}",
            out[0].result
        );
        assert_eq!(pool.counters().rejected_quarantined, 1);
    }
}

mod storage_faults {
    use std::path::{Path, PathBuf};

    use crate::snapshot::{SimCounters, SimSnapshot, SnapshotStore};
    use crate::storage::{append_durable, Fault, FaultStorage, Storage};
    use fp16mg_testkit::check_n;

    fn write_file(s: &FaultStorage, path: &Path, bytes: &[u8], fsync: bool) {
        let mut f = s.create(path).unwrap();
        f.write_all(bytes).unwrap();
        if fsync {
            f.fsync().unwrap();
        }
    }

    fn p(name: &str) -> PathBuf {
        PathBuf::from("/t").join(name)
    }

    #[test]
    fn power_loss_drops_dirty_pages_and_unsynced_entries() {
        // Written + fsynced, but the directory entry was never synced:
        // the *entry* is volatile, so the file vanishes entirely.
        let s = FaultStorage::new();
        write_file(&s, &p("entry-unsynced"), b"hello", true);
        s.power_loss();
        assert!(s.peek(&p("entry-unsynced")).is_none(), "unsynced entry must not survive");

        // Written + fsynced + entry synced: fully durable. Bytes
        // appended after the sync are dirty pages only.
        let s = FaultStorage::new();
        write_file(&s, &p("durable"), b"hello", true);
        s.sync_dir(Path::new("/t")).unwrap();
        let mut f = s.append(&p("durable")).unwrap();
        f.write_all(b" world").unwrap();
        drop(f);
        assert_eq!(s.peek(&p("durable")).unwrap(), b"hello world");
        s.power_loss();
        assert_eq!(s.peek(&p("durable")).unwrap(), b"hello", "dirty pages must be dropped");
    }

    #[test]
    fn rename_reverts_without_a_directory_sync() {
        let s = FaultStorage::new();
        write_file(&s, &p("x.tmp"), b"v1", true);
        s.sync_dir(Path::new("/t")).unwrap();
        s.rename(&p("x.tmp"), &p("x")).unwrap();
        assert!(s.exists(&p("x")) && !s.exists(&p("x.tmp")));

        // No sync_dir after the rename: the crash rolls it back.
        s.power_loss();
        assert!(s.exists(&p("x.tmp")) && !s.exists(&p("x")), "rename must revert");

        // With the directory sync the rename survives.
        s.rename(&p("x.tmp"), &p("x")).unwrap();
        s.sync_dir(Path::new("/t")).unwrap();
        s.power_loss();
        assert!(s.exists(&p("x")) && !s.exists(&p("x.tmp")));
        assert_eq!(s.peek(&p("x")).unwrap(), b"v1");
    }

    #[test]
    fn torn_write_lands_half_and_takes_the_storage_down() {
        let s = FaultStorage::new();
        write_file(&s, &p("log"), b"", true);
        s.sync_dir(Path::new("/t")).unwrap();
        let mut f = s.append(&p("log")).unwrap();
        s.schedule(s.op_count(), Fault::TornWrite);
        assert!(f.write_all(b"abcdefgh").is_err(), "torn write must error");
        assert!(s.crashed(), "torn write must take the storage down");
        // Every subsequent counting op fails until power_loss.
        assert!(s.read(&p("log")).is_err());
        s.power_loss();
        assert_eq!(s.peek(&p("log")).unwrap(), b"abcd", "half the buffer must be durable");
        assert_eq!(s.fired()["torn-write"], 1);
    }

    #[test]
    fn failed_fsync_poisons_the_dirty_pages() {
        let s = FaultStorage::new();
        write_file(&s, &p("f"), b"base", true);
        s.sync_dir(Path::new("/t")).unwrap();
        let mut f = s.append(&p("f")).unwrap();
        f.write_all(b"+dirty").unwrap();
        s.schedule(s.op_count(), Fault::FsyncFail);
        assert!(f.fsync().is_err());
        // Post-failure the cache cannot be trusted: the dirty pages are
        // gone even from the *live* view (no retry-fsync-to-success).
        assert_eq!(s.peek(&p("f")).unwrap(), b"base");
        assert!(!s.crashed(), "a failed fsync is an error, not a crash");
    }

    #[test]
    fn silent_fsync_loss_reports_success_and_persists_nothing() {
        let s = FaultStorage::new();
        write_file(&s, &p("f"), b"base", true);
        s.sync_dir(Path::new("/t")).unwrap();
        let mut f = s.append(&p("f")).unwrap();
        f.write_all(b"+more").unwrap();
        s.schedule(s.op_count(), Fault::SilentFsyncLoss);
        f.fsync().unwrap(); // lies
        assert_eq!(s.peek(&p("f")).unwrap(), b"base+more", "live view keeps the bytes");
        s.power_loss();
        assert_eq!(s.peek(&p("f")).unwrap(), b"base", "the lying fsync persisted nothing");
        assert_eq!(s.fired()["silent-fsync-loss"], 1);
    }

    #[test]
    fn corrupt_read_is_transient_media_stays_intact() {
        let s = FaultStorage::new();
        write_file(&s, &p("f"), b"payload", true);
        s.schedule(s.op_count(), Fault::CorruptRead { bit: 1 });
        let corrupt = s.read(&p("f")).unwrap();
        assert_ne!(corrupt, b"payload", "the faulted read must be corrupted");
        assert_eq!(s.read(&p("f")).unwrap(), b"payload", "the next read is clean");
        assert_eq!(s.fired()["read-corruption"], 1);
    }

    #[test]
    fn append_durable_survives_a_bounded_enospc_burst_and_reports_a_long_one() {
        // A burst of 2 failures is absorbed by the bounded retry and
        // leaves exactly one copy of the record.
        let s = FaultStorage::new();
        append_durable(&s, &p("log"), b"one\n").unwrap();
        s.schedule(s.op_count() + 1, Fault::NoSpace { count: 2 });
        append_durable(&s, &p("log"), b"two\n").unwrap();
        assert_eq!(s.peek(&p("log")).unwrap(), b"one\ntwo\n");
        assert_eq!(s.fired()["enospc"], 2);
        s.power_loss();
        assert_eq!(s.peek(&p("log")).unwrap(), b"one\ntwo\n", "the retried append is durable");

        // A burst longer than the retry budget surfaces as a typed
        // NoSpace error and leaves the log exactly as it was.
        let s = FaultStorage::new();
        append_durable(&s, &p("log"), b"one\n").unwrap();
        s.schedule(s.op_count() + 1, Fault::NoSpace { count: 10 });
        let err = append_durable(&s, &p("log"), b"two\n").unwrap_err();
        assert!(err.is_no_space(), "got {err}");
        assert_eq!(s.peek(&p("log")).unwrap(), b"one\n", "failed append must roll back");
    }

    #[test]
    fn append_durable_syncs_the_parent_entry_on_creation() {
        let s = FaultStorage::new();
        append_durable(&s, &p("fresh.log"), b"line\n").unwrap();
        s.power_loss();
        assert_eq!(
            s.peek(&p("fresh.log")).unwrap(),
            b"line\n",
            "a freshly created append target must survive power loss"
        );
    }

    fn snap(step: u64) -> SimSnapshot {
        SimSnapshot {
            problem: "oil".into(),
            size: 6,
            steps: 8,
            tol: 1e-7,
            seed: 0,
            step,
            chain_step: step,
            finest_step: step,
            last_resid: 1e-9,
            counters: SimCounters::default(),
            x: vec![0.5, -1.25, 3.0],
        }
    }

    #[test]
    fn snapshot_store_rotates_generations_across_slots() {
        let s = FaultStorage::new();
        let store = SnapshotStore::new("/t/sim.snapshot");
        let p0 = store.publish(&s, 0, &snap(0).encode()).unwrap();
        let p1 = store.publish(&s, 1, &snap(1).encode()).unwrap();
        let p2 = store.publish(&s, 2, &snap(2).encode()).unwrap();
        assert_eq!(p0, PathBuf::from("/t/sim.snapshot.a"));
        assert_eq!(p1, PathBuf::from("/t/sim.snapshot.b"));
        assert_eq!(p2, p0, "even generations overwrite slot A");

        // Power loss: publishes are atomic (write + rename + dir
        // fsync), so both slots survive with generations 1 and 2.
        s.power_loss();
        let rec = store.recover(&s, &SimSnapshot::decode).unwrap();
        assert!(rec.quarantined.is_empty());
        let mut steps: Vec<u64> = rec.candidates.iter().map(|(_, v)| v.step).collect();
        steps.sort_unstable();
        assert_eq!(steps, vec![1, 2]);
    }

    #[test]
    fn corrupt_slot_is_quarantined_with_fallback_to_the_other_generation() {
        let s = FaultStorage::new();
        let store = SnapshotStore::new("/t/sim.snapshot");
        store.publish(&s, 6, &snap(6).encode()).unwrap();
        store.publish(&s, 7, &snap(7).encode()).unwrap();
        // Corrupt the newer slot (B) in place.
        let slot_b = store.slot_for(7);
        let mut bytes = s.peek(&slot_b).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        write_file(&s, &slot_b, &bytes, true);

        let rec = store.recover(&s, &SimSnapshot::decode).unwrap();
        assert_eq!(rec.quarantined.len(), 1, "the corrupt slot must be quarantined");
        assert_eq!(rec.quarantined[0].0, slot_b);
        assert_eq!(rec.candidates.len(), 1, "the older generation must survive as fallback");
        assert_eq!(rec.candidates[0].1.step, 6);
        // The corrupt file was moved aside, not deleted, and the slot
        // path no longer exists.
        assert!(!s.exists(&slot_b));
        assert!(s.exists(&PathBuf::from("/t/sim.snapshot.b.quarantine")));
        // A rescan after quarantine is clean: nothing left to refuse.
        let again = store.recover(&s, &SimSnapshot::decode).unwrap();
        assert!(again.quarantined.is_empty());
        assert_eq!(again.candidates.len(), 1);
    }

    #[test]
    fn all_slots_corrupt_leaves_no_candidates_but_both_postmortems() {
        let s = FaultStorage::new();
        let store = SnapshotStore::new("/t/sim.snapshot");
        store.publish(&s, 0, &snap(0).encode()).unwrap();
        store.publish(&s, 1, &snap(1).encode()).unwrap();
        for g in [0u64, 1] {
            let slot = store.slot_for(g);
            let mut bytes = s.peek(&slot).unwrap();
            bytes[0] ^= 0x01;
            write_file(&s, &slot, &bytes, true);
        }
        let rec = store.recover(&s, &SimSnapshot::decode).unwrap();
        assert!(rec.candidates.is_empty());
        assert_eq!(rec.quarantined.len(), 2);
    }

    /// Satellite: single-bit-flip fuzz over the serialized snapshot.
    /// Every flip must either fail to decode (typed error) or decode to
    /// a value whose re-encoding is bit-identical to the original text
    /// (a flip that lands in redundant encoding space, e.g. turning the
    /// final newline into a vertical tab that the tokenizer ignores,
    /// may decode — but never to *different* state).
    #[test]
    fn prop_bit_flip_never_decodes_to_different_state() {
        let text = snap(5).encode();
        let bits = text.len() as u64 * 8;
        check_n("snapshot-bit-flip", 256, |rng| {
            let bit = rng.next_u64() % bits;
            let mut bytes = text.clone().into_bytes();
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            let corrupt = String::from_utf8_lossy(&bytes).into_owned();
            if let Ok(back) = SimSnapshot::decode(&corrupt) {
                assert_eq!(
                    back.encode(),
                    text,
                    "bit {bit} decoded to different state instead of being rejected"
                );
            }
        });
    }

    /// Satellite: under a random single-bit flip of a random slot, the
    /// store must quarantine the corrupt slot and fall back to the
    /// other generation — recovery never ends with zero candidates and
    /// never restores flipped state.
    #[test]
    fn prop_bit_flip_quarantine_falls_back_to_the_good_generation() {
        check_n("snapshot-bit-flip-fallback", 64, |rng| {
            let s = FaultStorage::new();
            let store = SnapshotStore::new("/t/sim.snapshot");
            store.publish(&s, 2, &snap(2).encode()).unwrap();
            store.publish(&s, 3, &snap(3).encode()).unwrap();
            let victim_gen = 2 + (rng.next_u64() % 2);
            let slot = store.slot_for(victim_gen);
            let original = s.peek(&slot).unwrap();
            let bit = rng.next_u64() % (original.len() as u64 * 8);
            let mut bytes = original.clone();
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            write_file(&s, &slot, &bytes, true);

            let rec = store.recover(&s, &SimSnapshot::decode).unwrap();
            match rec.candidates.len() {
                // Benign flip (decoded identical): both survive.
                2 => assert!(rec.quarantined.is_empty()),
                // Corrupting flip: the victim is quarantined, the other
                // generation survives as the fallback.
                1 => {
                    assert_eq!(rec.quarantined.len(), 1);
                    assert_eq!(rec.quarantined[0].0, slot);
                    assert_eq!(rec.candidates[0].1.step, if victim_gen == 2 { 3 } else { 2 });
                }
                n => panic!("{n} candidates from a single-slot flip"),
            }
            for (_, got) in &rec.candidates {
                assert_eq!(
                    got.encode(),
                    snap(got.step).encode(),
                    "a restored candidate must be bit-identical to what was published"
                );
            }
        });
    }

    #[test]
    fn storage_error_reports_the_failing_op() {
        let s = FaultStorage::new();
        let err = s.read(&p("missing")).unwrap_err();
        assert_eq!(err.op(), "read");
        assert!(!err.is_no_space());
    }
}

mod mem_governor {
    use crate::mem::{AllocFault, MemError, MemGovernor};

    #[test]
    fn charges_credit_back_on_drop() {
        let g = MemGovernor::with_budget(1000);
        let a = g.try_charge("setup", 400).unwrap();
        let b = g.try_charge("workspace", 500).unwrap();
        assert_eq!(g.used(), 900);
        assert_eq!(g.peak(), 900);
        drop(a);
        assert_eq!(g.used(), 500);
        drop(b);
        assert_eq!(g.used(), 0, "all receipts dropped: accounting returns to zero");
        assert_eq!(g.peak(), 900, "peak survives the credits");
    }

    #[test]
    fn budget_refusal_is_typed_and_charges_nothing() {
        let g = MemGovernor::with_budget(100);
        let _a = g.try_charge("setup", 80).unwrap();
        let err = g.try_charge("cache-insert", 30).unwrap_err();
        assert_eq!(
            err,
            MemError::BudgetExceeded {
                class: "cache-insert".into(),
                requested: 30,
                used: 80,
                budget: 100,
            }
        );
        assert_eq!(g.used(), 80, "a refused charge must not leak bytes");
        assert_eq!(g.fired().get("budget-exceeded"), Some(&1));
    }

    #[test]
    fn unlimited_tracks_but_never_refuses() {
        let g = MemGovernor::unlimited();
        let c = g.try_charge("setup", u64::MAX / 2).unwrap();
        assert_eq!(g.fill(), 0.0);
        drop(c);
        assert_eq!(g.used(), 0);
    }

    #[test]
    fn scheduled_fail_fires_once_at_its_index() {
        let g = MemGovernor::with_budget(1_000_000);
        g.schedule(1, AllocFault::Fail);
        let _a = g.try_charge("setup", 10).unwrap();
        let err = g.try_charge("workspace", 10).unwrap_err();
        assert_eq!(err, MemError::Injected { class: "workspace".into(), index: 1 });
        let _b = g.try_charge("workspace", 10).expect("retry at the next index succeeds");
        assert_eq!(g.fired().get("alloc-fail"), Some(&1));
        assert_eq!(g.used(), 20);
    }

    #[test]
    fn burst_fails_a_bounded_run_of_charges() {
        let g = MemGovernor::unlimited();
        g.schedule(0, AllocFault::Burst { count: 3 });
        for i in 0..3 {
            let err = g.try_charge("setup", 1).unwrap_err();
            assert_eq!(err, MemError::Injected { class: "setup".into(), index: i });
        }
        assert!(g.try_charge("setup", 1).is_ok(), "burst is bounded");
        assert_eq!(g.fired().get("alloc-burst"), Some(&3));
    }

    #[test]
    fn op_log_records_every_attempt_for_replay() {
        let g = MemGovernor::with_budget(50);
        let _c = g.try_charge("setup", 40).unwrap();
        let _ = g.try_charge("cache-insert", 40);
        let log = g.op_log();
        assert_eq!(log.len(), 2);
        assert_eq!((log[0].index, log[0].class.as_str(), log[0].bytes), (0, "setup", 40));
        assert_eq!((log[1].index, log[1].class.as_str()), (1, "cache-insert"));
        assert_eq!(g.op_count(), 2);
    }

    #[test]
    fn fill_reflects_budget_fraction() {
        let g = MemGovernor::with_budget(200);
        let _c = g.try_charge("setup", 150).unwrap();
        assert!((g.fill() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let g = MemGovernor::with_budget(1000);
        let g2 = g.clone();
        let h = std::thread::spawn(move || {
            let c = g2.try_charge("setup", 600).unwrap();
            assert_eq!(g2.used(), 600);
            drop(c);
        });
        h.join().unwrap();
        assert_eq!(g.used(), 0);
        assert_eq!(g.peak(), 600);
    }
}

mod mem_pressure {
    use super::*;
    use std::collections::BTreeMap;

    use crate::cache::CacheConfig;
    use crate::mem::MemGovernor;
    use crate::pool::{PoolConfig, RequestOutcome, ServePool};
    use crate::shed::ShedPolicy;

    /// Six requests in six distinct problem classes: every class is its
    /// own cache entry and every hierarchy is built from its own matrix,
    /// so solves are independent of cache interleaving and eviction —
    /// only the *memory* behavior may differ between runs.
    fn batch() -> Vec<SolveRequest> {
        (0..6)
            .map(|i| {
                let mut problem = laplace(6);
                for v in problem.matrix.data_mut() {
                    *v *= 1.0 + i as f64;
                }
                let mut req = SolveRequest::new(format!("mem-{i}"), problem, MgConfig::d16());
                req.class = format!("class-{i}");
                req.opts = SolveOptions { tol: 1e-8, record_history: false, ..Default::default() };
                req
            })
            .collect()
    }

    fn pool_cfg(budget: Option<u64>) -> PoolConfig {
        PoolConfig {
            workers: 3,
            mem_budget: budget,
            shed: ShedPolicy::disabled(),
            cache: CacheConfig::default(),
            ..PoolConfig::default()
        }
    }

    /// Unlimited governor, but the cache itself holds at most
    /// `byte_budget` of retained chains (evicting LRU to make room).
    fn cache_budget_cfg(byte_budget: u64) -> PoolConfig {
        PoolConfig {
            workers: 3,
            mem_budget: None,
            shed: ShedPolicy::disabled(),
            cache: CacheConfig { byte_budget: Some(byte_budget), ..CacheConfig::default() },
            ..PoolConfig::default()
        }
    }

    /// Solutions of the converged outcomes, keyed by request name.
    fn solutions(outcomes: &[RequestOutcome]) -> BTreeMap<String, Vec<f64>> {
        outcomes
            .iter()
            .filter(|o| o.converged())
            .map(|o| {
                let x = o.solution.clone().unwrap_or_else(|| panic!("{} no solution", o.name));
                (o.name.clone(), x)
            })
            .collect()
    }

    /// Accounting invariant shared by both runs: after the batch, the
    /// only live charges are the cache's retained chains, and dropping
    /// the pool credits everything back to zero (no double-charge, no
    /// leak).
    fn assert_accounting(pool: ServePool, governor: &MemGovernor) {
        assert_eq!(
            governor.used(),
            pool.cache().cache_bytes(),
            "live bytes after the run must equal the cache's retained chains"
        );
        drop(pool);
        assert_eq!(governor.used(), 0, "all receipts credited back on drop");
    }

    #[test]
    fn concurrent_eviction_under_byte_pressure_keeps_solves_exact() {
        // Reference: unbudgeted concurrent run.
        let mut free = ServePool::new(pool_cfg(None));
        let free_gov = free.governor().clone();
        let free_out = free.run(batch());
        assert!(free_out.iter().all(RequestOutcome::converged), "unbudgeted batch converges");
        assert!(free_gov.peak() > 0, "governor tracked the working set");
        assert_eq!(free.cache().mem_evictions(), 0, "no byte pressure without a budget");
        let retained = free.cache().cache_bytes();
        assert!(retained > 0, "unbudgeted run retains all six chains");
        let want = solutions(&free_out);
        assert_accounting(free, &free_gov);

        // Pressured: the same batch with the cache capped at ~2/5 of the
        // bytes it retained when unbudgeted, still on 3 workers. The
        // governor stays unlimited, so no solve is ever refused — the
        // pressure is absorbed entirely by LRU eviction, concurrently
        // with inserts from the other workers.
        let budget = (retained * 2) / 5;
        let mut tight = ServePool::new(cache_budget_cfg(budget));
        let tight_gov = tight.governor().clone();
        let tight_out = tight.run(batch());
        assert!(
            tight_out.iter().all(RequestOutcome::converged),
            "cache-byte pressure must never fail a solve"
        );
        assert!(tight.cache().mem_evictions() > 0, "six chains into 2/5 the bytes must evict");
        assert!(
            tight.cache().cache_bytes() <= budget,
            "retained {} exceeds the cache byte budget {budget}",
            tight.cache().cache_bytes()
        );

        // Each request's hierarchy is always built from its own matrix,
        // so eviction and rebuild churn must not change a single bit of
        // any solution.
        let got = solutions(&tight_out);
        for (name, y) in &got {
            let x = &want[name];
            assert_eq!(x.len(), y.len(), "{name}: solution length");
            for (i, (a, b)) in x.iter().zip(y).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{name}[{i}]: {a:e} != {b:e} — eviction changed the solve"
                );
            }
        }
        assert_accounting(tight, &tight_gov);
    }

    #[test]
    fn budget_smaller_than_any_chain_degrades_to_uncached_serves() {
        // A budget too small to retain even one hierarchy: every setup
        // still succeeds (the session builds outside the cache), every
        // serve is typed as uncached or evicted, nothing panics.
        let mut pool = ServePool::new(pool_cfg(Some(4096)));
        let governor = pool.governor().clone();
        let outcomes = pool.run(batch());
        for o in &outcomes {
            let worker_panicked = matches!(
                o.result.as_ref().err().and_then(|e| e.session()),
                Some(SolveError::WorkerPanicked { .. })
            );
            assert!(!worker_panicked, "{}: memory pressure must never panic a worker", o.name);
        }
        assert!(
            pool.cache().uncached_serves() > 0,
            "a starved cache serves uncached instead of aborting"
        );
        assert_eq!(pool.cache().cache_bytes(), 0, "nothing retained under a starved budget");
        assert_accounting(pool, &governor);
    }
}

mod wire_props {
    //! Satellite: frame-decoder property tests. The decoder is total —
    //! on arbitrary bytes it returns a typed error or a valid frame,
    //! never panics, and never allocates more than the declared limits.

    use crate::net::{decode_frame, limits, Frame, SubmitRequest, WireError, WIRE_MAGIC};
    use fp16mg_testkit::{check_n, Rng};

    /// A random *valid* frame, exercising every kind and the label
    /// length edges.
    fn arb_frame(rng: &mut Rng) -> Frame {
        fn label(rng: &mut Rng) -> String {
            let len = rng.usize_range(0, limits::MAX_LABEL);
            "x".repeat(len)
        }
        match rng.usize_range(0, 7) {
            0 => Frame::Submit(SubmitRequest {
                key: rng.next_u64(),
                size: rng.usize_range(2, limits::MAX_PAYLOAD as usize) as u32,
                tol: rng.f64_range(1e-12, 1.0),
                priority: rng.usize_range(0, 2) as u8,
            }),
            1 => Frame::Done(crate::net::DoneReply {
                key: rng.next_u64(),
                duplicate: rng.chance(0.5),
                outcome: label(rng),
                profile: label(rng),
                breaker: label(rng),
            }),
            2 => Frame::Busy { retry_ms: rng.next_u64() as u32, reason: label(rng) },
            3 => Frame::Error { code: rng.usize_range(1, 10) as u8, detail: label(rng) },
            4 => Frame::Ping,
            5 => Frame::Shutdown,
            6 => Frame::ShutdownOk { seq: rng.next_u64() },
            _ => Frame::Pong,
        }
    }

    #[test]
    fn prop_wire_roundtrip() {
        check_n("wire-roundtrip", 512, |rng| {
            let frame = arb_frame(rng);
            let bytes = frame.encode();
            let (decoded, consumed) = decode_frame(&bytes).expect("encoded frame must decode");
            assert_eq!(decoded, frame, "round trip must be identity");
            assert_eq!(consumed, bytes.len(), "decode must consume the whole encoding");
        });
    }

    #[test]
    fn prop_wire_decoder_total_on_garbage() {
        check_n("wire-garbage", 512, |rng| {
            let len = rng.usize_range(0, 256);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            // Total: a typed error or a valid frame, never a panic. On
            // success the cursor stays inside the buffer.
            match decode_frame(&bytes) {
                Ok((_, consumed)) => assert!(consumed <= bytes.len()),
                Err(e) => {
                    assert!(e.code() >= 1, "every decode error carries a typed code");
                }
            }
        });
    }

    #[test]
    fn prop_wire_flip_one_bit_typed_or_valid() {
        check_n("wire-bit-flip", 512, |rng| {
            let frame = arb_frame(rng);
            let mut bytes = frame.encode();
            let bit = rng.usize_range(0, bytes.len() * 8 - 1);
            bytes[bit / 8] ^= 1 << (bit % 8);
            match decode_frame(&bytes) {
                Ok((_, consumed)) => assert!(consumed <= bytes.len()),
                Err(e) => assert!(e.code() >= 1),
            }
            // Any truncation of a valid frame is typed too.
            let bytes = frame.encode();
            let cut = rng.usize_range(0, bytes.len() - 1);
            match decode_frame(&bytes[..cut]) {
                Ok((_, consumed)) => assert!(consumed <= cut),
                Err(e) => assert!(e.code() >= 1),
            }
        });
    }

    #[test]
    fn prop_wire_oversized_header_rejected_before_allocation() {
        check_n("wire-oversized", 512, |rng| {
            // A header declaring more than MAX_PAYLOAD must be rejected
            // from the 9 header bytes alone — before any payload buffer
            // is allocated, no matter how large the declared length.
            let declared = limits::MAX_PAYLOAD
                + 1
                + (rng.next_u64() as u32 % (u32::MAX - limits::MAX_PAYLOAD));
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
            bytes.push(rng.usize_range(1, 8) as u8);
            bytes.extend_from_slice(&declared.to_le_bytes());
            match decode_frame(&bytes) {
                Err(WireError::Oversized { got, limit }) => {
                    assert_eq!(got, declared);
                    assert_eq!(limit, limits::MAX_PAYLOAD);
                }
                other => panic!("declared {declared}: expected Oversized, got {other:?}"),
            }
        });
    }
}
